"""Tests for RPathsInstance validation and accessors."""

import pytest

from repro.congest.errors import InvalidInstanceError
from repro.congest.words import INF
from repro.graphs.instance import RPathsInstance, instance_from_edges


def valid_square():
    # 0 -> 1 -> 2 with a detour 0 -> 3 -> 2.
    return instance_from_edges(
        [(0, 1), (1, 2), (0, 3), (3, 2)], path=[0, 1, 2])


class TestAccessors:
    def test_basic_properties(self):
        inst = valid_square()
        assert inst.s == 0 and inst.t == 2
        assert inst.hop_count == 2
        assert inst.m == 4

    def test_path_edges(self):
        assert valid_square().path_edges() == [(0, 1), (1, 2)]

    def test_path_edge_set(self):
        assert valid_square().path_edge_set() == {(0, 1), (1, 2)}

    def test_prefix_weights_unweighted(self):
        assert valid_square().path_prefix_weights() == [0, 1, 2]

    def test_prefix_weights_weighted(self):
        inst = instance_from_edges(
            [(0, 1), (1, 2), (0, 2)], path=[0, 1, 2],
            weights={(0, 1): 2, (1, 2): 3, (0, 2): 9}, weighted=True)
        assert inst.path_prefix_weights() == [0, 2, 5]
        assert inst.path_length == 5

    def test_adjacency_cached(self):
        inst = valid_square()
        assert inst.adjacency() is inst.adjacency()

    def test_dijkstra_avoid(self):
        inst = valid_square()
        dist = inst.dijkstra(0, avoid_edges=frozenset([(0, 1)]))
        assert dist[2] == 2  # via 3
        assert dist[1] == INF


class TestValidation:
    def test_valid_instance_passes(self):
        valid_square().validate()

    def test_path_must_use_graph_edges(self):
        with pytest.raises(InvalidInstanceError):
            instance_from_edges([(0, 1), (2, 1)], path=[0, 1, 2])

    def test_path_must_be_shortest(self):
        # Direct edge 0->2 makes the 2-hop path non-shortest.
        with pytest.raises(InvalidInstanceError) as err:
            instance_from_edges(
                [(0, 1), (1, 2), (0, 2)], path=[0, 1, 2])
        assert "shortest" in str(err.value)

    def test_path_prefixes_must_be_shortest(self):
        # Weighted: the prefix to 1 is not optimal.
        with pytest.raises(InvalidInstanceError):
            instance_from_edges(
                [(0, 1), (1, 2), (0, 3), (3, 1)],
                path=[0, 1, 2],
                weights={(0, 1): 5, (1, 2): 1, (0, 3): 1, (3, 1): 1},
                weighted=True)

    def test_repeated_path_vertex_rejected(self):
        inst = RPathsInstance(
            n=3, edges=[(0, 1, 1), (1, 0, 1), (0, 2, 1)],
            path=[0, 1, 0, 2])
        with pytest.raises(InvalidInstanceError):
            inst.validate()

    def test_duplicate_edge_rejected(self):
        inst = RPathsInstance(
            n=2, edges=[(0, 1, 1), (0, 1, 1)], path=[0, 1])
        with pytest.raises(InvalidInstanceError):
            inst.validate()

    def test_nonunit_weight_on_unweighted_rejected(self):
        inst = RPathsInstance(
            n=2, edges=[(0, 1, 3)], path=[0, 1], weighted=False)
        with pytest.raises(InvalidInstanceError):
            inst.validate()

    def test_self_loop_rejected(self):
        inst = RPathsInstance(
            n=2, edges=[(0, 1, 1), (1, 1, 1)], path=[0, 1])
        with pytest.raises(InvalidInstanceError):
            inst.validate()

    def test_unreachable_target_rejected(self):
        inst = RPathsInstance(
            n=3, edges=[(1, 0, 1), (1, 2, 1)], path=[0, 1])
        with pytest.raises(InvalidInstanceError):
            inst.validate()

    def test_disconnected_support_rejected(self):
        inst = RPathsInstance(
            n=4, edges=[(0, 1, 1), (2, 3, 1)], path=[0, 1])
        with pytest.raises(InvalidInstanceError):
            inst.validate()

    def test_single_vertex_rejected(self):
        inst = RPathsInstance(n=1, edges=[], path=[0])
        with pytest.raises(InvalidInstanceError):
            inst.validate()


class TestNetworkGlue:
    def test_build_network_shares_topology(self):
        inst = valid_square()
        net = inst.build_network()
        assert net.n == inst.n
        assert net.num_edges == inst.m

    def test_strict_network(self):
        net = valid_square().build_network(bandwidth_words=1, strict=True)
        assert net.strict and net.bandwidth_words == 1
