"""Unit tests for the round ledger (congest.metrics)."""

from repro.congest.metrics import RoundLedger


class TestLedgerBasics:
    def test_starts_empty(self):
        ledger = RoundLedger()
        assert ledger.rounds == 0
        assert ledger.messages == 0
        assert ledger.words == 0
        assert ledger.max_link_words == 0
        assert ledger.violations == 0

    def test_root_phase_always_charged(self):
        ledger = RoundLedger()
        ledger.charge_round(3, 6, 2)
        assert ledger.rounds == 1
        assert ledger.messages == 3
        assert ledger.words == 6
        assert ledger.max_link_words == 2

    def test_named_phase_accumulates(self):
        ledger = RoundLedger()
        with ledger.phase("bfs"):
            ledger.charge_round(1, 1, 1)
            ledger.charge_round(1, 1, 1)
        assert ledger["bfs"].rounds == 2
        assert ledger.rounds == 2

    def test_phase_reentry_accumulates(self):
        ledger = RoundLedger()
        for _ in range(3):
            with ledger.phase("sweep"):
                ledger.charge_round(0, 0, 0)
        assert ledger["sweep"].rounds == 3

    def test_nested_phases_both_charged(self):
        ledger = RoundLedger()
        with ledger.phase("outer"):
            with ledger.phase("inner"):
                ledger.charge_round(2, 4, 1)
        assert ledger["outer"].rounds == 1
        assert ledger["inner"].rounds == 1
        assert ledger.rounds == 1

    def test_same_phase_nested_not_double_charged(self):
        ledger = RoundLedger()
        with ledger.phase("p"):
            with ledger.phase("p"):
                ledger.charge_round(1, 1, 1)
        assert ledger["p"].rounds == 1

    def test_max_link_words_is_max_not_sum(self):
        ledger = RoundLedger()
        ledger.charge_round(1, 1, 3)
        ledger.charge_round(1, 1, 5)
        ledger.charge_round(1, 1, 2)
        assert ledger.max_link_words == 5

    def test_violations_accumulate(self):
        ledger = RoundLedger()
        ledger.charge_round(1, 1, 9, violations=2)
        ledger.charge_round(1, 1, 1, violations=1)
        assert ledger.violations == 3

    def test_contains(self):
        ledger = RoundLedger()
        with ledger.phase("x"):
            pass
        assert "x" in ledger
        assert "y" not in ledger

    def test_breakdown_order_root_first(self):
        ledger = RoundLedger()
        with ledger.phase("a"):
            ledger.charge_round(0, 0, 0)
        with ledger.phase("b"):
            ledger.charge_round(0, 0, 0)
        names = list(ledger.breakdown())
        assert names[0] == RoundLedger.ROOT
        assert names.index("a") < names.index("b")

    def test_report_renders_all_phases(self):
        ledger = RoundLedger()
        with ledger.phase("alpha"):
            ledger.charge_round(1, 2, 1)
        text = ledger.report()
        assert "alpha" in text
        assert "total" in text

    def test_as_dict(self):
        ledger = RoundLedger()
        ledger.charge_round(1, 2, 3)
        d = ledger[RoundLedger.ROOT].as_dict()
        assert d["rounds"] == 1
        assert d["words"] == 2
        assert d["max_link_words"] == 3
