"""Unit tests for the CONGEST network engine (congest.network)."""

import pytest

from repro.congest.errors import (
    BandwidthExceededError,
    NotALinkError,
    RoundLimitExceededError,
    UnknownVertexError,
)
from repro.congest.network import CongestNetwork


def triangle():
    return CongestNetwork(3, [(0, 1), (1, 2), (2, 0)])


class TestTopology:
    def test_out_in_neighbors_follow_directions(self):
        net = CongestNetwork(3, [(0, 1), (2, 1)])
        assert net.out_neighbors(0) == [1]
        assert net.in_neighbors(1) == [0, 2]
        assert net.out_neighbors(1) == []

    def test_links_are_bidirectional(self):
        net = CongestNetwork(2, [(0, 1)])
        assert net.has_link(0, 1)
        assert net.has_link(1, 0)
        assert net.has_edge(0, 1)
        assert not net.has_edge(1, 0)

    def test_weights_stored(self):
        net = CongestNetwork(2, [(0, 1, 7)])
        assert net.weight(0, 1) == 7

    def test_duplicate_edges_deduplicated(self):
        net = CongestNetwork(2, [(0, 1), (0, 1)])
        assert net.num_edges == 1

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            CongestNetwork(2, [(0, 0)])

    def test_out_of_range_vertex_rejected(self):
        with pytest.raises(UnknownVertexError):
            CongestNetwork(2, [(0, 5)])

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(ValueError):
            CongestNetwork(2, [(0, 1, 0)])

    def test_empty_network_rejected(self):
        with pytest.raises(ValueError):
            CongestNetwork(0, [])


class TestExchange:
    def test_message_delivered_next_round(self):
        net = triangle()
        inbox = net.exchange({0: [(1, ("hi", 1))]})
        assert inbox == {1: [(0, ("hi", 1))]}
        assert net.rounds == 1

    def test_round_counter_advances_per_exchange(self):
        net = triangle()
        net.exchange({})
        net.exchange({})
        assert net.rounds == 2

    def test_multiple_receivers(self):
        net = triangle()
        inbox = net.exchange({0: [(1, ("a",)), (2, ("b",))]})
        assert set(inbox) == {1, 2}

    def test_send_over_non_link_raises(self):
        net = CongestNetwork(3, [(0, 1)])
        with pytest.raises(NotALinkError):
            net.exchange({0: [(2, ("x",))]})

    def test_send_from_unknown_vertex_raises(self):
        net = triangle()
        with pytest.raises(UnknownVertexError):
            net.exchange({7: [(0, ("x",))]})

    def test_reverse_direction_allowed_on_directed_edge(self):
        # CONGEST links are bidirectional even for one-way edges.
        net = CongestNetwork(2, [(0, 1)])
        inbox = net.exchange({1: [(0, ("back",))]})
        assert inbox == {0: [(1, ("back",))]}

    def test_word_accounting(self):
        net = triangle()
        net.exchange({0: [(1, (1, 2, 3))]})
        assert net.ledger.words == 3
        assert net.ledger.messages == 1
        assert net.ledger.max_link_words == 3

    def test_idle_round_charges_round_only(self):
        net = triangle()
        net.idle_round(4)
        assert net.rounds == 4
        assert net.ledger.messages == 0


class TestBandwidth:
    def test_violation_recorded_in_lenient_mode(self):
        net = CongestNetwork(2, [(0, 1)], bandwidth_words=2)
        net.exchange({0: [(1, (1, 2, 3))]})
        assert net.ledger.violations == 1

    def test_violation_raises_in_strict_mode(self):
        net = CongestNetwork(2, [(0, 1)], bandwidth_words=2, strict=True)
        with pytest.raises(BandwidthExceededError):
            net.exchange({0: [(1, (1, 2, 3))]})

    def test_within_budget_no_violation(self):
        net = CongestNetwork(2, [(0, 1)], bandwidth_words=4, strict=True)
        net.exchange({0: [(1, (1, 2))]})
        assert net.ledger.violations == 0

    def test_per_direction_budgets_independent(self):
        net = CongestNetwork(2, [(0, 1)], bandwidth_words=2, strict=True)
        # Two words each way in one round is fine.
        net.exchange({0: [(1, (1, 2))], 1: [(0, (3, 4))]})
        assert net.ledger.violations == 0


class TestHelpers:
    def test_round_budget_check(self):
        net = triangle()
        net.exchange({})
        with pytest.raises(RoundLimitExceededError):
            net.check_round_budget(0, "unit test")
        net.check_round_budget(5)

    def test_diameter_of_triangle(self):
        assert triangle().undirected_diameter() == 1

    def test_diameter_of_path(self):
        net = CongestNetwork(4, [(0, 1), (1, 2), (2, 3)])
        assert net.undirected_diameter() == 3

    def test_disconnected_diameter_raises(self):
        net = CongestNetwork(4, [(0, 1), (2, 3)])
        with pytest.raises(ValueError):
            net.undirected_diameter()

    def test_is_connected(self):
        assert triangle().is_connected()
        assert not CongestNetwork(4, [(0, 1), (2, 3)]).is_connected()

    def test_link_totals_recorded_when_enabled(self):
        net = triangle()
        net.record_link_totals = True
        net.exchange({0: [(1, (1, 2))]})
        net.exchange({0: [(1, (3,))]})
        assert net.link_totals[(0, 1)] == 3
