"""Unit tests for message-size accounting (congest.words)."""

from fractions import Fraction

import pytest

from repro.congest.words import (
    INF,
    clamp_inf,
    is_unreachable,
    words_of,
)


class TestWordsOf:
    def test_none_is_free(self):
        assert words_of(None) == 0

    def test_int_is_one_word(self):
        assert words_of(5) == 1
        assert words_of(-12) == 1
        assert words_of(INF) == 1

    def test_float_is_one_word(self):
        assert words_of(3.5) == 1

    def test_bool_is_one_word(self):
        assert words_of(True) == 1

    def test_fraction_is_two_words(self):
        assert words_of(Fraction(3, 7)) == 2

    def test_tuple_sums_fields(self):
        assert words_of((1, 2, 3)) == 3
        assert words_of(("hop", 4, 7)) == 1 + 1 + 1

    def test_nested_tuple(self):
        assert words_of((1, (2, 3))) == 3

    def test_empty_tuple(self):
        assert words_of(()) == 0

    def test_short_string_one_word(self):
        assert words_of("hop") == 1

    def test_long_string_scales(self):
        assert words_of("x" * 17) == 3

    def test_dict_counts_keys_and_values(self):
        assert words_of({1: 2, 3: 4}) == 4

    def test_set_counts_members(self):
        assert words_of({1, 2, 3}) == 3

    def test_list_like_tuple(self):
        assert words_of([1, 2]) == 2

    def test_unknown_type_raises(self):
        with pytest.raises(TypeError):
            words_of(object())


class TestInfSentinel:
    def test_inf_is_unreachable(self):
        assert is_unreachable(INF)
        assert is_unreachable(INF + 5)
        assert is_unreachable(None)

    def test_finite_is_reachable(self):
        assert not is_unreachable(0)
        assert not is_unreachable(INF - 1)

    def test_non_numeric_is_reachable(self):
        assert not is_unreachable("not a number")

    def test_clamp_identity_below(self):
        assert clamp_inf(41) == 41

    def test_clamp_collapses_overflow(self):
        assert clamp_inf(INF) == INF
        assert clamp_inf(INF + 123) == INF
        assert clamp_inf(2 * INF) == INF

    def test_inf_survives_addition_ordering(self):
        # Sums of a few INFs stay comparable and above any real length.
        assert INF + INF > INF - 1
        assert clamp_inf(INF + 7) == INF
