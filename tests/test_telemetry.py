"""Tests for repro.telemetry — spans, counters, sink, and tooling.

The three design promises, each asserted here:

1. results are untouched: traced runs are bit-identical (outputs and
   ledgers) to untraced runs on every fabric;
2. fork-safe: the registry and tracer reset on first touch in a
   ``pool_map`` worker, so child processes never re-report the
   parent's state;
3. disabled is (nearly) free: the committed microbench's overhead
   bound holds.
"""

from __future__ import annotations

import json
import os
import pathlib
import sys

import pytest

from repro import telemetry
from repro.cli import main
from repro.congest.metrics import RoundLedger
from repro.core.rpaths import solve_rpaths
from repro.core.two_sisp import solve_two_sisp
from repro.graphs import grid_instance, random_instance
from repro.runtime.executor import pool_map
from repro.telemetry import counters as counters_mod
from repro.telemetry import sink as sink_mod
from repro.telemetry import tooling

FABRICS = ("reference", "fast", "vector")


@pytest.fixture(autouse=True)
def _tracing_off():
    """Every test starts and ends untraced with a clean registry."""
    telemetry.disable_tracing()
    telemetry.drain_spans()
    counters_mod.registry.reset()
    yield
    telemetry.disable_tracing()
    telemetry.drain_spans()
    counters_mod.registry.reset()


# -- promise 1: traced == untraced -------------------------------------------


class TestTracedBitIdentical:
    @pytest.mark.parametrize("fabric", FABRICS)
    def test_solve_rpaths_identical(self, fabric, tmp_path):
        instance = grid_instance(4, 6)
        plain = solve_rpaths(instance, fabric=fabric)
        telemetry.enable_tracing(tmp_path / fabric)
        try:
            traced = solve_rpaths(instance, fabric=fabric)
        finally:
            telemetry.flush(tmp_path / fabric)
            telemetry.disable_tracing()
        assert traced.lengths == plain.lengths
        assert traced.ledger.report() == plain.ledger.report()

    @pytest.mark.parametrize("fabric", FABRICS)
    def test_two_sisp_identical(self, fabric):
        instance = random_instance(30, seed=5)
        plain = solve_two_sisp(instance, use_oracle_knowledge=True,
                               fabric=fabric)
        telemetry.enable_tracing()
        try:
            traced = solve_two_sisp(instance, use_oracle_knowledge=True,
                                    fabric=fabric)
        finally:
            telemetry.disable_tracing()
        assert traced.length == plain.length
        assert (traced.rpaths.ledger.report()
                == plain.rpaths.ledger.report())

    def test_apx_identical(self):
        from repro.approx.apx_rpaths import solve_apx_rpaths
        instance = random_instance(24, seed=3, weighted=True)
        plain = solve_apx_rpaths(instance, epsilon=0.5)
        telemetry.enable_tracing()
        try:
            traced = solve_apx_rpaths(instance, epsilon=0.5)
        finally:
            telemetry.disable_tracing()
        assert traced.lengths == plain.lengths
        assert traced.ledger.report() == plain.ledger.report()

    def test_solver_span_joins_ledger(self, tmp_path):
        instance = grid_instance(4, 5)
        telemetry.enable_tracing(tmp_path)
        try:
            report = solve_rpaths(instance, fabric="vector")
        finally:
            telemetry.flush(tmp_path)
            telemetry.disable_tracing()
        spans, counters, _info = telemetry.read_trace(tmp_path)
        [root] = [s for s in spans if s["name"] == "solve/rpaths"]
        assert root["rounds"] == report.rounds
        assert root["messages"] == report.messages
        assert root["wall"] > 0
        phases = {s["name"] for s in spans}
        assert "phase/long-detour(P5.1)" in phases
        assert any(n.startswith("kernel/") for n in phases)
        # All ten kernels hit the vector path on the vector fabric.
        hits = {k for k, o, r, _c in tooling.dispatch_rows(counters)
                if o == "vector"}
        assert hits == set(telemetry.dispatch.known_kernels())


# -- promise 2: fork safety --------------------------------------------------


def _fork_probe(tag):
    """Module-level pool_map worker: inc one counter, report state."""
    counters_mod.registry.inc("repro_test_fork_total")
    return (os.getpid(),
            counters_mod.registry.value("repro_test_fork_total"),
            len(telemetry.trace.drain_spans()))


class TestForkSafety:
    def test_registry_resets_in_workers(self):
        parent_pid = os.getpid()
        for _ in range(5):
            counters_mod.registry.inc("repro_test_fork_total")
        payloads = ["a", "b", "c", "d"]
        outcomes = pool_map(_fork_probe, payloads, jobs=2)
        assert counters_mod.registry.value(
            "repro_test_fork_total") == 5
        for pid, value, leaked_spans in outcomes:
            if pid == parent_pid:
                continue  # serial fallback platforms
            # A worker starts from zero (never from the parent's 5);
            # process reuse can push it up to len(payloads).
            assert 1 <= value <= len(payloads)
            assert leaked_spans == 0

    def test_worker_traces_flush_per_pid(self, tmp_path):
        from repro.runtime.results import CellSpec
        from repro.runtime.executor import run_cells
        telemetry.enable_tracing(tmp_path)
        try:
            specs = [CellSpec.make("exact-grid",
                                   {"rows": 3, "cols": 4}, seed)
                     for seed in range(2)]
            results = run_cells(specs, jobs=2)
        finally:
            telemetry.disable_tracing()
        assert all(r.ok for r in results)
        spans, counters, info = telemetry.read_trace(tmp_path)
        assert any(s["name"] == "cell/exact-grid" for s in spans)
        assert any(k.startswith("repro_executor_cells_total")
                   for k in counters)
        # One trace file per participating process, no double counting.
        pids = {s["pid"] for s in spans}
        assert info["files"] == len(list(
            pathlib.Path(tmp_path).glob("trace-*.jsonl")))
        assert len(pids) >= 1


# -- promise 3: disabled overhead --------------------------------------------


class TestDisabledOverhead:
    def test_microbench_bound(self):
        bench_dir = str(pathlib.Path(__file__).resolve().parents[1]
                        / "benchmarks")
        if bench_dir not in sys.path:
            sys.path.insert(0, bench_dir)
        from bench_telemetry import MAX_OVERHEAD, measure_overhead
        # Interleaved best-of filtering is robust but not immune to a
        # loaded machine: escalate repeats before calling it a failure.
        result = None
        for repeats in (5, 9, 15):
            result = measure_overhead(repeats=repeats, rows=4, cols=10)
            if result["overhead"] < MAX_OVERHEAD:
                break
        assert result["overhead"] < MAX_OVERHEAD, result


# -- spans and sink ----------------------------------------------------------


class TestSpans:
    def test_disabled_span_is_shared_noop(self):
        ledger = RoundLedger()
        sp = telemetry.span("x", ledger=ledger)
        assert sp is telemetry.trace._NOOP
        with sp as inner:
            inner.set_attrs(ignored=True)
            inner.set_ledger(ledger)

    def test_nesting_and_ledger_deltas(self):
        telemetry.enable_tracing()
        ledger = RoundLedger()
        with telemetry.span("outer", ledger=ledger):
            with ledger.phase("p1"):
                ledger.charge_round(3, 9, 1)
            with ledger.phase("p2"):
                ledger.charge_round(2, 4, 1)
        spans = telemetry.drain_spans()
        by_name = {s.name: s for s in spans}
        assert by_name["outer"].rounds == 2
        assert by_name["outer"].messages == 5
        assert by_name["phase/p1"].rounds == 1
        assert by_name["phase/p1"].parent_id == by_name["outer"].span_id
        assert by_name["phase/p1"].depth == 1

    def test_set_ledger_fresh_claims_from_zero(self):
        telemetry.enable_tracing()
        ledger = RoundLedger()
        with ledger.phase("warm"):
            ledger.charge_round(1, 1, 1)
        with telemetry.span("late") as sp:
            sp.set_ledger(ledger, fresh=True)
        [late] = [s for s in telemetry.drain_spans()
                  if s.name == "late"]
        assert late.rounds == 1  # pre-span charge counted

    def test_counters_snapshot_seq_dedup(self, tmp_path):
        telemetry.enable_tracing(tmp_path)
        counters_mod.registry.inc("repro_test_seq_total")
        telemetry.flush(tmp_path)
        telemetry.flush(tmp_path)  # second snapshot, same value
        telemetry.disable_tracing()
        _spans, counters, _info = telemetry.read_trace(tmp_path)
        assert counters["repro_test_seq_total"] == 1

    def test_reader_skips_garbage_and_foreign_schema(self, tmp_path):
        good = {"v": sink_mod.SCHEMA, "kind": "span", "name": "ok",
                "wall": 0.5, "pid": 1}
        path = tmp_path / "trace-1.jsonl"
        path.write_text("\n".join([
            json.dumps(good),
            "not json at all {",
            json.dumps({"v": "other-schema/9", "kind": "span"}),
            json.dumps({"v": "repro-trace/99", "kind": "span",
                        "name": "future", "pid": 2}),
        ]) + "\n")
        spans, _counters, info = telemetry.read_trace(tmp_path)
        assert {s["name"] for s in spans} == {"ok", "future"}
        assert info["bad_lines"] == 2
        assert info["unknown_versions"] == ["repro-trace/99"]


# -- registry ----------------------------------------------------------------


class TestRegistry:
    def test_labels_and_exposition(self):
        reg = counters_mod.MetricsRegistry()
        reg.inc("x_total", kernel="a", outcome="vector")
        reg.inc("x_total", 2, kernel="a", outcome="fallback")
        reg.set_gauge("g", 7)
        reg.observe("lat_seconds", 0.5)
        reg.observe("lat_seconds", 1.5)
        snap = reg.snapshot()
        assert snap["counters"][
            'x_total{kernel="a",outcome="fallback"}'] == 2
        assert snap["summaries"]["lat_seconds"]["count"] == 2
        assert snap["summaries"]["lat_seconds"]["max"] == 1.5
        text = reg.exposition()
        assert "# TYPE x_total counter" in text
        assert 'x_total{kernel="a",outcome="vector"} 1' in text
        assert "lat_seconds_sum 2" in text

    def test_series_roundtrip(self):
        name, labels = counters_mod.parse_series(
            counters_mod.series_name(
                "n_total", (("a", "1"), ("b", "x"))))
        assert name == "n_total"
        assert labels == {"a": "1", "b": "x"}

    def test_merge_snapshots_sums_across_pids(self):
        merged = counters_mod.merge_counter_snapshots([
            {"counters": {"a_total": 1, "b_total": 2}},
            {"counters": {"a_total": 3}},
        ])
        assert merged == {"a_total": 4, "b_total": 2}


# -- dispatch accounting -----------------------------------------------------


class TestDispatchAccounting:
    def test_fallback_histogram_on_known_fallback_scenario(self):
        # record_link_totals forces every kernel off the vector path
        # with a specific, enumerated reason.
        instance = grid_instance(3, 5)
        net = instance.build_network(fabric="vector")
        net.record_link_totals = True
        from repro.congest import kernels
        assert (kernels.vector_gate_reason(net)
                == telemetry.dispatch.REASON_RECORD_LINK_TOTALS)
        solve_rpaths(instance, fabric="vector")
        solve_rpaths(instance, fabric="fast")
        counters = counters_mod.registry.snapshot()["counters"]
        rows = tooling.dispatch_rows(counters)
        assert rows
        reasons = {r for _k, o, r, _c in rows if o == "fallback"}
        assert telemetry.dispatch.REASON_FABRIC in reasons
        assert tooling.unknown_reasons(counters) == []

    def test_unknown_reason_flagged(self):
        counters = {
            'repro_kernel_dispatch_total{kernel="hop_bfs",'
            'outcome="fallback",reason="mystery-cause"}': 1.0,
            'repro_kernel_dispatch_total{kernel="not_a_kernel",'
            'outcome="vector"}': 1.0,
        }
        unknown = tooling.unknown_reasons(counters)
        assert any("mystery-cause" in u for u in unknown)
        assert any("not_a_kernel" in u for u in unknown)


# -- tooling: summary + diff -------------------------------------------------


def _span(name, wall, rounds=0, pid=1):
    return {"v": sink_mod.SCHEMA, "kind": "span", "name": name,
            "wall": wall, "rounds": rounds, "pid": pid}


class TestTooling:
    def test_summarize_aggregates_and_slowest(self):
        spans = [_span("phase/a", 0.2, 10), _span("phase/a", 0.3, 5),
                 _span("phase/b", 0.1, 7)]
        summary = tooling.summarize(spans, {}, top=2)
        agg = summary.aggregates["phase/a"]
        assert agg.count == 2
        assert agg.rounds == 15
        assert agg.wall == pytest.approx(0.5)
        assert [s["name"] for s in summary.slowest] == [
            "phase/a", "phase/a"]
        text = tooling.format_summary(summary)
        assert "phase/a" in text and "per-phase" in text

    def test_diff_regressions(self):
        old = tooling.summarize([_span("p", 1.0, 100)], {})
        new = tooling.summarize(
            [_span("p", 1.5, 100), _span("q", 0.1, 1)], {})
        diff = tooling.diff_summaries(old, new)
        assert diff.added == ["q"]
        assert [d.name for d in diff.regressions(0.25)] == ["p"]
        assert diff.regressions(0.6) == []
        text = tooling.format_diff(diff, threshold=0.25)
        assert "REGRESSION p" in text
        assert json.dumps(diff.as_json())  # JSON-safe

    def test_summary_as_json_schema(self):
        summary = tooling.summarize(
            [_span("phase/a", 0.2, 10)],
            {'repro_kernel_dispatch_total{kernel="hop_bfs",'
             'outcome="vector"}': 3.0})
        data = json.loads(json.dumps(summary.as_json()))
        assert data["phases"]["phase/a"]["rounds"] == 10
        assert data["fallbacks"][0]["kernel"] == "hop_bfs"
        assert data["unknown_reasons"] == []


# -- satellites: ledger report, CLI surfaces ---------------------------------


class TestLedgerReportColumns:
    def test_report_includes_violations_and_max_link(self):
        ledger = RoundLedger()
        with ledger.phase("zz-probe"):
            ledger.charge_round(2, 6, 3, violations=1)
        text = ledger.report()
        header = text.splitlines()[0]
        assert "violations" in header
        assert "max link" in header
        row = [ln for ln in text.splitlines()
               if ln.startswith("zz-probe")][0]
        assert row.split()[-1] == "1"


class TestCliSurfaces:
    def test_suite_run_trace_and_durations(self, tmp_path, capsys):
        code = main([
            "suite", "run", "--smoke", "--scenario", "exact-grid",
            "--jobs", "1", "--trace", "--durations", "2",
            "--cache-dir", str(tmp_path),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "slowest" in out
        assert "trace: " in out
        trace_dir = sink_mod.latest_trace_dir(tmp_path)
        assert trace_dir is not None

        code = main(["trace", "summary", str(trace_dir),
                     "--check-reasons", "--json"])
        data = json.loads(capsys.readouterr().out)
        assert code == 0
        assert "phases" in data and data["unknown_reasons"] == []
        assert any(name.startswith("cell/") for name in data["phases"])

    def test_trace_diff_cli(self, tmp_path, capsys):
        old_file = tmp_path / "old" / "trace-1.jsonl"
        new_file = tmp_path / "new" / "trace-1.jsonl"
        for path, wall in ((old_file, 1.0), (new_file, 5.0)):
            path.parent.mkdir(parents=True)
            path.write_text(json.dumps(_span("p", wall, 10)) + "\n")
        code = main(["trace", "diff", str(old_file.parent),
                     str(new_file.parent)])
        out = capsys.readouterr().out
        assert code == 1  # 5x wall growth trips the default threshold
        assert "REGRESSION p" in out

    def test_trace_check_reasons_fails_on_unknown(self, tmp_path,
                                                  capsys):
        trace = tmp_path / "trace-9.jsonl"
        trace.write_text(json.dumps({
            "v": sink_mod.SCHEMA, "kind": "counters", "pid": 9,
            "seq": 1,
            "data": {"counters": {
                'repro_kernel_dispatch_total{kernel="hop_bfs",'
                'outcome="fallback",reason="mystery-cause"}': 1,
            }},
        }) + "\n")
        code = main(["trace", "summary", str(tmp_path),
                     "--check-reasons"])
        capsys.readouterr()
        assert code == 1

    def test_query_json(self, capsys):
        code = main(["query", "--family", "grid", "--n", "20",
                     "--check", "--json"])
        data = json.loads(capsys.readouterr().out)
        assert code == 0
        assert data["check"] is True
        assert data["kind"] == "hit-path-edge"
        assert isinstance(data["length"], int)

    def test_serve_bench_json(self, capsys):
        code = main(["serve", "bench", "--n", "14", "--instances", "2",
                     "--queries", "24", "--workload", "uniform",
                     "--json"])
        data = json.loads(capsys.readouterr().out)
        assert code == 0
        [record] = data["workloads"]
        assert record["correct"] is True
        assert record["service"]["totals"]["queries"] == 24
        assert "counters" in record["service"]


# -- serve stats surface -----------------------------------------------------


class TestServeStats:
    def test_stats_and_exposition(self):
        from repro.serve import ShardedQueryService, generate_workload
        instances = [random_instance(16, seed=i) for i in range(2)]
        service = ShardedQueryService(instances, shards=2, capacity=1)
        queries = []
        for inst in instances:
            queries.extend(generate_workload("uniform", inst, 10,
                                             seed=1))
        service.serve(queries)
        stats = service.stats()
        assert stats["totals"]["queries"] == len(queries)
        assert len(stats["shards"]) == 2
        assert json.dumps(stats)  # JSON-safe
        text = service.exposition()
        assert "repro_serve_shard_queries" in text
        assert "# TYPE" in text


# -- scale-out counter enums -------------------------------------------------


class TestScaleEnums:
    """The scale-out counters are a closed surface, dispatch-style."""

    def test_real_scaleout_run_emits_only_known_labels(self):
        pytest.importorskip("numpy")
        instance = random_instance(40, seed=23)
        solve_rpaths(instance, fabric="vector", parallel=2)
        counters = counters_mod.registry.snapshot()["counters"]
        from repro.telemetry import scale
        # The run actually exercised the surface being enum-checked.
        assert any(k.startswith(scale.EXPORT_COUNTER)
                   for k in counters)
        assert any(k.startswith(scale.SHM_COUNTER) for k in counters)
        assert any(k.startswith(scale.FANOUT_COUNTER)
                   for k in counters)
        assert telemetry.unknown_scale_labels(counters) == []

    def test_every_recording_helper_is_in_enum(self):
        from repro.telemetry import scale
        for array in scale.KNOWN_EXPORT_ARRAYS:
            for dtype in scale.KNOWN_EXPORT_DTYPES:
                scale.record_export(array, dtype)
        for outcome in scale.KNOWN_PLAN_OUTCOMES:
            scale.record_plan(outcome)
        for event in scale.KNOWN_SHM_EVENTS:
            scale.record_shm(event)
        for site in scale.KNOWN_FANOUT_SITES:
            scale.record_fanout(site, 2)
        counters = counters_mod.registry.snapshot()["counters"]
        assert telemetry.unknown_scale_labels(counters) == []

    def test_unknown_scale_labels_flagged(self):
        from repro.telemetry import scale
        counters = {
            'repro_sharedmem_events_total{event="explode"}': 1.0,
            'repro_parallel_fanout_total{site="somewhere"}': 1.0,
            'repro_topology_export_total{array="keys",'
            'dtype="float64"}': 1.0,
            "repro_sendplan_cache_total": 1.0,  # missing label
        }
        unknown = scale.unknown_scale_labels(counters)
        assert any("explode" in u for u in unknown)
        assert any("somewhere" in u for u in unknown)
        assert any("float64" in u for u in unknown)
        assert any("<missing>" in u for u in unknown)

    def test_gauges_surface_in_summary(self, tmp_path):
        from repro.telemetry import scale
        telemetry.enable_tracing(tmp_path)
        try:
            scale.record_peak_rss(2.0 * (1 << 30))
            telemetry.flush()
        finally:
            telemetry.disable_tracing()
        summary = tooling.load_summary(tmp_path)
        assert summary.gauges[scale.RSS_GAUGE] == 2.0 * (1 << 30)
        rendered = tooling.format_summary(summary)
        assert "repro_peak_rss_bytes" in rendered
        assert "2048.0 MiB" in rendered
        assert "gauges" in summary.as_json()


# -- serve-daemon counter enums ----------------------------------------------


class TestServingEnums:
    """The serve-daemon counters are a closed surface, dispatch-style."""

    def test_every_recording_helper_is_in_enum(self):
        from repro.telemetry import serving
        for event in serving.KNOWN_DAEMON_EVENTS:
            serving.record_daemon_event(event)
        for outcome in serving.KNOWN_ADMISSION_OUTCOMES:
            serving.record_admission(outcome)
        counters = counters_mod.registry.snapshot()["counters"]
        assert telemetry.unknown_serving_labels(counters) == []

    def test_unknown_serving_labels_flagged(self):
        from repro.telemetry import serving
        counters = {
            'repro_serve_daemon_events_total{event="imploded"}': 1.0,
            'repro_serve_admission_total{outcome="maybe"}': 2.0,
            "repro_serve_admission_total": 1.0,  # missing label
            # Foreign counters are not this enum's business.
            'repro_sharedmem_events_total{event="attach"}': 1.0,
        }
        unknown = serving.unknown_serving_labels(counters)
        assert any("imploded" in u for u in unknown)
        assert any("maybe" in u for u in unknown)
        assert any("<missing>" in u for u in unknown)
        assert not any("attach" in u for u in unknown)

    def test_gauges_and_summary_record(self):
        from repro.telemetry import serving
        serving.set_queue_depth(7)
        serving.set_inflight(3, 12)
        serving.set_workers_alive(2)
        serving.observe_request_seconds(0.004)
        snap = counters_mod.registry.snapshot()
        assert snap["gauges"][serving.QUEUE_DEPTH_GAUGE] == 7
        assert snap["gauges"][
            serving.INFLIGHT_GAUGE + '{shard="3"}'] == 12
        assert snap["gauges"][serving.WORKERS_ALIVE_GAUGE] == 2
        summary = snap["summaries"][serving.REQUEST_SECONDS_SUMMARY]
        assert summary["count"] >= 1
