"""Tests for 2-SiSP (Definition 2.3 / Corollary 6.2)."""

import pytest

from repro.baselines import two_sisp_length
from repro.congest.words import INF
from repro.core.two_sisp import solve_two_sisp
from tests.conftest import family_instances


@pytest.mark.parametrize("idx", range(6))
def test_matches_oracle(idx):
    instance = family_instances()[idx]
    report = solve_two_sisp(
        instance, landmarks=list(range(instance.n)))
    assert report.length == two_sisp_length(instance), instance.name


def test_sampled_landmarks(chords):
    report = solve_two_sisp(chords, seed=2, landmark_c=3.0)
    assert report.length == two_sisp_length(chords)


def test_no_second_path_is_inf():
    from repro.graphs.instance import instance_from_edges
    inst = instance_from_edges([(0, 1), (1, 2)], path=[0, 1, 2])
    report = solve_two_sisp(inst, landmarks=[0, 1, 2])
    assert report.length == INF
    assert not report.exists


def test_aggregation_charged_to_ledger(grid):
    report = solve_two_sisp(grid, landmarks=list(range(grid.n)))
    assert "2sisp-aggregate(C6.2)" in report.rpaths.ledger.breakdown()
    # The aggregation is O(D) on top of the RPaths rounds.
    agg = report.rpaths.ledger["2sisp-aggregate(C6.2)"].rounds
    diameter = grid.build_network().undirected_diameter()
    assert agg <= 4 * diameter + 8


def test_exists_flag(double_path):
    report = solve_two_sisp(double_path,
                            landmarks=list(range(double_path.n)))
    assert report.exists
    assert report.length == double_path.hop_count + 2
