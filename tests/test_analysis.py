"""Tests for the analysis helpers (fits, tables, experiment drivers)."""


import pytest

from repro.analysis import (
    approx_quality,
    fit_power_law,
    format_records,
    format_series,
    format_table,
    hst_sweep,
    invariance,
    run_table1_cell,
    scaling_series,
    speedup_stats,
)


class TestPowerLawFit:
    def test_recovers_exact_power(self):
        ns = [10, 20, 40, 80, 160]
        values = [3.0 * n ** (2 / 3) for n in ns]
        fit = fit_power_law(ns, values)
        assert abs(fit.exponent - 2 / 3) < 1e-9
        assert abs(fit.coefficient - 3.0) < 1e-6
        assert fit.r_squared > 0.999999

    def test_predict(self):
        fit = fit_power_law([1, 10, 100], [2, 20, 200])
        assert abs(fit.predict(50) - 100) < 1e-6

    def test_noisy_fit_reasonable(self):
        import random
        rng = random.Random(1)
        ns = [2 ** i for i in range(4, 12)]
        values = [n ** 0.5 * (1 + 0.1 * rng.random()) for n in ns]
        fit = fit_power_law(ns, values)
        assert 0.4 < fit.exponent < 0.6

    def test_too_few_points_rejected(self):
        with pytest.raises(ValueError):
            fit_power_law([1], [1])

    def test_invariance_flat_series(self):
        stats = invariance([10, 100, 1000], [5.0, 5.5, 5.2])
        assert stats.is_flat
        assert stats.spread_ratio < 1.2

    def test_invariance_growing_series(self):
        stats = invariance([10, 100, 1000], [10, 100, 1000])
        assert not stats.is_flat


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], [30, 4]],
                            title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_format_series(self):
        assert format_series("r", [1, 2], [3, 4]) == "r: 1=3, 2=4"

    def test_float_rendering(self):
        assert "inf" in format_table(["x"], [[float("inf")]])

    def test_format_records_from_dicts(self):
        text = format_records(
            [{"a": 1, "b": 2}, {"a": 3}], ["a", "b"], title="R")
        lines = text.splitlines()
        assert lines[0] == "R"
        assert lines[-1].split() == ["3", "-"]  # missing field -> '-'

    def test_format_records_from_objects(self):
        class Row:
            a = 5
        assert "5" in format_records([Row()], ["a", "zz"])

    def test_speedup_stats(self):
        stats = speedup_stats(4.0, 2.0, 2)
        assert stats.speedup == pytest.approx(2.0)
        assert stats.efficiency == pytest.approx(1.0)
        assert "2.00x speedup" in stats.render()


class TestExperimentDrivers:
    def test_table1_cell_all_correct(self):
        from repro.graphs import random_instance
        runs = run_table1_cell(random_instance(40, seed=3))
        assert {r.algorithm for r in runs} == \
            {"theorem1", "mr24b", "trivial"}
        assert all(r.correct for r in runs)

    def test_scaling_series_shapes(self):
        from repro.graphs import random_instance
        ns, rounds, fit = scaling_series(
            lambda size, seed: random_instance(size, seed=seed),
            sizes=[30, 50], seed=1)
        assert len(ns) == len(rounds) == 2
        assert fit.points

    def test_hst_sweep_structure(self):
        sweep = hst_sweep([8, 16], seed=1, include_naive=False)
        assert set(sweep) == {"theorem1", "mr24b"}
        assert all(len(v) == 2 for v in sweep.values())
        assert all(r.correct for v in sweep.values() for r in v)

    def test_approx_quality_bounds(self):
        from repro.graphs import random_instance
        inst = random_instance(25, seed=2, weighted=True)
        rows = approx_quality(inst, [0.5], seed=1,
                              landmarks=list(range(inst.n)))
        eps, worst, rounds = rows[0]
        assert eps == 0.5
        assert 1.0 <= worst <= 1.5 + 1e-9
        assert rounds > 0
