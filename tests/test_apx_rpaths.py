"""End-to-end tests for Theorem 3 (approx.apx_rpaths): the (1+ε) sandwich
|st ⋄ e| ≤ x ≤ (1+ε)|st ⋄ e| against the centralized oracle."""

import pytest

from repro.approx.apx_rpaths import solve_apx_rpaths
from repro.approx.intervals import interval_partition
from repro.baselines import replacement_lengths
from repro.congest.words import INF
from tests.conftest import family_instances


def assert_sandwich(instance, report, epsilon):
    truth = replacement_lengths(instance)
    for i, (got, want) in enumerate(zip(report.lengths, truth)):
        if want >= INF:
            assert got == float("inf"), (instance.name, i)
        else:
            assert want - 1e-9 <= got <= (1 + epsilon) * want + 1e-9, \
                (instance.name, i, got, want)


class TestSandwichWeighted:
    @pytest.mark.parametrize("idx", range(4))
    @pytest.mark.parametrize("epsilon", [0.5, 0.25])
    def test_full_landmarks(self, idx, epsilon):
        instance = family_instances(weighted=True)[idx]
        report = solve_apx_rpaths(
            instance, epsilon=epsilon,
            landmarks=list(range(instance.n)))
        assert_sandwich(instance, report, epsilon)

    @pytest.mark.parametrize("idx", range(4))
    def test_sampled_landmarks(self, idx):
        instance = family_instances(weighted=True)[idx]
        report = solve_apx_rpaths(instance, epsilon=0.5, seed=idx,
                                  landmark_c=3.0)
        assert_sandwich(instance, report, 0.5)


class TestSandwichUnweighted:
    @pytest.mark.parametrize("idx", range(6))
    def test_accepts_unweighted(self, idx):
        instance = family_instances()[idx]
        report = solve_apx_rpaths(
            instance, epsilon=0.5,
            landmarks=list(range(instance.n)))
        assert_sandwich(instance, report, 0.5)


class TestReport:
    def test_scale_count_logarithmic(self):
        instance = family_instances(weighted=True)[1]
        report = solve_apx_rpaths(instance, epsilon=0.5,
                                  landmarks=[0])
        total = sum(w for _, _, w in instance.edges)
        import math
        assert report.scale_count <= math.ceil(math.log2(total)) + 1

    def test_phase_breakdown(self):
        instance = family_instances(weighted=True)[0]
        report = solve_apx_rpaths(instance, epsilon=0.5,
                                  landmarks=list(range(instance.n)))
        breakdown = report.ledger.breakdown()
        assert "short-detour(P7.1)" in breakdown
        assert "long-detour(P7.11)" in breakdown

    def test_tighter_epsilon_never_looser(self):
        instance = family_instances(weighted=True)[2]
        loose = solve_apx_rpaths(instance, epsilon=0.5,
                                 landmarks=list(range(instance.n)))
        tight = solve_apx_rpaths(instance, epsilon=0.1,
                                 landmarks=list(range(instance.n)))
        truth = replacement_lengths(instance)
        for lo, hi, want in zip(tight.lengths, loose.lengths, truth):
            if want < INF:
                assert lo <= (1 + 0.1) * want + 1e-9


class TestIntervalPartition:
    def test_partition_covers(self):
        parts = interval_partition(10, 4)
        assert parts == [(0, 3), (4, 7), (8, 10)]

    def test_single_interval(self):
        assert interval_partition(3, 10) == [(0, 3)]

    def test_contiguity(self):
        parts = interval_partition(23, 5)
        for (l1, r1), (l2, r2) in zip(parts, parts[1:]):
            assert l2 == r1 + 1
        assert parts[0][0] == 0 and parts[-1][1] == 23

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            interval_partition(5, 0)


class TestIntervalWidthAblation:
    @pytest.mark.parametrize("width", [2, 5, 100])
    def test_any_width_preserves_sandwich(self, width, monkeypatch):
        # Force the interval width by monkeypatching the partition the
        # driver computes from n — the case analysis must hold for any
        # contiguous partition.
        import repro.approx.short_detour_approx as sda
        original = sda.interval_partition
        monkeypatch.setattr(
            sda, "interval_partition",
            lambda hop, _w: original(hop, width))
        instance = family_instances(weighted=True)[0]
        report = solve_apx_rpaths(
            instance, epsilon=0.5,
            landmarks=list(range(instance.n)))
        assert_sandwich(instance, report, 0.5)
