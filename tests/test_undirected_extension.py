"""Tests for the undirected RPaths extension (extensions.undirected)."""

import pytest

from repro.congest.words import INF
from repro.extensions import (
    branch_labels,
    crossing_edge_replacement_lengths,
    is_symmetric,
    random_undirected_instance,
    solve_rpaths_undirected,
    symmetrize,
    undirected_replacement_lengths,
)
from repro.graphs.instance import RPathsInstance


def ring_instance(n=8):
    """A cycle: the replacement for any path edge walks the other way."""
    edges = symmetrize([(i, (i + 1) % n) for i in range(n)])
    path = list(range(n // 2 + 1))
    inst = RPathsInstance(n=n, edges=edges, path=path,
                          name=f"ring({n})")
    inst.validate()
    return inst


class TestSymmetrize:
    def test_both_orientations(self):
        sym = symmetrize([(0, 1)])
        assert sym == [(0, 1, 1), (1, 0, 1)]

    def test_weights_propagate(self):
        sym = symmetrize([(0, 1)], weights={(0, 1): 5})
        assert sym == [(0, 1, 5), (1, 0, 5)]

    def test_is_symmetric_detects(self):
        inst = ring_instance()
        assert is_symmetric(inst)
        asym = RPathsInstance(n=3, edges=[(0, 1, 1), (1, 2, 1)],
                              path=[0, 1, 2])
        assert not is_symmetric(asym)

    def test_asymmetric_rejected(self):
        asym = RPathsInstance(n=3, edges=[(0, 1, 1), (1, 2, 1)],
                              path=[0, 1, 2])
        with pytest.raises(Exception):
            undirected_replacement_lengths(asym)


class TestOracle:
    def test_ring_truth(self):
        inst = ring_instance(8)
        truth = undirected_replacement_lengths(inst)
        # Any failure on the 4-edge path is replaced by going the long
        # way round: 8 − 4 + 2·(distance wasted)... on a cycle, the
        # replacement is always the full other arc: n − 1 edges rerouted
        # appropriately; check against first principles instead:
        for i, t in enumerate(truth):
            assert t == 8 - 1 - 3  # 4 forward hops replaced by 4 back
        # (concretely: s..t the other way around the ring: 8−4 = 4)

    def test_deletion_removes_both_orientations(self):
        # A graph where the reverse orientation of the failed edge would
        # create a fake replacement if not deleted.
        edges = symmetrize([(0, 1), (1, 2), (0, 2)])
        inst = RPathsInstance(n=3, edges=edges, path=[0, 1],
                              name="triangle")
        inst.validate()
        truth = undirected_replacement_lengths(inst)
        assert truth == [2]  # 0-2-1, not using (1,0)


class TestCrossingEdgeFormula:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_oracle_unweighted(self, seed):
        inst = random_undirected_instance(45, seed=seed)
        assert crossing_edge_replacement_lengths(inst) == \
            undirected_replacement_lengths(inst)

    @pytest.mark.parametrize("seed", range(5))
    def test_matches_oracle_weighted(self, seed):
        inst = random_undirected_instance(30, seed=seed, weighted=True)
        assert crossing_edge_replacement_lengths(inst) == \
            undirected_replacement_lengths(inst)

    def test_ring(self):
        inst = ring_instance(10)
        assert crossing_edge_replacement_lengths(inst) == \
            undirected_replacement_lengths(inst)

    def test_no_replacement_is_inf(self):
        # A tree has no replacement paths at all.
        edges = symmetrize([(0, 1), (1, 2), (1, 3)])
        inst = RPathsInstance(n=4, edges=edges, path=[0, 1, 2])
        inst.validate()
        assert crossing_edge_replacement_lengths(inst) == [INF, INF]

    def test_branch_labels_on_path_vertices(self):
        inst = ring_instance(8)
        from repro.extensions.undirected import _sssp_with_parents
        _, parent = _sssp_with_parents(inst, inst.s)
        from repro.extensions.undirected import (
            _path_respecting_parents)
        parent = _path_respecting_parents(inst, None, parent)
        labels = branch_labels(inst, parent)
        for i, v in enumerate(inst.path):
            assert labels[v] == i


class TestDistributedUndirected:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_oracle_unweighted(self, seed):
        inst = random_undirected_instance(40, seed=seed)
        report = solve_rpaths_undirected(inst)
        assert report.lengths == undirected_replacement_lengths(inst)

    @pytest.mark.parametrize("seed", range(3))
    def test_matches_oracle_weighted(self, seed):
        inst = random_undirected_instance(26, seed=seed, weighted=True)
        report = solve_rpaths_undirected(inst)
        assert report.lengths == undirected_replacement_lengths(inst)

    def test_round_profile_additive_in_hst(self):
        # O(T_SSSP + h_st + D): on a long undirected path-with-ladder,
        # rounds must stay within a small multiple of h_st + D.
        rungs = 40
        base = symmetrize(
            [(i, i + 1) for i in range(rungs)]
            + [(i + rungs + 1, i + rungs + 2) for i in range(rungs - 2)]
            + [(i, i + rungs + 1) for i in range(rungs - 1)])
        inst = RPathsInstance(
            n=2 * rungs, edges=base, path=list(range(rungs + 1)),
            name="ladder")
        inst.validate()
        report = solve_rpaths_undirected(inst)
        assert report.lengths == undirected_replacement_lengths(inst)
        diameter = inst.build_network().undirected_diameter()
        assert report.rounds <= 8 * (inst.hop_count + diameter) + 30

    def test_phases_recorded(self):
        inst = random_undirected_instance(30, seed=1)
        report = solve_rpaths_undirected(inst)
        breakdown = report.ledger.breakdown()
        assert "interval-aggregation" in breakdown
        assert "result-broadcast" in breakdown


class TestStaggeredConvergecast:
    def test_aggregates_match_reference(self):
        from repro.congest.broadcast import staggered_convergecast_min
        from repro.congest.network import CongestNetwork
        from repro.congest.spanning_tree import build_spanning_tree
        import random as rnd
        rng = rnd.Random(3)
        n, waves = 20, 12
        net = CongestNetwork(n, [(i, i + 1) for i in range(n - 1)])
        tree = build_spanning_tree(net)
        table = [[rng.randrange(1000) for _ in range(waves)]
                 for _ in range(n)]
        got = staggered_convergecast_min(
            net, tree, lambda v, w: table[v][w], waves, identity=10**9)
        want = [min(table[v][w] for v in range(n))
                for w in range(waves)]
        assert got == want

    def test_pipelining_round_bound(self):
        from repro.congest.broadcast import staggered_convergecast_min
        from repro.congest.network import CongestNetwork
        from repro.congest.spanning_tree import build_spanning_tree
        n, waves = 25, 30
        net = CongestNetwork(n, [(i, i + 1) for i in range(n - 1)])
        tree = build_spanning_tree(net)
        before = net.rounds
        staggered_convergecast_min(
            net, tree, lambda v, w: v + w, waves, identity=10**9)
        used = net.rounds - before
        assert used <= waves + n + 2       # count + height
        assert used < waves * n            # i.e. genuinely pipelined
