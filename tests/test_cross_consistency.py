"""Cross-algorithm consistency: four independent implementations of the
same problem must agree everywhere, and auxiliary primitives must match
their specifications."""

import pytest

from repro.baselines import (
    replacement_lengths,
    replacement_witnesses,
    solve_rpaths_mr24,
    solve_rpaths_naive,
    solve_rpaths_roditty_zwick,
)
from repro.congest.bfs import eccentricity_via_bfs
from repro.congest.network import CongestNetwork
from repro.congest.words import INF
from repro.core.rpaths import solve_rpaths
from tests.conftest import family_instances


class TestFourWayAgreement:
    """Theorem 1, MR24b, trivial, and RZ all solve the same problem."""

    @pytest.mark.parametrize("idx", range(6))
    def test_all_four_agree(self, idx):
        instance = family_instances()[idx]
        full = list(range(instance.n))
        ours = solve_rpaths(instance, landmarks=full).lengths
        mr = solve_rpaths_mr24(instance, landmarks=full).lengths
        nv = solve_rpaths_naive(instance).lengths
        rz = solve_rpaths_roditty_zwick(instance, landmarks=full)
        assert ours == mr == nv == rz, instance.name

    @pytest.mark.parametrize("idx", range(6))
    def test_witness_lengths_agree_with_distributed(self, idx):
        instance = family_instances()[idx]
        ours = solve_rpaths(instance,
                            landmarks=list(range(instance.n))).lengths
        witnesses = replacement_witnesses(instance)
        assert ours == [w.length for w in witnesses]


class TestOutputInvariants:
    """Structural facts every RPaths output must satisfy."""

    @pytest.mark.parametrize("idx", range(6))
    def test_replacement_never_shorter_than_p(self, idx):
        instance = family_instances()[idx]
        base = instance.path_length
        for x in replacement_lengths(instance):
            assert x >= base or x >= INF

    @pytest.mark.parametrize("idx", range(6))
    def test_unweighted_parity_consistency(self, idx):
        # In an unweighted graph, a replacement differs from |P| by the
        # detour overhead d − (l − j) ≥ 0; no replacement can be equal
        # to |P| unless a same-length disjoint route exists — either
        # way it is an integer ≥ |P|.
        instance = family_instances()[idx]
        for x in replacement_lengths(instance):
            if x < INF:
                assert isinstance(x, int)
                assert x >= instance.hop_count

    def test_monotone_under_edge_addition(self):
        # Adding a fresh detour can only improve (or keep) every entry.
        from repro.graphs.instance import instance_from_edges
        base_edges = [(0, 1), (1, 2), (2, 3)]
        inst_a = instance_from_edges(base_edges, path=[0, 1, 2, 3])
        before = replacement_lengths(inst_a)
        extra = base_edges + [(0, 4), (4, 5), (5, 3)]
        inst_b = instance_from_edges(extra, path=[0, 1, 2, 3])
        after = replacement_lengths(inst_b)
        assert all(b <= a for a, b in zip(before, after))
        assert after == [3, 3, 3]


class TestAuxiliaryPrimitives:
    def test_eccentricity_via_bfs_matches_layers(self):
        net = CongestNetwork(6, [(i, i + 1) for i in range(5)])
        got = eccentricity_via_bfs(net, 2)
        want = max(net.undirected_bfs_layers(2))
        assert got == want == 3

    def test_eccentricity_charges_rounds(self):
        net = CongestNetwork(6, [(i, i + 1) for i in range(5)])
        eccentricity_via_bfs(net, 0)
        assert net.rounds == 5

    def test_two_sisp_equals_min_across_algorithms(self):
        from repro.baselines import two_sisp_length
        from repro.core.two_sisp import solve_two_sisp
        for idx in (0, 2, 4):
            instance = family_instances()[idx]
            report = solve_two_sisp(
                instance, landmarks=list(range(instance.n)))
            assert report.length == two_sisp_length(instance)
            assert report.length == min(report.rpaths.lengths)


class TestApproxUpperBoundsExact:
    """Theorem 3's output on an unweighted instance upper-bounds and
    (1+ε)-approximates the Theorem 1 output — the two solvers are
    mutually consistent."""

    @pytest.mark.parametrize("idx", [0, 2, 3])
    def test_theorem3_brackets_theorem1(self, idx):
        from repro.approx.apx_rpaths import solve_apx_rpaths
        instance = family_instances()[idx]
        full = list(range(instance.n))
        exact = solve_rpaths(instance, landmarks=full).lengths
        approx = solve_apx_rpaths(instance, epsilon=0.5,
                                  landmarks=full).lengths
        for e, a in zip(exact, approx):
            if e >= INF:
                assert a == float("inf")
            else:
                assert e - 1e-9 <= a <= 1.5 * e + 1e-9
