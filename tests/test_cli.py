"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_solve_defaults(self):
        args = build_parser().parse_args(["solve"])
        assert args.family == "random"
        assert args.n == 100
        assert args.epsilon is None

    def test_unknown_family_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["solve", "--family", "torus"])


class TestSolveCommand:
    def test_unweighted_with_check(self, capsys):
        code = main(["solve", "--family", "grid", "--n", "24",
                     "--check"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Theorem 1" in out
        assert "oracle check: OK" in out

    def test_breakdown_prints_ledger(self, capsys):
        code = main(["solve", "--family", "random", "--n", "40",
                     "--seed", "2", "--breakdown"])
        out = capsys.readouterr().out
        assert code == 0
        assert "short-detour(P4.1)" in out

    def test_weighted_requires_epsilon(self):
        with pytest.raises(SystemExit):
            main(["solve", "--family", "random", "--n", "30",
                  "--weighted"])

    def test_weighted_with_epsilon(self, capsys):
        code = main(["solve", "--family", "random", "--n", "26",
                     "--weighted", "--epsilon", "0.5", "--check"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Theorem 3" in out
        assert "oracle check: OK" in out


class TestSuiteFabricFlag:
    def test_rejects_unknown_fabric(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["suite", "run", "--fabric", "quantum"])

    def test_run_with_vector_fabric(self, tmp_path, capsys):
        code = main(["suite", "run", "--smoke", "--jobs", "1",
                     "--scenario", "exact-grid", "--fabric", "vector",
                     "--cache-dir", str(tmp_path), "--no-record"])
        out = capsys.readouterr().out
        assert code == 0
        assert "exact-grid" in out

    def test_fabric_results_cache_separately(self, tmp_path, capsys):
        base = ["suite", "run", "--smoke", "--jobs", "1", "--scenario",
                "exact-grid", "--cache-dir", str(tmp_path),
                "--no-record"]
        assert main(base + ["--fabric", "fast"]) == 0
        capsys.readouterr()
        # Same fabric again: pure cache hits.  Different fabric: a miss
        # (the injected fabric key is part of the cell identity).
        assert main(base + ["--fabric", "fast"]) == 0
        assert "misses: 0" in capsys.readouterr().out
        assert main(base + ["--fabric", "vector"]) == 0
        assert "misses: 1" in capsys.readouterr().out


class TestOtherCommands:
    def test_compare(self, capsys):
        code = main(["compare", "--family", "grid", "--n", "20"])
        out = capsys.readouterr().out
        assert code == 0
        for name in ("theorem1", "mr24b", "trivial"):
            assert name in out

    def test_lower_bound(self, capsys):
        code = main(["lower-bound", "--k", "2", "--seed", "5"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Lemma 6.8 dichotomy holds: True" in out

    def test_info(self, capsys):
        assert main(["info"]) == 0
        assert "PODC 2025" in capsys.readouterr().out


class TestQueryTimeout:
    def test_deadline_expiry_is_structured(self, capsys):
        import json
        import signal

        import pytest
        if not hasattr(signal, "SIGALRM"):
            pytest.skip("needs SIGALRM")
        code = main(["query", "--n", "400", "--timeout", "0.01",
                     "--json"])
        data = json.loads(capsys.readouterr().out)
        assert code == 2
        assert data["outcome"] == "timeout"
        assert data["timeout_seconds"] == 0.01
        assert "length" not in data

    def test_generous_deadline_answers_normally(self, capsys):
        import json
        code = main(["query", "--family", "grid", "--n", "20",
                     "--timeout", "60", "--check", "--json"])
        data = json.loads(capsys.readouterr().out)
        assert code == 0
        assert data["outcome"] == "ok"
        assert data["check"] is True


class TestServeDaemonCommands:
    def test_serve_bench_reports_percentiles(self, capsys):
        import json
        code = main(["serve", "bench", "--n", "14", "--instances", "2",
                     "--queries", "24", "--workload", "uniform",
                     "--solver", "centralized", "--json"])
        data = json.loads(capsys.readouterr().out)
        assert code == 0
        [record] = data["workloads"]
        latency = record["latency_ms"]
        assert latency["p50"] <= latency["p95"] <= latency["p99"]
        assert record["latency_sample"] == 24

    def test_serve_daemon_selfcheck(self, capsys):
        code = main(["serve", "daemon", "--n", "16", "--instances",
                     "2", "--workers", "1", "--solver", "centralized",
                     "--selfcheck", "6"])
        out = capsys.readouterr().out
        assert code == 0
        assert "self-check: 12/12 ok" in out
        assert "daemon stopped (drained)" in out

    def test_serve_load_gates_pass(self, capsys, tmp_path):
        import json
        stats_path = tmp_path / "stats.json"
        code = main(["serve", "load", "--n", "16", "--instances", "2",
                     "--workers", "1", "--queries", "40",
                     "--workload", "mixed", "--solver", "centralized",
                     "--check", "--check-telemetry",
                     "--stats-json", str(stats_path), "--json"])
        out = capsys.readouterr().out
        data = json.loads(out[out.index("{"):])
        assert code == 0
        [row] = data["workloads"]
        assert row["mismatches"] == 0
        assert row["ok"] == row["sent"]
        assert row["latency_ms"]["p95"] >= row["latency_ms"]["p50"]
        assert data["failures"] == []
        stats = json.loads(stats_path.read_text())
        assert stats["totals"]["queries"] >= 40
        assert stats["load"]

    def test_serve_load_p95_floor_breach_fails(self, capsys):
        code = main(["serve", "load", "--n", "16", "--instances", "1",
                     "--workers", "1", "--queries", "10",
                     "--workload", "uniform", "--solver",
                     "centralized", "--max-p95-ms", "0.000001"])
        captured = capsys.readouterr()
        assert code == 1
        assert "p95" in captured.err
