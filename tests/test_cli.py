"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_solve_defaults(self):
        args = build_parser().parse_args(["solve"])
        assert args.family == "random"
        assert args.n == 100
        assert args.epsilon is None

    def test_unknown_family_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["solve", "--family", "torus"])


class TestSolveCommand:
    def test_unweighted_with_check(self, capsys):
        code = main(["solve", "--family", "grid", "--n", "24",
                     "--check"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Theorem 1" in out
        assert "oracle check: OK" in out

    def test_breakdown_prints_ledger(self, capsys):
        code = main(["solve", "--family", "random", "--n", "40",
                     "--seed", "2", "--breakdown"])
        out = capsys.readouterr().out
        assert code == 0
        assert "short-detour(P4.1)" in out

    def test_weighted_requires_epsilon(self):
        with pytest.raises(SystemExit):
            main(["solve", "--family", "random", "--n", "30",
                  "--weighted"])

    def test_weighted_with_epsilon(self, capsys):
        code = main(["solve", "--family", "random", "--n", "26",
                     "--weighted", "--epsilon", "0.5", "--check"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Theorem 3" in out
        assert "oracle check: OK" in out


class TestSuiteFabricFlag:
    def test_rejects_unknown_fabric(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["suite", "run", "--fabric", "quantum"])

    def test_run_with_vector_fabric(self, tmp_path, capsys):
        code = main(["suite", "run", "--smoke", "--jobs", "1",
                     "--scenario", "exact-grid", "--fabric", "vector",
                     "--cache-dir", str(tmp_path), "--no-record"])
        out = capsys.readouterr().out
        assert code == 0
        assert "exact-grid" in out

    def test_fabric_results_cache_separately(self, tmp_path, capsys):
        base = ["suite", "run", "--smoke", "--jobs", "1", "--scenario",
                "exact-grid", "--cache-dir", str(tmp_path),
                "--no-record"]
        assert main(base + ["--fabric", "fast"]) == 0
        capsys.readouterr()
        # Same fabric again: pure cache hits.  Different fabric: a miss
        # (the injected fabric key is part of the cell identity).
        assert main(base + ["--fabric", "fast"]) == 0
        assert "misses: 0" in capsys.readouterr().out
        assert main(base + ["--fabric", "vector"]) == 0
        assert "misses: 1" in capsys.readouterr().out


class TestOtherCommands:
    def test_compare(self, capsys):
        code = main(["compare", "--family", "grid", "--n", "20"])
        out = capsys.readouterr().out
        assert code == 0
        for name in ("theorem1", "mr24b", "trivial"):
            assert name in out

    def test_lower_bound(self, capsys):
        code = main(["lower-bound", "--k", "2", "--seed", "5"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Lemma 6.8 dichotomy holds: True" in out

    def test_info(self, capsys):
        assert main(["info"]) == 0
        assert "PODC 2025" in capsys.readouterr().out
