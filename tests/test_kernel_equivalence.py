"""Vector kernel vs. message engine equivalence (the PR's invariant).

``fabric="vector"`` routes the pruned hop-BFS (Lemma 4.2), the k-source
hop BFS (Lemma 5.5), and the pipelined broadcast (Lemma 2.4) through
the NumPy array kernels of :mod:`repro.congest.kernels`.  The message
engines stay the semantic oracles: for every covered call the kernel
must produce **bit-identical result tables and ledger accounting**
(rounds, messages, per-phase word totals, max link words, violations).

Layers of evidence:

* Hypothesis-style randomized fuzz: random graphs x random avoid-edge
  sets x random delay functions x random mode flags, asserting table
  and full-ledger equality per trial;
* end-to-end runs (landmark pipeline, full Theorem 1 solver) on both
  fabrics;
* fallback coverage: kernel-declining calls (non-functional aux words,
  link-total recording, NumPy "absent") silently take the message
  path with identical results.
"""

from __future__ import annotations

import random

import pytest

from repro.congest import (
    CongestNetwork,
    broadcast_messages,
    build_spanning_tree,
    multi_source_hop_bfs,
    vector_enabled,
)
from repro.congest import kernels
from repro.congest.metrics import RoundLedger
from repro.core.hop_bfs import pruned_max_hop_bfs
from repro.graphs import (
    expander_instance,
    power_law_instance,
    random_instance,
)

#: (delay-fn or None) choices; weights in the fuzz graphs are 1..5.
DELAYS = (None, lambda w: w, lambda w: 2 * w - 1, lambda w: min(w, 3))


def ledger_snapshot(ledger: RoundLedger):
    """Everything the ledger records, phase by phase."""
    return [stats.as_dict() for stats in ledger.phases()]


def fuzz_instance(rng: random.Random, trial: int):
    kind = trial % 3
    if kind == 0:
        return random_instance(
            rng.randint(6, 28), avg_degree=rng.uniform(2.0, 5.0),
            seed=trial, weighted=bool(trial % 2), max_weight=5)
    if kind == 1:
        return expander_instance(rng.randint(12, 24), degree=3,
                                 seed=trial)
    return power_law_instance(rng.randint(10, 24), attach=2, seed=trial)


def fuzz_avoid(rng: random.Random, instance):
    choice = rng.randrange(4)
    if choice == 0:
        return frozenset()
    if choice == 1:
        return instance.path_edge_set()
    edges = [(u, v) for u, v, _ in instance.edges]
    picked = rng.sample(edges, rng.randint(0, len(edges) // 2))
    if choice == 3:
        # Out-of-range pairs name no edge; both engines must ignore
        # them (regression: their dense keys must not collide with
        # real edges in the kernel's send plan).
        n = instance.n
        picked.append((rng.randrange(n), n + rng.randrange(2 * n)))
        picked.append((-1, rng.randrange(n)))
    return frozenset(picked)


class TestPrunedHopBfsFuzz:
    def test_randomized_equivalence(self):
        rng = random.Random(20260728)
        for trial in range(30):
            instance = fuzz_instance(rng, trial)
            avoid = fuzz_avoid(rng, instance)
            delay = rng.choice(DELAYS) if instance.weighted else (
                rng.choice((None, lambda w: w + 1)))
            hop = rng.randint(1, 14)
            sense = rng.choice(("backward", "forward"))
            select = rng.choice(("max", "min"))
            full = rng.random() < 0.5
            record = (None if rng.random() < 0.5
                      else rng.sample(range(instance.n),
                                      rng.randint(1, instance.n)))
            # Aux must be a function of the index (the documented
            # contract the solvers obey).
            seeds = {v: (i, 7 * i + 3)
                     for i, v in enumerate(instance.path)}
            out = {}
            for fabric in ("fast", "vector"):
                net = instance.build_network(fabric=fabric)
                tables = pruned_max_hop_bfs(
                    net, seeds, hop, avoid_edges=avoid, delay=delay,
                    record_for=record, run_full_budget=full,
                    sense=sense, select=select)
                out[fabric] = (tables, ledger_snapshot(net.ledger))
            assert out["vector"] == out["fast"], trial

    def test_non_functional_aux_falls_back_identically(self):
        # Two seeds share an index with different aux words: the kernel
        # must decline and the message path must serve the call.
        instance = random_instance(14, seed=3)
        seeds = {instance.path[0]: (0, 5), instance.path[1]: (0, 9)}
        assert not kernels.hop_bfs_vector_applicable(
            instance.build_network(fabric="vector"), seeds)
        out = {}
        for fabric in ("fast", "vector"):
            net = instance.build_network(fabric=fabric)
            tables = pruned_max_hop_bfs(net, seeds, 5)
            out[fabric] = (tables, ledger_snapshot(net.ledger))
        assert out["vector"] == out["fast"]

    def test_early_exit_records_started_idle_rounds(self):
        # The run_full_budget=False exit must charge every round that
        # actually executed — including a trailing idle round that
        # discovered quiescence — and nothing after it, identically on
        # both engines.
        # A directed chain: exact-hop walks die out at hop 3, then one
        # started idle round discovers quiescence — 4 charged rounds,
        # not 40 and not 3, on both engines.
        rounds = {}
        for fabric in ("fast", "vector"):
            net = CongestNetwork(4, [(0, 1), (1, 2), (2, 3)],
                                 fabric=fabric)
            pruned_max_hop_bfs(net, {3: (0, 0)}, hop_limit=40,
                               run_full_budget=False)
            rounds[fabric] = net.ledger.rounds
        assert rounds["vector"] == rounds["fast"] == 4


class TestMultisourceFuzz:
    def test_randomized_equivalence(self):
        rng = random.Random(20260729)
        for trial in range(30):
            instance = fuzz_instance(rng, trial)
            avoid = fuzz_avoid(rng, instance)
            delay = (rng.choice(DELAYS) if instance.weighted
                     else rng.choice((None, lambda w: w + 2)))
            hop = rng.randint(1, 14)
            k = rng.randint(1, min(6, instance.n))
            sources = rng.sample(range(instance.n), k)
            direction = rng.choice(("out", "in"))
            max_rounds = rng.choice((None, None, 3, 10))
            out = {}
            for fabric in ("fast", "vector"):
                net = instance.build_network(fabric=fabric)
                dist = multi_source_hop_bfs(
                    net, sources, hop, direction=direction,
                    avoid_edges=avoid, delay=delay,
                    max_rounds=max_rounds)
                out[fabric] = (dist, ledger_snapshot(net.ledger))
            assert out["vector"] == out["fast"], trial

    def test_empty_sources(self):
        instance = random_instance(8, seed=0)
        for fabric in ("fast", "vector"):
            net = instance.build_network(fabric=fabric)
            assert multi_source_hop_bfs(net, [], 4) == []
            assert net.ledger.rounds == 0


class TestBroadcastFuzz:
    def test_randomized_equivalence(self):
        rng = random.Random(20260730)
        for trial in range(10):
            instance = fuzz_instance(rng, trial)
            messages = {
                v: [("m", v, i, "x" * rng.randint(1, 12))
                    for i in range(rng.randint(0, 3))]
                for v in rng.sample(range(instance.n),
                                    rng.randint(1, instance.n))
            }
            out = {}
            for fabric in ("fast", "vector"):
                net = instance.build_network(fabric=fabric)
                tree = build_spanning_tree(net)
                received = broadcast_messages(net, tree, messages)
                out[fabric] = (received, ledger_snapshot(net.ledger))
            assert out["vector"] == out["fast"], trial


class TestEndToEnd:
    def test_landmark_pipeline_identical(self):
        from repro.congest.spanning_tree import build_spanning_tree
        from repro.core.landmark_distances import (
            compute_landmark_distances,
        )

        rng = random.Random(5)
        for trial in range(4):
            instance = random_instance(20, avg_degree=3.0, seed=trial)
            landmarks = sorted(rng.sample(range(instance.n), 4))
            out = {}
            for fabric in ("fast", "vector"):
                net = instance.build_network(fabric=fabric)
                tree = build_spanning_tree(net)
                dists = compute_landmark_distances(
                    net, tree, landmarks, hop_limit=6,
                    avoid_edges=instance.path_edge_set())
                out[fabric] = (dists.closure, dists.from_landmark,
                               dists.to_landmark,
                               ledger_snapshot(net.ledger))
            assert out["vector"] == out["fast"], trial

    def test_full_solver_identical(self):
        from repro.core.rpaths import solve_rpaths
        from repro.graphs import path_with_chords_instance

        summaries = {}
        for fabric in ("fast", "vector"):
            instance = path_with_chords_instance(20, seed=4,
                                                 overlay_hub=True)
            report = solve_rpaths(instance, seed=7, fabric=fabric)
            summaries[fabric] = (
                list(report.lengths), report.rounds,
                ledger_snapshot(report.ledger))
        assert summaries["vector"] == summaries["fast"]


class TestKernelGating:
    def test_vector_enabled_only_for_vector_fabric(self):
        instance = random_instance(10, seed=2)
        assert vector_enabled(instance.build_network(fabric="vector"))
        for fabric in ("fast", "strict", "reference"):
            assert not vector_enabled(
                instance.build_network(fabric=fabric))

    def test_link_total_recording_disables_kernels(self):
        instance = random_instance(10, seed=2)
        net = instance.build_network(fabric="vector")
        net.record_link_totals = True
        assert not vector_enabled(net)
        # The covered primitives must still run (message path) and
        # populate the per-link totals the cut analysis reads.
        multi_source_hop_bfs(net, [instance.s], 3)
        assert net.link_totals

    def test_numpy_absence_degrades_to_message_path(self, monkeypatch):
        monkeypatch.setattr(kernels, "numpy_or_none", lambda: None)
        instance = random_instance(12, seed=6)
        net = instance.build_network(fabric="vector")
        assert not vector_enabled(net)
        got = multi_source_hop_bfs(net, [instance.s], 4)
        ref_net = instance.build_network(fabric="fast")
        want = multi_source_hop_bfs(ref_net, [instance.s], 4)
        assert got == want
        assert (ledger_snapshot(net.ledger)
                == ledger_snapshot(ref_net.ledger))

    def test_vector_fabric_exchange_matches_fast(self):
        # Non-kernelized primitives on the vector fabric go through the
        # batched engine; a direct exchange must behave identically.
        inboxes = {}
        for fabric in ("fast", "vector"):
            net = CongestNetwork(4, [(0, 1), (2, 1), (3, 1)],
                                 fabric=fabric)
            inboxes[fabric] = net.exchange({
                3: [(1, ("c",))],
                0: [(1, ("a",)), (1, ("b",))],
                2: [(1, ("d",))],
            })
        assert inboxes["vector"] == inboxes["fast"]

    def test_strict_overload_raises_identically(self):
        from repro.congest import BandwidthExceededError

        details = {}
        for fabric in ("fast", "vector"):
            instance = random_instance(10, seed=8)
            net = instance.build_network(bandwidth_words=2,
                                         fabric=fabric)
            net.strict = True
            with pytest.raises(BandwidthExceededError) as err:
                multi_source_hop_bfs(net, [instance.s], 4)
            details[fabric] = (err.value.sender, err.value.receiver,
                               err.value.words,
                               ledger_snapshot(net.ledger))
        assert details["vector"] == details["fast"]
