"""Vector kernel vs. message engine equivalence (the PR's invariant).

``fabric="vector"`` routes the pruned hop-BFS (Lemma 4.2), the k-source
hop BFS (Lemma 5.5), and the pipelined broadcast (Lemma 2.4) through
the NumPy array kernels of :mod:`repro.congest.kernels`.  The message
engines stay the semantic oracles: for every covered call the kernel
must produce **bit-identical result tables and ledger accounting**
(rounds, messages, per-phase word totals, max link words, violations).

Layers of evidence:

* Hypothesis-style randomized fuzz: random graphs x random avoid-edge
  sets x random delay functions x random mode flags, asserting table
  and full-ledger equality per trial;
* end-to-end runs (landmark pipeline, full Theorem 1 solver) on both
  fabrics;
* registry-parametrized fallback coverage
  (:class:`TestRegistryForcedFallbacks`): every primitive x every
  constraint declared in :mod:`repro.congest.dispatch` gets an
  automatic force-fallback case — a call violating exactly that
  constraint must take the message path with bit-identical results
  and ledgers, and the dispatch counter must charge that constraint's
  reason.  Registering a new constraint without a case here fails the
  coverage test.
"""

from __future__ import annotations

import random

import pytest

from repro.congest import (
    CongestNetwork,
    SweepTask,
    broadcast_messages,
    build_spanning_tree,
    multi_source_hop_bfs,
    run_path_sweeps,
    vector_enabled,
)
from repro.congest import kernels
from repro.congest.dispatch import dispatch as run_primitive
from repro.congest.dispatch import registry as primitive_registry
from repro.congest.metrics import RoundLedger
from repro.core.hop_bfs import pruned_max_hop_bfs
from repro.graphs import (
    expander_instance,
    power_law_instance,
    random_instance,
)
from repro.telemetry import counters as counters_mod
from repro.telemetry import tooling

#: (delay-fn or None) choices; weights in the fuzz graphs are 1..5.
DELAYS = (None, lambda w: w, lambda w: 2 * w - 1, lambda w: min(w, 3))


def ledger_snapshot(ledger: RoundLedger):
    """Everything the ledger records, phase by phase."""
    return [stats.as_dict() for stats in ledger.phases()]


def fuzz_instance(rng: random.Random, trial: int):
    kind = trial % 3
    if kind == 0:
        return random_instance(
            rng.randint(6, 28), avg_degree=rng.uniform(2.0, 5.0),
            seed=trial, weighted=bool(trial % 2), max_weight=5)
    if kind == 1:
        return expander_instance(rng.randint(12, 24), degree=3,
                                 seed=trial)
    return power_law_instance(rng.randint(10, 24), attach=2, seed=trial)


def fuzz_avoid(rng: random.Random, instance):
    choice = rng.randrange(4)
    if choice == 0:
        return frozenset()
    if choice == 1:
        return instance.path_edge_set()
    edges = [(u, v) for u, v, _ in instance.edges]
    picked = rng.sample(edges, rng.randint(0, len(edges) // 2))
    if choice == 3:
        # Out-of-range pairs name no edge; both engines must ignore
        # them (regression: their dense keys must not collide with
        # real edges in the kernel's send plan).
        n = instance.n
        picked.append((rng.randrange(n), n + rng.randrange(2 * n)))
        picked.append((-1, rng.randrange(n)))
    return frozenset(picked)


class TestPrunedHopBfsFuzz:
    def test_randomized_equivalence(self):
        rng = random.Random(20260728)
        for trial in range(30):
            instance = fuzz_instance(rng, trial)
            avoid = fuzz_avoid(rng, instance)
            delay = rng.choice(DELAYS) if instance.weighted else (
                rng.choice((None, lambda w: w + 1)))
            hop = rng.randint(1, 14)
            sense = rng.choice(("backward", "forward"))
            select = rng.choice(("max", "min"))
            full = rng.random() < 0.5
            record = (None if rng.random() < 0.5
                      else rng.sample(range(instance.n),
                                      rng.randint(1, instance.n)))
            # Aux must be a function of the index (the documented
            # contract the solvers obey).
            seeds = {v: (i, 7 * i + 3)
                     for i, v in enumerate(instance.path)}
            out = {}
            for fabric in ("fast", "vector"):
                net = instance.build_network(fabric=fabric)
                tables = pruned_max_hop_bfs(
                    net, seeds, hop, avoid_edges=avoid, delay=delay,
                    record_for=record, run_full_budget=full,
                    sense=sense, select=select)
                out[fabric] = (tables, ledger_snapshot(net.ledger))
            assert out["vector"] == out["fast"], trial

    def test_early_exit_records_started_idle_rounds(self):
        # The run_full_budget=False exit must charge every round that
        # actually executed — including a trailing idle round that
        # discovered quiescence — and nothing after it, identically on
        # both engines.
        # A directed chain: exact-hop walks die out at hop 3, then one
        # started idle round discovers quiescence — 4 charged rounds,
        # not 40 and not 3, on both engines.
        rounds = {}
        for fabric in ("fast", "vector"):
            net = CongestNetwork(4, [(0, 1), (1, 2), (2, 3)],
                                 fabric=fabric)
            pruned_max_hop_bfs(net, {3: (0, 0)}, hop_limit=40,
                               run_full_budget=False)
            rounds[fabric] = net.ledger.rounds
        assert rounds["vector"] == rounds["fast"] == 4


class TestMultisourceFuzz:
    def test_randomized_equivalence(self):
        rng = random.Random(20260729)
        for trial in range(30):
            instance = fuzz_instance(rng, trial)
            avoid = fuzz_avoid(rng, instance)
            delay = (rng.choice(DELAYS) if instance.weighted
                     else rng.choice((None, lambda w: w + 2)))
            hop = rng.randint(1, 14)
            k = rng.randint(1, min(6, instance.n))
            sources = rng.sample(range(instance.n), k)
            direction = rng.choice(("out", "in"))
            max_rounds = rng.choice((None, None, 3, 10))
            out = {}
            for fabric in ("fast", "vector"):
                net = instance.build_network(fabric=fabric)
                dist = multi_source_hop_bfs(
                    net, sources, hop, direction=direction,
                    avoid_edges=avoid, delay=delay,
                    max_rounds=max_rounds)
                out[fabric] = (dist, ledger_snapshot(net.ledger))
            assert out["vector"] == out["fast"], trial

    def test_empty_sources(self):
        instance = random_instance(8, seed=0)
        for fabric in ("fast", "vector"):
            net = instance.build_network(fabric=fabric)
            assert multi_source_hop_bfs(net, [], 4) == []
            assert net.ledger.rounds == 0


class TestBroadcastFuzz:
    def test_randomized_equivalence(self):
        rng = random.Random(20260730)
        for trial in range(10):
            instance = fuzz_instance(rng, trial)
            messages = {
                v: [("m", v, i, "x" * rng.randint(1, 12))
                    for i in range(rng.randint(0, 3))]
                for v in rng.sample(range(instance.n),
                                    rng.randint(1, instance.n))
            }
            out = {}
            for fabric in ("fast", "vector"):
                net = instance.build_network(fabric=fabric)
                tree = build_spanning_tree(net)
                received = broadcast_messages(net, tree, messages)
                out[fabric] = (received, ledger_snapshot(net.ledger))
            assert out["vector"] == out["fast"], trial


class TestEndToEnd:
    def test_landmark_pipeline_identical(self):
        from repro.congest.spanning_tree import build_spanning_tree
        from repro.core.landmark_distances import (
            compute_landmark_distances,
        )

        rng = random.Random(5)
        for trial in range(4):
            instance = random_instance(20, avg_degree=3.0, seed=trial)
            landmarks = sorted(rng.sample(range(instance.n), 4))
            out = {}
            for fabric in ("fast", "vector"):
                net = instance.build_network(fabric=fabric)
                tree = build_spanning_tree(net)
                dists = compute_landmark_distances(
                    net, tree, landmarks, hop_limit=6,
                    avoid_edges=instance.path_edge_set())
                out[fabric] = (dists.closure, dists.from_landmark,
                               dists.to_landmark,
                               ledger_snapshot(net.ledger))
            assert out["vector"] == out["fast"], trial

    def test_full_solver_identical(self):
        from repro.core.rpaths import solve_rpaths
        from repro.graphs import path_with_chords_instance

        summaries = {}
        for fabric in ("fast", "vector"):
            instance = path_with_chords_instance(20, seed=4,
                                                 overlay_hub=True)
            report = solve_rpaths(instance, seed=7, fabric=fabric)
            summaries[fabric] = (
                list(report.lengths), report.rounds,
                ledger_snapshot(report.ledger))
        assert summaries["vector"] == summaries["fast"]


class TestKernelGating:
    def test_vector_enabled_only_for_vector_fabric(self):
        instance = random_instance(10, seed=2)
        assert vector_enabled(instance.build_network(fabric="vector"))
        for fabric in ("fast", "strict", "reference"):
            assert not vector_enabled(
                instance.build_network(fabric=fabric))

    def test_link_total_recording_disables_kernels(self):
        instance = random_instance(10, seed=2)
        net = instance.build_network(fabric="vector")
        net.record_link_totals = True
        assert not vector_enabled(net)
        # The covered primitives must still run (message path) and
        # populate the per-link totals the cut analysis reads.
        multi_source_hop_bfs(net, [instance.s], 3)
        assert net.link_totals

    def test_numpy_absence_degrades_to_message_path(self, monkeypatch):
        monkeypatch.setattr(kernels, "numpy_or_none", lambda: None)
        instance = random_instance(12, seed=6)
        net = instance.build_network(fabric="vector")
        assert not vector_enabled(net)
        got = multi_source_hop_bfs(net, [instance.s], 4)
        ref_net = instance.build_network(fabric="fast")
        want = multi_source_hop_bfs(ref_net, [instance.s], 4)
        assert got == want
        assert (ledger_snapshot(net.ledger)
                == ledger_snapshot(ref_net.ledger))

    def test_vector_fabric_exchange_matches_fast(self):
        # Non-kernelized primitives on the vector fabric go through the
        # batched engine; a direct exchange must behave identically.
        inboxes = {}
        for fabric in ("fast", "vector"):
            net = CongestNetwork(4, [(0, 1), (2, 1), (3, 1)],
                                 fabric=fabric)
            inboxes[fabric] = net.exchange({
                3: [(1, ("c",))],
                0: [(1, ("a",)), (1, ("b",))],
                2: [(1, ("d",))],
            })
        assert inboxes["vector"] == inboxes["fast"]

    def test_strict_overload_raises_identically(self):
        from repro.congest import BandwidthExceededError

        details = {}
        for fabric in ("fast", "vector"):
            instance = random_instance(10, seed=8)
            net = instance.build_network(bandwidth_words=2,
                                         fabric=fabric)
            net.strict = True
            with pytest.raises(BandwidthExceededError) as err:
                multi_source_hop_bfs(net, [instance.s], 4)
            details[fabric] = (err.value.sender, err.value.receiver,
                               err.value.words,
                               ledger_snapshot(net.ledger))
        assert details["vector"] == details["fast"]


# -- registry-parametrized forced fallbacks -----------------------------------

#: the first integer past the int64-safe value range.
BIG = 1 << 63


def _sweep_values(results):
    return {k: (r.final, r.trace) for k, r in sorted(results.items())}


def _tree_tuple(tree):
    return (list(tree.parent), list(tree.depth),
            [list(c) for c in tree.children])


def _hop_bfs_big_aux(inst, net):
    return pruned_max_hop_bfs(net, {inst.path[0]: (0, BIG)}, 4)


def _hop_bfs_clashing_aux(inst, net):
    # Two seeds share an index with different aux words.
    seeds = {inst.path[0]: (0, 5), inst.path[1]: (0, 9)}
    return pruned_max_hop_bfs(net, seeds, 5)


def _hop_bfs_delay_overflow(inst, net):
    return pruned_max_hop_bfs(net, {inst.path[0]: (0, 3)}, 3,
                              delay=lambda w: BIG)


def _multisource_huge_hop_limit(inst, net):
    # (hop_limit + 2) * k no longer fits the int64 priority key; the
    # message lane terminates at quiescence regardless of the budget.
    return multi_source_hop_bfs(net, [inst.s, inst.t], 2 ** 62)


def _multisource_bad_source(inst, net):
    # The message path owns the error behavior for out-of-range ids.
    return multi_source_hop_bfs(net, [net.n + 3], 3)


def _multisource_delay_overflow(inst, net):
    return multi_source_hop_bfs(net, [inst.s], 4, delay=lambda w: BIG)


def _chain_flood_big_prefix(inst, net):
    path, h = inst.path, len(inst.path) - 1
    prefix = [i * BIG for i in range(h + 1)]
    with net.ledger.phase("chain-flood"):
        return run_primitive("chain_flood", net, path=path,
                             sampled=[0, h], prefix=prefix)


def _dp_sweep_negative_zeta(inst, net):
    path, h = inst.path, len(inst.path) - 1
    return run_primitive("dp_sweep", net, path=path,
                         x_geq=[{} for _ in range(h + 1)],
                         hop_count=h, zeta=-1, name="dp-pipeline(L4.4)")


def _sweeps_closure_task(inst, net):
    path, h = inst.path, len(inst.path) - 1
    values = list(range(h + 1))
    tasks = [SweepTask(key="c", start=0, end=h, init=h,
                       combine=lambda p, v: min(v, values[p]))]
    return _sweep_values(run_path_sweeps(net, path, tasks))


def _sweeps_float_init(inst, net):
    path, h = inst.path, len(inst.path) - 1
    tasks = [SweepTask(key="f", start=0, end=h, init=0.5,
                       local_min=list(range(h + 1)))]
    return _sweep_values(run_path_sweeps(net, path, tasks))


def _sweeps_duplicate_keys(inst, net):
    path, h = inst.path, len(inst.path) - 1
    table = list(range(h + 1))
    tasks = [SweepTask(key="k", start=0, end=h, init=9,
                       local_min=table),
             SweepTask(key="k", start=0, end=h, init=7,
                       local_min=table)]
    return _sweep_values(run_path_sweeps(net, path, tasks))


def _sweeps_overlapping_groups(inst, net):
    path, h = inst.path, len(inst.path) - 1
    table = list(range(h + 1))
    tasks = [SweepTask(key="a", start=0, end=h, init=9,
                       local_min=table),
             SweepTask(key="b", start=1, end=h, init=7,
                       local_min=table)]
    return _sweep_values(run_path_sweeps(net, path, tasks))


def _n_shift_float_rows(inst, net):
    path, h = inst.path, len(inst.path) - 1
    rows = [[0.5 * i for i in range(h + 1)], [float(h)] * (h + 1)]
    with net.ledger.phase("N-shift"):
        return run_primitive("n_shift", net, path=path, rows=rows,
                             hop_count=h)


#: (primitive, fallback reason) -> a call violating exactly that
#: declared constraint (or escape hatch).  The coverage test below
#: asserts this table matches the registry's declarations one-to-one.
FALLBACK_CASES = {
    ("hop_bfs", "value-out-of-int64"): _hop_bfs_big_aux,
    ("hop_bfs", "non-functional-aux"): _hop_bfs_clashing_aux,
    ("hop_bfs", "delay-overflow"): _hop_bfs_delay_overflow,
    ("multisource", "key-encoding-overflow"): _multisource_huge_hop_limit,
    ("multisource", "source-out-of-range"): _multisource_bad_source,
    ("multisource", "delay-overflow"): _multisource_delay_overflow,
    ("chain_flood", "value-out-of-int64"): _chain_flood_big_prefix,
    ("dp_sweep", "value-out-of-int64"): _dp_sweep_negative_zeta,
    ("path_sweeps", "non-declarative-task"): _sweeps_closure_task,
    ("path_sweeps", "value-out-of-int64"): _sweeps_float_init,
    ("path_sweeps", "duplicate-keys"): _sweeps_duplicate_keys,
    ("path_sweeps", "overlapping-groups"): _sweeps_overlapping_groups,
    ("n_shift", "value-out-of-int64"): _n_shift_float_rows,
}


def _broadcast_valid(inst, net):
    tree = build_spanning_tree(net)
    return broadcast_messages(net, tree, {inst.s: [("m", 1)]})


def _chain_flood_valid(inst, net):
    path, h = inst.path, len(inst.path) - 1
    prefix = list(range(0, 3 * (h + 1), 3))
    with net.ledger.phase("chain-flood"):
        return run_primitive("chain_flood", net, path=path,
                             sampled=[0, h], prefix=prefix)


def _dp_sweep_valid(inst, net):
    path, h = inst.path, len(inst.path) - 1
    x_geq = [{i + 1: 2 * i} for i in range(h + 1)]
    return run_primitive("dp_sweep", net, path=path, x_geq=x_geq,
                         hop_count=h, zeta=3, name="dp-pipeline(L4.4)")


def _sweeps_valid(inst, net):
    path, h = inst.path, len(inst.path) - 1
    tasks = [SweepTask(key="a", start=0, end=h, init=h,
                       local_min=list(range(h + 1)), deposit=True)]
    return _sweep_values(run_path_sweeps(net, path, tasks))


def _n_shift_valid(inst, net):
    path, h = inst.path, len(inst.path) - 1
    rows = [[3 * i for i in range(h + 1)], [h] * (h + 1)]
    with net.ledger.phase("N-shift"):
        return run_primitive("n_shift", net, path=path, rows=rows,
                             hop_count=h)


def _landmark_completion_valid(inst, net):
    return run_primitive(
        "landmark_completion", net, closure=[[0, 2], [2, 0]],
        from_len=[[1] * net.n, [3] * net.n],
        to_len=[[2] * net.n, [1] * net.n])


def _pairwise_min_sum_valid(inst, net):
    return run_primitive("pairwise_min_sum", net,
                         m_rows=[[1, 5, 2]], n_rows=[[4, 0, 3]])


#: primitive -> a call satisfying every declared constraint (runs on
#: the kernel when nothing gates it).  Drives the global-gate cases.
VALID_CALLS = {
    "hop_bfs": lambda inst, net: pruned_max_hop_bfs(
        net, {v: (i, 7 * i + 3) for i, v in enumerate(inst.path)}, 5),
    "multisource": lambda inst, net: multi_source_hop_bfs(
        net, [inst.s, inst.t], 5),
    "broadcast": _broadcast_valid,
    "chain_flood": _chain_flood_valid,
    "dp_sweep": _dp_sweep_valid,
    "path_sweeps": _sweeps_valid,
    "spanning_tree": lambda inst, net: _tree_tuple(
        build_spanning_tree(net)),
    "n_shift": _n_shift_valid,
    "landmark_completion": _landmark_completion_valid,
    "pairwise_min_sum": _pairwise_min_sum_valid,
}


def _outcome(scenario, inst, net):
    """Run a scenario, folding raises into a comparable value."""
    try:
        return ("ok", scenario(inst, net))
    except Exception as exc:  # noqa: BLE001 - equivalence of errors
        return ("raise", type(exc).__name__, str(exc))


def _dispatch_row_set():
    counters = counters_mod.registry.snapshot()["counters"]
    return {(kernel, outcome, reason)
            for kernel, outcome, reason, _ in
            tooling.dispatch_rows(counters)}


class TestRegistryForcedFallbacks:
    """Every declared constraint gets an automatic equivalence case.

    Parametrized over the registry itself: registering a new
    constraint (or a new primitive with constraints) without adding a
    violating call to :data:`FALLBACK_CASES` fails the coverage test,
    so the table cannot silently lag the dispatcher.
    """

    INSTANCE_ARGS = dict(n=16, seed=5)

    @pytest.fixture(autouse=True)
    def _fresh_counters(self):
        counters_mod.registry.reset()
        yield
        counters_mod.registry.reset()

    def _instance(self):
        instance = random_instance(
            self.INSTANCE_ARGS["n"], seed=self.INSTANCE_ARGS["seed"])
        # The sweep-group and clashing-aux cases need a few path hops.
        assert instance.hop_count >= 3
        return instance

    def test_every_declared_constraint_has_a_case(self):
        declared = set()
        for name, prim in primitive_registry().items():
            declared |= {(name, c.reason) for c in prim.constraints}
            if prim.escape_reason is not None:
                declared.add((name, prim.escape_reason))
        assert declared == set(FALLBACK_CASES)

    def test_valid_calls_cover_every_primitive(self):
        assert set(VALID_CALLS) == set(primitive_registry())

    @pytest.mark.parametrize("primitive,reason", sorted(FALLBACK_CASES))
    def test_forced_fallback_is_bit_identical(self, primitive, reason):
        scenario = FALLBACK_CASES[(primitive, reason)]
        instance = self._instance()
        out = {}
        for fabric in ("fast", "vector"):
            counters_mod.registry.reset()
            net = instance.build_network(fabric=fabric)
            out[fabric] = (_outcome(scenario, instance, net),
                           ledger_snapshot(net.ledger))
            if fabric == "vector":
                rows = _dispatch_row_set()
                assert (primitive, "fallback", reason) in rows
                assert not any(k == primitive and o == "vector"
                               for k, o, _ in rows)
        assert out["vector"] == out["fast"]

    @pytest.mark.parametrize("primitive", sorted(VALID_CALLS))
    def test_valid_call_takes_the_kernel(self, primitive):
        # Guards the gate test below: the valid call must pass every
        # per-call constraint, so the only thing standing between it
        # and the kernel is a global gate.
        instance = self._instance()
        net = instance.build_network(fabric="vector")
        VALID_CALLS[primitive](instance, net)
        rows = _dispatch_row_set()
        assert (primitive, "vector", "") in rows
        assert not any(k == primitive and o == "fallback"
                       for k, o, _ in rows)

    @pytest.mark.parametrize("primitive", sorted(VALID_CALLS))
    def test_link_totals_gate_forces_fallback(self, primitive):
        scenario = VALID_CALLS[primitive]
        instance = self._instance()
        out = {}
        for fabric in ("fast", "vector"):
            counters_mod.registry.reset()
            net = instance.build_network(fabric=fabric)
            net.record_link_totals = True
            out[fabric] = (_outcome(scenario, instance, net),
                           ledger_snapshot(net.ledger))
            if fabric == "vector":
                rows = _dispatch_row_set()
                assert (primitive, "fallback",
                        "record-link-totals") in rows
                assert not any(k == primitive and o == "vector"
                               for k, o, _ in rows)
        assert out["vector"] == out["fast"]
