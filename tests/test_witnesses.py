"""Tests for witness reconstruction and the Section 2 canonical
decomposition (baselines.witnesses)."""

import pytest

from repro.baselines import replacement_lengths
from repro.baselines.witnesses import (
    canonical_decomposition,
    detour_is_edge_disjoint,
    replacement_witnesses,
)
from repro.congest.words import INF
from tests.conftest import family_instances


@pytest.mark.parametrize("idx", range(6))
def test_witness_lengths_match_oracle(idx):
    instance = family_instances()[idx]
    truth = replacement_lengths(instance)
    witnesses = replacement_witnesses(instance)
    assert [w.length for w in witnesses] == truth


@pytest.mark.parametrize("idx", range(6))
def test_witnesses_are_valid_paths(idx):
    instance = family_instances()[idx]
    edge_set = {(u, v) for u, v, _ in instance.edges}
    weights = instance.edge_weight_map()
    for w in replacement_witnesses(instance):
        if not w.exists:
            continue
        assert w.path[0] == instance.s and w.path[-1] == instance.t
        total = 0
        for u, v in zip(w.path, w.path[1:]):
            assert (u, v) in edge_set
            assert (u, v) != w.failed_edge
            total += weights[(u, v)]
        assert total == w.length


@pytest.mark.parametrize("idx", range(6))
def test_canonical_decomposition_brackets_failed_edge(idx):
    """Section 2: the detour spans j ≤ i < l for the failed edge i."""
    instance = family_instances()[idx]
    for w in replacement_witnesses(instance):
        if not w.exists:
            continue
        assert w.leaves_at <= w.edge_index < w.rejoins_at


@pytest.mark.parametrize("idx", range(6))
def test_detours_edge_disjoint_from_p(idx):
    """Section 2: a shortest replacement path can be chosen whose detour
    shares no edge with P — our witness extraction realises it."""
    instance = family_instances()[idx]
    for w in replacement_witnesses(instance):
        if w.exists:
            assert detour_is_edge_disjoint(
                instance, w.path, w.leaves_at, w.rejoins_at), \
                (instance.name, w.edge_index)


def test_unreachable_edges_have_no_witness():
    from repro.graphs.instance import instance_from_edges
    inst = instance_from_edges([(0, 1), (1, 2)], path=[0, 1, 2])
    witnesses = replacement_witnesses(inst)
    assert all(not w.exists and w.length == INF for w in witnesses)


def test_decomposition_of_pure_path():
    from repro.graphs import double_path_instance
    inst = double_path_instance(5, 2)
    for w in replacement_witnesses(inst):
        # The unique replacement uses the fully disjoint alternative:
        # it leaves at s and rejoins at t.
        assert (w.leaves_at, w.rejoins_at) == (0, inst.hop_count)


def test_decomposition_helper_direct():
    from repro.graphs import grid_instance
    inst = grid_instance(3, 5)
    # A witness that follows P one hop, dips one row, comes back at the
    # second-to-last column and finishes on P.
    witness = [0, 1, 6, 7, 8, 3, 4]
    leave, rejoin = canonical_decomposition(inst, witness)
    assert leave == 1
    assert rejoin == 3
