"""Robustness tests: random bijections φ, strict bandwidth end-to-end,
and determinism guarantees."""

import random

import pytest

from repro.baselines import replacement_lengths
from repro.lowerbound import build_hard_instance, verify_correspondence


class TestRandomPhi:
    """Lemma 6.8 must hold for ANY bijection φ : [k²] → [k] × [k]."""

    @staticmethod
    def random_phi(k, seed):
        rng = random.Random(seed)
        images = [(a, b) for a in range(1, k + 1)
                  for b in range(1, k + 1)]
        rng.shuffle(images)

        def phi(i):
            return images[i - 1]

        return phi

    @pytest.mark.parametrize("seed", range(4))
    def test_lemma_6_8_with_shuffled_phi(self, seed):
        k = 2
        rng = random.Random(100 + seed)
        matrix = [[rng.randint(0, 1) for _ in range(k)]
                  for _ in range(k)]
        x = [rng.randint(0, 1) for _ in range(k * k)]
        phi = self.random_phi(k, seed)
        hard = build_hard_instance(k, 2, 1, matrix, x, phi=phi)
        report = verify_correspondence(hard, phi=phi)
        assert report.holds, report.violations

    def test_phi_changes_which_edges_hit(self):
        k = 2
        matrix = [[1, 0], [0, 0]]
        x = [1, 1, 1, 1]
        hard_lex = build_hard_instance(k, 2, 1, matrix, x)
        rep_lex = verify_correspondence(hard_lex)
        swapped = self.random_phi(k, seed=1)
        hard_rand = build_hard_instance(k, 2, 1, matrix, x, phi=swapped)
        rep_rand = verify_correspondence(hard_rand, phi=swapped)
        assert rep_lex.holds and rep_rand.holds
        # Exactly one M-entry is 1 and x ≡ 1, so exactly one edge is
        # minimal under any bijection.
        assert rep_lex.hit_count == rep_rand.hit_count == 1


class TestStrictBandwidthEndToEnd:
    def test_theorem1_sampled_landmarks_fits_budget(self):
        from repro.core.rpaths import solve_rpaths
        from repro.graphs import path_with_chords_instance
        inst = path_with_chords_instance(24, seed=1, overlay_hub=True)
        report = solve_rpaths(inst, seed=2, bandwidth_words=8)
        assert report.ledger.violations == 0
        assert report.lengths == replacement_lengths(inst)

    def test_theorem3_fits_budget(self):
        from repro.approx.apx_rpaths import solve_apx_rpaths
        from repro.graphs import random_instance
        inst = random_instance(30, seed=3, weighted=True)
        report = solve_apx_rpaths(
            inst, epsilon=0.5, landmarks=list(range(inst.n)),
            bandwidth_words=8)
        assert report.ledger.violations == 0

    def test_undirected_extension_fits_budget(self):
        from repro.extensions import (
            random_undirected_instance,
            solve_rpaths_undirected,
            undirected_replacement_lengths,
        )
        inst = random_undirected_instance(30, seed=4)
        report = solve_rpaths_undirected(inst)
        assert report.ledger.max_link_words <= 8
        assert report.lengths == undirected_replacement_lengths(inst)


class TestDeterminism:
    def test_same_seed_same_execution(self):
        from repro.core.rpaths import solve_rpaths
        from repro.graphs import random_instance
        inst = random_instance(50, seed=5)
        a = solve_rpaths(inst, seed=9)
        b = solve_rpaths(inst, seed=9)
        assert a.lengths == b.lengths
        assert a.rounds == b.rounds
        assert a.messages == b.messages

    def test_short_detour_stage_seed_free(self):
        # Proposition 4.1 is deterministic: different solver seeds may
        # change the landmark stage but never the short stage's rounds.
        from repro.core.rpaths import solve_rpaths
        from repro.graphs import grid_instance
        inst = grid_instance(3, 8)
        a = solve_rpaths(inst, seed=1)
        b = solve_rpaths(inst, seed=2)
        assert a.phase_rounds("short-detour(P4.1)") == \
            b.phase_rounds("short-detour(P4.1)")

    def test_hard_instance_construction_deterministic(self):
        one = build_hard_instance(2, 2, 1, [[1, 0], [0, 1]], [1, 0, 1, 0])
        two = build_hard_instance(2, 2, 1, [[1, 0], [0, 1]], [1, 0, 1, 0])
        assert one.instance.edges == two.instance.edges
        assert one.instance.path == two.instance.path
