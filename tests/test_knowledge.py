"""Tests for the Lemma 2.5 preprocessing (core.knowledge)."""

import pytest

from repro.core.knowledge import acquire_path_knowledge, oracle_knowledge
from repro.congest.spanning_tree import build_spanning_tree
from tests.conftest import family_instances


class TestOracleKnowledge:
    def test_positions_and_distances(self, grid):
        k = oracle_knowledge(grid)
        assert k.path == grid.path
        assert k.dist_from_s[0] == 0
        assert k.dist_to_t[-1] == 0
        assert k.total_length == grid.hop_count  # unweighted

    def test_weighted_distances(self):
        from repro.graphs import random_instance
        inst = random_instance(40, seed=9, weighted=True)
        k = oracle_knowledge(inst)
        assert k.dist_from_s == inst.path_prefix_weights()
        for i in range(k.hop_count + 1):
            assert k.dist_from_s[i] + k.dist_to_t[i] == k.total_length

    def test_position_inverse(self, chords):
        k = oracle_knowledge(chords)
        for i, v in enumerate(chords.path):
            assert k.position_of[v] == i


class TestAcquireKnowledge:
    @pytest.mark.parametrize("idx", range(6))
    def test_matches_oracle_across_families(self, idx):
        inst = family_instances()[idx]
        net = inst.build_network()
        got = acquire_path_knowledge(inst, net, seed=idx)
        want = oracle_knowledge(inst)
        assert got.path == want.path
        assert got.dist_from_s == want.dist_from_s
        assert got.dist_to_t == want.dist_to_t

    @pytest.mark.parametrize("seed", range(5))
    def test_sampling_seed_does_not_change_result(self, seed, chords):
        net = chords.build_network()
        got = acquire_path_knowledge(chords, net, seed=seed)
        want = oracle_knowledge(chords)
        assert got.dist_from_s == want.dist_from_s

    def test_weighted_instance(self):
        from repro.graphs import path_with_chords_instance
        inst = path_with_chords_instance(25, seed=2, weighted=True)
        net = inst.build_network()
        got = acquire_path_knowledge(inst, net, seed=0)
        assert got.dist_from_s == inst.path_prefix_weights()

    def test_rounds_recorded(self, chords):
        net = chords.build_network()
        k = acquire_path_knowledge(chords, net, seed=1)
        assert k.rounds_used == net.rounds
        assert k.rounds_used > 0

    def test_round_bound_sublinear_in_hst(self):
        # Õ(√n + D): with the overlay hub, D = 2 while h_st = 220, so the
        # acquisition must stay far below h_st (it would be ≥ h_st if it
        # naively swept the whole path).
        import math
        from repro.graphs import path_with_chords_instance
        inst = path_with_chords_instance(
            220, seed=1, detour_every=50, overlay_hub=True)
        net = inst.build_network()
        acquire_path_knowledge(inst, net, seed=3)
        budget = 8 * (math.sqrt(inst.n) * math.log(inst.n) + 2) + 20
        assert net.rounds < budget
        assert net.rounds < inst.hop_count

    def test_reuses_provided_tree(self, grid):
        net = grid.build_network()
        tree = build_spanning_tree(net)
        before = net.rounds
        acquire_path_knowledge(grid, net, tree=tree, seed=0)
        assert net.rounds > before  # worked on the same ledger
