"""Whole-solver cross-fabric equivalence (the PR-5 invariant).

PR 3 proved the *primitive* kernels bit-identical; this suite pins the
end-to-end contract: ``solve_rpaths(fabric="vector")`` — whose round
loops now all run as array kernels (Lemma 2.5 chain flood, Prop 4.1
Stage 3, Lemmas 5.7–5.9 sweeps and shift, spanning-tree flood,
uniform-size broadcasts) — must produce bit-identical ``lengths``,
``extras["short"]/["long"]``, and **per-phase ledger accounting**
against the message engines on every fuzzed instance, and every kernel
must decline cleanly (NumPy absent, non-applicable task shapes, strict
overloads) with the message path serving the call identically.
"""

from __future__ import annotations

import random

import pytest

from repro.congest import (
    BandwidthExceededError,
    CongestNetwork,
    broadcast_messages,
    build_spanning_tree,
)
from repro.congest import kernels
from repro.congest.dispatch import check as dispatch_check
from repro.congest.metrics import RoundLedger
from repro.congest.pipeline import SweepTask, run_path_sweeps
from repro.core.knowledge import acquire_path_knowledge, oracle_knowledge
from repro.core.rpaths import solve_rpaths
from repro.core.short_detour import short_detour_lengths
from repro.core.two_sisp import solve_two_sisp
from repro.graphs import (
    expander_instance,
    grid_instance,
    layered_instance,
    path_with_chords_instance,
    power_law_instance,
    random_instance,
)

FABRICS = ("fast", "vector")


def ledger_snapshot(ledger: RoundLedger):
    return [stats.as_dict() for stats in ledger.phases()]


def solver_fingerprint(report):
    return (
        list(report.lengths),
        list(report.extras["short"]),
        list(report.extras["long"]),
        report.extras["tree"],
        ledger_snapshot(report.ledger),
    )


def fuzz_instance(rng: random.Random, trial: int):
    kind = trial % 5
    if kind == 0:
        return random_instance(
            rng.randint(8, 30), avg_degree=rng.uniform(2.0, 4.5),
            seed=trial)
    if kind == 1:
        return expander_instance(rng.randint(12, 26), degree=3,
                                 seed=trial)
    if kind == 2:
        return power_law_instance(rng.randint(10, 26), attach=2,
                                  seed=trial)
    if kind == 3:
        return path_with_chords_instance(
            rng.randint(10, 24), seed=trial,
            overlay_hub=bool(trial % 2))
    return layered_instance(rng.randint(3, 5), rng.randint(2, 4),
                            seed=trial)


class TestWholeSolverFuzz:
    def test_randomized_equivalence(self):
        # Families x seeds x zeta overrides; every fabric must agree on
        # results AND on every phase's rounds/messages/words/max-link.
        rng = random.Random(20260728)
        for trial in range(12):
            instance = fuzz_instance(rng, trial)
            zeta = rng.choice((None, 1, 2, 5, 11))
            seed = rng.randrange(100)
            out = {}
            for fabric in FABRICS:
                report = solve_rpaths(instance, zeta=zeta, seed=seed,
                                      fabric=fabric)
                out[fabric] = solver_fingerprint(report)
            assert out["vector"] == out["fast"], (trial, instance.name)

    def test_reference_engine_agrees(self):
        # The pre-fabric oracle engine, on a couple of small instances.
        instance = path_with_chords_instance(14, seed=5)
        out = {}
        for fabric in ("reference", "fast", "vector"):
            report = solve_rpaths(instance, seed=3, fabric=fabric)
            out[fabric] = solver_fingerprint(report)
        assert out["vector"] == out["fast"] == out["reference"]

    def test_explicit_landmarks_and_oracle_knowledge(self):
        instance = grid_instance(4, 5)
        out = {}
        for fabric in FABRICS:
            report = solve_rpaths(
                instance, landmarks=list(range(instance.n)),
                use_oracle_knowledge=True, fabric=fabric)
            out[fabric] = solver_fingerprint(report)
        assert out["vector"] == out["fast"]

    def test_numpy_absence_runs_whole_solver_on_message_path(
            self, monkeypatch):
        instance = random_instance(16, seed=4)
        want = solver_fingerprint(
            solve_rpaths(instance, seed=1, fabric="fast"))
        monkeypatch.setattr(kernels, "numpy_or_none", lambda: None)
        got = solver_fingerprint(
            solve_rpaths(instance, seed=1, fabric="vector"))
        assert got == want


class TestWeightedApproxSolver:
    def test_theorem3_cross_fabric(self):
        # The Theorem 3 pipeline routes Fractions through the shared
        # segment machinery: the sweep and N-shift kernels must decline
        # (non-int payloads size differently on the wire) and the
        # message path must serve those calls with identical ledgers.
        from repro.approx.apx_rpaths import solve_apx_rpaths

        for trial in range(2):
            instance = random_instance(16, seed=trial, weighted=True,
                                       max_weight=6)
            out = {}
            for fabric in FABRICS:
                report = solve_apx_rpaths(instance, epsilon=0.5,
                                          seed=trial, fabric=fabric)
                out[fabric] = (report.lengths,
                               ledger_snapshot(report.ledger))
            assert out["vector"] == out["fast"], trial


class TestKnowledgeChainFlood:
    def test_weighted_chain_parity(self):
        # Weighted instances exercise the prefix-weight arithmetic of
        # the chain records (Theorem 3 runs Lemma 2.5 on weights).
        for trial in range(4):
            instance = random_instance(18, seed=trial, weighted=True,
                                       max_weight=6)
            out = {}
            for fabric in FABRICS:
                net = instance.build_network(fabric=fabric)
                tree = build_spanning_tree(net)
                knowledge = acquire_path_knowledge(
                    instance, net, tree=tree, seed=trial)
                out[fabric] = (knowledge.path, knowledge.dist_from_s,
                               knowledge.dist_to_t,
                               knowledge.rounds_used,
                               ledger_snapshot(net.ledger))
            assert out["vector"] == out["fast"], trial

    def test_sample_rate_extremes(self):
        instance = path_with_chords_instance(20, seed=7)
        for rate in (0.0, 1.0):
            out = {}
            for fabric in FABRICS:
                net = instance.build_network(fabric=fabric)
                tree = build_spanning_tree(net)
                knowledge = acquire_path_knowledge(
                    instance, net, tree=tree, seed=1, sample_rate=rate)
                out[fabric] = (knowledge.dist_from_s,
                               ledger_snapshot(net.ledger))
            assert out["vector"] == out["fast"], rate

    def test_strict_overload_raises_identically(self):
        # Chain tokens are 4 words; a 3-word budget must abort round 1
        # of the flood with the identical first offender and ledger.
        instance = path_with_chords_instance(12, seed=2)
        details = {}
        for fabric in FABRICS:
            net = instance.build_network(bandwidth_words=3,
                                         fabric=fabric)
            net.strict = True
            tree = build_spanning_tree(net)
            with pytest.raises(BandwidthExceededError) as err:
                acquire_path_knowledge(instance, net, tree=tree, seed=0)
            details[fabric] = (err.value.sender, err.value.receiver,
                               err.value.words,
                               ledger_snapshot(net.ledger))
        assert details["vector"] == details["fast"]


class TestShortDetourPipeline:
    @pytest.mark.parametrize("zeta", [1, 2, 7])
    def test_dp_sweep_parity(self, zeta):
        instance = path_with_chords_instance(16, seed=3,
                                             overlay_hub=True)
        knowledge = oracle_knowledge(instance)
        out = {}
        for fabric in FABRICS:
            net = instance.build_network(fabric=fabric)
            lengths = short_detour_lengths(instance, net, knowledge,
                                           zeta)
            out[fabric] = (lengths, ledger_snapshot(net.ledger))
        assert out["vector"] == out["fast"], zeta


class TestPathSweepKernel:
    def _declarative_tasks(self, n, rng):
        tables = [[rng.randrange(0, 50) for _ in range(n)]
                  for _ in range(3)]
        cut = n // 2
        tasks = []
        for j, table in enumerate(tables):
            tasks.append(SweepTask(key=("R", j), start=0, end=cut,
                                   init=table[0], local_min=table,
                                   deposit=True))
            tasks.append(SweepTask(key=("R2", j), start=cut,
                                   end=n - 1, init=table[cut],
                                   local_min=table, deposit=True))
            tasks.append(SweepTask(key=("L", j), start=n - 1, end=cut,
                                   init=table[n - 1], local_min=table,
                                   deposit=bool(j % 2)))
        return tasks

    def test_declarative_sweeps_match_engine(self):
        rng = random.Random(11)
        n = 9
        path = list(range(n))
        out = {}
        for fabric in FABRICS:
            net = CongestNetwork(n, [(i, i + 1) for i in range(n - 1)],
                                 fabric=fabric)
            rng_f = random.Random(11)
            results = run_path_sweeps(
                net, path, self._declarative_tasks(n, rng_f))
            out[fabric] = (
                {k: (r.final, r.trace) for k, r in results.items()},
                ledger_snapshot(net.ledger))
        assert out["vector"] == out["fast"]

    def test_callable_tasks_fall_back_identically(self):
        # A combine closure is not declarative: the vector fabric must
        # decline and run the message engine with identical output.
        n = 7
        path = list(range(n))
        values = [5, 3, 8, 1, 9, 2, 6]
        tasks = [SweepTask(key="c", start=0, end=n - 1, init=values[0],
                           combine=lambda p, v: min(v, values[p]),
                           deposit=True)]
        net = CongestNetwork(n, [(i, i + 1) for i in range(n - 1)],
                             fabric="vector")
        assert (dispatch_check("path_sweeps", net, tasks=tasks)
                == "non-declarative-task")
        out = {}
        for fabric in FABRICS:
            net = CongestNetwork(n, [(i, i + 1) for i in range(n - 1)],
                                 fabric=fabric)
            results = run_path_sweeps(net, path, tasks)
            out[fabric] = ({k: (r.final, r.trace)
                            for k, r in results.items()},
                           ledger_snapshot(net.ledger))
        assert out["vector"] == out["fast"]

    def test_overlapping_groups_decline(self):
        # Two start-groups sharing links would interleave in the FIFO
        # queues; the kernel must decline (and the engine still serve).
        n = 8
        table = list(range(n))
        tasks = [
            SweepTask(key="a", start=0, end=6, init=0,
                      local_min=table),
            SweepTask(key="b", start=3, end=7, init=0,
                      local_min=table),
        ]
        net = CongestNetwork(n, [(i, i + 1) for i in range(n - 1)],
                             fabric="vector")
        assert (dispatch_check("path_sweeps", net, tasks=tasks)
                == "overlapping-groups")
        out = {}
        for fabric in FABRICS:
            net = CongestNetwork(n, [(i, i + 1) for i in range(n - 1)],
                                 fabric=fabric)
            results = run_path_sweeps(net, list(range(n)), tasks)
            out[fabric] = ({k: (r.final, r.trace)
                            for k, r in results.items()},
                           ledger_snapshot(net.ledger))
        assert out["vector"] == out["fast"]

    def test_strict_overload_raises_identically(self):
        n = 6
        table = [9, 7, 5, 3, 2, 1]
        tasks = [SweepTask(key="s", start=0, end=n - 1, init=table[0],
                           local_min=table, deposit=True)]
        details = {}
        for fabric in FABRICS:
            net = CongestNetwork(n, [(i, i + 1) for i in range(n - 1)],
                                 bandwidth_words=1, strict=True,
                                 fabric=fabric)
            with pytest.raises(BandwidthExceededError) as err:
                run_path_sweeps(net, list(range(n)), tasks)
            details[fabric] = (err.value.sender, err.value.receiver,
                               err.value.words,
                               ledger_snapshot(net.ledger))
        assert details["vector"] == details["fast"]


class TestSpanningTreeKernel:
    def test_tree_and_ledger_parity(self):
        rng = random.Random(9)
        for trial in range(6):
            instance = fuzz_instance(rng, trial)
            out = {}
            for fabric in FABRICS:
                net = instance.build_network(fabric=fabric)
                tree = build_spanning_tree(net)
                out[fabric] = (tree.root, tree.parent, tree.children,
                               tree.depth,
                               ledger_snapshot(net.ledger))
            assert out["vector"] == out["fast"], trial

    def test_nonzero_root(self):
        instance = expander_instance(18, degree=3, seed=4)
        out = {}
        for fabric in FABRICS:
            net = instance.build_network(fabric=fabric)
            tree = build_spanning_tree(net, root=instance.t)
            out[fabric] = (tree.parent, tree.depth,
                           ledger_snapshot(net.ledger))
        assert out["vector"] == out["fast"]


class TestUniformBroadcastSchedule:
    def test_uniform_batches_match_per_item_engine(self):
        rng = random.Random(13)
        for trial in range(6):
            instance = fuzz_instance(rng, trial)
            origins = rng.sample(range(instance.n),
                                 rng.randint(1, instance.n // 2 + 1))
            messages = {
                v: [("pair", v, i, rng.randrange(1000))
                    for i in range(rng.randint(1, 3))]
                for v in origins
            }
            out = {}
            for fabric in FABRICS:
                net = instance.build_network(fabric=fabric)
                tree = build_spanning_tree(net)
                received = broadcast_messages(net, tree, messages)
                out[fabric] = (received, ledger_snapshot(net.ledger))
            assert out["vector"] == out["fast"], trial

    def test_strict_oversized_uniform_falls_to_item_path(self):
        # All items oversized and uniform: the schedule shortcut must
        # step aside so the abort happens mid-schedule like the engine.
        instance = random_instance(10, seed=1)
        messages = {instance.s: [("x" * 40, 1, 2)]}
        details = {}
        for fabric in FABRICS:
            net = instance.build_network(bandwidth_words=2,
                                         fabric=fabric)
            net.strict = True
            tree = build_spanning_tree(net)
            with pytest.raises(BandwidthExceededError) as err:
                broadcast_messages(net, tree, messages)
            details[fabric] = (err.value.words,
                               ledger_snapshot(net.ledger))
        assert details["vector"] == details["fast"]


class TestTwoSispTreeReuse:
    def test_replay_matches_fresh_build(self):
        instance = path_with_chords_instance(14, seed=6)
        report = solve_two_sisp(instance,
                                landmarks=list(range(instance.n)))
        replayed = report.rpaths.ledger["2sisp-tree"].as_dict()
        net = instance.build_network()
        build_spanning_tree(net, phase="2sisp-tree")
        assert replayed == net.ledger["2sisp-tree"].as_dict()

    def test_cross_fabric_two_sisp(self):
        instance = grid_instance(3, 5)
        out = {}
        for fabric in ("reference", "fast", "vector"):
            report = solve_two_sisp(instance, seed=2, fabric=fabric)
            out[fabric] = (report.length,
                           ledger_snapshot(report.rpaths.ledger))
        assert out["vector"] == out["fast"] == out["reference"]

    def test_report_extras_carry_the_tree(self):
        instance = random_instance(12, seed=3)
        report = solve_rpaths(instance, seed=1)
        tree = report.extras["tree"]
        tree.verify()
        assert len(tree.parent) == instance.n
