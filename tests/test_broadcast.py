"""Tests for spanning tree, broadcast (Lemma 2.4), and convergecast."""

import pytest

from repro.congest.broadcast import (
    broadcast_messages,
    broadcast_value,
    convergecast,
    global_min,
)
from repro.congest.errors import CongestError
from repro.congest.network import CongestNetwork
from repro.congest.spanning_tree import build_spanning_tree
from repro.congest.words import INF
from repro.graphs import random_instance


def path_net(n):
    return CongestNetwork(n, [(i, i + 1) for i in range(n - 1)])


class TestSpanningTree:
    def test_tree_spans_and_verifies(self):
        net = path_net(6)
        tree = build_spanning_tree(net)
        tree.verify()
        assert tree.height == 5

    def test_tree_on_random_graph(self):
        instance = random_instance(60, seed=21)
        net = instance.build_network()
        tree = build_spanning_tree(net)
        tree.verify()

    def test_rounds_linear_in_depth(self):
        net = path_net(10)
        build_spanning_tree(net)
        # flood + adopt per level: at most ~2 rounds per depth level.
        assert net.rounds <= 2 * 9 + 2

    def test_disconnected_raises(self):
        net = CongestNetwork(4, [(0, 1), (2, 3)])
        with pytest.raises(CongestError):
            build_spanning_tree(net)

    def test_custom_root(self):
        net = path_net(5)
        tree = build_spanning_tree(net, root=2)
        assert tree.root == 2
        assert tree.depth[0] == 2 and tree.depth[4] == 2


class TestBroadcast:
    def test_all_messages_collected(self):
        net = path_net(5)
        tree = build_spanning_tree(net)
        msgs = {0: [("a", 1)], 4: [("b", 2), ("c", 3)]}
        got = broadcast_messages(net, tree, msgs)
        assert got == sorted([(0, ("a", 1)), (4, ("b", 2)), (4, ("c", 3))])

    def test_empty_broadcast_costs_nothing(self):
        net = path_net(4)
        tree = build_spanning_tree(net)
        before = net.rounds
        assert broadcast_messages(net, tree, {}) == []
        assert net.rounds == before

    def test_round_bound_linear_in_m_plus_d(self):
        # Lemma 2.4: O(M + D) rounds.  M messages from one end of a path
        # of diameter D; allow a small constant factor.
        n, m = 20, 15
        net = path_net(n)
        tree = build_spanning_tree(net)
        before = net.rounds
        broadcast_messages(net, tree, {0: [("m", i) for i in range(m)]})
        used = net.rounds - before
        assert used <= 3 * (m + n)

    def test_pipelining_beats_sequential(self):
        # M messages through a path must not cost M × D rounds.
        n, m = 16, 12
        net = path_net(n)
        tree = build_spanning_tree(net)
        before = net.rounds
        broadcast_messages(
            net, tree, {n - 1: [("m", i) for i in range(m)]})
        used = net.rounds - before
        assert used < m * (n - 1) / 2

    def test_congestion_one_message_per_link(self):
        net = path_net(10)
        tree = build_spanning_tree(net)
        broadcast_messages(net, tree, {0: [("m", i) for i in range(8)]})
        assert net.ledger.max_link_words <= 4


class TestConvergecast:
    def test_min_aggregation(self):
        net = path_net(6)
        tree = build_spanning_tree(net)
        values = {v: 10 + v for v in range(6)}
        values[3] = 1
        assert convergecast(net, tree, values, min, INF) == 1

    def test_sum_aggregation(self):
        net = path_net(5)
        tree = build_spanning_tree(net)
        got = convergecast(net, tree, {v: 1 for v in range(5)},
                           lambda a, b: a + b, 0)
        assert got == 5

    def test_missing_values_use_identity(self):
        net = path_net(4)
        tree = build_spanning_tree(net)
        assert convergecast(net, tree, {2: 7}, min, INF) == 7

    def test_rounds_linear_in_depth(self):
        net = path_net(12)
        tree = build_spanning_tree(net)
        before = net.rounds
        convergecast(net, tree, {v: v for v in range(12)}, min, INF)
        assert net.rounds - before <= 12

    def test_single_vertex_tree(self):
        net = CongestNetwork(2, [(0, 1)])
        tree = build_spanning_tree(net)
        assert convergecast(net, tree, {0: 3, 1: 9}, min, INF) == 3

    def test_broadcast_value_reaches_everyone(self):
        net = path_net(7)
        tree = build_spanning_tree(net)
        assert broadcast_value(net, tree, 42) == 42

    def test_global_min(self):
        instance = random_instance(40, seed=22)
        net = instance.build_network()
        tree = build_spanning_tree(net)
        values = {v: (v * 7919) % 101 for v in range(net.n)}
        assert global_min(net, tree, values, INF) == min(values.values())
