"""Tests for the Section 7.1 rounding machinery (approx.rounding)."""

import math
from fractions import Fraction

import pytest

from repro.approx.rounding import (
    Scale,
    epsilon_as_fraction,
    scale_ladder,
    scale_length,
    subdivided_hops,
)


class TestEpsilonFraction:
    def test_exact_binary_fractions(self):
        assert epsilon_as_fraction(0.25) == Fraction(1, 4)
        assert epsilon_as_fraction(0.5) == Fraction(1, 2)

    def test_never_exceeds_requested(self):
        for eps in (0.1, 0.3, 0.7, 0.99):
            assert epsilon_as_fraction(eps) <= Fraction(str(eps))

    def test_out_of_range_rejected(self):
        for bad in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(ValueError):
                epsilon_as_fraction(bad)


class TestScale:
    def scale(self, d=8, zeta=4, eps="1/2"):
        return Scale(d=d, zeta=zeta, eps=Fraction(eps))

    def test_mu_formula(self):
        s = self.scale()
        assert s.mu == Fraction(1, 2) * 8 / (2 * 4)  # εd/(2ζ) = 1/2

    def test_delay_is_ceiling(self):
        s = self.scale()  # μ = 1/2
        assert s.delay(1) == 2
        assert s.delay(3) == 6

    def test_delay_rounds_up(self):
        s = Scale(d=3, zeta=4, eps=Fraction(1, 2))  # μ = 3/16
        assert s.delay(1) == math.ceil(16 / 3)

    def test_length_of_hops(self):
        s = self.scale()
        assert s.length(6) == 3

    def test_hop_budget_formula(self):
        s = self.scale()  # ζ(1 + 2/ε) = 4 · 5 = 20
        assert s.hop_budget == 20

    def test_observation_7_3_distances_do_not_shrink(self):
        # Σ delay(w)·μ ≥ Σ w for any weight multiset.
        s = Scale(d=10, zeta=7, eps=Fraction(1, 3))
        for weights in ([1], [2, 5], [1, 1, 1, 9], [13]):
            assert scale_length(weights, s) >= sum(weights)

    def test_observation_7_4_hop_and_length_bounds(self):
        # For a ≤ ζ-hop path of weight r ∈ [d/2, d]: hops ≤ ζ(1+2/ε)
        # and G_d length ≤ (1+ε)·r.
        zeta = 5
        for eps in (Fraction(1, 2), Fraction(1, 4)):
            for weights in ([3, 3], [2, 2, 1, 1], [6], [4, 4, 2]):
                r = sum(weights)
                assert len(weights) <= zeta
                d = 1
                while d < r:
                    d *= 2
                assert d / 2 <= r <= d
                s = Scale(d=d, zeta=zeta, eps=eps)
                hops = subdivided_hops(weights, s)
                assert hops <= s.hop_budget
                assert scale_length(weights, s) <= (1 + eps) * r


class TestLadder:
    def test_covers_max_length(self):
        ladder = scale_ladder(zeta=4, epsilon=0.5, max_length=100)
        assert ladder[-1].d >= 100
        assert ladder[0].d == 2

    def test_doubling(self):
        ladder = scale_ladder(zeta=4, epsilon=0.5, max_length=33)
        ds = [s.d for s in ladder]
        assert ds == [2, 4, 8, 16, 32, 64]

    def test_logarithmic_count(self):
        ladder = scale_ladder(zeta=10, epsilon=0.25, max_length=10 ** 6)
        assert len(ladder) <= 21

    def test_every_r_has_a_scale(self):
        # For every candidate detour weight r ≥ 1 there is a scale with
        # d/2 ≤ r ≤ d.
        ladder = scale_ladder(zeta=3, epsilon=0.5, max_length=500)
        for r in range(1, 501):
            assert any(s.d / 2 <= r <= s.d for s in ladder), r
