"""Shared fixtures: small instances spanning every generator family."""

from __future__ import annotations

import pytest

from repro.graphs import (
    double_path_instance,
    grid_instance,
    layered_instance,
    path_with_chords_instance,
    random_instance,
)


@pytest.fixture
def grid():
    return grid_instance(4, 7)


@pytest.fixture
def small_random():
    return random_instance(40, seed=7)


@pytest.fixture
def chords():
    return path_with_chords_instance(24, seed=3)


@pytest.fixture
def layered():
    return layered_instance(6, 3, seed=5)


@pytest.fixture
def double_path():
    return double_path_instance(8, 2)


def family_instances(weighted: bool = False):
    """The standard correctness gauntlet used by integration tests."""
    if weighted:
        return [
            random_instance(40, seed=1, weighted=True),
            random_instance(60, seed=2, weighted=True, max_weight=30),
            path_with_chords_instance(20, seed=3, weighted=True),
            layered_instance(5, 3, seed=4, weighted=True),
        ]
    return [
        random_instance(40, seed=1),
        random_instance(70, seed=2),
        grid_instance(4, 9),
        path_with_chords_instance(30, seed=3),
        layered_instance(6, 3, seed=4),
        double_path_instance(9, 2),
    ]
