"""Tests for Proposition 5.1 (core.long_detour)."""

import pytest

from repro.baselines.centralized import (
    detour_replacement_lengths_with_threshold,
    replacement_lengths,
)
from repro.congest.spanning_tree import build_spanning_tree
from repro.congest.words import INF
from repro.core.knowledge import oracle_knowledge
from repro.core.long_detour import long_detour_lengths
from tests.conftest import family_instances


def run_long(instance, zeta, landmarks=None, seed=0):
    net = instance.build_network()
    tree = build_spanning_tree(net)
    knowledge = oracle_knowledge(instance)
    return long_detour_lengths(
        instance, net, tree, knowledge, zeta,
        landmarks=landmarks, seed=seed)


class TestValidity:
    """x_i ≥ |st ⋄ e_i| must hold unconditionally (Proposition 5.1)."""

    @pytest.mark.parametrize("idx", range(6))
    def test_never_undershoots_truth(self, idx):
        instance = family_instances()[idx]
        truth = replacement_lengths(instance)
        got = run_long(instance, zeta=4, landmarks=None, seed=idx)
        for x, t in zip(got, truth):
            assert x >= t, instance.name

    def test_never_undershoots_with_sparse_landmarks(self):
        instance = family_instances()[1]
        truth = replacement_lengths(instance)
        got = run_long(instance, zeta=4,
                       landmarks=list(range(0, instance.n, 9)))
        for x, t in zip(got, truth):
            assert x >= t


class TestExactnessWithFullLandmarks:
    @pytest.mark.parametrize("idx", range(6))
    def test_covers_long_detours(self, idx):
        # With every vertex a landmark, the long-detour stage must find
        # every replacement path that has a detour longer than ζ.
        instance = family_instances()[idx]
        zeta = 3
        _, long_truth = detour_replacement_lengths_with_threshold(
            instance, zeta)
        got = run_long(instance, zeta,
                       landmarks=list(range(instance.n)))
        for i, (x, t) in enumerate(zip(got, long_truth)):
            if t < INF:
                assert x <= t, (instance.name, i)

    def test_combined_with_short_equals_truth(self):
        # min(long stage, short-detour truth) must equal the answer.
        instance = family_instances()[3]
        zeta = 3
        short_truth, _ = detour_replacement_lengths_with_threshold(
            instance, zeta)
        truth = replacement_lengths(instance)
        got = run_long(instance, zeta,
                       landmarks=list(range(instance.n)))
        combined = [min(a, b) for a, b in zip(got, short_truth)]
        assert combined == truth


class TestEdgeCases:
    def test_empty_landmarks_all_inf(self):
        instance = family_instances()[0]
        got = run_long(instance, zeta=4, landmarks=[])
        assert got == [INF] * instance.hop_count

    def test_landmarks_covering_detour_suffice(self):
        from repro.graphs import double_path_instance
        inst = double_path_instance(5, 3)
        # Landmark every detour vertex: every ζ = 2-hop stretch of the
        # unique detour contains a landmark (the Lemma 5.3 premise), so
        # the stage must be exact despite the tiny hop limit.
        detour_vertices = list(range(6, inst.n))
        got = run_long(inst, zeta=2, landmarks=detour_vertices)
        truth = replacement_lengths(inst)
        assert got == truth

    def test_sparse_landmarks_below_coverage_stay_valid(self):
        from repro.graphs import double_path_instance
        inst = double_path_instance(5, 3)
        # One landmark with a ζ far below the detour length: coverage
        # fails, so the stage may miss the detour — but validity
        # (never undershooting) must still hold.
        mid = inst.n - 2
        got = run_long(inst, zeta=2, landmarks=[mid])
        truth = replacement_lengths(inst)
        assert all(x >= t for x, t in zip(got, truth))

    def test_landmark_off_detour_misses(self):
        from repro.graphs import double_path_instance
        inst = double_path_instance(5, 3)
        # A path vertex (not on any detour) as the only landmark: the
        # stage cannot certify anything.
        got = run_long(inst, zeta=2, landmarks=[2])
        assert all(x >= t for x, t in
                   zip(got, replacement_lengths(inst)))
