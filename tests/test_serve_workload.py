"""Workload generators, the serve-* scenarios, and the serving CLI."""

import pytest

from repro.cli import main
from repro.runtime import CellSpec, execute_cell, scenario_names
from repro.serve import WORKLOADS, generate_workload
from repro.serve.workload import zipf_sources


class TestGenerators:
    @pytest.mark.parametrize("kind", sorted(WORKLOADS))
    def test_deterministic_and_sized(self, small_random, kind):
        a = generate_workload(kind, small_random, 50, seed=7)
        b = generate_workload(kind, small_random, 50, seed=7)
        c = generate_workload(kind, small_random, 50, seed=8)
        assert a == b
        assert len(a) == 50
        assert a != c  # another seed, another stream
        assert all(q.instance == small_random.name for q in a)

    def test_unknown_kind_raises(self, small_random):
        with pytest.raises(ValueError, match="unknown workload"):
            generate_workload("tsunami", small_random, 5)

    def test_uniform_is_all_own_pair(self, small_random):
        for q in generate_workload("uniform", small_random, 30,
                                   seed=1):
            assert (q.s, q.t) == (small_random.s, small_random.t)

    def test_zipf_sources_are_skewed(self, small_random):
        sources = zipf_sources(small_random, 400,
                               __import__("random").Random(3),
                               alpha=1.5)
        counts = sorted(
            (sources.count(v) for v in set(sources)), reverse=True)
        # The hottest source should dominate a uniform share.
        assert counts[0] > 400 / small_random.n * 3

    def test_adversarial_never_repeats_pairs_early(self, small_random):
        stream = generate_workload("adversarial", small_random, 60,
                                   seed=2)
        seen = set()
        for q in stream:
            assert (q.s, q.edge) not in seen
            seen.add((q.s, q.edge))
            assert q.s != small_random.s  # never an O(1) hit

    def test_mixed_read_fraction_bounds(self, small_random):
        with pytest.raises(ValueError):
            generate_workload("mixed", small_random, 10,
                              read_fraction=1.5)
        stream = generate_workload("mixed", small_random, 40, seed=3,
                                   read_fraction=0.5)
        reads = sum(1 for q in stream
                    if (q.s, q.t) == (small_random.s,
                                      small_random.t))
        assert reads == 20


class TestServeScenarios:
    def test_registered_in_catalog(self):
        names = scenario_names()
        for name in ("serve-uniform", "serve-zipf",
                     "serve-adversarial", "serve-mixed"):
            assert name in names

    @pytest.mark.parametrize("name,params", [
        ("serve-zipf", {"n": 20, "queries": 36, "alpha": 1.2}),
        ("serve-adversarial", {"n": 18, "queries": 30}),
    ])
    def test_cells_execute_and_verify(self, name, params):
        result = execute_cell(CellSpec.make(name, params, 0))
        assert result.ok, result.error
        assert result.metrics["correct"] is True
        assert result.metrics["queries"] > 0
        assert result.metrics["batch_solves"] > 0

    def test_uniform_cell_is_all_hits(self):
        result = execute_cell(CellSpec.make(
            "serve-uniform", {"n": 20, "queries": 30}, 0))
        assert result.ok and result.metrics["hit_ratio"] == 1.0
        assert result.metrics["batch_solves"] == 0


class TestServeCli:
    def test_query_path_edge(self, capsys):
        code = main(["query", "--family", "grid", "--n", "24",
                     "--fail-index", "1", "--check"])
        out = capsys.readouterr().out
        assert code == 0
        assert "hit-path-edge" in out
        assert "oracle check: OK" in out

    def test_query_arbitrary_pair(self, capsys):
        code = main(["query", "--family", "random", "--n", "30",
                     "--source", "3", "--target", "7",
                     "--solver", "centralized", "--check"])
        out = capsys.readouterr().out
        assert code == 0
        assert "fallback-solve" in out

    def test_query_explicit_edge(self, capsys):
        code = main(["query", "--family", "chords", "--n", "30",
                     "--edge", "0", "1", "--check"])
        assert code == 0
        assert "oracle check: OK" in capsys.readouterr().out

    def test_serve_bench_smoke(self, capsys, tmp_path,
                               monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        code = main(["serve", "bench", "--n", "20",
                     "--instances", "2", "--queries", "40",
                     "--workload", "mixed", "--solver",
                     "centralized", "--jobs", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "serve bench" in out
        assert "mixed" in out and "OK" in out

    def test_parser_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            main(["serve", "bench", "--workload", "tsunami"])
