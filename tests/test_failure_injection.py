"""Failure injection: the simulator must reject model violations loudly."""

import pytest

from repro.congest.errors import (
    BandwidthExceededError,
    InvalidInstanceError,
    NotALinkError,
)
from repro.congest.network import CongestNetwork
from repro.graphs import grid_instance
from repro.graphs.instance import RPathsInstance


class TestBandwidthEnforcement:
    def test_algorithms_fit_strict_budget(self):
        # The whole Theorem 1 pipeline under a strict per-link budget:
        # every primitive is supposed to be congestion-free.
        from repro.core.rpaths import solve_rpaths
        instance = grid_instance(3, 6)
        report = solve_rpaths(
            instance, landmarks=list(range(instance.n)),
            bandwidth_words=8)
        assert report.ledger.violations == 0

    def test_overload_detected(self):
        net = CongestNetwork(2, [(0, 1)], bandwidth_words=1,
                             strict=True)
        with pytest.raises(BandwidthExceededError) as err:
            net.exchange({0: [(1, (1, 2, 3, 4))]})
        assert err.value.words == 4

    def test_accumulated_small_messages_also_counted(self):
        net = CongestNetwork(2, [(0, 1)], bandwidth_words=2,
                             strict=True)
        with pytest.raises(BandwidthExceededError):
            net.exchange({0: [(1, (1,)), (1, (2,)), (1, (3,))]})


class TestTopologyViolations:
    def test_phantom_link_rejected(self):
        net = CongestNetwork(3, [(0, 1)])
        with pytest.raises(NotALinkError):
            net.exchange({0: [(2, ("ghost",))]})

    def test_error_carries_endpoints(self):
        net = CongestNetwork(3, [(0, 1)])
        try:
            net.exchange({0: [(2, ("ghost",))]})
        except NotALinkError as err:
            assert (err.sender, err.receiver) == (0, 2)


class TestInstanceRejection:
    def test_solver_entry_validates_weighted_flag(self):
        from repro.core.rpaths import solve_rpaths
        from repro.graphs import random_instance
        inst = random_instance(25, seed=2, weighted=True)
        with pytest.raises(ValueError):
            solve_rpaths(inst)

    def test_non_shortest_path_rejected_at_validation(self):
        inst = RPathsInstance(
            n=3, edges=[(0, 1, 1), (1, 2, 1), (0, 2, 1)],
            path=[0, 1, 2])
        with pytest.raises(InvalidInstanceError):
            inst.validate()

    def test_epsilon_out_of_range_rejected(self):
        from repro.approx.apx_rpaths import solve_apx_rpaths
        from repro.graphs import random_instance
        inst = random_instance(20, seed=1, weighted=True)
        with pytest.raises(ValueError):
            solve_apx_rpaths(inst, epsilon=1.5)


class TestLedgerIntegrityUnderFailure:
    def test_rounds_survive_mid_run_exception(self):
        net = CongestNetwork(3, [(0, 1)], strict=True,
                             bandwidth_words=1)
        net.exchange({0: [(1, (1,))]})
        with pytest.raises(BandwidthExceededError):
            net.exchange({0: [(1, (1, 2))]})
        # The failed round was still charged (it happened on the wire).
        assert net.rounds == 2
