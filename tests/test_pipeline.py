"""Tests for the pipelined path-sweep engine (congest.pipeline)."""

import pytest

from repro.congest.network import CongestNetwork
from repro.congest.pipeline import SweepTask, run_path_sweeps


def path_net(n):
    return CongestNetwork(n, [(i, i + 1) for i in range(n - 1)])


def prefix_min_reference(values, start, end):
    best = values[start]
    out = {start: best}
    step = 1 if end >= start else -1
    for pos in range(start + step, end + step, step):
        best = min(best, values[pos])
        out[pos] = best
    return out


class TestSweepBasics:
    def test_rightward_prefix_min(self):
        n = 8
        net = path_net(n)
        values = [5, 3, 7, 2, 9, 4, 8, 1]
        task = SweepTask(
            key="m", start=0, end=n - 1, init=values[0],
            combine=lambda pos, v: min(v, values[pos]), deposit=True)
        results = run_path_sweeps(net, list(range(n)), [task])
        assert results["m"].trace == prefix_min_reference(
            values, 0, n - 1)
        assert results["m"].final == 1

    def test_leftward_sweep(self):
        n = 6
        net = path_net(n)
        values = [4, 1, 6, 2, 8, 3]
        task = SweepTask(
            key="s", start=n - 1, end=0, init=values[n - 1],
            combine=lambda pos, v: min(v, values[pos]), deposit=True)
        results = run_path_sweeps(net, list(range(n)), [task])
        assert results["s"].trace == prefix_min_reference(
            values, n - 1, 0)

    def test_zero_length_sweep_returns_init(self):
        net = path_net(3)
        task = SweepTask(key="z", start=1, end=1, init=42,
                         combine=lambda p, v: 0, deposit=True)
        results = run_path_sweeps(net, [0, 1, 2], [task])
        assert results["z"].final == 42
        assert results["z"].trace == {1: 42}

    def test_out_of_bounds_task_rejected(self):
        net = path_net(3)
        task = SweepTask(key="x", start=0, end=5, init=0,
                         combine=lambda p, v: v)
        with pytest.raises(ValueError):
            run_path_sweeps(net, [0, 1, 2], [task])

    def test_empty_tasks_cost_nothing(self):
        net = path_net(3)
        assert run_path_sweeps(net, [0, 1, 2], []) == {}
        assert net.rounds == 0


class TestPipelining:
    def test_many_sweeps_share_links(self):
        # T sweeps over an L-link path must take O(L + T), not O(L·T).
        n, t = 15, 10
        net = path_net(n)
        tasks = [
            SweepTask(key=("sum", j), start=0, end=n - 1, init=j,
                      combine=lambda pos, v: v + 1)
            for j in range(t)
        ]
        results = run_path_sweeps(net, list(range(n)), tasks)
        for j in range(t):
            assert results[("sum", j)].final == j + (n - 1)
        assert net.rounds <= (n - 1) + t + 2
        assert net.rounds < t * (n - 1)

    def test_bidirectional_sweeps_coexist(self):
        n = 10
        net = path_net(n)
        tasks = [
            SweepTask(key="right", start=0, end=n - 1, init=0,
                      combine=lambda pos, v: v + 1),
            SweepTask(key="left", start=n - 1, end=0, init=0,
                      combine=lambda pos, v: v + 1),
        ]
        results = run_path_sweeps(net, list(range(n)), tasks)
        assert results["right"].final == n - 1
        assert results["left"].final == n - 1
        # Opposite directions use distinct link directions: no stacking.
        assert net.rounds <= n

    def test_congestion_bounded(self):
        n, t = 12, 9
        net = path_net(n)
        tasks = [
            SweepTask(key=j, start=0, end=n - 1, init=0,
                      combine=lambda pos, v: v)
            for j in range(t)
        ]
        run_path_sweeps(net, list(range(n)), tasks)
        # One token (tag + value) per link per round.
        assert net.ledger.max_link_words <= 3

    def test_disjoint_segments_run_in_parallel(self):
        n = 20
        net = path_net(n)
        tasks = [
            SweepTask(key="a", start=0, end=9, init=0,
                      combine=lambda pos, v: v + 1),
            SweepTask(key="b", start=10, end=19, init=0,
                      combine=lambda pos, v: v + 1),
        ]
        run_path_sweeps(net, list(range(n)), tasks)
        assert net.rounds <= 10

    def test_combine_sees_positions_in_order(self):
        n = 7
        net = path_net(n)
        seen = []

        def combine(pos, v):
            seen.append(pos)
            return v

        task = SweepTask(key="o", start=2, end=6, init=0, combine=combine)
        run_path_sweeps(net, list(range(n)), [task])
        assert seen == [3, 4, 5, 6]
