"""Unit tests for the frozen CSR topology (congest.topology)."""

import pytest

from repro.congest.errors import UnknownVertexError
from repro.congest.network import CongestNetwork
from repro.congest.topology import CSRTopology


def diamond():
    return CSRTopology(4, [(0, 1), (0, 2), (1, 3), (2, 3), (3, 0)])


class TestConstruction:
    def test_adjacency_matches_edges(self):
        topo = diamond()
        assert topo.out_neighbors(0) == [1, 2]
        assert topo.in_neighbors(3) == [1, 2]
        assert topo.neighbors(0) == [1, 2, 3]
        assert topo.num_edges == 5

    def test_csr_arrays_consistent_with_lists(self):
        topo = diamond()
        for u in range(topo.n):
            lo, hi = topo.nbr_indptr[u], topo.nbr_indptr[u + 1]
            assert topo.nbr_indices[lo:hi] == topo.neighbors(u)
            lo, hi = topo.out_indptr[u], topo.out_indptr[u + 1]
            assert topo.out_indices[lo:hi] == topo.out_neighbors(u)
            lo, hi = topo.in_indptr[u], topo.in_indptr[u + 1]
            assert topo.in_indices[lo:hi] == topo.in_neighbors(u)

    def test_neighbors_sorted(self):
        topo = CSRTopology(5, [(3, 1), (1, 0), (4, 1), (1, 2)])
        assert topo.neighbors(1) == [0, 2, 3, 4]

    def test_duplicate_edges_first_weight_wins(self):
        topo = CSRTopology(2, [(0, 1, 7), (0, 1, 9)])
        assert topo.num_edges == 1
        assert topo.weight(0, 1) == 7

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            CSRTopology(0, [])
        with pytest.raises(UnknownVertexError):
            CSRTopology(2, [(0, 5)])
        with pytest.raises(ValueError):
            CSRTopology(2, [(0, 0)])
        with pytest.raises(ValueError):
            CSRTopology(2, [(0, 1, -3)])


class TestLinkIds:
    def test_link_id_bijection(self):
        topo = diamond()
        seen = set()
        for v in range(topo.n):
            for u in topo.neighbors(v):
                lid = topo.link_id(u, v)
                assert 0 <= lid < topo.num_dirlinks
                assert topo.link_endpoints(lid) == (u, v)
                seen.add(lid)
        assert len(seen) == topo.num_dirlinks

    def test_receiver_major_layout(self):
        # Sorting link ids must sort by (receiver, sender): the batched
        # fabric's deterministic delivery order depends on this layout.
        topo = diamond()
        pairs = []
        for v in range(topo.n):
            for u in topo.neighbors(v):
                pairs.append((topo.link_id(u, v), (v, u)))
        pairs.sort()
        assert [p for _, p in pairs] == sorted(p for _, p in pairs)

    def test_both_directions_have_ids(self):
        topo = CSRTopology(2, [(0, 1)])
        assert topo.num_dirlinks == 2
        assert topo.link_id(0, 1) != topo.link_id(1, 0)
        assert topo.has_link(1, 0) and not topo.has_edge(1, 0)

    def test_missing_link_raises_keyerror_with_pair(self):
        topo = diamond()
        with pytest.raises(KeyError, match=r"\(1, 2\)"):
            topo.link_id(1, 2)
        with pytest.raises(KeyError):
            topo.weight(3, 1)

    def test_directed_edges_input_order(self):
        edges = [(3, 1), (0, 2), (1, 0)]
        topo = CSRTopology(4, edges)
        assert list(topo.directed_edges()) == edges


class TestSharing:
    def test_networks_share_topology_but_not_ledgers(self):
        topo = diamond()
        a = CongestNetwork(4, [], topology=topo)
        b = CongestNetwork(4, [], topology=topo)
        assert a.topology is b.topology
        a.exchange({0: [(1, ("x",))]})
        assert a.rounds == 1 and b.rounds == 0

    def test_instance_caches_topology(self):
        from repro.graphs import random_instance
        instance = random_instance(12, seed=3)
        a = instance.build_network()
        b = instance.build_network(fabric="strict")
        assert a.topology is b.topology

    def test_mismatched_topology_rejected(self):
        with pytest.raises(ValueError, match="n=4"):
            CongestNetwork(5, [], topology=diamond())

    def test_unknown_fabric_rejected(self):
        with pytest.raises(ValueError, match="fabric"):
            CongestNetwork(2, [(0, 1)], fabric="warp")
