"""Tests for the instance generators — every family must produce valid
instances in its intended regime."""

import pytest

from repro.congest.words import INF
from repro.graphs import (
    double_path_instance,
    expander_instance,
    grid_instance,
    layered_instance,
    path_with_chords_instance,
    power_law_instance,
    random_instance,
)
from repro.baselines import replacement_lengths


class TestRandomInstance:
    @pytest.mark.parametrize("seed", range(6))
    def test_valid_across_seeds(self, seed):
        inst = random_instance(50, seed=seed)
        inst.validate()

    def test_weighted_variant(self):
        inst = random_instance(40, seed=3, weighted=True, max_weight=9)
        inst.validate()
        assert any(w > 1 for _, _, w in inst.edges)

    def test_deterministic_under_seed(self):
        a = random_instance(45, seed=4)
        b = random_instance(45, seed=4)
        assert a.edges == b.edges and a.path == b.path

    def test_different_seeds_differ(self):
        a = random_instance(45, seed=1)
        b = random_instance(45, seed=2)
        assert a.edges != b.edges


class TestChords:
    @pytest.mark.parametrize("hops", [4, 16, 50])
    def test_hop_count_as_requested(self, hops):
        inst = path_with_chords_instance(hops, seed=1)
        assert inst.hop_count == hops

    def test_most_edges_have_replacements(self):
        inst = path_with_chords_instance(32, seed=2)
        truth = replacement_lengths(inst)
        finite = sum(1 for x in truth if x < INF)
        assert finite >= inst.hop_count // 2

    def test_weighted_chords_valid(self):
        inst = path_with_chords_instance(20, seed=5, weighted=True)
        inst.validate()

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            path_with_chords_instance(1)


class TestLayered:
    def test_every_edge_has_replacement_when_wide(self):
        inst = layered_instance(5, 4, forward_prob=0.9, seed=1)
        truth = replacement_lengths(inst)
        assert all(x < INF for x in truth)

    def test_unweighted_replacements_equal_path_length(self):
        # In a leveled DAG every s-t path has the same hop count.
        inst = layered_instance(5, 4, forward_prob=0.9, seed=2)
        truth = replacement_lengths(inst)
        for x in truth:
            if x < INF:
                assert x == inst.hop_count

    def test_weighted_valid(self):
        layered_instance(5, 3, seed=3, weighted=True).validate()

    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            layered_instance(1, 3)


class TestGrid:
    def test_replacement_is_plus_two(self):
        inst = grid_instance(3, 6)
        truth = replacement_lengths(inst)
        assert truth == [inst.hop_count + 2] * inst.hop_count

    def test_vertex_count(self):
        assert grid_instance(4, 5).n == 20

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            grid_instance(1, 5)


class TestDoublePath:
    def test_uniform_replacements(self):
        inst = double_path_instance(7, 3)
        truth = replacement_lengths(inst)
        assert truth == [10] * 7

    def test_hop_and_size(self):
        inst = double_path_instance(5, 2)
        assert inst.hop_count == 5
        assert inst.n == 5 + 1 + 6

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            double_path_instance(0, 1)
        with pytest.raises(ValueError):
            double_path_instance(5, 0)


class TestNewTopologies:
    def test_expander_valid_and_small_diameter(self):
        inst = expander_instance(40, degree=4, seed=0)
        inst.validate()
        # Near-regular: every vertex keeps bounded out-degree.
        adj = inst.adjacency()
        assert max(len(out) for out in adj) <= 8

    def test_power_law_valid_and_hubby(self):
        inst = power_law_instance(60, attach=2, seed=0)
        inst.validate()
        degree = [0] * inst.n
        for u, v, _ in inst.edges:
            degree[u] += 1
            degree[v] += 1
        # Preferential attachment: the busiest vertex dominates the
        # median by a wide margin.
        assert max(degree) >= 4 * sorted(degree)[inst.n // 2]

    def test_weighted_variants(self):
        expander_instance(24, seed=1, weighted=True).validate()
        power_law_instance(24, seed=1, weighted=True).validate()

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            expander_instance(2)
        with pytest.raises(ValueError):
            expander_instance(24, degree=1)
        with pytest.raises(ValueError):
            power_law_instance(2)


class TestSeedThreading:
    def test_same_seed_same_instance(self):
        for build in (
            lambda s: random_instance(30, seed=s),
            lambda s: path_with_chords_instance(12, seed=s,
                                                weighted=True),
            lambda s: layered_instance(5, 3, seed=s),
            lambda s: expander_instance(24, seed=s),
            lambda s: power_law_instance(24, seed=s),
        ):
            a, b = build(7), build(7)
            assert a.edges == b.edges and a.path == b.path
            c = build(8)
            assert c.edges != a.edges or c.path != a.path

    def test_explicit_rng_stream_wins_over_seed(self):
        import random as _random
        a = random_instance(30, seed=0, rng=_random.Random(99))
        b = random_instance(30, seed=1, rng=_random.Random(99))
        assert a.edges == b.edges

    def test_shared_stream_is_sequential(self):
        # One Random threaded through two builds must consume the
        # stream in order: the second build differs from a fresh one.
        import random as _random
        rng = _random.Random(5)
        first = random_instance(24, rng=rng)
        second = random_instance(24, rng=rng)
        assert first.edges != second.edges
        assert second.edges != random_instance(
            24, rng=_random.Random(5)).edges

    def test_global_random_state_untouched(self):
        import random as _random
        _random.seed(1234)
        before = _random.random()
        _random.seed(1234)
        expander_instance(24, seed=3)
        power_law_instance(24, seed=3)
        random_instance(24, seed=3)
        assert _random.random() == before
