"""Tests for the Ω(D) construction (Theorem 2) and the cut-traffic
analysis (the simulation-lemma view)."""

import pytest

from repro.baselines import two_sisp_length
from repro.congest.words import INF
from repro.core import solve_two_sisp
from repro.lowerbound import (
    bipartite_cut,
    build_diameter_instance,
    build_hard_instance,
    expected_two_sisp,
    measure_cut_traffic,
)


class TestOmegaDConstruction:
    @pytest.mark.parametrize("diameter", [3, 6, 10])
    def test_intact_second_path(self, diameter):
        inst = build_diameter_instance(diameter)
        assert two_sisp_length(inst) == diameter + 1
        assert expected_two_sisp(diameter, None) == diameter + 1

    @pytest.mark.parametrize("rev", [0, 2, 5])
    def test_reversed_edge_destroys_second_path(self, rev):
        inst = build_diameter_instance(6, reversed_edge=rev)
        assert two_sisp_length(inst) == INF

    def test_distributed_solver_distinguishes(self):
        for rev in (None, 1):
            inst = build_diameter_instance(7, reversed_edge=rev)
            got = solve_two_sisp(inst,
                                 landmarks=list(range(inst.n)))
            assert got.length == expected_two_sisp(7, rev)

    def test_rounds_grow_with_diameter(self):
        rounds = []
        for diameter in (4, 16):
            inst = build_diameter_instance(diameter)
            rounds.append(
                solve_two_sisp(inst,
                               landmarks=list(range(inst.n))).rounds)
        assert rounds[1] > rounds[0]

    def test_padding_clique(self):
        inst = build_diameter_instance(4, pad_to=30)
        assert inst.n == 30
        assert two_sisp_length(inst) == 5  # padding changes nothing

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            build_diameter_instance(1)


class TestCutAnalysis:
    def build(self):
        k = 2
        M = [[1, 0], [0, 1]]
        x = [1, 1, 1, 1]
        return build_hard_instance(k, 2, 1, M, x)

    def test_cut_partitions_vertices(self):
        hard = self.build()
        alice = bipartite_cut(hard)
        assert hard.alpha in alice
        assert hard.beta not in alice
        assert 0 < len(alice) < hard.n

    def test_traffic_crosses_cut_on_real_run(self):
        hard = self.build()

        def run(net):
            from repro.congest.spanning_tree import build_spanning_tree
            from repro.core.knowledge import oracle_knowledge
            from repro.core.long_detour import long_detour_lengths
            from repro.core.short_detour import short_detour_lengths
            knowledge = oracle_knowledge(hard.instance)
            tree = build_spanning_tree(net)
            zeta = 4
            short_detour_lengths(hard.instance, net, knowledge, zeta)
            long_detour_lengths(
                hard.instance, net, tree, knowledge, zeta,
                landmarks=list(range(hard.n)))

        report = measure_cut_traffic(hard, run)
        # Any correct run must move information across the cut: the
        # optimal detours thread the bipartite gadget.
        assert report.crossing_words > 0
        assert report.payload_bits == 4
        assert report.total_words >= report.crossing_words
        assert report.rounds > 0
        assert report.words_per_round > 0

    def test_crossing_at_least_payload_on_decisive_run(self):
        # Information-theoretically, decoding all of M requires at least
        # k² bits to cross; our (word-level, hence generous) measurement
        # must certainly exceed that.
        hard = self.build()

        def run(net):
            from repro.congest.spanning_tree import build_spanning_tree
            from repro.core.knowledge import oracle_knowledge
            from repro.core.long_detour import long_detour_lengths
            knowledge = oracle_knowledge(hard.instance)
            tree = build_spanning_tree(net)
            long_detour_lengths(
                hard.instance, net, tree, knowledge, 4,
                landmarks=list(range(hard.n)))

        report = measure_cut_traffic(hard, run)
        assert report.crossing_words >= report.payload_bits
