"""Dynamic graphs under fault storms (ISSUE 10).

The contract under test: a seedable mutation stream whose applied
batches bump a topology-version epoch and re-derive P; incremental
invalidation that rotates only the mutated instance's oracle (with the
fallback memo carried forward iff no applied mutation could have
touched the row); topology-versioned spill keys that refuse to
resurrect into a newer epoch; degraded-mode stale serving; chaos-level
convergence; and closed telemetry enums for all of it.
"""

import json
import threading

import pytest

from repro.dynamic import (
    Mutation,
    MutationStream,
    PROFILES,
    apply_mutations,
    ground_truth_length,
    run_chaos,
)
from repro.dynamic.stream import AppliedMutation
from repro.graphs.generators import random_instance
from repro.graphs.instance import RPathsInstance
from repro.runtime.store import ResultStore, cell_key
from repro.runtime.results import CellResult, CellSpec
from repro.serve import (
    Query,
    ReplacementPathOracle,
    ShardedQueryService,
    centralized_truth,
    spill_key,
)
from repro.serve.oracle import carry_fallback_memo
from repro.telemetry import counters as counters_mod
from repro.telemetry.dynamic import (
    MUT_FAIL,
    MUT_HEAL,
    MUT_WEIGHT,
    unknown_dynamic_labels,
)


def _instance(n=20, seed=0, name="dyn-test", weighted=False):
    return random_instance(n, seed=seed, name=name, weighted=weighted)


class TestMutationStream:
    def test_same_seed_is_bit_identical(self):
        def replay():
            inst = _instance()
            stream = MutationStream(seed=7)
            chain = []
            for _ in range(5):
                result = stream.step(inst, profile="burst", count=4)
                inst = result.instance
                chain.append((inst.topology_version,
                              tuple(inst.path),
                              tuple(sorted(inst.edges))))
            return chain

        assert replay() == replay()

    def test_every_profile_yields_valid_successors(self):
        for profile in PROFILES:
            inst = _instance(seed=3, weighted=(profile == "burst"))
            stream = MutationStream(seed=11)
            for step in range(3):
                kwargs = {"step": step} if profile == "maintenance" \
                    else {}
                result = stream.step(inst, profile=profile, **kwargs)
                inst = result.instance
                inst.validate()  # raises on any broken invariant
                assert inst.topology_version <= step + 1

    def test_disconnecting_failures_are_skipped(self):
        # A pure path graph: every edge is a bridge, so every failure
        # would disconnect s from t and must be refused.
        inst = RPathsInstance(
            n=7, edges=[(i, i + 1, 1) for i in range(6)],
            path=list(range(7)), name="bridge-path")
        inst.validate()
        batch = [Mutation(MUT_FAIL, e) for e in inst.path_edges()]
        result = apply_mutations(inst, batch)
        assert not result.applied
        assert {r for _m, r in result.skipped} == {"disconnects"}
        # Nothing applied: the instance (and its epoch) is unchanged.
        assert result.instance is inst
        assert result.epoch == 0

    def test_skip_reasons_cover_bad_input(self):
        inst = _instance()
        present = inst.path_edges()[0]
        edge_set = {(u, v) for u, v, _ in inst.edges}
        missing = next(
            (u, v) for u in range(inst.n) for v in range(inst.n)
            if u != v and (u, v) not in edge_set)
        batch = [
            Mutation(MUT_FAIL, missing),          # absent, in-range
            Mutation(MUT_HEAL, present),          # already present
            Mutation(MUT_WEIGHT, present, 3),     # unweighted graph
            Mutation(MUT_FAIL, (0, 0)),           # self-loop
            Mutation("explode", present),         # unknown kind
        ]
        result = apply_mutations(inst, batch)
        reasons = sorted(r for _m, r in result.skipped)
        assert reasons == sorted([
            "unknown-edge", "duplicate-edge", "unweighted",
            "invalid", "invalid"])

    def test_heal_restores_failed_edge_with_original_weight(self):
        inst = _instance(weighted=True)
        stream = MutationStream(seed=1)
        # Fail a non-bridge edge, then heal it via the stream's pool.
        for edge in [(u, v) for u, v, _ in inst.edges]:
            result = apply_mutations(inst,
                                     [Mutation(MUT_FAIL, edge)])
            if result.applied:
                break
        assert result.applied
        stream.note_applied(inst.name, result.applied)
        assert stream.failed_edges(inst.name) == [edge]
        healed = apply_mutations(
            result.instance,
            [Mutation(MUT_HEAL, edge,
                      result.applied[0].old_weight)])
        assert healed.applied
        assert healed.epoch == 2
        assert (sorted(healed.instance.edges)
                == sorted(inst.edges))

    def test_epoch_bumps_and_path_rederived(self):
        inst = _instance(seed=5)
        stream = MutationStream(seed=5)
        result = stream.step(inst, profile="storm", fraction=0.3)
        assert result.applied
        new = result.instance
        assert new.topology_version == 1
        assert new.versioned_key == f"{inst.name}@1"
        # P is a real shortest path of the mutated graph.
        dist = new.dijkstra(new.s)
        path_len = sum(w for (u, v, w) in new.path_edge_weights()) \
            if hasattr(new, "path_edge_weights") else None
        assert dist[new.t] < 10 ** 9
        assert len(new.path) >= 2
        new.validate()


class TestMemoCarry:
    def _seeded_oracles(self, inst, new, rows):
        old = ReplacementPathOracle.build(inst, solver="centralized")
        for s, edge in rows:
            old.query(s, inst.t, edge)  # populate the fallback memo
        fresh = ReplacementPathOracle.build(new, solver="centralized")
        return old, fresh

    def test_carried_rows_are_bit_identical_to_rebuild(self):
        inst = _instance(n=18, seed=2)
        stream = MutationStream(seed=9)
        result = stream.step(inst, profile="burst", count=3)
        assert result.applied
        new = result.instance
        rows = [(1, inst.path_edges()[0]),
                (2, inst.path_edges()[-1])]
        old, fresh = self._seeded_oracles(inst, new, rows)
        kept, dropped = carry_fallback_memo(old, fresh,
                                            result.applied)
        assert kept + dropped == len(old._fallback)
        # Soundness: every surviving row answers exactly like a
        # from-scratch solve on the NEW topology.
        for (s, edge), dist in fresh._fallback.items():
            want = new.dijkstra(s, avoid_edges=frozenset([edge]))
            assert list(dist) == list(want), (s, edge)

    def test_affected_rows_are_dropped(self):
        inst = _instance(n=18, seed=4)
        old = ReplacementPathOracle.build(inst, solver="centralized")
        # A non-canonical source routes through the fallback memo
        # ((s, t) == (inst.s, inst.t) is answered from the oracle).
        s = inst.path[1]
        avoid = inst.path_edges()[0]
        old.query(s, inst.t, avoid)
        assert old._fallback
        dist = next(iter(old._fallback.values()))
        # Fabricate a mutation that removes a TIGHT edge of that row:
        # find (u, v, w) on a shortest path (dist[u] + w == dist[v]).
        tight = None
        for u, v, w in inst.edges:
            if (u, v) != avoid and dist[u] + w == dist[v] \
                    and dist[u] < 10 ** 9:
                tight = AppliedMutation(MUT_FAIL, (u, v), w, w)
                break
        assert tight is not None
        result = apply_mutations(inst,
                                 [Mutation(MUT_FAIL, tight.edge)])
        if not result.applied:
            pytest.skip("tight edge is a bridge in this seed")
        fresh = ReplacementPathOracle.build(result.instance,
                                            solver="centralized")
        kept, dropped = carry_fallback_memo(old, fresh,
                                            result.applied)
        assert dropped >= 1


class TestIncrementalInvalidation:
    def test_only_mutated_instance_rotates(self):
        insts = [_instance(seed=i, name=f"inv-{i}") for i in range(3)]
        service = ShardedQueryService(insts, shards=2, capacity=4,
                                      solver="centralized")
        probes = [Query(s=i.s, t=i.t, edge=i.path_edges()[0],
                        instance=i.name) for i in insts]
        service.serve(probes)
        builds_before = service.serve([]).totals().oracle_builds
        assert builds_before == 3

        stream = MutationStream(seed=3)
        result = service.apply_mutations(
            "inv-0", stream.burst(insts[0], 4))
        assert result.applied

        current = {inst.name: inst for inst in insts}
        current["inv-0"] = result.instance
        probes = [Query(s=i.s, t=i.t, edge=i.path_edges()[0],
                        instance=i.name)
                  for i in current.values()]
        answers = service.serve(probes).answers
        totals = service.serve([]).totals()
        # Exactly one invalidation, exactly one extra build: the other
        # two oracles never moved.
        assert totals.invalidations == 1
        assert totals.oracle_builds == 4
        for answer in answers:
            inst = current[answer.query.instance]
            q = answer.query
            assert answer.length == centralized_truth(
                inst, q.s, q.t, q.edge)

    def test_stale_answers_carry_epoch_lag(self):
        inst = _instance(seed=6, name="lag-0")
        service = ShardedQueryService([inst], shards=1, capacity=2,
                                      solver="centralized")
        shard = service.shard_for("lag-0")
        probe = Query(s=inst.s, t=inst.t,
                      edge=inst.path_edges()[0], instance="lag-0")
        before = shard.answer_batch([probe])[0]
        stream = MutationStream(seed=6)
        result = service.apply_mutations(
            "lag-0", stream.burst(inst, 3))
        assert result.applied
        assert not shard.has_hot("lag-0")
        stale = shard.answer_stale([probe])
        assert stale is not None
        answers, lags = stale
        assert lags == [1]
        assert answers[0].length == before.length
        assert shard.stats.stale_answers == 1
        # Once the new epoch's planner is built, staleness is over.
        shard.planner_for("lag-0")
        assert shard.answer_stale([probe]) is None

    def test_spill_refuses_to_resurrect_across_epochs(self, tmp_path):
        store = ResultStore(tmp_path)
        inst = _instance(seed=8, name="spill-0")
        service = ShardedQueryService([inst], shards=1, capacity=2,
                                      store=store,
                                      solver="centralized")
        probe = Query(s=inst.s, t=inst.t,
                      edge=inst.path_edges()[0], instance="spill-0")
        service.serve([probe])  # builds + spills under epoch 0
        assert spill_key("spill-0", "centralized", 0) \
            != spill_key("spill-0", "centralized", 1)
        stream = MutationStream(seed=8)
        result = service.apply_mutations(
            "spill-0", stream.burst(inst, 3))
        assert result.applied
        # The epoch-0 snapshot must NOT satisfy an epoch-1 load.
        snap = store.get(spill_key("spill-0", "centralized", 0))
        assert snap is not None
        revived = ReplacementPathOracle.from_snapshot(
            result.instance, snap.metrics)
        assert revived is None


class TestStoreGC:
    def _plant(self, store, scenario, params, version=None):
        spec = CellSpec.make(scenario, params, 0)
        result = CellResult(scenario=scenario, params=dict(params),
                            seed=0,
                            key=cell_key(spec, version=version))
        store.put(result)
        return result.key

    def test_gc_prunes_exactly_the_garbage(self, tmp_path):
        store = ResultStore(tmp_path)
        live = self._plant(store, "serve-oracle",
                           {"instance": "a", "solver": "c",
                            "topology_version": 2})
        old_epoch = self._plant(store, "serve-oracle",
                                {"instance": "a", "solver": "c",
                                 "topology_version": 1})
        old_code = self._plant(store, "serve-oracle",
                               {"instance": "b", "solver": "c"},
                               version="0123456789abcdef")
        (store.objects_dir / "junk0000.json").write_text("{nope")

        dry = store.gc(dry_run=True)
        assert dry["scanned"] == 4
        assert dry["pruned"] == 3
        assert len(store) == 4  # dry run touched nothing

        report = store.gc()
        assert report["reasons"] == {"corrupt": 1,
                                     "superseded_code": 1,
                                     "superseded_topology": 1}
        assert len(store) == 1
        assert store.get(live) is not None
        assert store.get(old_epoch) is None
        assert store.get(old_code) is None

    def test_gc_on_empty_store_is_a_noop(self, tmp_path):
        report = ResultStore(tmp_path / "missing").gc()
        assert report["scanned"] == 0
        assert report["pruned"] == 0


class TestChaosConvergence:
    def test_short_storm_converges_bit_identically(self):
        insts = [_instance(n=16, seed=20 + i, name=f"chaos-{i}")
                 for i in range(2)]
        report = run_chaos(insts, duration=1.0, seed=1, workers=2,
                           solver="centralized", kills=1, stalls=1,
                           stall_seconds=0.1, mutation_bursts=2,
                           burst_size=3, max_staleness=8)
        assert report.converged, report.as_json()
        assert report.verified > 0
        assert not report.mismatches
        assert report.mutation_batches == 2
        assert set(report.outcomes) <= {"ok", "stale"}
        assert json.dumps(report.as_json())


class TestCLI:
    def test_mutate_json_replays_deterministically(self, capsys):
        from repro.cli import main
        argv = ["mutate", "--n", "20", "--steps", "3",
                "--profile", "storm", "--fraction", "0.2", "--json"]
        assert main(argv) == 0
        first = json.loads(capsys.readouterr().out)
        assert main(argv) == 0
        second = json.loads(capsys.readouterr().out)
        assert first == second
        assert first["final_epoch"] >= 1
        assert len(first["steps"]) == 3
        assert not first["failures"]

    def test_store_gc_cli_dry_run_then_prune(self, tmp_path, capsys):
        from repro.cli import main
        store = ResultStore(tmp_path)
        spec = CellSpec.make("serve-oracle",
                            {"instance": "x", "solver": "c"}, 0)
        store.put(CellResult(
            scenario="serve-oracle",
            params={"instance": "x", "solver": "c"}, seed=0,
            key=cell_key(spec, version="feedfacefeedface")))
        assert main(["store", "gc", "--cache-dir", str(tmp_path),
                     "--dry-run", "--json"]) == 0
        dry = json.loads(capsys.readouterr().out)
        assert dry["dry_run"] is True
        assert dry["pruned"] == 1
        assert len(store) == 1
        assert main(["store", "gc", "--cache-dir", str(tmp_path),
                     "--json"]) == 0
        real = json.loads(capsys.readouterr().out)
        assert real["pruned"] == 1
        assert len(store) == 0

    def test_query_timeout_degrades_off_main_thread(self, capsys):
        from repro.cli import main
        codes = []

        def run():
            codes.append(main(["query", "--n", "12", "--timeout", "5",
                               "--json"]))

        worker = threading.Thread(target=run)
        worker.start()
        worker.join()
        assert codes == [0]
        data = json.loads(capsys.readouterr().out)
        assert data["outcome"] == "timeout_unsupported"
        assert data["timeout_enforced"] is False
        assert data["kind"]  # the query itself was still answered

    def test_query_timeout_enforced_on_main_thread(self, capsys):
        from repro.cli import main
        assert main(["query", "--n", "12", "--timeout", "30",
                     "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["outcome"] == "ok"
        assert data["timeout_enforced"] is True


class TestTelemetryEnums:
    def test_dynamic_counters_stay_inside_closed_enums(self):
        inst = _instance(seed=12, weighted=True)
        stream = MutationStream(seed=12)
        current = inst
        for step in range(3):
            current = stream.step(current, profile="burst",
                                  count=4).instance
        service = ShardedQueryService([current], shards=1,
                                      solver="centralized")
        service.serve([Query(s=current.s, t=current.t,
                             edge=current.path_edges()[0],
                             instance=current.name)])
        service.apply_mutations(current.name,
                                stream.burst(current, 2))
        counters = counters_mod.registry.snapshot()["counters"]
        assert unknown_dynamic_labels(counters) == []

    def test_ground_truth_helper_matches_centralized(self):
        inst = _instance(seed=14)
        edge = inst.path_edges()[0]
        assert ground_truth_length(inst, inst.s, inst.t, edge) \
            == centralized_truth(inst, inst.s, inst.t, edge)
