"""Strict/fast fabric equivalence (the PR's core invariant).

The batched fabric (``fabric="fast"`` / ``"strict"``) must be
byte-identical to the pre-fabric per-message engine
(``fabric="reference"``) in everything observable: delivered inboxes,
algorithm outputs, word counts, and :class:`RoundLedger` contents.

Two layers of evidence:

* a message-level fuzz: random outboxes over random communication
  graphs pushed through all three engines, asserting identical inboxes
  and ledgers round by round;
* property-style algorithm runs: BFS, broadcast, multisource, and the
  spanning-tree builder executed end-to-end over random instance
  families on each fabric, asserting identical results and ledgers.
"""

from __future__ import annotations

import random

import pytest

from repro.congest import (
    CongestNetwork,
    bfs_distances,
    bfs_tree,
    broadcast_messages,
    build_spanning_tree,
    multi_source_hop_bfs,
    sssp_distances_weighted,
)
from repro.congest.metrics import RoundLedger
from repro.graphs import (
    expander_instance,
    power_law_instance,
    random_instance,
)

FABRICS = ("reference", "strict", "fast")


def ledger_snapshot(ledger: RoundLedger):
    """Everything the ledger records, phase by phase."""
    return [stats.as_dict() for stats in ledger.phases()]


def make_nets(instance):
    return {fabric: instance.build_network(fabric=fabric)
            for fabric in FABRICS}


def assert_all_equal(by_fabric, context: str):
    reference = by_fabric["reference"]
    for fabric in ("strict", "fast"):
        assert by_fabric[fabric] == reference, (context, fabric)


# -- message-level fuzz -----------------------------------------------------


class TestExchangeFuzz:
    def test_random_outboxes_identical_across_fabrics(self):
        rng = random.Random(20250728)
        for trial in range(25):
            n = rng.randint(4, 24)
            instance = random_instance(
                n, avg_degree=rng.uniform(2.0, 5.0), seed=trial)
            nets = {
                fabric: instance.build_network(fabric=fabric)
                for fabric in FABRICS
            }
            links = [(u, v)
                     for u in range(instance.n)
                     for v in nets["reference"].neighbors(u)]
            for _ in range(rng.randint(3, 8)):
                outbox = {}
                for u, v in rng.sample(links,
                                       rng.randint(0, len(links))):
                    payload = rng.choice([
                        rng.randrange(1000),
                        ("tag", rng.randrange(50)),
                        ("hop", rng.randrange(9), rng.randrange(9)),
                        (rng.randrange(5), "a-longer-string-payload"),
                    ])
                    outbox.setdefault(u, []).append((v, payload))
                inboxes = {
                    fabric: net.exchange(outbox)
                    for fabric, net in nets.items()
                }
                assert_all_equal(inboxes, f"trial {trial}")
            ledgers = {fabric: ledger_snapshot(net.ledger)
                       for fabric, net in nets.items()}
            assert_all_equal(ledgers, f"trial {trial} ledger")

    def test_per_receiver_order_is_sender_ascending(self):
        net = CongestNetwork(4, [(0, 1), (2, 1), (3, 1)])
        inbox = net.exchange({
            3: [(1, ("c",))],
            0: [(1, ("a",)), (1, ("b",))],
            2: [(1, ("d",))],
        })
        assert inbox == {1: [(0, ("a",)), (0, ("b",)),
                             (2, ("d",)), (3, ("c",))]}

    def test_bandwidth_accounting_matches(self):
        for fabric in FABRICS:
            net = CongestNetwork(2, [(0, 1)], bandwidth_words=2,
                                 fabric=fabric)
            net.exchange({0: [(1, (1, 2, 3))], 1: [(0, (9,))]})
            assert net.ledger.violations == 1, fabric
            assert net.ledger.max_link_words == 3, fabric
            assert net.ledger.words == 4, fabric

    @pytest.mark.parametrize("fabric", ["fast", "strict"])
    def test_failed_round_leaves_state_clean(self, fabric):
        # Regression: a validation error raised mid-routing must not
        # leave already-routed payloads in the recycled link buffers —
        # that silently swallowed every later message on those links.
        from repro.congest import NotALinkError
        net = CongestNetwork(4, [(0, 1), (2, 3)], fabric=fabric)
        with pytest.raises(NotALinkError):
            net.exchange({0: [(1, ("routed",)), (3, ("bad",))]})
        inbox = net.exchange({0: [(1, ("fresh",))]})
        assert inbox == {1: [(0, ("fresh",))]}
        assert net.ledger.words == 1  # only the fresh round's word

    def test_link_totals_match(self):
        totals = {}
        for fabric in FABRICS:
            net = CongestNetwork(3, [(0, 1), (1, 2)], fabric=fabric)
            net.record_link_totals = True
            net.exchange({0: [(1, (1, 2))], 2: [(1, (3,))]})
            net.exchange({1: [(0, (4, 5, 6))]})
            totals[fabric] = dict(net.link_totals)
        assert_all_equal(totals, "link totals")


# -- algorithm-level equivalence -------------------------------------------


def _instances():
    yield random_instance(18, avg_degree=3.0, seed=7)
    yield random_instance(24, avg_degree=4.0, seed=11, weighted=True)
    yield expander_instance(20, degree=3, seed=3)
    yield power_law_instance(22, attach=2, seed=5)


class TestAlgorithmEquivalence:
    @pytest.mark.parametrize("direction", ["out", "in"])
    def test_bfs_identical(self, direction):
        for instance in _instances():
            nets = make_nets(instance)
            results = {
                fabric: bfs_distances(net, instance.s,
                                      direction=direction)
                for fabric, net in nets.items()
            }
            assert_all_equal(results, f"bfs {instance.name}")
            ledgers = {fabric: ledger_snapshot(net.ledger)
                       for fabric, net in nets.items()}
            assert_all_equal(ledgers, f"bfs ledger {instance.name}")

    def test_bfs_tree_identical(self):
        for instance in _instances():
            nets = make_nets(instance)
            results = {fabric: bfs_tree(net, instance.s)
                       for fabric, net in nets.items()}
            assert_all_equal(results, f"bfs-tree {instance.name}")

    def test_weighted_sssp_identical(self):
        instance = random_instance(16, avg_degree=3.0, seed=13,
                                   weighted=True, max_weight=4)
        nets = make_nets(instance)
        results = {fabric: sssp_distances_weighted(net, instance.s)
                   for fabric, net in nets.items()}
        assert_all_equal(results, "sssp")
        ledgers = {fabric: ledger_snapshot(net.ledger)
                   for fabric, net in nets.items()}
        assert_all_equal(ledgers, "sssp ledger")

    def test_broadcast_identical(self):
        for instance in _instances():
            nets = make_nets(instance)
            outcome = {}
            for fabric, net in nets.items():
                tree = build_spanning_tree(net)
                messages = {
                    v: [("m", v, i) for i in range(1 + v % 3)]
                    for v in range(0, net.n, 2)
                }
                received = broadcast_messages(net, tree, messages)
                outcome[fabric] = (tree, received,
                                   ledger_snapshot(net.ledger))
            assert_all_equal(outcome, f"broadcast {instance.name}")

    def test_multisource_identical(self):
        for instance in _instances():
            nets = make_nets(instance)
            sources = sorted({instance.s, instance.t,
                              instance.n // 2})
            results = {
                fabric: multi_source_hop_bfs(net, sources, hop_limit=6)
                for fabric, net in nets.items()
            }
            assert_all_equal(results, f"ksrc {instance.name}")
            ledgers = {fabric: ledger_snapshot(net.ledger)
                       for fabric, net in nets.items()}
            assert_all_equal(ledgers, f"ksrc ledger {instance.name}")

    def test_full_solver_identical_rounds_and_lengths(self):
        from repro.core.rpaths import solve_rpaths
        from repro.graphs import path_with_chords_instance

        instance = path_with_chords_instance(24, seed=2)
        baseline = None
        for fabric in FABRICS:
            fresh = path_with_chords_instance(24, seed=2)
            report = solve_rpaths(fresh, seed=5, fabric=fabric)
            summary = (list(report.lengths), report.rounds,
                       report.ledger.words,
                       report.ledger.max_link_words)
            if baseline is None:
                baseline = summary
            else:
                assert summary == baseline, fabric
        assert instance.n == fresh.n  # families are deterministic
