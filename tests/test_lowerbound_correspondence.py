"""Tests for Lemma 6.8 (lowerbound.correspondence) and the
disjointness reduction (Lemma 6.9, lowerbound.reduction)."""

import random

import pytest

from repro.lowerbound import (
    bits_to_matrix,
    build_hard_instance,
    decide_disjointness_via_two_sisp,
    decode_matrix_from_lengths,
    disjointness,
    expected_optimal_length,
    inner_product,
    verify_correspondence,
)
from repro.lowerbound.disjointness import (
    TrivialDisjointnessProtocol,
    disjointness_lower_bound_bits,
)


class TestLemma68:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_inputs_k2(self, seed):
        rng = random.Random(seed)
        k = 2
        M = [[rng.randint(0, 1) for _ in range(k)] for _ in range(k)]
        x = [rng.randint(0, 1) for _ in range(k * k)]
        hard = build_hard_instance(k, 2, 1, M, x)
        report = verify_correspondence(hard)
        assert report.holds, report.violations

    @pytest.mark.parametrize("seed", range(2))
    def test_random_inputs_k3(self, seed):
        rng = random.Random(100 + seed)
        k = 3
        M = [[rng.randint(0, 1) for _ in range(k)] for _ in range(k)]
        x = [rng.randint(0, 1) for _ in range(k * k)]
        hard = build_hard_instance(k, 2, 1, M, x)
        report = verify_correspondence(hard)
        assert report.holds, report.violations

    def test_larger_tree_depth(self):
        rng = random.Random(7)
        k = 2
        M = [[rng.randint(0, 1) for _ in range(k)] for _ in range(k)]
        x = [rng.randint(0, 1) for _ in range(k * k)]
        hard = build_hard_instance(k, 2, 2, M, x)
        assert verify_correspondence(hard).holds

    def test_hit_count_matches_inner_structure(self):
        k = 2
        M = [[1, 0], [0, 1]]
        x = [1, 1, 0, 1]
        hard = build_hard_instance(k, 2, 1, M, x)
        report = verify_correspondence(hard)
        # hits = x_i ∧ M_{φ(i)} with φ row-major: positions 1 and 4.
        assert report.hits == [True, False, False, True]

    def test_decode_matrix_under_full_x(self):
        rng = random.Random(11)
        k = 3
        M = [[rng.randint(0, 1) for _ in range(k)] for _ in range(k)]
        hard = build_hard_instance(k, 2, 1, M, [1] * (k * k))
        from repro.baselines import replacement_lengths
        lengths = replacement_lengths(hard.instance)
        decoded = decode_matrix_from_lengths(lengths, k, 2, 1)
        assert decoded == M

    def test_optimal_length_formula(self):
        assert expected_optimal_length(2, 2, 1) == 12 + 4 + 4
        assert expected_optimal_length(3, 2, 2) == 27 + 8 + 4


class TestDisjointnessBasics:
    def test_inner_product(self):
        assert inner_product([1, 0, 1], [1, 1, 0]) == 1
        with pytest.raises(ValueError):
            inner_product([1], [1, 0])

    def test_disjointness_values(self):
        assert disjointness([1, 0], [0, 1]) == 1
        assert disjointness([1, 0], [1, 0]) == 0

    def test_trivial_protocol_bits(self):
        answer, transcript = TrivialDisjointnessProtocol().run(
            [1, 0, 1, 1], [0, 1, 0, 0])
        assert answer == 1
        assert transcript.alice_bits == 4
        assert transcript.bob_bits == 1
        assert transcript.total_bits == 5
        assert transcript.total_bits >= disjointness_lower_bound_bits(4)

    def test_transcript_rejects_non_bits(self):
        from repro.lowerbound.disjointness import Transcript
        with pytest.raises(ValueError):
            Transcript().send("alice", "2x")


class TestLemma69Reduction:
    def test_bits_to_matrix_row_major(self):
        assert bits_to_matrix([1, 0, 0, 1], 2) == [[1, 0], [0, 1]]
        with pytest.raises(ValueError):
            bits_to_matrix([1, 0], 2)

    @pytest.mark.parametrize("seed", range(4))
    def test_end_to_end_random(self, seed):
        rng = random.Random(seed)
        k = 2
        x = [rng.randint(0, 1) for _ in range(k * k)]
        y = [rng.randint(0, 1) for _ in range(k * k)]
        report = decide_disjointness_via_two_sisp(
            x, y, k, use_oracle_knowledge=True)
        assert report.correct, (x, y, report)

    def test_intersecting_inputs(self):
        report = decide_disjointness_via_two_sisp(
            [1, 0, 0, 0], [1, 0, 0, 0], 2, use_oracle_knowledge=True)
        assert report.expected == 0 and report.decided == 0
        assert report.two_sisp_length == report.optimal_length

    def test_disjoint_inputs(self):
        report = decide_disjointness_via_two_sisp(
            [1, 0, 0, 0], [0, 1, 1, 1], 2, use_oracle_knowledge=True)
        assert report.expected == 1 and report.decided == 1
        assert report.two_sisp_length > report.optimal_length

    def test_all_zero_alice(self):
        report = decide_disjointness_via_two_sisp(
            [0, 0, 0, 0], [1, 1, 1, 1], 2, use_oracle_knowledge=True)
        assert report.correct and report.expected == 1
