"""Tests for the pruned hop-constrained BFS (Lemma 4.2, core.hop_bfs).

The reference implementation computes f*_u(d) independently via boolean
reachability matrices over G \\ P: f*_u(d) = max{ j : A^d[u][path[j]] },
exactly the "walk of length exactly d" semantics of the lemma.
"""

import numpy as np
import pytest

from repro.core.hop_bfs import pruned_max_hop_bfs
from repro.graphs import grid_instance, random_instance


def reference_fstar(instance, hop_limit, select="max"):
    """Matrix-power reference for f*/g* (exact-length walks in G\\P)."""
    n = instance.n
    avoid = instance.path_edge_set()
    adj = np.zeros((n, n), dtype=bool)
    for u, v, _ in instance.edges:
        if (u, v) not in avoid:
            adj[u][v] = True
    path = instance.path
    pos = {v: i for i, v in enumerate(path)}

    tables = {u: [None] * (hop_limit + 1) for u in path}
    reach = np.eye(n, dtype=bool)
    for d in range(hop_limit + 1):
        if d > 0:
            # backward sense: walks *from* u to path vertices.
            reach = reach @ adj
        for u in path:
            hits = [pos[path[j]] for j in range(len(path))
                    if reach[u][path[j]]]
            if hits:
                best = max(hits) if select == "max" else min(hits)
                tables[u][d] = best
    return tables


class TestPrunedBfsUnweighted:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_matrix_reference(self, seed):
        instance = random_instance(30, seed=seed)
        net = instance.build_network()
        zeta = 6
        knowledge = {v: i for i, v in enumerate(instance.path)}
        seeds = {v: (i, 0) for v, i in knowledge.items()}
        got = pruned_max_hop_bfs(
            net, seeds, hop_limit=zeta,
            avoid_edges=instance.path_edge_set(),
            record_for=instance.path)
        want = reference_fstar(instance, zeta)
        for u in instance.path:
            got_idx = [e[0] if e else None for e in got[u]]
            assert got_idx == want[u], f"vertex {u}"

    def test_grid_reference(self):
        instance = grid_instance(3, 6)
        net = instance.build_network()
        seeds = {v: (i, 0) for i, v in enumerate(instance.path)}
        got = pruned_max_hop_bfs(
            net, seeds, hop_limit=5,
            avoid_edges=instance.path_edge_set(),
            record_for=instance.path)
        want = reference_fstar(instance, 5)
        for u in instance.path:
            assert [e[0] if e else None for e in got[u]] == want[u]

    def test_deterministic_round_budget(self):
        instance = grid_instance(3, 5)
        net = instance.build_network()
        seeds = {v: (i, 0) for i, v in enumerate(instance.path)}
        pruned_max_hop_bfs(net, seeds, hop_limit=7,
                           avoid_edges=instance.path_edge_set())
        assert net.rounds == 7  # exactly ζ rounds, Proposition 4.1

    def test_congestion_is_constant(self):
        instance = random_instance(40, seed=5)
        net = instance.build_network()
        seeds = {v: (i, 0) for i, v in enumerate(instance.path)}
        pruned_max_hop_bfs(net, seeds, hop_limit=8,
                           avoid_edges=instance.path_edge_set())
        # One (tag, index, aux) message per link per round: the whole
        # point of the pruning.
        assert net.ledger.max_link_words <= 3

    def test_aux_rides_along(self):
        instance = grid_instance(3, 4)
        net = instance.build_network()
        seeds = {v: (i, 100 + i) for i, v in enumerate(instance.path)}
        got = pruned_max_hop_bfs(
            net, seeds, hop_limit=4,
            avoid_edges=instance.path_edge_set(),
            record_for=instance.path)
        for u in instance.path:
            for entry in got[u]:
                if entry is not None:
                    assert entry[1] == 100 + entry[0]

    def test_record_for_filters_output(self):
        instance = grid_instance(3, 4)
        net = instance.build_network()
        seeds = {v: (i, 0) for i, v in enumerate(instance.path)}
        got = pruned_max_hop_bfs(
            net, seeds, hop_limit=3,
            avoid_edges=instance.path_edge_set(),
            record_for=[instance.s])
        assert set(got) == {instance.s}

    def test_invalid_modes_rejected(self):
        instance = grid_instance(2, 3)
        net = instance.build_network()
        with pytest.raises(ValueError):
            pruned_max_hop_bfs(net, {}, 2, sense="diagonal")
        with pytest.raises(ValueError):
            pruned_max_hop_bfs(net, {}, 2, select="median")


class TestForwardMinMode:
    def test_matches_reverse_reference(self):
        # g*_u(d) = min j with a walk path[j] -> u of exactly d hops;
        # check via the transposed matrix reference.
        instance = random_instance(30, seed=7)
        n = instance.n
        avoid = instance.path_edge_set()
        adj = np.zeros((n, n), dtype=bool)
        for u, v, _ in instance.edges:
            if (u, v) not in avoid:
                adj[u][v] = True
        path = instance.path
        hop = 5

        net = instance.build_network()
        seeds = {v: (i, 0) for i, v in enumerate(path)}
        got = pruned_max_hop_bfs(
            net, seeds, hop_limit=hop, avoid_edges=avoid,
            record_for=path, sense="forward", select="min")

        reach = np.eye(n, dtype=bool)
        for d in range(hop + 1):
            if d > 0:
                reach = adj.T @ reach  # walks *into* u
            for i, u in enumerate(path):
                hits = [j for j, w in enumerate(path) if reach[u][w]]
                want = min(hits) if hits else None
                entry = got[u][d]
                assert (entry[0] if entry else None) == want


class TestDelayedMode:
    def test_delay_expands_hops(self):
        # 3 <-w=2- 1 <-w=3- 0-ish chain in backward sense: build
        # 0 <- 1 <- 2 with weights; seed at vertex 0 (treated as a path
        # vertex of index 0) and watch arrival hops stretch by delay.
        from repro.congest.network import CongestNetwork
        net = CongestNetwork(3, [(1, 0, 3), (2, 1, 2)])
        got = pruned_max_hop_bfs(
            net, {0: (0, 0)}, hop_limit=10,
            delay=lambda w: w, record_for=[1, 2])
        assert got[1][3] == (0, 0)  # 3 subdivided hops across weight 3
        assert got[2][5] == (0, 0)
        assert got[2][2] is None

    def test_arrivals_beyond_budget_dropped(self):
        from repro.congest.network import CongestNetwork
        net = CongestNetwork(2, [(1, 0, 9)])
        got = pruned_max_hop_bfs(
            net, {0: (0, 0)}, hop_limit=4,
            delay=lambda w: w, record_for=[1])
        assert all(e is None for e in got[1][1:])
