"""Tests for Lemmas 5.4/5.6 (core.landmark_distances).

With the landmark set equal to all of V, hop-bounded BFS plus closure
must reproduce exact G \\ P distances deterministically; with sparser
sets the values must never *under*-shoot (they are path lengths).
"""

import pytest

from repro.congest.spanning_tree import build_spanning_tree
from repro.congest.words import INF
from repro.core.landmark_distances import (
    compute_landmark_distances,
    landmark_closure,
)
from repro.graphs import grid_instance, random_instance


def gp_distance_oracle(instance, sources, reverse=False):
    avoid = instance.path_edge_set()
    return [instance.dijkstra(s, reverse=reverse, avoid_edges=avoid)
            for s in sources]


class TestClosure:
    def test_identity_diagonal(self):
        closure = landmark_closure([[0, 5], [7, 0]])
        assert closure[0][0] == 0 and closure[1][1] == 0

    def test_two_hop_improvement(self):
        pair = [[0, 2, INF], [INF, 0, 3], [INF, INF, 0]]
        closure = landmark_closure(pair)
        assert closure[0][2] == 5

    def test_inf_propagation(self):
        closure = landmark_closure([[0, INF], [INF, 0]])
        assert closure[0][1] >= INF

    def test_hops_to_length_conversion(self):
        closure = landmark_closure([[0, 4], [INF, 0]],
                                   hops_to_length=lambda h: h * 3)
        assert closure[0][1] == 12


class TestFullLandmarkExactness:
    @pytest.mark.parametrize("builder,args", [
        (grid_instance, (3, 6)),
        (random_instance, (35,)),
    ])
    def test_from_and_to_exact(self, builder, args):
        instance = builder(*args)
        net = instance.build_network()
        tree = build_spanning_tree(net)
        landmarks = list(range(instance.n))
        dists = compute_landmark_distances(
            net, tree, landmarks, hop_limit=2,
            avoid_edges=instance.path_edge_set())
        want_from = gp_distance_oracle(instance, landmarks)
        want_to = gp_distance_oracle(instance, landmarks, reverse=True)
        assert dists.from_landmark == want_from
        assert dists.to_landmark == want_to

    def test_closure_equals_pairwise(self):
        instance = grid_instance(3, 5)
        net = instance.build_network()
        tree = build_spanning_tree(net)
        landmarks = list(range(instance.n))
        dists = compute_landmark_distances(
            net, tree, landmarks, hop_limit=1,
            avoid_edges=instance.path_edge_set())
        oracle = gp_distance_oracle(instance, landmarks)
        for a in range(len(landmarks)):
            for b in range(len(landmarks)):
                assert dists.closure[a][b] == min(
                    oracle[a][landmarks[b]], INF)


class TestSparseLandmarks:
    def test_never_undershoots(self):
        instance = random_instance(60, seed=41)
        net = instance.build_network()
        tree = build_spanning_tree(net)
        landmarks = list(range(0, 60, 7))
        dists = compute_landmark_distances(
            net, tree, landmarks, hop_limit=4,
            avoid_edges=instance.path_edge_set())
        oracle_from = gp_distance_oracle(instance, landmarks)
        oracle_to = gp_distance_oracle(instance, landmarks, reverse=True)
        for a in range(len(landmarks)):
            for v in range(instance.n):
                assert dists.from_landmark[a][v] >= min(
                    oracle_from[a][v], INF)
                assert dists.to_landmark[a][v] >= min(
                    oracle_to[a][v], INF)

    def test_hop_limit_large_enough_is_exact(self):
        instance = random_instance(40, seed=42)
        net = instance.build_network()
        tree = build_spanning_tree(net)
        landmarks = list(range(0, 40, 5))
        dists = compute_landmark_distances(
            net, tree, landmarks, hop_limit=instance.n,
            avoid_edges=instance.path_edge_set())
        assert dists.from_landmark == gp_distance_oracle(
            instance, landmarks)

    def test_empty_landmarks(self):
        instance = grid_instance(2, 3)
        net = instance.build_network()
        tree = build_spanning_tree(net)
        dists = compute_landmark_distances(
            net, tree, [], hop_limit=3,
            avoid_edges=instance.path_edge_set())
        assert dists.count == 0
