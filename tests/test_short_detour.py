"""Tests for Proposition 4.1 (core.short_detour) against the centralized
short-detour oracle."""

import pytest

from repro.baselines.centralized import (
    detour_replacement_lengths_with_threshold,
)
from repro.congest.words import INF
from repro.core.knowledge import oracle_knowledge
from repro.core.short_detour import short_detour_lengths, x_geq_from_table
from tests.conftest import family_instances


@pytest.mark.parametrize("idx", range(6))
@pytest.mark.parametrize("zeta", [2, 4, 8])
def test_matches_oracle_across_families(idx, zeta):
    instance = family_instances()[idx]
    net = instance.build_network()
    knowledge = oracle_knowledge(instance)
    got = short_detour_lengths(instance, net, knowledge, zeta)
    want, _ = detour_replacement_lengths_with_threshold(instance, zeta)
    assert got == want, instance.name


def test_round_budget_linear_in_zeta(grid):
    net = grid.build_network()
    knowledge = oracle_knowledge(grid)
    zeta = 5
    short_detour_lengths(grid, net, knowledge, zeta)
    # Stage 1 is exactly ζ rounds, stage 3 exactly ζ−1.
    assert net.rounds == zeta + (zeta - 1)


def test_no_short_detours_yields_inf():
    # Double path with a long alternative: with ζ below the detour hop
    # count, the short-detour stage must report INF everywhere.
    from repro.graphs import double_path_instance
    inst = double_path_instance(6, 4)  # detour has 10 hops
    net = inst.build_network()
    knowledge = oracle_knowledge(inst)
    got = short_detour_lengths(inst, net, knowledge, zeta=3)
    assert got == [INF] * inst.hop_count


def test_large_zeta_recovers_everything():
    from repro.graphs import double_path_instance
    from repro.baselines import replacement_lengths
    inst = double_path_instance(6, 4)
    net = inst.build_network()
    knowledge = oracle_knowledge(inst)
    got = short_detour_lengths(inst, net, knowledge, zeta=inst.n)
    assert got == replacement_lengths(inst)


class TestXGeqLocalComputation:
    def test_simple_table(self):
        # f*(1) = 2 means: 1-hop detour reaching v_2.
        # At i = 0 with h_st = 3: X[0, ≥2] = 3 − 2 + 1 = 2.
        table = [None, (2, 0), None, None]
        x = x_geq_from_table(table, i=0, hop_count=3, zeta=3)
        assert x[2] == 2
        assert x[3] == INF
        assert x[1] == 2  # monotone closure over j

    def test_later_hits_do_not_improve_earlier_j(self):
        table = [None, (1, 0), (3, 0), None]
        x = x_geq_from_table(table, i=0, hop_count=3, zeta=3)
        # j = 3 via 2 hops: 3 − 3 + 2 = 2; j = 1 via 1 hop: 3 − 1 + 1 = 3.
        assert x[3] == 2
        assert x[1] == 2  # the j=3 detour also covers "≥ 1"

    def test_entries_behind_i_ignored(self):
        table = [None, (0, 0), None]
        x = x_geq_from_table(table, i=1, hop_count=2, zeta=2)
        assert x[2] == INF

    def test_zeta_truncates_table(self):
        table = [None, None, None, (2, 0)]
        x = x_geq_from_table(table, i=0, hop_count=2, zeta=2)
        assert x[2] == INF  # the hit at hop 3 is beyond ζ = 2
