"""Tests for the Section 6 graph constructions (Figures 1 and 2)."""

import pytest

from repro.congest.words import INF
from repro.lowerbound import (
    build_gamma_graph,
    build_hard_instance,
    expected_optimal_length,
    lexicographic_phi,
    undirected_diameter,
)


class TestGammaGraph:
    @pytest.mark.parametrize("gamma,d,p", [
        (2, 2, 1), (4, 2, 2), (3, 3, 1), (2, 2, 3),
    ])
    def test_observation_6_3_vertex_count(self, gamma, d, p):
        g = build_gamma_graph(gamma, d, p)
        assert g.n == g.expected_vertex_count()
        assert g.n == gamma * d ** p + (d ** (p + 1) - 1) // (d - 1)

    def test_observation_6_3_diameter_when_paths_long(self):
        # The 2p+2 diameter requires the paths to be longer than the
        # tree route: d^p ≥ 2p + 1.
        g = build_gamma_graph(2, 2, 3)  # d^p = 8 ≥ 7
        assert undirected_diameter(g) == g.expected_diameter() == 8

    def test_diameter_never_exceeds_bound(self):
        for gamma, d, p in [(2, 2, 1), (4, 2, 2), (3, 3, 1)]:
            g = build_gamma_graph(gamma, d, p)
            assert undirected_diameter(g) <= 2 * p + 2

    def test_alpha_beta_are_extreme_leaves(self):
        g = build_gamma_graph(3, 2, 2)
        assert g.name_of[g.alpha] == ("tree", 2, 0)
        assert g.name_of[g.beta] == ("tree", 2, 3)

    def test_leaf_attachment_degree(self):
        # Each leaf attaches to Γ path vertices.
        g = build_gamma_graph(5, 2, 1)
        from collections import Counter
        degree = Counter()
        for u, v in g.edges:
            degree[u] += 1
            degree[v] += 1
        assert degree[g.alpha] == 1 + 5  # tree parent + Γ paths

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            build_gamma_graph(0, 2, 1)
        with pytest.raises(ValueError):
            build_gamma_graph(2, 1, 1)


class TestPhi:
    def test_bijection(self):
        k = 4
        phi = lexicographic_phi(k)
        images = {phi(i) for i in range(1, k * k + 1)}
        assert len(images) == k * k
        assert all(1 <= a <= k and 1 <= b <= k for a, b in images)

    def test_out_of_range(self):
        phi = lexicographic_phi(3)
        with pytest.raises(ValueError):
            phi(0)
        with pytest.raises(ValueError):
            phi(10)


class TestHardInstance:
    def build(self, k=2, d=2, p=1, m_bit=1, x_bit=1):
        M = [[m_bit] * k for _ in range(k)]
        x = [x_bit] * (k * k)
        return build_hard_instance(k, d, p, M, x)

    def test_observation_6_6_exact_count(self):
        for k, d, p in [(2, 2, 1), (2, 2, 2), (3, 2, 1)]:
            hard = build_hard_instance(
                k, d, p, [[1] * k for _ in range(k)], [1] * (k * k))
            assert hard.n == hard.expected_vertex_count_order()

    def test_diameter_at_most_2p_plus_2(self):
        hard = self.build(k=2, d=2, p=2)
        net = hard.instance.build_network()
        assert net.undirected_diameter() <= 2 * 2 + 2

    def test_pstar_is_the_given_path(self):
        hard = self.build()
        ksq = hard.k ** 2
        assert hard.instance.hop_count == ksq
        assert [hard.name_of[v] for v in hard.instance.path] == \
            [("s", i) for i in range(ksq + 1)]

    def test_tree_unreachable_from_s(self):
        # No alternative route may sneak through the tree: nothing
        # points into it.
        hard = self.build()
        dist = hard.instance.dijkstra(hard.instance.s)
        assert dist[hard.alpha] >= INF
        assert dist[hard.beta] >= INF

    def test_all_ones_every_edge_optimal(self):
        from repro.baselines import replacement_lengths
        hard = self.build(m_bit=1, x_bit=1)
        truth = replacement_lengths(hard.instance)
        opt = expected_optimal_length(hard.k, hard.d, hard.p)
        assert truth == [opt] * (hard.k ** 2)

    def test_all_zero_x_blocks_optimal(self):
        from repro.baselines import replacement_lengths
        hard = self.build(m_bit=1, x_bit=0)
        truth = replacement_lengths(hard.instance)
        opt = expected_optimal_length(hard.k, hard.d, hard.p)
        assert all(t > opt for t in truth)

    def test_matrix_zero_blocks_optimal(self):
        from repro.baselines import replacement_lengths
        hard = self.build(m_bit=0, x_bit=1)
        truth = replacement_lengths(hard.instance)
        opt = expected_optimal_length(hard.k, hard.d, hard.p)
        assert all(t > opt for t in truth)

    def test_alice_bob_sides_partition_sensibly(self):
        hard = self.build()
        alice = set(hard.alice_side())
        bob = set(hard.bob_side())
        assert not alice & bob
        assert hard.alpha in alice and hard.beta in bob

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            build_hard_instance(1, 2, 1, [[1]], [1])
        with pytest.raises(ValueError):
            build_hard_instance(2, 2, 1, [[1, 1]], [1] * 4)
        with pytest.raises(ValueError):
            build_hard_instance(2, 2, 1, [[1, 1], [1, 1]], [1] * 3)
