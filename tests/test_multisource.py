"""Tests for the k-source h-hop BFS (Lemma 5.5, congest.multisource)."""

from repro.congest.multisource import multi_source_hop_bfs
from repro.congest.network import CongestNetwork
from repro.congest.words import INF
from repro.graphs import random_instance


def reference_hop_distances(instance, sources, hop_limit, direction):
    """Centralized BFS reference."""
    out = []
    for s in sources:
        dist = instance.dijkstra(s, reverse=(direction == "in"))
        out.append([d if d <= hop_limit else INF for d in dist])
    return out


class TestMultiSourceBfs:
    def test_matches_reference_forward(self):
        instance = random_instance(60, seed=31)
        net = instance.build_network()
        sources = [0, 5, 11, 23]
        got = multi_source_hop_bfs(net, sources, hop_limit=6)
        want = reference_hop_distances(instance, sources, 6, "out")
        assert got == want

    def test_matches_reference_backward(self):
        instance = random_instance(60, seed=32)
        net = instance.build_network()
        sources = [1, 8, 30]
        got = multi_source_hop_bfs(net, sources, hop_limit=5,
                                   direction="in")
        want = reference_hop_distances(instance, sources, 5, "in")
        assert got == want

    def test_hop_limit_is_respected(self):
        net = CongestNetwork(5, [(i, i + 1) for i in range(4)])
        got = multi_source_hop_bfs(net, [0], hop_limit=2)
        assert got[0] == [0, 1, 2, INF, INF]

    def test_avoid_edges(self):
        net = CongestNetwork(4, [(0, 1), (1, 2), (0, 3), (3, 2)])
        got = multi_source_hop_bfs(
            net, [0], hop_limit=4,
            avoid_edges=frozenset([(0, 1)]))
        assert got[0][1] == INF
        assert got[0][2] == 2

    def test_round_bound_k_plus_h(self):
        # Lemma 5.5: O(k + h) rounds; allow a small constant.
        instance = random_instance(80, seed=33)
        net = instance.build_network()
        sources = list(range(0, 80, 10))  # k = 8
        hop = 7
        multi_source_hop_bfs(net, sources, hop_limit=hop)
        assert net.rounds <= 4 * (len(sources) + hop) + 4

    def test_congestion_one_announcement_per_link(self):
        instance = random_instance(50, seed=34)
        net = instance.build_network()
        multi_source_hop_bfs(net, [0, 1, 2, 3, 4], hop_limit=6)
        assert net.ledger.max_link_words <= 3  # ("hop", rank, d)

    def test_delay_simulates_weighted_subdivision(self):
        # An edge of weight 3 with delay(w)=w behaves like 3 unit hops.
        net = CongestNetwork(3, [(0, 1, 3), (1, 2, 2)])
        got = multi_source_hop_bfs(
            net, [0], hop_limit=10, delay=lambda w: w)
        assert got[0] == [0, 3, 5]

    def test_delay_respects_hop_budget(self):
        net = CongestNetwork(3, [(0, 1, 3), (1, 2, 2)])
        got = multi_source_hop_bfs(
            net, [0], hop_limit=4, delay=lambda w: w)
        assert got[0] == [0, 3, INF]

    def test_duplicate_source_ranks_independent(self):
        net = CongestNetwork(3, [(0, 1), (1, 2)])
        got = multi_source_hop_bfs(net, [0, 0], hop_limit=3)
        assert got[0] == got[1]

    def test_empty_sources(self):
        net = CongestNetwork(3, [(0, 1), (1, 2)])
        assert multi_source_hop_bfs(net, [], hop_limit=3) == []
