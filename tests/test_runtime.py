"""Tests for the repro.runtime subsystem: registry, executor, store."""

from __future__ import annotations

import json

import pytest

from repro.runtime import (
    CellResult,
    CellSpec,
    ResultStore,
    Scenario,
    all_scenarios,
    cell_key,
    code_version,
    diff_results,
    execute_cell,
    expand_cells,
    get_scenario,
    register,
    run_cells,
    run_suite,
    scenario_names,
    unregister,
)
from repro.runtime.results import results_from_jsonl, results_to_jsonl


# -- registry ---------------------------------------------------------------

class TestRegistry:
    def test_catalog_size_and_coverage(self):
        names = scenario_names()
        assert len(names) >= 10
        for required in ("exact-chords", "apx-eps-sweep", "two-sisp",
                         "undirected-extension", "baseline-mr24",
                         "baseline-trivial", "lowerbound-hard",
                         "fault-injection", "topo-expander",
                         "topo-powerlaw"):
            assert required in names

    def test_round_trip(self):
        for scen in all_scenarios():
            assert get_scenario(scen.name) is scen
            cells = scen.cells()
            assert cells
            smoke = scen.cells(smoke=True)
            assert smoke
            assert len(smoke) <= len(cells)
            for spec in cells:
                assert spec.scenario == scen.name

    def test_unknown_scenario_raises(self):
        with pytest.raises(KeyError, match="registered"):
            get_scenario("no-such-scenario")

    def test_duplicate_registration_rejected(self):
        scen = Scenario(
            name="tmp-dup", run=lambda p, s: {},
            params=[{}], seeds=[0])
        register(scen)
        try:
            with pytest.raises(ValueError, match="already registered"):
                register(scen)
        finally:
            unregister("tmp-dup")

    def test_cell_spec_identity_is_param_order_independent(self):
        a = CellSpec.make("x", {"b": 2, "a": 1}, 0)
        b = CellSpec.make("x", {"a": 1, "b": 2}, 0)
        assert a == b
        assert a.identity() == b.identity()


# -- executor ---------------------------------------------------------------

def _cheap_spec():
    return CellSpec.make("exact-grid", {"rows": 3, "cols": 5}, 0)


class TestExecutor:
    def test_determinism_same_seed_identical_metrics(self):
        a = execute_cell(_cheap_spec())
        b = execute_cell(_cheap_spec())
        assert a.ok and b.ok
        assert a.metrics == b.metrics

    def test_error_cells_are_contained(self):
        register(Scenario(
            name="tmp-boom",
            run=lambda p, s: (_ for _ in ()).throw(RuntimeError("boom")),
            params=[{}], seeds=[0]))
        try:
            result = execute_cell(CellSpec.make("tmp-boom", {}, 0))
        finally:
            unregister("tmp-boom")
        assert result.status == "error"
        assert "boom" in result.error

    def test_timeout_yields_structured_result(self):
        def sleeper(params, seed):
            import time
            time.sleep(5)
            return {}

        register(Scenario(name="tmp-sleep", run=sleeper,
                          params=[{}], seeds=[0]))
        try:
            result = execute_cell(CellSpec.make("tmp-sleep", {}, 0),
                                  timeout=0.2)
        finally:
            unregister("tmp-sleep")
        assert result.status == "timeout"
        assert result.wall_time < 4

    def test_truncated_lengths_fail_the_oracle(self):
        # A solver returning fewer lengths than P has edges must never
        # be certified (zip would otherwise pass vacuously).
        from repro.runtime.measure import _apx_match, _exact_match
        assert not _exact_match([3], [3, 4])
        assert not _apx_match([3.0], [3, 4], epsilon=0.5)
        assert _exact_match([3, 4], [3, 4])

    def test_parallel_matches_serial(self):
        specs = [
            CellSpec.make("exact-grid", {"rows": 3, "cols": 5}, 0),
            CellSpec.make("two-sisp",
                          {"family": "double-path", "size": 6}, 0),
        ]
        serial = run_cells(specs, jobs=1)
        parallel = run_cells(specs, jobs=2)
        assert [r.metrics for r in serial] == \
            [r.metrics for r in parallel]

    def test_every_registered_scenario_smokes(self):
        # The whole catalog at tiny n: must execute and verify.
        for result in run_cells(expand_cells(smoke=True), jobs=1,
                                timeout=120):
            assert result.ok, (result.scenario, result.error)
            assert result.correct is not False, result.scenario
            for required in ("rounds", "correct", "n"):
                assert required in result.metrics, result.scenario


# -- store ------------------------------------------------------------------

class TestStore:
    def test_cell_key_stability_and_sensitivity(self):
        spec = _cheap_spec()
        assert cell_key(spec) == cell_key(spec)
        assert cell_key(spec) != cell_key(
            CellSpec.make("exact-grid", {"rows": 3, "cols": 5}, 1))
        assert cell_key(spec, version="aaaa") != cell_key(
            spec, version="bbbb")
        assert len(code_version()) == 16

    def test_put_get_round_trip(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.get("0" * 64) is None
        result = execute_cell(_cheap_spec())
        result.key = cell_key(result.spec)
        store.put(result)
        cached = store.get(result.key)
        assert cached is not None
        assert cached.cached is True
        assert cached.metrics == result.metrics
        assert len(store) == 1

    def test_corrupt_object_is_a_cache_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        result = execute_cell(_cheap_spec())
        result.key = cell_key(result.spec)
        path = store.put(result)
        path.write_text("garbage{")
        assert store.get(result.key) is None
        assert not path.exists()  # dropped so the re-run heals it

    def test_jsonl_round_trip(self):
        result = execute_cell(_cheap_spec())
        [back] = results_from_jsonl(results_to_jsonl([result]))
        assert back.metrics == result.metrics
        assert back.scenario == result.scenario
        # Each serialized record is a single JSON line.
        assert "\n" not in result.to_json()
        json.loads(result.to_json())

    def test_suite_cache_hit_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        first = run_suite(names=["exact-grid"], smoke=True,
                          store=store, record=False)
        assert first.cache_misses == 1 and first.cache_hits == 0
        second = run_suite(names=["exact-grid"], smoke=True,
                           store=store, record=False)
        assert second.cache_hits == 1 and second.cache_misses == 0
        assert [r.metrics for r in first.results] == \
            [r.metrics for r in second.results]
        third = run_suite(names=["exact-grid"], smoke=True,
                          store=store, use_cache=False, record=False)
        assert third.cache_hits == 0

    def test_run_manifest_is_jsonl(self, tmp_path):
        store = ResultStore(tmp_path)
        report = run_suite(names=["exact-grid"], smoke=True,
                           store=store, label="t")
        assert report.manifest_path is not None
        loaded = ResultStore.load_run(report.manifest_path)
        assert [r.metrics for r in loaded] == \
            [r.metrics for r in report.results]


# -- diff -------------------------------------------------------------------

class TestDiff:
    def test_clean_diff(self):
        a = execute_cell(_cheap_spec())
        b = execute_cell(_cheap_spec())
        report = diff_results([a], [b])
        assert report.clean
        assert report.unchanged == 1

    def test_metric_change_detected(self):
        a = execute_cell(_cheap_spec())
        b = execute_cell(_cheap_spec())
        b.metrics["rounds"] = a.metrics["rounds"] + 7
        report = diff_results([a], [b])
        assert not report.clean
        [cell] = report.changed
        assert "rounds" in cell.changed
        assert cell.changed["rounds"][1] == a.metrics["rounds"] + 7

    def test_added_and_removed(self):
        a = execute_cell(_cheap_spec())
        other = CellResult(scenario="exact-grid",
                           params={"rows": 9, "cols": 9}, seed=3)
        report = diff_results([a], [other])
        assert report.removed and report.added


# -- CLI --------------------------------------------------------------------

class TestSuiteCli:
    def test_list(self, capsys):
        from repro.cli import main
        assert main(["suite", "list"]) == 0
        out = capsys.readouterr().out
        assert "exact-chords" in out and "apx-eps-sweep" in out

    def test_run_and_diff(self, tmp_path, capsys):
        from repro.cli import main
        argv = ["suite", "run", "--smoke", "--scenario", "exact-grid",
                "--cache-dir", str(tmp_path), "--label", "a"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "cache hits: 0" in out and "misses: 1" in out
        assert main(argv[:-1] + ["b"]) == 0
        out = capsys.readouterr().out
        assert "cache hits: 1" in out
        runs = sorted((tmp_path / "runs").glob("*.jsonl"))
        assert len(runs) == 2
        assert main(["suite", "diff", str(runs[0]), str(runs[1])]) == 0
        assert "0 changed" in capsys.readouterr().out

    def test_no_cache_still_records_manifest(self, tmp_path, capsys):
        from repro.cli import main
        assert main(["suite", "run", "--smoke", "--scenario",
                     "exact-grid", "--cache-dir", str(tmp_path),
                     "--no-cache"]) == 0
        assert not (tmp_path / "objects").exists()
        assert list((tmp_path / "runs").glob("*.jsonl"))

    def test_no_cache_no_record_writes_nothing(self, tmp_path, capsys):
        from repro.cli import main
        assert main(["suite", "run", "--smoke", "--scenario",
                     "exact-grid", "--cache-dir", str(tmp_path),
                     "--no-cache", "--no-record"]) == 0
        assert not list(tmp_path.iterdir())

    def test_diff_rejects_malformed_manifest(self, tmp_path, capsys):
        from repro.cli import main
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"scenario": "x", truncated')
        with pytest.raises(SystemExit, match="cannot read"):
            main(["suite", "diff", str(bad), str(bad)])
