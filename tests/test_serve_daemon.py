"""Serve daemon: worker lifecycle, health, backpressure, identity.

The contract under test (ISSUE 9): long-lived worker processes own
their shards and warm once; stop is stop-flag + drain; health is
heartbeat-based with bounded restart and spill re-warm; the threaded
front-end admits through a bounded queue with per-request deadlines
and per-shard in-flight caps; and every answer the daemon returns is
bit-identical to a direct :class:`ShardedQueryService` on the same
catalog, on every workload family.
"""

import json
import os
import signal
import time

import pytest

from repro.graphs.generators import random_instance
from repro.runtime.store import ResultStore
from repro.serve import (
    Query,
    ServeDaemon,
    ServeFrontend,
    ShardedQueryService,
    WORKLOADS,
    generate_workload,
    latency_summary_ms,
    percentile,
    run_load,
    run_queries,
    verify_against_centralized,
)
from repro.telemetry import serving

# Timing knobs shared by every test.  A loaded CI runner stretches the
# *deadlines* (generous waits, long heartbeat grace) while keeping the
# *polling* tight, so slowness costs latency instead of flakes: the
# monitor still reacts in ~50ms on a healthy box, but a worker that
# takes seconds to respawn under load is never declared failed early.
WAIT_TIMEOUT = 30.0
MONITOR_INTERVAL = 0.05
HEARTBEAT_TIMEOUT = 10.0
QUERY_TIMEOUT = 60.0


def _instances(count=3, n=20):
    return [random_instance(n, seed=s, name=f"daemon-test-{s}")
            for s in range(1, count + 1)]


def _daemon(insts, **kw):
    kw.setdefault("solver", "centralized")
    kw.setdefault("workers", min(2, len(insts)))
    kw.setdefault("monitor_interval", MONITOR_INTERVAL)
    kw.setdefault("heartbeat_timeout", HEARTBEAT_TIMEOUT)
    return ServeDaemon(insts, **kw)


def _wait_until(predicate, timeout=WAIT_TIMEOUT, interval=0.02):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class TestLifecycle:
    def test_start_serve_drain_stop(self):
        insts = _instances()
        daemon = _daemon(insts)
        try:
            daemon.start()
            total = 0
            for inst in insts:
                edge = inst.path_edges()[0]
                answer = daemon.query(inst.name, inst.s, inst.t, edge,
                                      timeout=QUERY_TIMEOUT)
                direct = ShardedQueryService(
                    [inst], solver="centralized").query(
                        inst.name, inst.s, inst.t, edge)
                assert answer.length == direct.length
                total += 1
        finally:
            stats = daemon.stop()
        assert stats["totals"]["queries"] == total
        assert stats["restarts"] == 0
        assert json.dumps(stats)  # operator dump is JSON-safe

    def test_context_manager_and_idempotent_stop(self):
        insts = _instances(2)
        with _daemon(insts) as daemon:
            edge = insts[0].path_edges()[0]
            daemon.query(insts[0].name, insts[0].s, insts[0].t, edge,
                         timeout=QUERY_TIMEOUT)
        # __exit__ already stopped it; stop() again is a no-op.
        stats = daemon.stop()
        assert stats["totals"]["queries"] == 1

    def test_warm_builds_once_then_serves_hot(self):
        insts = _instances(2)
        daemon = _daemon(insts, workers=1)
        try:
            daemon.start()
            edge = insts[0].path_edges()[0]
            for _ in range(5):
                daemon.query(insts[0].name, insts[0].s, insts[0].t,
                             edge, timeout=QUERY_TIMEOUT)
            stats = daemon.stats()
        finally:
            daemon.stop()
        # Both instances were built exactly once, at warm time — the
        # queries themselves never triggered a build.
        assert stats["totals"]["oracle_builds"] == len(insts)

    def test_submit_before_start_raises(self):
        daemon = _daemon(_instances(1))
        with pytest.raises(RuntimeError, match="not running"):
            daemon.query("daemon-test-1", 0, 1, (0, 1), timeout=1)

    def test_unknown_instance_raises(self):
        daemon = _daemon(_instances(1))
        with pytest.raises(KeyError, match="unknown instance"):
            daemon.shard_for_key("nope")

    def test_exposition_has_shard_gauges(self):
        insts = _instances(2)
        daemon = _daemon(insts, workers=2)
        try:
            daemon.start()
            edge = insts[0].path_edges()[0]
            daemon.query(insts[0].name, insts[0].s, insts[0].t, edge,
                         timeout=QUERY_TIMEOUT)
            text = daemon.exposition()
        finally:
            daemon.stop()
        assert "repro_serve_shard_queries" in text
        assert "repro_serve_workers_alive" in text


class TestHealth:
    def test_killed_worker_restarts_and_rewarms_from_spill(self, tmp_path):
        insts = _instances(2)
        store = ResultStore(tmp_path)
        daemon = _daemon(insts, workers=1, store=store,
                         max_restarts=2)
        try:
            daemon.start()
            worker = daemon._workers[0]
            assert worker.warm_stats["spill_saves"] == len(insts)
            first_pid = worker.pid
            edge = insts[0].path_edges()[0]
            before = daemon.query(insts[0].name, insts[0].s,
                                  insts[0].t, edge, timeout=QUERY_TIMEOUT)

            os.kill(first_pid, signal.SIGKILL)
            assert _wait_until(lambda: worker.restarts == 1)
            assert _wait_until(lambda: worker.pid != first_pid
                               and worker.ready.is_set())
            # The replacement re-warmed from the spill store instead
            # of rebuilding: loads, not builds.
            assert worker.warm_stats["spill_loads"] == len(insts)
            assert worker.warm_stats["oracle_builds"] == 0

            after = daemon.query(insts[0].name, insts[0].s,
                                 insts[0].t, edge, timeout=QUERY_TIMEOUT)
            assert after.length == before.length
        finally:
            stats = daemon.stop()
        assert stats["restarts"] == 1

    def test_query_submitted_while_dead_is_resubmitted(self):
        insts = _instances(1)
        daemon = _daemon(insts, workers=1)
        try:
            daemon.start()
            edge = insts[0].path_edges()[0]
            truth = daemon.query(insts[0].name, insts[0].s,
                                 insts[0].t, edge, timeout=QUERY_TIMEOUT)
            os.kill(daemon._workers[0].pid, signal.SIGKILL)
            # Submitted against the dead worker's queue; the monitor
            # must detect, respawn, and re-enqueue it.
            answer = daemon.query(insts[0].name, insts[0].s,
                                  insts[0].t, edge, timeout=QUERY_TIMEOUT)
            assert answer.length == truth.length
        finally:
            daemon.stop()

    def test_restart_budget_exhaustion_fails_pending_as_worker_lost(self):
        insts = _instances(1)
        daemon = _daemon(insts, workers=1,
                         max_restarts=0)
        try:
            daemon.start()
            worker = daemon._workers[0]
            os.kill(worker.pid, signal.SIGKILL)
            assert _wait_until(lambda: worker.failed)
            outcomes = []
            daemon.submit_batch(
                [Query(s=insts[0].s, t=insts[0].t,
                       edge=insts[0].path_edges()[0],
                       instance=insts[0].name)],
                lambda lengths, kinds, lags, error:
                outcomes.append(error))
            assert outcomes == ["worker-lost"]
        finally:
            daemon.stop()


class TestBackpressure:
    def test_saturated_queue_rejects_overloaded_then_recovers(self):
        insts = _instances(1)
        daemon = _daemon(insts, workers=1)
        try:
            daemon.start()
            frontend = ServeFrontend(daemon, max_queue=4, max_batch=1,
                                     max_inflight=1,
                                     default_timeout=30.0)
            try:
                sid = daemon.shard_for_key(insts[0].name)
                # Saturate the shard's in-flight budget so the
                # dispatcher holds every batch at admission.
                with daemon._lock:
                    daemon._inflight[sid] = frontend.max_inflight
                edge = insts[0].path_edges()[0]

                def submit_one():
                    return frontend.submit(Query(
                        s=insts[0].s, t=insts[0].t, edge=edge,
                        instance=insts[0].name))

                held = [submit_one()]
                # The dispatcher takes exactly one (max_batch=1) and
                # stalls on the in-flight cap; the admission queue is
                # then free to fill completely.
                assert _wait_until(
                    lambda: frontend.queue_depth() == 0)
                held.extend(submit_one() for _ in range(4))
                assert frontend.queue_depth() == 4

                rejected = submit_one()
                assert rejected.done
                result = rejected.result()
                assert result.outcome == serving.OUTCOME_OVERLOADED
                assert result.answer is None

                # Release the artificial pressure: everything held at
                # admission drains and answers normally.
                with daemon._lock:
                    daemon._inflight[sid] = 0
                results = [p.result() for p in held]
                assert all(r.ok for r in results)
            finally:
                frontend.close()
        finally:
            daemon.stop()

    def test_expired_deadline_resolves_timeout(self):
        insts = _instances(1)
        daemon = _daemon(insts, workers=1)
        try:
            daemon.start()
            frontend = ServeFrontend(daemon)
            try:
                result = frontend.query(
                    insts[0].name, insts[0].s, insts[0].t,
                    insts[0].path_edges()[0], timeout=0.0)
                assert result.outcome == serving.OUTCOME_TIMEOUT
            finally:
                frontend.close()
        finally:
            daemon.stop()

    def test_closed_frontend_rejects_shutdown(self):
        insts = _instances(1)
        daemon = _daemon(insts, workers=1)
        try:
            daemon.start()
            frontend = ServeFrontend(daemon)
            frontend.close()
            result = frontend.query(
                insts[0].name, insts[0].s, insts[0].t,
                insts[0].path_edges()[0])
            assert result.outcome == serving.OUTCOME_SHUTDOWN
        finally:
            daemon.stop()


class TestBitIdentity:
    def test_every_workload_family_matches_direct_service(self):
        insts = _instances(3, n=20)
        direct = ShardedQueryService(insts, solver="centralized")
        daemon = _daemon(insts, workers=2)
        try:
            daemon.start()
            frontend = ServeFrontend(daemon, default_timeout=60.0)
            try:
                for kind in WORKLOADS:
                    queries = []
                    for i, inst in enumerate(insts):
                        queries.extend(generate_workload(
                            kind, inst, 8, seed=11 * (i + 1)))
                    results = run_queries(frontend, queries)
                    assert all(r.ok for r in results), kind
                    for res in results:
                        q = res.query
                        truth = direct.query(q.instance, q.s, q.t,
                                             q.edge)
                        assert res.answer.length == truth.length, (
                            kind, q.label)
                    assert verify_against_centralized(
                        insts, [r.answer for r in results])
            finally:
                frontend.close()
        finally:
            daemon.stop()


class TestLoadgen:
    def test_percentile_interpolates(self):
        assert percentile([], 95) == 0.0
        assert percentile([7.0], 99) == 7.0
        samples = [1.0, 2.0, 3.0, 4.0]
        assert percentile(samples, 0) == 1.0
        assert percentile(samples, 100) == 4.0
        assert percentile(samples, 50) == pytest.approx(2.5)
        summary = latency_summary_ms([0.001, 0.002, 0.003, 0.004])
        assert summary["p50"] == pytest.approx(2.5)
        assert summary["max"] == pytest.approx(4.0)

    def test_closed_loop_reports_all_ok(self):
        insts = _instances(2)
        daemon = _daemon(insts, workers=2)
        try:
            daemon.start()
            frontend = ServeFrontend(daemon, default_timeout=60.0)
            try:
                queries = []
                for i, inst in enumerate(insts):
                    queries.extend(generate_workload(
                        "mixed", inst, 15, seed=3 + i))
                results, report = run_load(frontend, queries,
                                           mode="closed",
                                           concurrency=3)
            finally:
                frontend.close()
        finally:
            daemon.stop()
        assert report.sent == len(queries)
        assert report.outcomes == {"ok": len(queries)}
        assert report.achieved_qps > 0
        assert report.latency_ms["p95"] >= report.latency_ms["p50"]
        assert json.dumps(report.as_json())

    def test_open_loop_requires_qps_and_paces(self):
        insts = _instances(1)
        daemon = _daemon(insts, workers=1)
        try:
            daemon.start()
            frontend = ServeFrontend(daemon, default_timeout=60.0)
            try:
                queries = generate_workload("uniform", insts[0], 10,
                                            seed=5)
                with pytest.raises(ValueError, match="qps"):
                    run_load(frontend, queries, mode="open")
                _results, report = run_load(frontend, queries,
                                            mode="open", qps=200.0)
            finally:
                frontend.close()
        finally:
            daemon.stop()
        assert report.ok == len(queries)
        # Open loop is paced: 10 queries at 200/s cannot finish
        # faster than the schedule allows.
        assert report.wall_seconds >= 9 / 200.0


class TestDynamicEpochs:
    """Live mutations against a running daemon (ISSUE 10)."""

    def _mutate(self, daemon, name, seed=2, count=4):
        from repro.dynamic import MutationStream
        stream = MutationStream(seed=seed)
        current = daemon.instance_for(name)
        result = daemon.apply_mutations(name,
                                        stream.burst(current, count))
        assert result.applied, "burst applied nothing"
        return result

    def test_mutation_bumps_epoch_and_fresh_answers_track_it(self):
        insts = _instances(1, n=16)
        daemon = _daemon(insts, workers=1)
        try:
            daemon.start()
            name = insts[0].name
            daemon.query(name, insts[0].s, insts[0].t,
                         insts[0].path_edges()[0],
                         timeout=QUERY_TIMEOUT)
            result = self._mutate(daemon, name)
            assert daemon.epoch_of(name) == result.epoch == 1
            new = daemon.instance_for(name)
            edge = new.path_edges()[0]
            answer = daemon.query(name, new.s, new.t, edge,
                                  timeout=QUERY_TIMEOUT)
            from repro.serve import centralized_truth
            assert answer.length == centralized_truth(
                new, new.s, new.t, edge)
            assert daemon.stats()["epochs"][name] == 1
        finally:
            daemon.stop()

    def test_stale_budget_serves_previous_epoch_during_rewarm(self):
        insts = _instances(1, n=16)
        # rebuild_delay wedges the re-warm long enough that a budgeted
        # query MUST take the stale path to answer quickly.
        daemon = _daemon(insts, workers=1, rebuild_delay=1.0)
        try:
            daemon.start()
            name = insts[0].name
            old = insts[0]
            old_edge = old.path_edges()[0]
            before = daemon.query(name, old.s, old.t, old_edge,
                                  timeout=QUERY_TIMEOUT)
            self._mutate(daemon, name)
            frontend = ServeFrontend(daemon,
                                     default_timeout=QUERY_TIMEOUT)
            try:
                start = time.time()
                res = frontend.query(name, old.s, old.t, old_edge,
                                     max_staleness=4)
                elapsed = time.time() - start
                assert res.outcome == serving.OUTCOME_STALE
                assert res.lag == 1
                assert res.served
                # Previous-epoch oracle, previous-epoch answer — and
                # without waiting out the rebuild delay.
                assert res.answer.length == before.length
                assert elapsed < 1.0
                # Zero budget waits for the re-warm and gets fresh.
                new = daemon.instance_for(name)
                edge = new.path_edges()[0]
                fresh = frontend.query(name, new.s, new.t, edge,
                                       max_staleness=0)
                assert fresh.outcome == serving.OUTCOME_OK
                assert fresh.lag == 0
                from repro.serve import centralized_truth
                assert fresh.answer.length == centralized_truth(
                    new, new.s, new.t, edge)
            finally:
                frontend.close()
        finally:
            daemon.stop()

    def test_restart_races_concurrent_invalidation(self):
        """Satellite: a worker killed right after an invalidation must
        re-warm against the NEW epoch (stale topology handles are
        stripped), resubmit pending requests exactly once, and answer
        them bit-identically to the new epoch's truth."""
        from repro.serve import centralized_truth
        insts = _instances(1, n=16)
        daemon = _daemon(insts, workers=1, max_restarts=2)
        try:
            daemon.start()
            name = insts[0].name
            daemon.query(name, insts[0].s, insts[0].t,
                         insts[0].path_edges()[0],
                         timeout=QUERY_TIMEOUT)
            self._mutate(daemon, name)
            worker = daemon._workers[0]
            first_pid = worker.pid
            new = daemon.instance_for(name)
            edge = new.path_edges()[0]

            os.kill(first_pid, signal.SIGKILL)
            # Submitted while (possibly) dead: the monitor respawns,
            # the replacement warms from the daemon's current catalog
            # (epoch 1, not the pre-mutation shared topology), and the
            # pending request is resubmitted against it.
            calls = []
            daemon.submit_batch(
                [Query(s=new.s, t=new.t, edge=edge, instance=name)],
                lambda lengths, kinds, lags, error:
                calls.append((lengths, error)))
            assert _wait_until(lambda: len(calls) >= 1)
            lengths, error = calls[0]
            assert error == ""
            assert lengths[0] == centralized_truth(new, new.s, new.t,
                                                   edge)
            assert _wait_until(lambda: worker.restarts == 1)
            # Resubmission is not duplication: exactly one callback.
            time.sleep(3 * MONITOR_INTERVAL)
            assert len(calls) == 1
            # A fresh post-restart query also tracks the new epoch.
            answer = daemon.query(name, new.s, new.t, edge,
                                  timeout=QUERY_TIMEOUT)
            assert answer.length == centralized_truth(new, new.s,
                                                      new.t, edge)
        finally:
            stats = daemon.stop()
        assert stats["epochs"][name] == 1


class TestTelemetry:
    def test_daemon_run_emits_only_known_labels(self):
        from repro.telemetry import counters as counters_mod
        from repro.telemetry import unknown_serving_labels
        insts = _instances(1)
        daemon = _daemon(insts, workers=1)
        try:
            daemon.start()
            frontend = ServeFrontend(daemon)
            try:
                frontend.query(insts[0].name, insts[0].s, insts[0].t,
                               insts[0].path_edges()[0])
            finally:
                frontend.close()
        finally:
            daemon.stop()
        counters = counters_mod.registry.snapshot()["counters"]
        assert any(k.startswith(serving.DAEMON_COUNTER)
                   for k in counters)
        assert any(k.startswith(serving.ADMISSION_COUNTER)
                   for k in counters)
        assert unknown_serving_labels(counters) == []
