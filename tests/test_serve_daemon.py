"""Serve daemon: worker lifecycle, health, backpressure, identity.

The contract under test (ISSUE 9): long-lived worker processes own
their shards and warm once; stop is stop-flag + drain; health is
heartbeat-based with bounded restart and spill re-warm; the threaded
front-end admits through a bounded queue with per-request deadlines
and per-shard in-flight caps; and every answer the daemon returns is
bit-identical to a direct :class:`ShardedQueryService` on the same
catalog, on every workload family.
"""

import json
import os
import signal
import time

import pytest

from repro.graphs.generators import random_instance
from repro.runtime.store import ResultStore
from repro.serve import (
    Query,
    ServeDaemon,
    ServeFrontend,
    ShardedQueryService,
    WORKLOADS,
    generate_workload,
    latency_summary_ms,
    percentile,
    run_load,
    run_queries,
    verify_against_centralized,
)
from repro.telemetry import serving


def _instances(count=3, n=20):
    return [random_instance(n, seed=s, name=f"daemon-test-{s}")
            for s in range(1, count + 1)]


def _daemon(insts, **kw):
    kw.setdefault("solver", "centralized")
    kw.setdefault("workers", min(2, len(insts)))
    return ServeDaemon(insts, **kw)


def _wait_until(predicate, timeout=10.0, interval=0.02):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class TestLifecycle:
    def test_start_serve_drain_stop(self):
        insts = _instances()
        daemon = _daemon(insts)
        try:
            daemon.start()
            total = 0
            for inst in insts:
                edge = inst.path_edges()[0]
                answer = daemon.query(inst.name, inst.s, inst.t, edge,
                                      timeout=30)
                direct = ShardedQueryService(
                    [inst], solver="centralized").query(
                        inst.name, inst.s, inst.t, edge)
                assert answer.length == direct.length
                total += 1
        finally:
            stats = daemon.stop()
        assert stats["totals"]["queries"] == total
        assert stats["restarts"] == 0
        assert json.dumps(stats)  # operator dump is JSON-safe

    def test_context_manager_and_idempotent_stop(self):
        insts = _instances(2)
        with _daemon(insts) as daemon:
            edge = insts[0].path_edges()[0]
            daemon.query(insts[0].name, insts[0].s, insts[0].t, edge,
                         timeout=30)
        # __exit__ already stopped it; stop() again is a no-op.
        stats = daemon.stop()
        assert stats["totals"]["queries"] == 1

    def test_warm_builds_once_then_serves_hot(self):
        insts = _instances(2)
        daemon = _daemon(insts, workers=1)
        try:
            daemon.start()
            edge = insts[0].path_edges()[0]
            for _ in range(5):
                daemon.query(insts[0].name, insts[0].s, insts[0].t,
                             edge, timeout=30)
            stats = daemon.stats()
        finally:
            daemon.stop()
        # Both instances were built exactly once, at warm time — the
        # queries themselves never triggered a build.
        assert stats["totals"]["oracle_builds"] == len(insts)

    def test_submit_before_start_raises(self):
        daemon = _daemon(_instances(1))
        with pytest.raises(RuntimeError, match="not running"):
            daemon.query("daemon-test-1", 0, 1, (0, 1), timeout=1)

    def test_unknown_instance_raises(self):
        daemon = _daemon(_instances(1))
        with pytest.raises(KeyError, match="unknown instance"):
            daemon.shard_for_key("nope")

    def test_exposition_has_shard_gauges(self):
        insts = _instances(2)
        daemon = _daemon(insts, workers=2)
        try:
            daemon.start()
            edge = insts[0].path_edges()[0]
            daemon.query(insts[0].name, insts[0].s, insts[0].t, edge,
                         timeout=30)
            text = daemon.exposition()
        finally:
            daemon.stop()
        assert "repro_serve_shard_queries" in text
        assert "repro_serve_workers_alive" in text


class TestHealth:
    def test_killed_worker_restarts_and_rewarms_from_spill(self, tmp_path):
        insts = _instances(2)
        store = ResultStore(tmp_path)
        daemon = _daemon(insts, workers=1, store=store,
                         monitor_interval=0.05, max_restarts=2)
        try:
            daemon.start()
            worker = daemon._workers[0]
            assert worker.warm_stats["spill_saves"] == len(insts)
            first_pid = worker.pid
            edge = insts[0].path_edges()[0]
            before = daemon.query(insts[0].name, insts[0].s,
                                  insts[0].t, edge, timeout=30)

            os.kill(first_pid, signal.SIGKILL)
            assert _wait_until(lambda: worker.restarts == 1)
            assert _wait_until(lambda: worker.pid != first_pid
                               and worker.ready.is_set())
            # The replacement re-warmed from the spill store instead
            # of rebuilding: loads, not builds.
            assert worker.warm_stats["spill_loads"] == len(insts)
            assert worker.warm_stats["oracle_builds"] == 0

            after = daemon.query(insts[0].name, insts[0].s,
                                 insts[0].t, edge, timeout=30)
            assert after.length == before.length
        finally:
            stats = daemon.stop()
        assert stats["restarts"] == 1

    def test_query_submitted_while_dead_is_resubmitted(self):
        insts = _instances(1)
        daemon = _daemon(insts, workers=1, monitor_interval=0.05)
        try:
            daemon.start()
            edge = insts[0].path_edges()[0]
            truth = daemon.query(insts[0].name, insts[0].s,
                                 insts[0].t, edge, timeout=30)
            os.kill(daemon._workers[0].pid, signal.SIGKILL)
            # Submitted against the dead worker's queue; the monitor
            # must detect, respawn, and re-enqueue it.
            answer = daemon.query(insts[0].name, insts[0].s,
                                  insts[0].t, edge, timeout=30)
            assert answer.length == truth.length
        finally:
            daemon.stop()

    def test_restart_budget_exhaustion_fails_pending_as_worker_lost(self):
        insts = _instances(1)
        daemon = _daemon(insts, workers=1, monitor_interval=0.05,
                         max_restarts=0)
        try:
            daemon.start()
            worker = daemon._workers[0]
            os.kill(worker.pid, signal.SIGKILL)
            assert _wait_until(lambda: worker.failed)
            outcomes = []
            daemon.submit_batch(
                [Query(s=insts[0].s, t=insts[0].t,
                       edge=insts[0].path_edges()[0],
                       instance=insts[0].name)],
                lambda lengths, kinds, error: outcomes.append(error))
            assert outcomes == ["worker-lost"]
        finally:
            daemon.stop()


class TestBackpressure:
    def test_saturated_queue_rejects_overloaded_then_recovers(self):
        insts = _instances(1)
        daemon = _daemon(insts, workers=1)
        try:
            daemon.start()
            frontend = ServeFrontend(daemon, max_queue=4, max_batch=1,
                                     max_inflight=1,
                                     default_timeout=30.0)
            try:
                sid = daemon.shard_for_key(insts[0].name)
                # Saturate the shard's in-flight budget so the
                # dispatcher holds every batch at admission.
                with daemon._lock:
                    daemon._inflight[sid] = frontend.max_inflight
                edge = insts[0].path_edges()[0]

                def submit_one():
                    return frontend.submit(Query(
                        s=insts[0].s, t=insts[0].t, edge=edge,
                        instance=insts[0].name))

                held = [submit_one()]
                # The dispatcher takes exactly one (max_batch=1) and
                # stalls on the in-flight cap; the admission queue is
                # then free to fill completely.
                assert _wait_until(
                    lambda: frontend.queue_depth() == 0)
                held.extend(submit_one() for _ in range(4))
                assert frontend.queue_depth() == 4

                rejected = submit_one()
                assert rejected.done
                result = rejected.result()
                assert result.outcome == serving.OUTCOME_OVERLOADED
                assert result.answer is None

                # Release the artificial pressure: everything held at
                # admission drains and answers normally.
                with daemon._lock:
                    daemon._inflight[sid] = 0
                results = [p.result() for p in held]
                assert all(r.ok for r in results)
            finally:
                frontend.close()
        finally:
            daemon.stop()

    def test_expired_deadline_resolves_timeout(self):
        insts = _instances(1)
        daemon = _daemon(insts, workers=1)
        try:
            daemon.start()
            frontend = ServeFrontend(daemon)
            try:
                result = frontend.query(
                    insts[0].name, insts[0].s, insts[0].t,
                    insts[0].path_edges()[0], timeout=0.0)
                assert result.outcome == serving.OUTCOME_TIMEOUT
            finally:
                frontend.close()
        finally:
            daemon.stop()

    def test_closed_frontend_rejects_shutdown(self):
        insts = _instances(1)
        daemon = _daemon(insts, workers=1)
        try:
            daemon.start()
            frontend = ServeFrontend(daemon)
            frontend.close()
            result = frontend.query(
                insts[0].name, insts[0].s, insts[0].t,
                insts[0].path_edges()[0])
            assert result.outcome == serving.OUTCOME_SHUTDOWN
        finally:
            daemon.stop()


class TestBitIdentity:
    def test_every_workload_family_matches_direct_service(self):
        insts = _instances(3, n=20)
        direct = ShardedQueryService(insts, solver="centralized")
        daemon = _daemon(insts, workers=2)
        try:
            daemon.start()
            frontend = ServeFrontend(daemon, default_timeout=60.0)
            try:
                for kind in WORKLOADS:
                    queries = []
                    for i, inst in enumerate(insts):
                        queries.extend(generate_workload(
                            kind, inst, 8, seed=11 * (i + 1)))
                    results = run_queries(frontend, queries)
                    assert all(r.ok for r in results), kind
                    for res in results:
                        q = res.query
                        truth = direct.query(q.instance, q.s, q.t,
                                             q.edge)
                        assert res.answer.length == truth.length, (
                            kind, q.label)
                    assert verify_against_centralized(
                        insts, [r.answer for r in results])
            finally:
                frontend.close()
        finally:
            daemon.stop()


class TestLoadgen:
    def test_percentile_interpolates(self):
        assert percentile([], 95) == 0.0
        assert percentile([7.0], 99) == 7.0
        samples = [1.0, 2.0, 3.0, 4.0]
        assert percentile(samples, 0) == 1.0
        assert percentile(samples, 100) == 4.0
        assert percentile(samples, 50) == pytest.approx(2.5)
        summary = latency_summary_ms([0.001, 0.002, 0.003, 0.004])
        assert summary["p50"] == pytest.approx(2.5)
        assert summary["max"] == pytest.approx(4.0)

    def test_closed_loop_reports_all_ok(self):
        insts = _instances(2)
        daemon = _daemon(insts, workers=2)
        try:
            daemon.start()
            frontend = ServeFrontend(daemon, default_timeout=60.0)
            try:
                queries = []
                for i, inst in enumerate(insts):
                    queries.extend(generate_workload(
                        "mixed", inst, 15, seed=3 + i))
                results, report = run_load(frontend, queries,
                                           mode="closed",
                                           concurrency=3)
            finally:
                frontend.close()
        finally:
            daemon.stop()
        assert report.sent == len(queries)
        assert report.outcomes == {"ok": len(queries)}
        assert report.achieved_qps > 0
        assert report.latency_ms["p95"] >= report.latency_ms["p50"]
        assert json.dumps(report.as_json())

    def test_open_loop_requires_qps_and_paces(self):
        insts = _instances(1)
        daemon = _daemon(insts, workers=1)
        try:
            daemon.start()
            frontend = ServeFrontend(daemon, default_timeout=60.0)
            try:
                queries = generate_workload("uniform", insts[0], 10,
                                            seed=5)
                with pytest.raises(ValueError, match="qps"):
                    run_load(frontend, queries, mode="open")
                _results, report = run_load(frontend, queries,
                                            mode="open", qps=200.0)
            finally:
                frontend.close()
        finally:
            daemon.stop()
        assert report.ok == len(queries)
        # Open loop is paced: 10 queries at 200/s cannot finish
        # faster than the schedule allows.
        assert report.wall_seconds >= 9 / 200.0


class TestTelemetry:
    def test_daemon_run_emits_only_known_labels(self):
        from repro.telemetry import counters as counters_mod
        from repro.telemetry import unknown_serving_labels
        insts = _instances(1)
        daemon = _daemon(insts, workers=1)
        try:
            daemon.start()
            frontend = ServeFrontend(daemon)
            try:
                frontend.query(insts[0].name, insts[0].s, insts[0].t,
                               insts[0].path_edges()[0])
            finally:
                frontend.close()
        finally:
            daemon.stop()
        counters = counters_mod.registry.snapshot()["counters"]
        assert any(k.startswith(serving.DAEMON_COUNTER)
                   for k in counters)
        assert any(k.startswith(serving.ADMISSION_COUNTER)
                   for k in counters)
        assert unknown_serving_labels(counters) == []
