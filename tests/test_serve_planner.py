"""BatchPlanner: grouped k-source solves must be invisible in answers.

Property contract: a batch-planned answer equals the per-query
centralized ground truth for every generator family and workload
shape, on every fabric; the plan report's accounting must reflect the
documented batching rule.
"""

import random

import pytest

from conftest import family_instances
from repro.serve import (
    BATCHED_SOLVE,
    BatchPlanner,
    Query,
    ReplacementPathOracle,
    centralized_truth,
    generate_workload,
)


def _planner(inst, fabric="vector", **kw):
    oracle = ReplacementPathOracle.build(inst, solver="centralized")
    return BatchPlanner(oracle, fabric=fabric, **kw)


def _assert_truth(inst, answers):
    for a in answers:
        q = a.query
        assert a.length == centralized_truth(
            inst, q.s, q.t, q.edge), (inst.name, q)


class TestPlannerProperty:
    @pytest.mark.parametrize("kind",
                             ["uniform", "zipf", "adversarial",
                              "mixed"])
    def test_workload_answers_match_centralized(self, kind):
        for inst in family_instances(weighted=False)[:4]:
            planner = _planner(inst)
            stream = generate_workload(kind, inst, 60, seed=9)
            answers, report = planner.answer_batch(stream)
            assert len(answers) == len(stream)
            assert report.queries == len(stream)
            _assert_truth(inst, answers)

    @pytest.mark.parametrize("fabric",
                             ["reference", "fast", "vector"])
    def test_fabrics_agree(self, small_random, fabric):
        planner = _planner(small_random, fabric=fabric)
        stream = generate_workload("zipf", small_random, 40, seed=3)
        answers, _ = planner.answer_batch(stream)
        _assert_truth(small_random, answers)

    def test_random_query_fuzz(self, chords):
        rng = random.Random(42)
        planner = _planner(chords)
        pool = [(u, v) for u, v, _ in chords.edges]
        stream = [
            Query(s=rng.randrange(chords.n),
                  t=rng.randrange(chords.n),
                  edge=rng.choice(pool), instance=chords.name)
            for _ in range(80)
        ]
        answers, _ = planner.answer_batch(stream)
        _assert_truth(chords, answers)


class TestBatchingRule:
    def test_one_solve_covers_a_shared_edge_group(self, small_random):
        inst = small_random
        planner = _planner(inst)
        edge = inst.path_edges()[0]
        sources = [v for v in range(inst.n) if v != inst.s][:10]
        stream = [Query(s=s, t=inst.t, edge=edge) for s in sources]
        answers, report = planner.answer_batch(stream)
        assert report.groups == 1
        assert report.batch_solves == 1  # 10 sources, one solve
        assert report.batched_queries == len(stream)
        assert report.solves_saved == len(stream) - 1
        assert all(a.kind == BATCHED_SOLVE for a in answers)
        _assert_truth(inst, answers)

    def test_max_group_chunks_the_sources(self, small_random):
        inst = small_random
        planner = _planner(inst, max_group=4)
        edge = inst.path_edges()[0]
        sources = [v for v in range(inst.n) if v != inst.s][:9]
        stream = [Query(s=s, t=inst.t, edge=edge) for s in sources]
        _, report = planner.answer_batch(stream)
        assert report.groups == 1
        assert report.batch_solves == 3  # ceil(9 / 4)

    def test_own_pair_queries_never_solve(self, grid):
        planner = _planner(grid)
        stream = [Query(s=grid.s, t=grid.t, edge=e)
                  for e in grid.path_edges()]
        answers, report = planner.answer_batch(stream)
        assert report.batch_solves == 0
        assert report.oracle_answered == len(stream)
        assert report.rounds == 0  # the fabric was never touched
        _assert_truth(grid, answers)

    def test_second_batch_hits_the_seeded_memo(self, small_random):
        inst = small_random
        planner = _planner(inst)
        edge = inst.path_edges()[1]
        stream = [Query(s=inst.path[1], t=inst.t, edge=edge)]
        _, first = planner.answer_batch(stream)
        assert first.batch_solves == 1
        answers, second = planner.answer_batch(stream)
        assert second.batch_solves == 0
        assert second.memo_answered == 1
        _assert_truth(inst, answers)

    def test_weighted_instances_degrade_to_memoized_fallback(self):
        inst = family_instances(weighted=True)[0]
        planner = _planner(inst)
        stream = generate_workload("zipf", inst, 30, seed=1)
        answers, report = planner.answer_batch(stream)
        assert report.batch_solves == 0  # no hop-BFS on weights
        _assert_truth(inst, answers)

    def test_rejects_silly_max_group(self, grid):
        oracle = ReplacementPathOracle.build(grid,
                                             solver="centralized")
        with pytest.raises(ValueError):
            BatchPlanner(oracle, max_group=0)
