"""Property-based tests (hypothesis) on the core invariants.

Strategy: generate small leveled DAG instances (every s-t path has equal
hop count, so the planted chain is always a valid shortest path) plus
random extras, then assert the paper's guarantees against the
centralized oracle.
"""

import random as _random

from hypothesis import given, settings, strategies as st

from repro.baselines import replacement_lengths, two_sisp_length
from repro.congest.words import INF
from repro.core.rpaths import solve_rpaths
from repro.core.two_sisp import solve_two_sisp
from repro.graphs import layered_instance, random_instance
from repro.lowerbound import build_hard_instance, verify_correspondence


dag_params = st.tuples(
    st.integers(min_value=2, max_value=5),    # layers
    st.integers(min_value=1, max_value=4),    # width
    st.integers(min_value=0, max_value=10 ** 6),  # seed
)


@given(dag_params)
@settings(max_examples=25, deadline=None)
def test_rpaths_exact_on_random_dags(params):
    layers, width, seed = params
    instance = layered_instance(layers, width, seed=seed)
    report = solve_rpaths(instance, landmarks=list(range(instance.n)))
    assert report.lengths == replacement_lengths(instance)


@given(st.integers(min_value=0, max_value=10 ** 6),
       st.integers(min_value=20, max_value=45))
@settings(max_examples=15, deadline=None)
def test_rpaths_exact_on_random_digraphs(seed, n):
    instance = random_instance(n, seed=seed)
    report = solve_rpaths(instance, landmarks=list(range(instance.n)))
    assert report.lengths == replacement_lengths(instance)


@given(st.integers(min_value=0, max_value=10 ** 6),
       st.integers(min_value=18, max_value=32))
@settings(max_examples=8, deadline=None)
def test_apx_sandwich_on_random_weighted(seed, n):
    from repro.approx.apx_rpaths import solve_apx_rpaths
    instance = random_instance(n, seed=seed, weighted=True, max_weight=7)
    epsilon = 0.5
    report = solve_apx_rpaths(instance, epsilon=epsilon,
                              landmarks=list(range(instance.n)))
    truth = replacement_lengths(instance)
    for got, want in zip(report.lengths, truth):
        if want >= INF:
            assert got == float("inf")
        else:
            assert want - 1e-9 <= got <= (1 + epsilon) * want + 1e-9


@given(st.integers(min_value=0, max_value=10 ** 6))
@settings(max_examples=15, deadline=None)
def test_lemma_6_8_on_random_bits(seed):
    rng = _random.Random(seed)
    k = 2
    matrix = [[rng.randint(0, 1) for _ in range(k)] for _ in range(k)]
    x = [rng.randint(0, 1) for _ in range(k * k)]
    hard = build_hard_instance(k, 2, 1, matrix, x)
    assert verify_correspondence(hard).holds


@given(st.integers(min_value=0, max_value=10 ** 6),
       st.integers(min_value=2, max_value=5),
       st.integers(min_value=1, max_value=4))
@settings(max_examples=15, deadline=None)
def test_two_sisp_is_min_of_rpaths(seed, layers, width):
    instance = layered_instance(layers, width, seed=seed)
    report = solve_two_sisp(instance,
                            landmarks=list(range(instance.n)))
    assert report.length == two_sisp_length(instance)


@given(st.lists(st.integers(min_value=1, max_value=50),
                min_size=1, max_size=6),
       st.sampled_from([0.5, 0.25, 0.125]))
@settings(max_examples=40, deadline=None)
def test_rounding_observations_on_random_paths(weights, epsilon):
    """Observations 7.3/7.4 as a property over random weight vectors."""
    from fractions import Fraction
    from repro.approx.rounding import Scale, scale_length, subdivided_hops
    zeta = len(weights)
    r = sum(weights)
    d = 2
    while d < r:
        d *= 2
    scale = Scale(d=d, zeta=zeta, eps=Fraction(str(epsilon)))
    # 7.3: lengths never shrink.
    assert scale_length(weights, scale) >= r
    # 7.4: hop budget and (1+ε) stretch hold when r ∈ [d/2, d].
    if d // 2 <= r <= d:
        assert subdivided_hops(weights, scale) <= scale.hop_budget
        assert scale_length(weights, scale) <= (1 + Fraction(str(epsilon))) * r


@given(st.integers(min_value=0, max_value=10 ** 6),
       st.integers(min_value=3, max_value=14))
@settings(max_examples=20, deadline=None)
def test_sweep_engine_equals_sequential_reference(seed, length):
    """The pipelined sweep engine computes the same prefix-min as a
    plain loop, for random values and random sub-ranges."""
    from repro.congest.network import CongestNetwork
    from repro.congest.pipeline import SweepTask, run_path_sweeps

    rng = _random.Random(seed)
    values = [rng.randrange(100) for _ in range(length)]
    net = CongestNetwork(length,
                         [(i, i + 1) for i in range(length - 1)])
    start = rng.randrange(length)
    end = rng.randrange(length)
    task = SweepTask(
        key="t", start=start, end=end, init=values[start],
        combine=lambda pos, v: min(v, values[pos]), deposit=True)
    results = run_path_sweeps(net, list(range(length)), [task])
    step = 1 if end >= start else -1
    best = values[start]
    expect = {start: best}
    for pos in range(start + step, end + step, step):
        best = min(best, values[pos])
        expect[pos] = best
    assert results["t"].trace == expect
