"""Tests for the short-detour approximators (Lemmas 7.5/7.2)."""

import pytest

from repro.approx.approximators import build_short_detour_tables
from repro.approx.rounding import scale_ladder
from repro.congest.words import INF
from repro.core.knowledge import oracle_knowledge
from repro.graphs import (
    layered_instance,
    path_with_chords_instance,
    random_instance,
)


def exact_x_tables(instance, zeta):
    """Brute-force X({i},{j}) over canonical detours of ≤ ζ hops."""
    from repro.baselines.centralized import _dijkstra_with_hops
    h = instance.hop_count
    path = instance.path
    avoid = instance.path_edge_set()
    pre = instance.path_prefix_weights()
    total = pre[-1]
    start_exact = [[INF] * (h + 1) for _ in range(h + 1)]
    for i in range(h + 1):
        dist, hops = _dijkstra_with_hops(instance, path[i], avoid)
        for j in range(i + 1, h + 1):
            if dist[path[j]] < INF and hops[path[j]] <= zeta:
                start_exact[i][j] = pre[i] + dist[path[j]] + (
                    total - pre[j])
    return start_exact


def build(instance, epsilon, zeta):
    net = instance.build_network()
    knowledge = oracle_knowledge(instance)
    max_length = sum(w for _, _, w in instance.edges)
    scales = scale_ladder(zeta, epsilon, max_length)
    tables = build_short_detour_tables(instance, net, knowledge, scales)
    return tables


@pytest.mark.parametrize("builder", [
    lambda: random_instance(25, seed=1, weighted=True, max_weight=6),
    lambda: layered_instance(4, 3, seed=2, weighted=True),
    lambda: path_with_chords_instance(12, seed=3, weighted=True),
])
@pytest.mark.parametrize("epsilon", [0.5, 0.25])
def test_sandwich_on_forward_tables(builder, epsilon):
    instance = builder()
    zeta = 4
    tables = build(instance, epsilon, zeta)
    exact = exact_x_tables(instance, zeta)
    h = instance.hop_count
    for i in range(h + 1):
        for j in range(i + 1, h + 1):
            got = tables.x_start_at(i, j)
            # Validity: never below the best unrestricted-hop detour of
            # the same shape; in particular never below the ζ-hop truth.
            best_exact = min(exact[i][jj] for jj in range(j, h + 1))
            if best_exact < INF:
                assert got <= (1 + epsilon) * best_exact, (i, j)
            # The reported value must always be achievable (≥ *some*
            # real replacement length), so at minimum ≥ |P| when finite.
            if got < INF:
                assert got >= instance.path_length


def test_forward_table_monotone_in_j():
    instance = random_instance(20, seed=5, weighted=True)
    tables = build(instance, 0.5, 4)
    h = instance.hop_count
    for i in range(h + 1):
        previous = None
        for j in range(i + 1, h + 1):
            value = tables.x_start_at(i, j)
            if previous is not None:
                assert value >= previous  # fewer rejoin options → harder
            previous = value


def test_backward_table_monotone_in_j():
    instance = random_instance(20, seed=6, weighted=True)
    tables = build(instance, 0.5, 4)
    h = instance.hop_count
    for i in range(h + 1):
        previous = None
        for j in range(i - 1, -1, -1):
            value = tables.x_end_at(i, j)
            if previous is not None:
                assert value >= previous
            previous = value


def test_out_of_range_queries_inf():
    instance = random_instance(15, seed=7, weighted=True)
    tables = build(instance, 0.5, 3)
    h = instance.hop_count
    assert tables.x_start_at(0, h + 1) == INF
    assert tables.x_end_at(h, -1) == INF


def test_unweighted_instance_tables_consistent_with_exact():
    # On an unweighted instance the rounding is exact up to (1+ε).
    from repro.graphs import grid_instance
    instance = grid_instance(3, 6)
    zeta = 4
    tables = build(instance, 0.5, zeta)
    exact = exact_x_tables(instance, zeta)
    h = instance.hop_count
    for i in range(h):
        best_exact = min(exact[i][jj] for jj in range(i + 1, h + 1))
        got = tables.x_start_at(i, i + 1)
        if best_exact < INF:
            assert best_exact <= got <= 1.5 * best_exact
