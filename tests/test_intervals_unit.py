"""Unit tests for the Section 7.2 interval pipelining: the distributed
sweeps must equal a sequential evaluation of the same local tables."""

import pytest

from repro.approx.approximators import build_short_detour_tables
from repro.approx.intervals import (
    combine_short_detours,
    distant_detours,
    interval_partition,
    nearby_detours,
)
from repro.approx.rounding import scale_ladder
from repro.congest.spanning_tree import build_spanning_tree
from repro.congest.words import INF
from repro.core.knowledge import oracle_knowledge
from repro.graphs import path_with_chords_instance, random_instance


def build_env(instance, width, epsilon=0.5):
    net = instance.build_network()
    tree = build_spanning_tree(net)
    knowledge = oracle_knowledge(instance)
    scales = scale_ladder(
        4, epsilon, sum(w for _, _, w in instance.edges))
    tables = build_short_detour_tables(instance, net, knowledge, scales)
    intervals = interval_partition(knowledge.hop_count, width)
    return net, tree, knowledge, tables, intervals


def sequential_nearby_a(tables, intervals, i):
    for left, right in intervals:
        if left <= i < right:
            return min(tables.x_start_at(k, i + 1)
                       for k in range(left, i + 1))
    return None


def sequential_nearby_b(tables, intervals, i):
    for left, right in intervals:
        if left <= i < right:
            return min(tables.x_end_at(k, i)
                       for k in range(i + 1, right + 1))
    return None


def sequential_cross(tables, intervals, g, k):
    l_k = intervals[k][0]
    best = INF
    for x in range(g + 1):
        left, right = intervals[x]
        for i in range(left, right + 1):
            value = tables.x_start_at(i, l_k)
            if value < best:
                best = value
    return best


@pytest.mark.parametrize("builder,width", [
    (lambda: path_with_chords_instance(16, seed=1, weighted=True), 5),
    (lambda: random_instance(24, seed=2, weighted=True), 3),
    (lambda: path_with_chords_instance(16, seed=3, weighted=True), 50),
])
def test_nearby_sweeps_equal_sequential(builder, width):
    instance = builder()
    net, tree, knowledge, tables, intervals = build_env(instance, width)
    a, b = nearby_detours(net, knowledge, tables, intervals)
    for i in a:
        assert a[i] == sequential_nearby_a(tables, intervals, i), i
    for i in b:
        assert b[i] == sequential_nearby_b(tables, intervals, i), i


@pytest.mark.parametrize("width", [3, 6])
def test_distant_broadcast_equals_sequential(width):
    instance = path_with_chords_instance(18, seed=4, weighted=True)
    net, tree, knowledge, tables, intervals = build_env(instance, width)
    cross = distant_detours(net, tree, knowledge, tables, intervals)
    ell = len(intervals)
    for g in range(ell):
        for k in range(g + 1, ell):
            assert cross[g][k] == sequential_cross(
                tables, intervals, g, k), (g, k)


def test_combiner_covers_every_edge_case():
    instance = path_with_chords_instance(18, seed=5, weighted=True)
    net, tree, knowledge, tables, intervals = build_env(instance, 5)
    a, b = nearby_detours(net, knowledge, tables, intervals)
    cross = distant_detours(net, tree, knowledge, tables, intervals)
    out = combine_short_detours(knowledge, tables, intervals, a, b,
                                cross)
    assert len(out) == instance.hop_count
    # Every value must be a genuine combination of the inputs or INF.
    for i, value in enumerate(out):
        pool = {cross[g][k] for g in range(len(intervals))
                for k in range(g + 1, len(intervals))}
        pool |= set(a.values()) | set(b.values()) | {INF}
        assert value in pool


def test_sweep_round_cost_pipelined():
    instance = path_with_chords_instance(30, seed=6, weighted=True)
    net, tree, knowledge, tables, intervals = build_env(instance, 8)
    before = net.rounds
    nearby_detours(net, knowledge, tables, intervals)
    used = net.rounds - before
    # Per interval: ≤ 2·width sweeps over ≤ width links, pipelined in
    # O(width) rounds; intervals run concurrently.
    assert used <= 4 * 8 + 6
