"""Tests for the scale-out machinery: int32 diet, shm, ``parallel=``.

Three contracts:

1. **Memory diet** — :class:`TopologyArrays` / ``send_arrays`` emit
   int32 views exactly when the value ranges permit, promote to int64
   when they do not (including the OverflowError escape for
   pathological delay steps), and the values are identical either way.
2. **Shared memory** — a published topology attaches to a bit-equal,
   read-only replica whose lazily materialized Python side answers
   every scalar accessor like the original.
3. **Parallel fan-out** — ``solve_rpaths(parallel=...)`` and a
   warmed-parallel :class:`BatchPlanner` return results *and* round
   ledgers bit-identical to the serial path, on every fabric.
"""

from __future__ import annotations

import random

import pytest

from repro.congest.metrics import RoundLedger
from repro.congest.multisource import multi_source_hop_bfs
from repro.congest.network import CongestNetwork
from repro.congest.topology import CSRTopology, TopologyArrays
from repro.core.rpaths import solve_rpaths
from repro.graphs import grid_instance, random_instance
from repro.runtime import sharedmem
from repro.serve.oracle import ReplacementPathOracle
from repro.serve.planner import BatchPlanner
from repro.serve.queries import Query

np = pytest.importorskip("numpy")

FABRICS = ("reference", "fast", "vector")


def _random_topology(n: int, m: int, seed: int,
                     max_weight: int = 1) -> CSRTopology:
    rng = random.Random(seed)
    edges = set()
    while len(edges) < m:
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            edges.add((u, v))
    return CSRTopology(
        n, [(u, v, rng.randint(1, max_weight)) for u, v in edges])


def _phases(ledger: RoundLedger):
    return [stats.as_dict() for stats in ledger.phases()]


# -- 1: the int32 memory diet -------------------------------------------------


class TestInt32Diet:
    def test_small_topology_exports_int32(self):
        arr = _random_topology(60, 150, seed=1).arrays()
        assert arr.index_dtype is np.int32
        assert arr.key_dtype is np.int32
        assert arr.weight_dtype is np.int32
        for name, _role in TopologyArrays.FIELDS:
            view = getattr(arr, name)
            assert view.flags.writeable is False, name

    def test_key_dtype_promotes_past_46340(self):
        # n^2 - 1 exceeds int32 from n = 46341 on; indices still fit.
        topo = CSRTopology(46342, [(0, 1), (1, 0), (1, 46341)])
        arr = topo.arrays()
        assert arr.index_dtype is np.int32
        assert arr.key_dtype is np.int64
        assert int(arr.out_keys.max()) == 1 * 46342 + 46341

    def test_weight_dtype_promotes_on_big_weights(self):
        big = (1 << 31) + 7
        topo = CSRTopology(4, [(0, 1, big), (1, 2, 3), (2, 3, 1)])
        arr = topo.arrays()
        assert arr.weight_dtype is np.int64
        assert int(arr.out_weights.max()) == big
        assert arr.key_dtype is np.int32

    @pytest.mark.parametrize("seed", [2, 3, 4])
    def test_exports_match_python_csr_exactly(self, seed):
        # The diet must never change values, only widths: every
        # exported array equals the Python-list CSR it views.
        topo = _random_topology(80, 240, seed=seed, max_weight=9)
        arr = topo.arrays()
        n = topo.n
        assert arr.out_indptr.tolist() == list(topo.out_indptr)
        assert arr.out_indices.tolist() == list(topo.out_indices)
        assert arr.in_indptr.tolist() == list(topo.in_indptr)
        assert arr.in_indices.tolist() == list(topo.in_indices)
        assert arr.nbr_indptr.tolist() == list(topo.nbr_indptr)
        assert arr.nbr_indices.tolist() == list(topo.nbr_indices)
        assert arr.link_receiver.tolist() == list(topo.link_receiver)
        expect_keys = [u * n + v for u, row in enumerate(topo.out_lists)
                       for v in row]
        assert arr.out_keys.tolist() == expect_keys
        assert arr.out_weights.tolist() == [
            topo._weight_by_key[k] for k in expect_keys]

    def test_steps_int32_unit_and_promoted_on_big_delay(self):
        topo = _random_topology(30, 80, seed=5, max_weight=4)
        _ptr, _idx, steps = topo.send_arrays("out")
        assert steps.dtype == np.int32
        assert set(steps.tolist()) == {1}
        big = 1 << 40
        _ptr, _idx, steps2 = topo.send_arrays(
            "out", delay=lambda w: big + w)
        assert steps2.dtype == np.int64
        assert int(steps2.min()) >= big + 1

    def test_delay_overflow_still_escapes(self):
        topo = _random_topology(10, 20, seed=6)
        with pytest.raises(OverflowError):
            topo.send_arrays("out", delay=lambda w: 1 << 62)
        with pytest.raises(OverflowError):
            topo.send_arrays("out", delay=lambda w: 0)

    def test_send_plan_cache_hits_and_bypasses(self):
        topo = _random_topology(30, 80, seed=7)
        avoid = frozenset([(0, 1)])
        first = topo.send_arrays("out", avoid)
        again = topo.send_arrays("out", avoid)
        # Cache hit: the very same frozen arrays, not a rebuild.
        assert all(a is b for a, b in zip(first, again))
        # Delay callables bypass (no stable identity to key on).
        d1 = topo.send_arrays("out", avoid, delay=lambda w: 2)
        d2 = topo.send_arrays("out", avoid, delay=lambda w: 2)
        assert d1[2] is not d2[2]

    def test_avoid_filter_values_unchanged_by_diet(self):
        topo = _random_topology(40, 120, seed=8)
        avoid = frozenset(list(topo.directed_edges())[:5])
        indptr, indices, _steps = topo.send_arrays("out", avoid)
        kept = set()
        ptr = indptr.tolist()
        flat = indices.tolist()
        for u in range(topo.n):
            for v in flat[ptr[u]:ptr[u + 1]]:
                kept.add((u, v))
        expect = set(topo.directed_edges()) - avoid
        assert kept == expect


# -- 2: shared-memory round-trip ----------------------------------------------


class TestSharedMemory:
    def test_publish_attach_roundtrip(self):
        topo = _random_topology(50, 140, seed=9, max_weight=6)
        with sharedmem.publish_topology(topo) as pub:
            attached = sharedmem.attach_topology(pub.handle)
            try:
                a, b = topo.arrays(), attached.arrays()
                for name, _role in TopologyArrays.FIELDS:
                    va, vb = getattr(a, name), getattr(b, name)
                    assert va.dtype == vb.dtype, name
                    assert va.tolist() == vb.tolist(), name
                    assert vb.flags.writeable is False, name
                # Scalar accessors ride the lazily rebuilt Python side.
                assert attached.n == topo.n
                assert attached.num_edges == topo.num_edges
                assert (list(attached.directed_edges())
                        == list(topo.directed_edges()))
                for u, v in list(topo.directed_edges())[:10]:
                    assert attached.weight(u, v) == topo.weight(u, v)
                    assert attached.link_id(u, v) == topo.link_id(u, v)
            finally:
                sharedmem.detach_topology(attached)

    def test_attached_topology_runs_message_fabric(self):
        inst = random_instance(40, seed=11)
        topo = inst.build_network(fabric="fast").topology
        with sharedmem.publish_topology(topo) as pub:
            attached = sharedmem.attach_topology(pub.handle)
            try:
                base = CongestNetwork(topo.n, (), fabric="fast",
                                      topology=topo)
                over = CongestNetwork(topo.n, (), fabric="fast",
                                      topology=attached)
                want = multi_source_hop_bfs(base, [0, 1], hop_limit=12)
                got = multi_source_hop_bfs(over, [0, 1], hop_limit=12)
                assert want == got
                assert (_phases(base.ledger) == _phases(over.ledger))
            finally:
                sharedmem.detach_topology(attached)


# -- 3: parallel-vs-serial bit-identity ---------------------------------------


class TestParallelBitIdentity:
    @pytest.mark.parametrize("fabric", FABRICS)
    def test_solve_rpaths_tables_and_ledgers(self, fabric):
        inst = random_instance(60, avg_degree=5.0, seed=13)
        serial = solve_rpaths(inst, fabric=fabric, parallel=1)
        fanned = solve_rpaths(inst, fabric=fabric, parallel=2)
        assert fanned.lengths == serial.lengths
        assert _phases(fanned.ledger) == _phases(serial.ledger)

    def test_planner_warm_parallel_matches_serial(self):
        inst = random_instance(50, avg_degree=5.0, seed=17)
        queries = [Query(s=s, t=inst.t, edge=e)
                   for e in inst.path_edges()[:4]
                   for s in range(0, 40, 5)]

        def run(parallel):
            planner = BatchPlanner(ReplacementPathOracle.build(inst),
                                   fabric="vector", max_group=4)
            planner.warm(parallel=parallel)
            try:
                answers, report = planner.answer_batch(queries)
            finally:
                planner.close()
            return ([a.length for a in answers],
                    [a.kind for a in answers],
                    _phases(planner._net.ledger),
                    report.as_metrics())

        assert run(1) == run(3)

    def test_ledger_merge_reproduces_serial_aggregates(self):
        serial = RoundLedger()
        with serial.phase("outer"):
            with serial.phase("a"):
                serial.charge_round(3, 9, 2)
            with serial.phase("b"):
                serial.charge_rounds(4, 8, 16, 5, violations=1)

        parent = RoundLedger()
        workers = []
        for name, charge in (("a", lambda led: led.charge_round(3, 9, 2)),
                             ("b", lambda led: led.charge_rounds(
                                 4, 8, 16, 5, violations=1))):
            worker = RoundLedger()
            with worker.phase("outer"):
                with worker.phase(name):
                    charge(worker)
            workers.append(worker.phase_snapshot())
        with parent.phase("outer"):
            pass
        for snapshot in workers:
            parent.merge_phases(snapshot)
        assert _phases(parent) == _phases(serial)
