"""Sharded service: routing, LRU, spill persistence, parallel serving.

Also covers the runtime executor's generalized ``pool_map``, which the
parallel serving path reuses.
"""

import pytest

from repro.graphs.generators import grid_instance, random_instance
from repro.runtime.executor import POOL_ERROR, pool_map
from repro.runtime.store import ResultStore
from repro.serve import (
    OracleShard,
    Query,
    ShardedQueryService,
    centralized_truth,
    generate_workload,
    shard_of,
    spill_key,
    verify_against_centralized,
)


def _instances(count=4, n=24):
    return [random_instance(n, seed=s) for s in range(1, count + 1)]


def _service(insts, **kw):
    kw.setdefault("solver", "centralized")
    return ShardedQueryService(insts, **kw)


class TestRouting:
    def test_shard_assignment_is_stable(self):
        assert shard_of("abc", 7) == shard_of("abc", 7)
        assert 0 <= shard_of("abc", 7) < 7

    def test_every_instance_is_reachable(self):
        insts = _instances()
        service = _service(insts, shards=3)
        for inst in insts:
            edge = inst.path_edges()[0]
            answer = service.query(inst.name, inst.s, inst.t, edge)
            assert answer.length == centralized_truth(
                inst, inst.s, inst.t, edge)

    def test_unknown_instance_raises(self):
        service = _service(_instances(2))
        with pytest.raises(KeyError, match="unknown instance"):
            service.query("nope", 0, 1, (0, 1))
        with pytest.raises(KeyError, match="unknown instance"):
            service.serve([Query(s=0, t=1, edge=(0, 1),
                                 instance="nope")])

    def test_duplicate_names_rejected(self):
        inst = random_instance(20, seed=1)
        with pytest.raises(ValueError, match="duplicate"):
            ShardedQueryService([inst, inst])

    def test_unnamed_instance_rejected(self):
        inst = grid_instance(3, 5, name="x")
        inst.name = ""
        with pytest.raises(ValueError, match="name"):
            ShardedQueryService([inst])


class TestLruAndSpill:
    def test_lru_evicts_and_spill_restores(self, tmp_path):
        store = ResultStore(tmp_path)
        shard = OracleShard(capacity=1, store=store,
                            solver="centralized")
        insts = _instances(2)
        for inst in insts:
            shard.add_instance(inst)
        shard.oracle_for(insts[0].name)
        shard.oracle_for(insts[1].name)  # evicts the first
        assert shard.stats.evictions == 1
        assert shard.stats.oracle_builds == 2
        assert shard.stats.spill_saves == 2
        # Coming back to the evicted key restores from the spill, not
        # a rebuild.
        shard.oracle_for(insts[0].name)
        assert shard.stats.oracle_builds == 2
        assert shard.stats.spill_loads == 1

    def test_spill_survives_the_process_object(self, tmp_path):
        store = ResultStore(tmp_path)
        insts = _instances(2)
        first = OracleShard(capacity=2, store=store,
                            solver="centralized")
        for inst in insts:
            first.add_instance(inst)
        first.warm()
        reborn = OracleShard(capacity=2, store=store,
                             solver="centralized")
        for inst in insts:
            reborn.add_instance(inst)
        reborn.warm()
        assert reborn.stats.oracle_builds == 0
        assert reborn.stats.spill_loads == 2

    def test_spill_key_is_solver_scoped(self):
        assert (spill_key("a", "theorem1")
                != spill_key("a", "centralized"))
        assert spill_key("a", "theorem1") != spill_key("b", "theorem1")

    def test_warm_without_store_stops_at_capacity(self):
        shard = OracleShard(capacity=1, solver="centralized")
        for inst in _instances(3):
            shard.add_instance(inst)
        shard.warm()
        # Building past the LRU with nowhere to spill would discard
        # whole solves; warm must not do that.
        assert shard.stats.oracle_builds == 1
        assert shard.stats.evictions == 0

    def test_warm_with_store_spills_everything(self, tmp_path):
        shard = OracleShard(capacity=1, solver="centralized",
                            store=ResultStore(tmp_path))
        for inst in _instances(3):
            shard.add_instance(inst)
        shard.warm()
        assert shard.stats.spill_saves == 3

    def test_lru_hit_counts(self):
        shard = OracleShard(capacity=2, solver="centralized")
        inst = random_instance(20, seed=1)
        shard.add_instance(inst)
        shard.oracle_for(inst.name)
        shard.oracle_for(inst.name)
        assert shard.stats.lru_hits == 1


class TestServing:
    def test_serve_matches_truth_and_reports(self):
        insts = _instances(3)
        service = _service(insts, shards=2, capacity=2)
        queries = []
        for inst in insts:
            queries.extend(
                generate_workload("mixed", inst, 30, seed=2))
        report = service.serve(queries)
        assert report.queries == len(queries)
        assert verify_against_centralized(insts, report.answers)
        assert 0.0 < report.hit_ratio < 1.0
        assert report.as_metrics()["shards"] == 2

    def test_serial_and_parallel_agree(self, tmp_path):
        insts = _instances(4, n=20)
        queries = []
        for inst in insts:
            queries.extend(
                generate_workload("zipf", inst, 15, seed=4))
        serial = _service(insts, shards=3).serve(queries)
        parallel = _service(
            insts, shards=3,
            store=ResultStore(tmp_path)).serve_parallel(queries,
                                                        jobs=3)
        assert ([a.length for a in serial.answers]
                == [a.length for a in parallel.answers])
        assert parallel.jobs > 1
        assert verify_against_centralized(insts, parallel.answers)

    def test_parallel_single_shard_falls_back_to_serial(self):
        insts = _instances(1)
        service = _service(insts, shards=1)
        queries = generate_workload("uniform", insts[0], 10, seed=0)
        report = service.serve_parallel(queries, jobs=4)
        assert report.jobs == 1  # one shard -> no pool spin-up
        assert report.queries == len(queries)

    def test_empty_serve_is_a_stats_snapshot(self):
        service = _service(_instances(2))
        report = service.serve([])
        assert report.queries == 0
        assert report.hit_ratio == 0.0


def _double(x):
    return x * 2


def _boom(x):
    raise RuntimeError(f"bad {x}")


class TestPoolMap:
    def test_ordered_results(self):
        assert pool_map(_double, [3, 1, 2], jobs=2) == [6, 2, 4]

    def test_fallback_replaces_failures(self):
        out = pool_map(
            _boom, ["a"], jobs=2,
            fallback=lambda payload, kind, msg: (payload, kind))
        assert out == [("a", POOL_ERROR)]

    def test_no_fallback_propagates(self):
        with pytest.raises(RuntimeError, match="bad a"):
            pool_map(_boom, ["a"], jobs=2)

    def test_none_results_keep_their_slot(self):
        out = pool_map(_boom, ["a", "b"], jobs=2,
                       fallback=lambda payload, kind, msg: None)
        assert out == [None, None]  # positions preserved, not dropped
