"""ReplacementPathOracle: cost-model unit tests + property fuzz.

The satellite contract: random (s, t, e) queries across every
generator family must agree with ``baselines.centralized`` ground
truth — including unreachable/INF answers and edges not on the s-t
path.
"""

import random

import pytest

from conftest import family_instances
from repro.baselines.centralized import replacement_lengths
from repro.congest.words import INF
from repro.graphs.instance import instance_from_edges
from repro.serve import (
    FALLBACK_CACHED,
    FALLBACK_SOLVE,
    HIT_OFF_PATH,
    HIT_PATH_EDGE,
    ReplacementPathOracle,
    centralized_truth,
)


def chain_instance():
    """A bare chain: every path-edge failure disconnects t (INF)."""
    edges = [(0, 1), (1, 2), (2, 3)]
    return instance_from_edges(edges, [0, 1, 2, 3], name="chain4")


class TestOracleHits:
    def test_path_edge_hits_match_centralized(self, grid):
        oracle = ReplacementPathOracle.build(grid, solver="theorem1")
        truth = replacement_lengths(grid)
        for i, edge in enumerate(grid.path_edges()):
            answer = oracle.query(grid.s, grid.t, edge)
            assert answer.kind == HIT_PATH_EDGE
            assert answer.length == truth[i]

    def test_off_path_edge_is_path_length(self, small_random):
        oracle = ReplacementPathOracle.build(
            small_random, solver="centralized")
        on_path = small_random.path_edge_set()
        off = [(u, v) for u, v, _ in small_random.edges
               if (u, v) not in on_path]
        assert off, "family should have off-path edges"
        answer = oracle.query(small_random.s, small_random.t, off[0])
        assert answer.kind == HIT_OFF_PATH
        assert answer.length == small_random.path_length
        assert answer.length == centralized_truth(
            small_random, small_random.s, small_random.t, off[0])

    def test_non_edge_is_also_an_off_path_hit(self, grid):
        oracle = ReplacementPathOracle.build(grid,
                                             solver="centralized")
        answer = oracle.query(grid.s, grid.t, (grid.t, grid.s))
        assert answer.kind == HIT_OFF_PATH
        assert answer.length == grid.path_length

    def test_unreachable_is_inf(self):
        inst = chain_instance()
        oracle = ReplacementPathOracle.build(inst,
                                             solver="theorem1")
        for edge in inst.path_edges():
            answer = oracle.query(inst.s, inst.t, edge)
            assert answer.length >= INF
            assert not answer.reachable
            assert answer.display_length() == "inf"


class TestOracleFallback:
    def test_arbitrary_pair_solves_then_caches(self, small_random):
        oracle = ReplacementPathOracle.build(
            small_random, solver="centralized")
        edge = small_random.path_edges()[0]
        s = small_random.path[1]
        first = oracle.query(s, small_random.t, edge)
        assert first.kind == FALLBACK_SOLVE
        # Different target, same (s, e): served from the memo.
        second = oracle.query(s, small_random.path[0], edge)
        assert second.kind == FALLBACK_CACHED
        assert oracle.stats.fallback_solves == 1
        assert oracle.stats.fallback_cached == 1

    def test_out_of_range_endpoints_raise(self, grid):
        oracle = ReplacementPathOracle.build(grid,
                                             solver="centralized")
        with pytest.raises(ValueError):
            oracle.query(-1, grid.t, grid.path_edges()[0])
        with pytest.raises(ValueError):
            oracle.query(grid.s, grid.n, grid.path_edges()[0])

    def test_stats_hit_ratio(self, grid):
        oracle = ReplacementPathOracle.build(grid,
                                             solver="centralized")
        oracle.query(grid.s, grid.t, grid.path_edges()[0])
        oracle.query(grid.path[1], grid.t, grid.path_edges()[0])
        assert oracle.stats.queries == 2
        assert oracle.stats.hit_ratio == 0.5


class TestOracleProperty:
    """The fuzz satellite: every family, every query class."""

    @pytest.mark.parametrize("weighted", [False, True])
    def test_random_queries_match_centralized(self, weighted):
        rng = random.Random(20260728 + weighted)
        for inst in family_instances(weighted=weighted):
            oracle = ReplacementPathOracle.build(
                inst, solver="centralized")
            pool = ([(u, v) for u, v, _ in inst.edges]
                    + inst.path_edges() * 3
                    + [(inst.t, inst.s)])  # usually a non-edge
            for _ in range(40):
                shape = rng.randrange(3)
                if shape == 0:  # own pair (hit classes)
                    s, t = inst.s, inst.t
                elif shape == 1:  # arbitrary pair
                    s, t = (rng.randrange(inst.n),
                            rng.randrange(inst.n))
                else:  # on-path source, arbitrary target
                    s = rng.choice(inst.path)
                    t = rng.randrange(inst.n)
                edge = rng.choice(pool)
                answer = oracle.query(s, t, edge)
                assert answer.length == centralized_truth(
                    inst, s, t, edge), (inst.name, s, t, edge)

    def test_theorem1_and_centralized_oracles_agree(self):
        for inst in family_instances(weighted=False)[:3]:
            fast = ReplacementPathOracle.build(
                inst, solver="theorem1", seed=5)
            exact = ReplacementPathOracle.build(
                inst, solver="centralized")
            assert fast.lengths == exact.lengths


class TestSnapshot:
    def test_roundtrip_preserves_answers(self, chords):
        oracle = ReplacementPathOracle.build(chords,
                                             solver="centralized")
        restored = ReplacementPathOracle.from_snapshot(
            chords, oracle.snapshot())
        assert restored is not None
        assert restored.lengths == oracle.lengths
        edge = chords.path_edges()[2]
        assert (restored.query(chords.s, chords.t, edge).length
                == oracle.query(chords.s, chords.t, edge).length)

    def test_snapshot_is_json_safe(self, grid):
        import json
        oracle = ReplacementPathOracle.build(grid,
                                             solver="centralized")
        data = json.loads(json.dumps(oracle.snapshot()))
        restored = ReplacementPathOracle.from_snapshot(grid, data)
        assert restored is not None and restored.lengths == \
            oracle.lengths

    def test_mismatched_snapshot_rejected(self, grid, small_random):
        oracle = ReplacementPathOracle.build(grid,
                                             solver="centralized")
        assert ReplacementPathOracle.from_snapshot(
            small_random, oracle.snapshot()) is None
        broken = oracle.snapshot()
        broken["lengths"] = broken["lengths"][:-1]
        assert ReplacementPathOracle.from_snapshot(grid, broken) is \
            None

    def test_unknown_solver_rejected(self, grid):
        with pytest.raises(ValueError):
            ReplacementPathOracle.build(grid, solver="quantum")
