"""Tests for the baseline algorithms (centralized, trivial, MR24b, RZ)."""

import pytest

from repro.baselines import (
    detour_replacement_lengths_with_threshold,
    replacement_lengths,
    solve_rpaths_mr24,
    solve_rpaths_naive,
    solve_rpaths_roditty_zwick,
    two_sisp_length,
)
from repro.congest.words import INF
from tests.conftest import family_instances


class TestCentralizedOracle:
    def test_grid_truth(self, grid):
        truth = replacement_lengths(grid)
        assert truth == [grid.hop_count + 2] * grid.hop_count

    def test_two_sisp_is_min(self, chords):
        truth = replacement_lengths(chords)
        assert two_sisp_length(chords) == min(truth)

    def test_detour_split_covers_truth(self):
        # min(short bucket, long bucket) must equal the full truth for
        # any threshold.
        for idx in range(4):
            instance = family_instances()[idx]
            truth = replacement_lengths(instance)
            for zeta in (1, 3, 8):
                short, long_ = detour_replacement_lengths_with_threshold(
                    instance, zeta)
                combined = [min(a, b) for a, b in zip(short, long_)]
                assert combined == truth, (instance.name, zeta)

    def test_buckets_disjoint_semantics(self, double_path):
        # The double-path detour has h+extra hops: it must land in the
        # long bucket for small ζ and the short bucket for large ζ.
        hop = double_path.hop_count + 2  # detour hop count
        short, long_ = detour_replacement_lengths_with_threshold(
            double_path, hop - 1)
        assert all(x == INF for x in short)
        assert all(x < INF for x in long_)
        short, long_ = detour_replacement_lengths_with_threshold(
            double_path, hop)
        assert all(x < INF for x in short)


class TestTrivialBaseline:
    @pytest.mark.parametrize("idx", range(4))
    def test_exact(self, idx):
        instance = family_instances()[idx]
        report = solve_rpaths_naive(instance)
        assert report.lengths == replacement_lengths(instance)

    def test_rounds_scale_with_hst(self):
        from repro.graphs import path_with_chords_instance
        small = path_with_chords_instance(12, seed=1)
        large = path_with_chords_instance(60, seed=1)
        r_small = solve_rpaths_naive(small).rounds
        r_large = solve_rpaths_naive(large).rounds
        assert r_large > 3 * r_small  # h_st grew 5×

    def test_weighted_rejected(self):
        from repro.graphs import random_instance
        inst = random_instance(20, seed=3, weighted=True)
        with pytest.raises(ValueError):
            solve_rpaths_naive(inst)


class TestMR24Baseline:
    @pytest.mark.parametrize("idx", range(6))
    def test_exact_with_full_landmarks(self, idx):
        instance = family_instances()[idx]
        report = solve_rpaths_mr24(
            instance, landmarks=list(range(instance.n)))
        assert report.lengths == replacement_lengths(instance), \
            instance.name

    @pytest.mark.parametrize("seed", [0, 1])
    def test_exact_with_sampled_landmarks(self, seed, chords):
        report = solve_rpaths_mr24(chords, seed=seed, landmark_c=3.0)
        assert report.lengths == replacement_lengths(chords)

    def test_big_broadcast_phase_present(self, grid):
        report = solve_rpaths_mr24(grid, landmarks=list(range(grid.n)))
        assert "mr24-big-broadcast" in report.ledger.breakdown()

    def test_weighted_rejected(self):
        from repro.graphs import random_instance
        inst = random_instance(20, seed=3, weighted=True)
        with pytest.raises(ValueError):
            solve_rpaths_mr24(inst)


class TestRodittyZwick:
    @pytest.mark.parametrize("idx", range(6))
    def test_exact_with_full_landmarks(self, idx):
        instance = family_instances()[idx]
        got = solve_rpaths_roditty_zwick(
            instance, landmarks=list(range(instance.n)))
        assert got == replacement_lengths(instance), instance.name

    def test_exact_with_default_sampling(self, chords):
        got = solve_rpaths_roditty_zwick(chords, seed=5)
        assert got == replacement_lengths(chords)

    @pytest.mark.parametrize("zeta", [1, 4, 50])
    def test_threshold_invariant(self, zeta, grid):
        got = solve_rpaths_roditty_zwick(
            grid, zeta=zeta, landmarks=list(range(grid.n)))
        assert got == replacement_lengths(grid)
