"""Tests for landmark sampling (Definition 5.2 / Lemma 5.3)."""

import math
import random

from repro.core.landmarks import (
    expected_landmark_count,
    landmark_probability,
    sample_landmarks,
    segment_hits_landmark,
)


class TestSamplingDistribution:
    def test_probability_formula(self):
        n, zeta = 1000, 100
        p = landmark_probability(n, zeta, c=2.0)
        assert abs(p - 2.0 * math.log(n) / zeta) < 1e-12

    def test_probability_clamped(self):
        assert landmark_probability(10, 1, c=50.0) == 1.0
        assert landmark_probability(1, 5) == 1.0

    def test_expected_count_is_n_p(self):
        n, zeta = 729, 81  # ζ = n^{2/3}
        want = n * landmark_probability(n, zeta)
        assert expected_landmark_count(n, zeta) == want

    def test_expected_count_order_n_to_one_third(self):
        # At ζ = n^{2/3}, E|L| = c·n^{1/3}·log n.
        n = 1000
        zeta = round(n ** (2 / 3))
        expected = expected_landmark_count(n, zeta, c=2.0)
        assert expected < 10 * (n ** (1 / 3)) * math.log(n)

    def test_deterministic_under_seed(self):
        assert sample_landmarks(200, 34, seed=9) == \
            sample_landmarks(200, 34, seed=9)

    def test_empirical_rate_close_to_p(self):
        n, zeta = 4000, 250
        p = landmark_probability(n, zeta)
        counts = [len(sample_landmarks(n, zeta, seed=s))
                  for s in range(5)]
        mean = sum(counts) / len(counts)
        assert 0.5 * p * n < mean < 1.8 * p * n

    def test_shared_rng_advances(self):
        rng = random.Random(3)
        a = sample_landmarks(100, 20, rng=rng)
        b = sample_landmarks(100, 20, rng=rng)
        assert a != b  # rng state advanced between calls


class TestCoverageProperty:
    def test_segment_hits_landmark_predicate(self):
        assert segment_hits_landmark([1, 2, 3], [3, 9])
        assert not segment_hits_landmark([1, 2, 3], [4])
        assert not segment_hits_landmark([], [1])

    def test_lemma_5_3_empirically(self):
        # Every ζ-vertex window of 0..n−1 should contain a landmark in
        # the vast majority of samples at c = 2.
        n, zeta = 2000, 150
        misses = 0
        trials = 10
        for seed in range(trials):
            landmarks = set(sample_landmarks(n, zeta, c=2.0, seed=seed))
            for start in range(0, n - zeta, zeta):
                window = range(start, start + zeta)
                if not any(v in landmarks for v in window):
                    misses += 1
        assert misses == 0
