"""Tests for checkpoints and segment pipelining (Lemmas 5.7–5.9)."""

import pytest

from repro.congest.spanning_tree import build_spanning_tree
from repro.congest.words import INF
from repro.core.knowledge import oracle_knowledge
from repro.core.landmark_distances import compute_landmark_distances
from repro.core.segments import (
    checkpoint_positions,
    finish_distance_tables,
    prefix_min_to_landmarks,
    suffix_min_from_landmarks,
)
from repro.graphs import grid_instance, path_with_chords_instance


class TestCheckpoints:
    def test_cover_whole_path(self):
        assert checkpoint_positions(10, 4) == [0, 4, 8, 10]

    def test_exact_division(self):
        assert checkpoint_positions(8, 4) == [0, 4, 8]

    def test_short_path_single_segment(self):
        assert checkpoint_positions(3, 10) == [0, 3]

    def test_invalid_segment_len(self):
        with pytest.raises(ValueError):
            checkpoint_positions(5, 0)


def build_environment(instance, segment_len):
    net = instance.build_network()
    tree = build_spanning_tree(net)
    knowledge = oracle_knowledge(instance)
    landmarks = list(range(instance.n))
    distances = compute_landmark_distances(
        net, tree, landmarks, hop_limit=instance.n,
        avoid_edges=instance.path_edge_set())
    checkpoints = checkpoint_positions(instance.hop_count, segment_len)
    return net, tree, knowledge, distances, checkpoints


def brute_m(instance, knowledge, distances, i, j):
    """min_{u ≤ v_i} |su| + |u l_j|_{G\\P} — the Lemma 5.8 target."""
    best = INF
    for u_pos in range(i + 1):
        cand = (knowledge.dist_from_s[u_pos]
                + distances.to_landmark[j][knowledge.path[u_pos]])
        best = min(best, cand)
    return min(best, INF)


def brute_n(instance, knowledge, distances, i, j):
    """min_{u ≥ v_{i+1}} |l_j u|_{G\\P} + |ut| — the Lemma 5.9 target."""
    best = INF
    for u_pos in range(i + 1, knowledge.hop_count + 1):
        cand = (distances.from_landmark[j][knowledge.path[u_pos]]
                + knowledge.dist_to_t[u_pos])
        best = min(best, cand)
    return min(best, INF)


@pytest.mark.parametrize("builder,segment_len", [
    (lambda: grid_instance(3, 8), 3),
    (lambda: path_with_chords_instance(14, seed=2), 4),
    (lambda: path_with_chords_instance(14, seed=2), 100),  # one segment
])
def test_final_tables_match_brute_force(builder, segment_len):
    instance = builder()
    net, tree, knowledge, distances, checkpoints = build_environment(
        instance, segment_len)
    prefix = prefix_min_to_landmarks(net, knowledge, distances,
                                     checkpoints)
    suffix = suffix_min_from_landmarks(net, knowledge, distances,
                                       checkpoints)
    tables = finish_distance_tables(
        net, tree, knowledge, distances, checkpoints, prefix, suffix)
    h = instance.hop_count
    for j in range(distances.count):
        for i in range(h):
            assert tables["M"][j][i] == brute_m(
                instance, knowledge, distances, i, j), (i, j, "M")
            assert tables["N"][j][i] == brute_n(
                instance, knowledge, distances, i, j), (i, j, "N")


def test_prefix_traces_are_local_minima():
    instance = grid_instance(3, 7)
    net, tree, knowledge, distances, checkpoints = build_environment(
        instance, 3)
    prefix = prefix_min_to_landmarks(net, knowledge, distances,
                                     checkpoints)
    # Within each segment the trace must be the running minimum of the
    # local quantity, independently recomputed here.
    for g in range(len(checkpoints) - 1):
        left, right = checkpoints[g], checkpoints[g + 1]
        for j in range(distances.count):
            best = INF
            for pos in range(left, right + 1):
                local = (knowledge.dist_from_s[pos]
                         + distances.to_landmark[j][knowledge.path[pos]])
                best = min(best, local)
                assert prefix[g][j][pos] == min(best, INF + local - local) \
                    or prefix[g][j][pos] == best


def test_segment_sweeps_pipelined_round_bound():
    instance = path_with_chords_instance(30, seed=4)
    net, tree, knowledge, distances, checkpoints = build_environment(
        instance, 6)
    before = net.rounds
    prefix_min_to_landmarks(net, knowledge, distances, checkpoints)
    used = net.rounds - before
    # |L| sweeps per segment, all pipelined: O(segment + |L|), far below
    # the sequential |L| × segment cost.
    seg = 6
    k = distances.count
    assert used <= 2 * (seg + k) + 4
    assert used < k * seg
