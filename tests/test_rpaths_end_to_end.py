"""End-to-end integration tests for Theorem 1 (core.rpaths)."""

import pytest

from repro.baselines import replacement_lengths
from repro.congest.words import INF
from repro.core.rpaths import default_zeta, solve_rpaths
from tests.conftest import family_instances


class TestExactness:
    @pytest.mark.parametrize("idx", range(6))
    def test_full_landmarks_deterministic_exact(self, idx):
        instance = family_instances()[idx]
        report = solve_rpaths(
            instance, landmarks=list(range(instance.n)))
        assert report.lengths == replacement_lengths(instance), \
            instance.name

    @pytest.mark.parametrize("idx", range(6))
    @pytest.mark.parametrize("seed", [0, 1])
    def test_sampled_landmarks_whp_exact(self, idx, seed):
        instance = family_instances()[idx]
        report = solve_rpaths(instance, seed=seed, landmark_c=3.0)
        assert report.lengths == replacement_lengths(instance), \
            (instance.name, seed)

    def test_distributed_knowledge_matches_oracle_knowledge(self):
        instance = family_instances()[2]
        a = solve_rpaths(instance, landmarks=list(range(instance.n)),
                         use_oracle_knowledge=True)
        b = solve_rpaths(instance, landmarks=list(range(instance.n)),
                         use_oracle_knowledge=False)
        assert a.lengths == b.lengths


class TestReportContents:
    def test_phases_present(self, grid):
        report = solve_rpaths(grid, seed=1)
        breakdown = report.ledger.breakdown()
        assert "short-detour(P4.1)" in breakdown
        assert "long-detour(P5.1)" in breakdown
        assert "knowledge(L2.5)" in breakdown
        assert sum(v for k, v in breakdown.items()
                   if k in ("short-detour(P4.1)", "long-detour(P5.1)",
                            "knowledge(L2.5)")) <= report.rounds

    def test_extras_hold_stage_outputs(self, grid):
        report = solve_rpaths(grid, landmarks=list(range(grid.n)))
        short = report.extras["short"]
        long_ = report.extras["long"]
        assert report.lengths == [min(a, b)
                                  for a, b in zip(short, long_)]

    def test_default_zeta_formula(self):
        assert default_zeta(1000) == 100
        assert default_zeta(1) == 1

    def test_diameter_optional(self, grid):
        report = solve_rpaths(grid, compute_diameter=True)
        assert report.diameter == grid.build_network(
        ).undirected_diameter()

    def test_weighted_instance_rejected(self):
        from repro.graphs import random_instance
        inst = random_instance(30, seed=1, weighted=True)
        with pytest.raises(ValueError):
            solve_rpaths(inst)


class TestUnreachableEdges:
    def test_no_replacement_reported_inf(self):
        # A pure path with no detours at all.
        from repro.graphs.instance import instance_from_edges
        inst = instance_from_edges(
            [(0, 1), (1, 2), (2, 3)], path=[0, 1, 2, 3])
        report = solve_rpaths(inst, landmarks=list(range(inst.n)))
        assert report.lengths == [INF, INF, INF]

    def test_mixed_reachability(self):
        # Detour exists only around the middle edge.
        from repro.graphs.instance import instance_from_edges
        inst = instance_from_edges(
            [(0, 1), (1, 2), (2, 3), (1, 4), (4, 5), (5, 2)],
            path=[0, 1, 2, 3])
        report = solve_rpaths(inst, landmarks=list(range(inst.n)))
        assert report.lengths == [INF, 3 + 2, INF]


class TestZetaAblation:
    @pytest.mark.parametrize("zeta", [1, 2, 5, 20])
    def test_any_threshold_is_exact_with_full_landmarks(self, zeta):
        instance = family_instances()[3]
        report = solve_rpaths(instance, zeta=zeta,
                              landmarks=list(range(instance.n)))
        assert report.lengths == replacement_lengths(instance)
