"""Tests for the distributed BFS/SSSP primitives (congest.bfs)."""

import pytest

from repro.congest.bfs import (
    bfs_distances,
    bfs_tree,
    sssp_distances_weighted,
)
from repro.congest.network import CongestNetwork
from repro.congest.words import INF
from repro.graphs import random_instance


def diamond():
    # 0 -> 1 -> 3, 0 -> 2 -> 3, plus a long tail 3 -> 4.
    return CongestNetwork(5, [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)])


class TestBfsDistances:
    def test_forward_distances(self):
        dist = bfs_distances(diamond(), 0)
        assert dist == [0, 1, 1, 2, 3]

    def test_rounds_equal_depth(self):
        net = diamond()
        bfs_distances(net, 0)
        assert net.rounds == 3

    def test_backward_distances(self):
        # direction="in": distance from v *to* the source.
        dist = bfs_distances(diamond(), 3, direction="in")
        assert dist[0] == 2
        assert dist[1] == 1
        assert dist[4] == INF  # 4 cannot reach 3

    def test_hop_limit_truncates(self):
        dist = bfs_distances(diamond(), 0, hop_limit=1)
        assert dist[3] == INF
        assert dist[1] == 1

    def test_avoid_edges_respected(self):
        dist = bfs_distances(diamond(), 0,
                             avoid_edges=frozenset([(0, 1), (0, 2)]))
        assert dist[1] == INF and dist[3] == INF

    def test_unreachable_marked_inf(self):
        net = CongestNetwork(3, [(0, 1), (2, 1)])
        dist = bfs_distances(net, 0)
        assert dist[2] == INF

    def test_matches_centralized_on_random_instance(self):
        instance = random_instance(50, seed=11)
        net = instance.build_network()
        got = bfs_distances(net, instance.s)
        want = instance.dijkstra(instance.s)
        assert got == want

    def test_reverse_matches_centralized(self):
        instance = random_instance(50, seed=12)
        net = instance.build_network()
        got = bfs_distances(net, instance.t, direction="in")
        want = instance.dijkstra(instance.t, reverse=True)
        assert got == want

    def test_bad_direction_rejected(self):
        with pytest.raises(ValueError):
            bfs_distances(diamond(), 0, direction="sideways")


class TestBfsTree:
    def test_parent_pointers_consistent(self):
        dist, parent = bfs_tree(diamond(), 0)
        assert parent[0] == 0
        for v in range(1, 5):
            if dist[v] < INF:
                assert dist[parent[v]] == dist[v] - 1

    def test_tie_break_smallest_parent(self):
        _, parent = bfs_tree(diamond(), 0)
        assert parent[3] == 1  # 1 < 2


class TestWeightedSssp:
    def test_simple_weights(self):
        net = CongestNetwork(3, [(0, 1, 5), (1, 2, 2), (0, 2, 9)])
        dist = sssp_distances_weighted(net, 0)
        assert dist == [0, 5, 7]

    def test_rounds_track_weighted_depth(self):
        net = CongestNetwork(3, [(0, 1, 5), (1, 2, 2)])
        sssp_distances_weighted(net, 0)
        assert net.rounds >= 6  # one round per weight unit en route

    def test_matches_dijkstra_on_random_weighted(self):
        instance = random_instance(35, seed=13, weighted=True,
                                   max_weight=6)
        net = instance.build_network()
        got = sssp_distances_weighted(net, instance.s)
        want = instance.dijkstra(instance.s)
        assert got == want

    def test_reverse_weighted(self):
        instance = random_instance(30, seed=14, weighted=True,
                                   max_weight=5)
        net = instance.build_network()
        got = sssp_distances_weighted(net, instance.t, direction="in")
        want = instance.dijkstra(instance.t, reverse=True)
        assert got == want

    def test_avoid_edges(self):
        net = CongestNetwork(3, [(0, 1, 1), (1, 2, 1), (0, 2, 5)])
        dist = sssp_distances_weighted(
            net, 0, avoid_edges=frozenset([(1, 2)]))
        assert dist[2] == 5
