#!/usr/bin/env python3
"""Scenario: (1+ε)-approximate replacement paths on a weighted WAN.

Latency-weighted links make the problem weighted-directed, where the
paper proves exact RPaths costs Θ̃(n) rounds [MR24b] — but Theorem 3
gets a (1+ε) answer in Õ(n^{2/3}+D).  This example sweeps ε, showing
the quality/rounds trade-off (hop budget ζ(1+2/ε) per rounding scale).

Run:  python examples/weighted_approximation.py
"""

from repro import solve_apx_rpaths
from repro.baselines import replacement_lengths
from repro.congest.words import INF
from repro.graphs import path_with_chords_instance


def main() -> None:
    instance = path_with_chords_instance(
        24, seed=7, weighted=True, max_weight=10, overlay_hub=True)
    print(f"instance: {instance.name}  n={instance.n} "
          f"h_st={instance.hop_count} |P|={instance.path_length} "
          "(latency-weighted)")

    truth = replacement_lengths(instance)
    print("\n  eps   worst ratio   bound   rounds   scales")
    for eps in (0.5, 0.25, 0.1):
        report = solve_apx_rpaths(instance, epsilon=eps, seed=1)
        worst = 1.0
        for got, want in zip(report.lengths, truth):
            if want < INF:
                worst = max(worst, got / want)
        print(f"  {eps:<5} {worst:>10.4f}   {1 + eps:<6} "
              f"{report.rounds:>6}   {report.scale_count:>5}")

    # Show one edge in detail at eps = 0.25.
    report = solve_apx_rpaths(instance, epsilon=0.25, seed=1)
    print("\nper-edge detail (ε = 0.25), first 8 edges:")
    for i, (u, v) in enumerate(instance.path_edges()[:8]):
        want = truth[i]
        got = report.lengths[i]
        if want >= INF:
            print(f"  edge ({u}→{v}): no replacement path")
        else:
            print(f"  edge ({u}→{v}): exact {want:>4}, "
                  f"reported {got:>8.2f}  (ratio {got / want:.4f})")


if __name__ == "__main__":
    main()
