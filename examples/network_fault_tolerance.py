#!/usr/bin/env python3
"""Scenario: rerouting around single-link failures on an ISP-style WAN.

The paper's motivating application: a primary traffic route (the s-t
shortest path P) crosses a wide-area backbone; when any one backbone
link fails, traffic must be rerouted, and every router on P wants to
know its fallback distance *before* the failure happens — exactly the
RPaths problem (Definition 2.1).

The topology below is a chain of city "pods" (each pod a small ring of
routers) threaded by a backbone path, plus a low-latency management
overlay that keeps the communication diameter small — the regime where
Theorem 1's Õ(n^{2/3}+D) rounds beat the trivial per-failure recompute.

Run:  python examples/network_fault_tolerance.py
"""

from repro import INF
from repro.baselines import replacement_lengths, solve_rpaths_naive
from repro.graphs.instance import RPathsInstance
from repro.serve import ReplacementPathOracle


def build_wan(pods: int = 10, pod_size: int = 4) -> RPathsInstance:
    """A backbone path through ``pods`` rings of ``pod_size`` routers.

    Backbone: b_0 → b_1 → ... → b_pods.  Each pod i hangs a ring off
    (b_i, b_{i+1}): b_i → r_1 → ... → r_{pod_size} → b_{i+1}, giving a
    local detour of pod_size+1 hops around each backbone link.  A
    management hub with links *to* every router keeps D small without
    offering any data-plane shortcut (no edges into the hub).
    """
    edges = []
    backbone = list(range(pods + 1))
    for u, v in zip(backbone, backbone[1:]):
        edges.append((u, v))
    n = pods + 1
    for i in range(pods):
        ring = list(range(n, n + pod_size))
        n += pod_size
        chain = [backbone[i]] + ring + [backbone[i + 1]]
        for a, b in zip(chain, chain[1:]):
            edges.append((a, b))
    hub = n
    n += 1
    for v in range(hub):
        edges.append((hub, v))
    instance = RPathsInstance(
        n=n, edges=[(u, v, 1) for u, v in edges], path=backbone,
        weighted=False, name=f"wan(pods={pods},ring={pod_size})")
    instance.validate()
    return instance


def main() -> None:
    instance = build_wan()
    print(f"topology: {instance.name}  n={instance.n} "
          f"m={instance.m} h_st={instance.hop_count}")
    diameter = instance.build_network().undirected_diameter()
    print(f"communication diameter D = {diameter} "
          "(management overlay keeps it tiny)")

    # One Theorem 1 solve builds the serving oracle; every per-link
    # question below is then an O(1) lookup instead of a re-solve.
    oracle = ReplacementPathOracle.build(instance, solver="theorem1",
                                         seed=3)
    naive = solve_rpaths_naive(instance)
    truth = replacement_lengths(instance)
    assert oracle.lengths == truth and naive.lengths == truth

    print(f"\nprecomputing ALL fallbacks:")
    print(f"  Theorem 1 pipeline : {oracle.build_rounds:>6} rounds")
    print(f"  per-failure re-BFS : {naive.rounds:>6} rounds "
          "(the operational status quo)")

    print("\nper-link failure report (backbone link → fallback length):")
    base = instance.hop_count
    answers = [oracle.query(instance.s, instance.t, (u, v))
               for u, v in instance.path_edges()]
    for (u, v), answer in zip(instance.path_edges(), answers):
        assert answer.kind == "hit-path-edge"  # O(1), no re-solve
        fallback = answer.length
        if fallback >= INF:
            print(f"  link {u}→{v}: NO fallback — single point of failure!")
        else:
            stretch = fallback / base
            print(f"  link {u}→{v}: fallback {fallback} hops "
                  f"(stretch ×{stretch:.2f})")

    worst = max(a.length for a in answers if a.length < INF)
    print(f"\nworst-case fallback: {worst} hops "
          f"(primary route: {base} hops)")


if __name__ == "__main__":
    main()
