#!/usr/bin/env python3
"""A guided tour of the Section 6 lower bound, executed for real.

1. Build the Das Sarma et al. scaffold G(Γ, d, p) and check
   Observation 6.3.
2. Build the paper's hard instance G(k, d, p, φ, M, x) for random
   (M, x) and verify the Lemma 6.8 correspondence: the replacement
   length for the i-th path edge is minimal iff x_i = 1 AND M_{φ(i)} = 1.
3. Decode Bob's matrix M back out of the replacement lengths — the
   information-theoretic heart of the Ω̃(n^{2/3}) argument.
4. Run the Lemma 6.9 reduction end-to-end: set disjointness decided by
   our own distributed 2-SiSP solver.

Run:  python examples/lower_bound_tour.py
"""

import random

from repro.lowerbound import (
    build_gamma_graph,
    build_hard_instance,
    decide_disjointness_via_two_sisp,
    decode_matrix_from_lengths,
    expected_optimal_length,
    undirected_diameter,
    verify_correspondence,
)
from repro.baselines import replacement_lengths


def main() -> None:
    rng = random.Random(2025)

    # -- 1. the Figure 1 scaffold -------------------------------------------
    g = build_gamma_graph(gamma=4, d=2, p=3)
    print("G(Γ=4, d=2, p=3):")
    print(f"  vertices {g.n} (Observation 6.3 predicts "
          f"{g.expected_vertex_count()})")
    print(f"  diameter {undirected_diameter(g)} (bound 2p+2 = "
          f"{g.expected_diameter()})")

    # -- 2. the Figure 2 hard instance ---------------------------------------
    k, d, p = 3, 2, 1
    matrix = [[rng.randint(0, 1) for _ in range(k)] for _ in range(k)]
    x = [rng.randint(0, 1) for _ in range(k * k)]
    hard = build_hard_instance(k, d, p, matrix, x)
    print(f"\nG(k={k}, d={d}, p={p}, φ, M, x): n = {hard.n}, "
          f"h_st = k² = {k * k}")
    print(f"  Bob's matrix M = {matrix}")
    print(f"  Alice's gates x = {x}")

    report = verify_correspondence(hard)
    print(f"  L_opt = {report.optimal_length} "
          f"(= 3k²+2d^p+4 = {expected_optimal_length(k, d, p)})")
    print(f"  Lemma 6.8 dichotomy holds: {report.holds}")
    for i, (length, hit) in enumerate(zip(report.lengths, report.hits),
                                      start=1):
        marker = "MINIMAL" if hit else "longer "
        print(f"    edge {i}: |st ⋄ e| = {length:>3}  [{marker}]")

    # -- 3. decode M from the output ------------------------------------------
    full_x = build_hard_instance(k, d, p, matrix, [1] * (k * k))
    lengths = replacement_lengths(full_x.instance)
    decoded = decode_matrix_from_lengths(lengths, k, d, p)
    print(f"\n  with x ≡ 1, the RPaths output decodes M "
          f"exactly: {decoded == matrix}")

    # -- 4. the Lemma 6.9 reduction, end-to-end ----------------------------
    print("\nset disjointness via the distributed 2-SiSP solver:")
    for trial in range(3):
        xx = [rng.randint(0, 1) for _ in range(4)]
        yy = [rng.randint(0, 1) for _ in range(4)]
        rep = decide_disjointness_via_two_sisp(
            xx, yy, k=2, use_oracle_knowledge=True)
        print(f"  x={xx} y={yy}: disj={rep.expected} "
              f"decoded={rep.decided} "
              f"({'OK' if rep.correct else 'MISMATCH'}; "
              f"{rep.rounds} rounds on {rep.n} vertices)")


if __name__ == "__main__":
    main()
