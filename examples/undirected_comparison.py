#!/usr/bin/env python3
"""Scenario: directed vs undirected replacement paths, side by side.

The paper's Table 1 landscape places unweighted *directed* RPaths at
Θ̃(n^{2/3}+D) — strictly harder than the undirected case, which admits
an O(T_SSSP + h_st)-round algorithm [MR24b] built on the classical
crossing-edge structure [HS01; MMG89].  This example runs both sides of
the divide on matched topologies:

* the undirected extension (`repro.extensions`): two SSSPs + branch
  labels + one pipelined interval aggregation;
* the directed Theorem 1 pipeline on the symmetrized instance (any
  undirected instance is also a directed one — the guarantees carry).

Run:  python examples/undirected_comparison.py
"""

from repro.core.rpaths import solve_rpaths
from repro.extensions import (
    crossing_edge_replacement_lengths,
    random_undirected_instance,
    solve_rpaths_undirected,
    undirected_replacement_lengths,
)


def main() -> None:
    print("directed machinery vs the undirected shortcut "
          "(same instances)\n")
    print(f"{'instance':<26} {'h_st':>4} {'undirected rounds':>18} "
          f"{'Thm1 rounds':>12}")
    for seed in range(4):
        instance = random_undirected_instance(70, seed=seed)
        truth = undirected_replacement_lengths(instance)

        undirected = solve_rpaths_undirected(instance)
        assert undirected.lengths == truth

        directed = solve_rpaths(instance, seed=seed, landmark_c=3.0)
        assert directed.lengths == truth  # symmetric ⇒ same answers

        print(f"{instance.name:<26} {instance.hop_count:>4} "
              f"{undirected.rounds:>18} {directed.rounds:>12}")

    print("\nwhy the undirected case is easier: the crossing-edge "
          "structure.")
    instance = random_undirected_instance(40, seed=9)
    from repro import is_unreachable
    lengths = ["inf" if is_unreachable(x) else x
               for x in crossing_edge_replacement_lengths(instance)]
    print(f"  {instance.name}: repl lengths via the [HS01] formula = "
          f"{lengths}")
    print("  every replacement is 'shortest-to-x + one crossing edge + "
          "shortest-from-y' —")
    print("  two SSSP trees suffice, no landmark machinery needed. "
          "Directed graphs break")
    print("  this structure, which is where the paper's Θ̃(n^{2/3}+D) "
          "bound lives.")


if __name__ == "__main__":
    main()
