#!/usr/bin/env python3
"""Quickstart: solve Replacement Paths on a small directed network.

Builds a 4×8 directed grid (the given shortest path is the top row),
runs the paper's Õ(n^{2/3}+D)-round distributed algorithm (Theorem 1)
on the CONGEST simulator, and compares against the centralized oracle.

Run:  python examples/quickstart.py
"""

from repro import solve_rpaths, solve_two_sisp, is_unreachable
from repro.baselines import replacement_lengths, two_sisp_length
from repro.graphs import grid_instance


def main() -> None:
    instance = grid_instance(4, 8)
    print(f"instance: {instance.name}  "
          f"(n={instance.n}, m={instance.m}, h_st={instance.hop_count})")
    print(f"given shortest path P: {instance.path}")

    # --- the distributed solver (Theorem 1) --------------------------------
    report = solve_rpaths(instance, seed=1)
    print(f"\nCONGEST rounds used: {report.rounds}  "
          f"(zeta={report.zeta}, |L|={report.landmark_count})")
    print("per-phase round breakdown:")
    for phase, rounds in report.ledger.breakdown().items():
        if rounds:
            print(f"  {phase:<28} {rounds}")

    # --- the answers, edge by edge ------------------------------------------
    truth = replacement_lengths(instance)
    print("\nreplacement path lengths |st ⋄ e| per failed edge of P:")
    for i, (u, v) in enumerate(instance.path_edges()):
        got = report.lengths[i]
        shown = "∞" if is_unreachable(got) else got
        check = "✓" if got == truth[i] else "✗ (oracle: %s)" % truth[i]
        print(f"  edge ({u}→{v}): {shown}   {check}")

    # --- 2-SiSP on top (Corollary 6.2) --------------------------------------
    sisp = solve_two_sisp(instance, seed=1)
    print(f"\nsecond simple shortest path length: {sisp.length} "
          f"(oracle: {two_sisp_length(instance)}), "
          f"total rounds {sisp.rounds}")


if __name__ == "__main__":
    main()
