"""Dynamic graphs: incremental invalidation vs. rebuild-the-world.

Two families measure what the dynamic subsystem buys and costs:

* ``incremental-invalidation`` — a warm catalog of K instances takes a
  10% mutation burst on ONE of them.  The incremental path
  (:meth:`ShardedQueryService.apply_mutations`: epoch bump, one oracle
  rotated out, fallback memo carried forward, one rebuild) races the
  operational status quo it replaces: drop everything and rebuild all
  K oracles from scratch on the post-mutation catalog.  The ISSUE-level
  claim — and the absolute CI floor — is a >= 5x advantage; the ideal
  gap is K (only 1/K of the work is invalidated).
* ``storm-degraded`` — the serve daemon under concurrent mutation
  bursts with an artificially slowed re-warm (``rebuild_delay``), while
  closed-loop clients carry a staleness budget.  The gate is the
  degraded-mode contract: every request is *served* (fresh ``ok`` or
  within-budget ``stale`` — never an error), at least one answer is
  actually stale (the budget did real work), served p95 stays under
  the SLO ceiling during the storm, and the post-quiesce fresh answers
  are bit-identical to from-scratch solves (convergence).

Both families verify answers against the centralized oracle before any
number is reported — a wrong answer exits non-zero regardless of speed.

Gate (used by the CI ``dynamic-smoke`` step)::

    python benchmarks/bench_dynamic.py --quick \
        --json BENCH_dynamic.json \
        --compare benchmarks/BENCH_dynamic.json --tolerance 0.25

* ``incremental-invalidation`` must hold the absolute >= 5x floor and
  not regress more than ``tolerance`` below its committed ratio;
* ``storm-degraded`` is gated on its absolute contract only (served
  ratio, stale > 0, p95 ceiling, convergence) — wall-clock ratios of
  a chaos run are not portable enough to baseline.
"""

from __future__ import annotations

import argparse
import gc
import json
import pathlib
import platform as platform_mod
import sys
import time
from contextlib import contextmanager
from typing import Dict, List

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.dynamic import MutationStream, run_chaos  # noqa: E402
from repro.graphs.generators import random_instance  # noqa: E402
from repro.serve import (  # noqa: E402
    Query,
    ShardedQueryService,
    verify_against_centralized,
)

#: Absolute floor: incremental invalidation vs. full catalog rebuild
#: after a 10% single-instance mutation burst (the ISSUE criterion).
MIN_INCREMENTAL_SPEEDUP = 5.0
INCREMENTAL_FAMILY = "incremental-invalidation"

#: Served-request p95 ceiling (ms) during the storm — same SLO the
#: daemon families commit to.
MAX_STORM_P95_MS = 75.0
STORM_FAMILY = "storm-degraded"


@contextmanager
def _quiet_gc():
    """Keep collector pauses out of the timed regions."""
    gc.collect()
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


def _probe(inst) -> Query:
    return Query(s=inst.s, t=inst.t, edge=inst.path_edges()[0],
                 instance=inst.name)


def measure_incremental(quick: bool) -> Dict[str, object]:
    """Delta-scoped re-solve vs. rebuilding every oracle."""
    count = 8
    n = 48 if quick else 72
    instances = [
        random_instance(n, seed=30 + i, name=f"dyn-{n}-{i}")
        for i in range(count)
    ]
    # Capacity holds the whole catalog: LRU eviction churn would
    # charge re-builds to both sides and blur the invalidation scope.
    service = ShardedQueryService(instances, shards=2, capacity=count,
                                  solver="theorem1", build_seed=0)
    service.serve([_probe(inst) for inst in instances])  # warm all K

    stream = MutationStream(seed=5)
    target = instances[0]
    burst = stream.storm(target, fraction=0.10)

    with _quiet_gc():
        start = time.perf_counter()
        result = service.apply_mutations(target.name, burst)
        current = {inst.name: inst for inst in instances}
        current[target.name] = result.instance
        probes = [_probe(inst) for inst in current.values()]
        answers = service.serve(probes).answers
        incremental_time = time.perf_counter() - start
    if not result.applied:
        raise AssertionError(
            f"{INCREMENTAL_FAMILY}: the 10% burst applied nothing")
    if not verify_against_centralized(list(current.values()), answers):
        raise AssertionError(
            f"{INCREMENTAL_FAMILY}: post-mutation answers contradict "
            "the centralized oracle")

    # Status quo: no epochs, no scoping — every oracle is rebuilt
    # against the new topology.
    with _quiet_gc():
        start = time.perf_counter()
        cold = ShardedQueryService(list(current.values()), shards=2,
                                   capacity=count, solver="theorem1",
                                   build_seed=0)
        cold_answers = cold.serve(probes).answers
        full_time = time.perf_counter() - start
    if not verify_against_centralized(list(current.values()),
                                      cold_answers):
        raise AssertionError(
            f"{INCREMENTAL_FAMILY}: full-rebuild answers contradict "
            "the centralized oracle")

    totals = service.serve([]).totals()
    return {
        "n": n,
        "instances": count,
        "mutations_applied": len(result.applied),
        "epoch": result.epoch,
        "incremental_seconds": round(incremental_time, 4),
        "full_rebuild_seconds": round(full_time, 4),
        "speedup": round(full_time / incremental_time, 2),
        "invalidations": totals.invalidations,
        "memo_carried": totals.memo_carried,
        "oracle_builds": totals.oracle_builds,
    }


def measure_storm(quick: bool) -> Dict[str, object]:
    """Degraded-mode serving during a mutation storm.

    ``rebuild_delay`` stretches every re-warm so the staleness budget
    is genuinely exercised; no kills or stalls here — this family
    isolates the staleness contract (the chaos CI step owns the
    crash-safety one).
    """
    n = 32
    count = 2 if quick else 3
    duration = 2.0 if quick else 4.0
    instances = [
        random_instance(n, seed=40 + i, name=f"storm-{n}-{i}")
        for i in range(count)
    ]
    report = run_chaos(
        instances, duration=duration, seed=7, workers=2,
        solver="centralized", kills=0, stalls=0,
        mutation_bursts=3, burst_size=4, max_staleness=8,
        rebuild_delay=0.25)

    unexpected = {k: v for k, v in report.outcomes.items()
                  if k not in ("ok", "stale")}
    if unexpected:
        raise AssertionError(
            f"{STORM_FAMILY}: non-served outcomes during the storm: "
            f"{unexpected}")
    if not report.converged:
        raise AssertionError(
            f"{STORM_FAMILY}: did not converge after quiesce: "
            f"{report.mismatches[:5]}")
    return {
        "n": n,
        "instances": count,
        "duration_seconds": round(report.duration, 2),
        "queries": report.queries_sent,
        "ok": report.outcomes.get("ok", 0),
        "stale": report.outcomes.get("stale", 0),
        "p50_ms": round(report.latency_ms.get("p50", 0.0), 4),
        "p95_ms": round(report.latency_ms.get("p95", 0.0), 4),
        "p99_ms": round(report.latency_ms.get("p99", 0.0), 4),
        "mutations_applied": report.mutations_applied,
        "max_epoch": max(report.epochs.values(), default=0),
        "verified": report.verified,
        "converged": report.converged,
    }


def measure_all(quick: bool) -> Dict[str, dict]:
    return {
        INCREMENTAL_FAMILY: measure_incremental(quick),
        STORM_FAMILY: measure_storm(quick),
    }


def render_report(families: Dict[str, dict]) -> str:
    from repro.analysis import format_records

    records = [{"family": name, **data}
               for name, data in families.items()]
    return format_records(
        records,
        ["family", "n", "instances", "mutations_applied", "speedup",
         "stale", "p95_ms", "memo_carried", "converged"],
        title="dynamic graphs — incremental invalidation and "
              "degraded-mode serving under storms",
    )


def environment_info() -> Dict[str, str]:
    try:
        import numpy
        numpy_version = numpy.__version__
    except ImportError:  # pragma: no cover - numpy is baked in CI
        numpy_version = "absent"
    return {
        "python_version": platform_mod.python_version(),
        "numpy_version": numpy_version,
        "platform": platform_mod.platform(),
    }


def check_against_baseline(families: Dict[str, dict], baseline: dict,
                           tolerance: float,
                           quick: bool) -> List[str]:
    """Regression messages (empty when the gate passes)."""
    problems = []
    incremental = families.get(INCREMENTAL_FAMILY)
    if incremental is not None:
        if incremental["speedup"] < MIN_INCREMENTAL_SPEEDUP:
            problems.append(
                f"{INCREMENTAL_FAMILY}: speedup "
                f"{incremental['speedup']:.2f}x is below the absolute "
                f"{MIN_INCREMENTAL_SPEEDUP:.0f}x floor")
        base = baseline.get("families", {}).get(INCREMENTAL_FAMILY)
        same_mode = bool(baseline.get("quick")) == quick
        if base is not None and same_mode:
            floor = base["speedup"] * (1.0 - tolerance)
            if incremental["speedup"] < floor:
                problems.append(
                    f"{INCREMENTAL_FAMILY}: speedup "
                    f"{incremental['speedup']:.2f}x fell below "
                    f"{floor:.2f}x (baseline {base['speedup']:.2f}x "
                    f"- {tolerance:.0%} tolerance)")
    storm = families.get(STORM_FAMILY)
    if storm is not None:
        if storm["stale"] < 1:
            problems.append(
                f"{STORM_FAMILY}: no stale answers served — the "
                "staleness budget was never exercised")
        if storm["p95_ms"] > MAX_STORM_P95_MS:
            problems.append(
                f"{STORM_FAMILY}: served p95 {storm['p95_ms']:.2f}ms "
                f"exceeds the {MAX_STORM_P95_MS:.0f}ms SLO ceiling")
        if not storm["converged"]:
            problems.append(f"{STORM_FAMILY}: post-quiesce answers "
                            "diverged from from-scratch solves")
    return problems


# -- pytest-benchmark entry point --------------------------------------------


def bench_dynamic_tier(benchmark):
    """Quick-mode dynamic families (see module doc)."""
    from _util import report

    families = benchmark.pedantic(lambda: measure_all(quick=True),
                                  rounds=1, iterations=1)
    report("dynamic", render_report(families))
    assert (families[INCREMENTAL_FAMILY]["speedup"]
            >= MIN_INCREMENTAL_SPEEDUP), families[INCREMENTAL_FAMILY]
    assert families[STORM_FAMILY]["stale"] >= 1, families[STORM_FAMILY]
    assert families[STORM_FAMILY]["converged"]


# -- CLI (CI dynamic-smoke gate) ----------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized workloads")
    parser.add_argument("--json", type=pathlib.Path, default=None,
                        help="write the machine-readable report here")
    parser.add_argument("--compare", type=pathlib.Path, default=None,
                        help="committed baseline JSON to gate against")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed relative speedup regression")
    args = parser.parse_args(argv)

    families = measure_all(quick=args.quick)
    print(render_report(families))

    payload = {
        "bench": "dynamic",
        "quick": bool(args.quick),
        "min_incremental_speedup": MIN_INCREMENTAL_SPEEDUP,
        "max_storm_p95_ms": MAX_STORM_P95_MS,
        "tolerance": args.tolerance,
        "environment": environment_info(),
        "families": families,
    }
    if args.json is not None:
        args.json.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.json}")

    if args.compare is not None:
        baseline = json.loads(args.compare.read_text())
        problems = check_against_baseline(
            families, baseline, args.tolerance, bool(args.quick))
        if problems:
            for line in problems:
                print(f"DYNAMIC REGRESSION: {line}", file=sys.stderr)
            return 1
        print(f"dynamic gate ok (vs {args.compare}, "
              f"tolerance {args.tolerance:.0%})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
