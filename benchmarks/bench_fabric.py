"""Fabric throughput: batched exchange and vector kernels vs. baselines.

Two measurement modes share this bench:

**Replayed schedules** (message engines).  Records a realistic message
schedule per instance family (BFS both ways, k-source BFS, spanning
tree + pipelined broadcast — the exact primitives every catalog
scenario funnels through), then replays the identical schedule through
each message engine and reports rounds/sec:

* ``reference`` — the pre-PR-2 per-message engine (tuple hashing,
  recursive word sizing, per-round dict allocation), preserved in
  :func:`repro.congest.fastpath.exchange_reference`;
* ``strict`` — batched flat-buffer delivery with per-message
  validation;
* ``fast`` — batched delivery with validation hoisted out of the
  inner loop.

**Kernel workloads** (vector fabric).  The vector fabric replaces
whole round loops, so it cannot replay a recorded outbox schedule;
instead the ``vector-*`` families run the kernel-covered primitives
(k-source hop BFS of Lemma 5.5, pruned hop-BFS of Lemma 4.2) end to
end on ``fast`` vs. ``vector`` at n >= 2000 and report rounds/sec from
each engine's own ledger.

Every family cross-checks ledgers (and, for kernel workloads, result
tables), so throughput is only ever reported for byte-identical
executions.

Gates (used by the ``perf-gate`` CI job)::

    python benchmarks/bench_fabric.py --json BENCH_fabric.json \
        --compare benchmarks/BENCH_fabric.json --tolerance 0.25

* the ``scaling-expander`` replay family must hold a >= 3x
  fast-vs-reference speedup;
* every ``vector-*`` kernel family must hold a >= 5x
  vector-vs-fast speedup;
* any family's measured speedup more than ``tolerance`` below its
  committed baseline ratio fails the gate (the noise-prone
  memory-bound vector families get double tolerance; their absolute
  floor does the heavy lifting).

The committed baseline stores *speedup ratios* (same-machine), which
are stable across runner hardware, unlike absolute rounds/sec; the
JSON also records the interpreter, NumPy version, and platform so a
baseline refresh is attributable to the machine that produced it.
"""

from __future__ import annotations

import argparse
import gc
import json
import pathlib
import platform as platform_mod
import sys
import time
from contextlib import contextmanager
from typing import Callable, Dict, List

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.congest import (  # noqa: E402
    CongestNetwork,
    bfs_distances,
    broadcast_messages,
    build_spanning_tree,
    multi_source_hop_bfs,
)
from repro.core.hop_bfs import pruned_max_hop_bfs  # noqa: E402
from repro.graphs import (  # noqa: E402
    expander_instance,
    power_law_instance,
)
from repro.lowerbound import build_hard_instance  # noqa: E402

#: The acceptance floor for the batched fabric on the gate family.
MIN_GATE_SPEEDUP = 3.0
GATE_FAMILY = "scaling-expander"

#: The acceptance floor for the vector kernels on every vector family.
MIN_VECTOR_SPEEDUP = 5.0

Schedule = List[Dict[int, list]]


class _RecordingNetwork(CongestNetwork):
    """Capture every outbox so the schedule can be replayed verbatim."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.schedule: Schedule = []

    def exchange(self, outbox):
        concrete = {u: list(sends) for u, sends in outbox.items()}
        self.schedule.append(concrete)
        return super().exchange(concrete)


def _workload(net: CongestNetwork, instance) -> None:
    """The primitive mix every scenario funnels through the fabric."""
    bfs_distances(net, instance.s, direction="out")
    bfs_distances(net, instance.t, direction="in")
    step = max(1, instance.n // 8)
    sources = list(range(0, instance.n, step))[:8]
    multi_source_hop_bfs(net, sources, hop_limit=12)
    tree = build_spanning_tree(net)
    messages = {v: [("tok", v, i) for i in range(2)]
                for v in range(0, instance.n, max(1, instance.n // 24))}
    broadcast_messages(net, tree, messages)


def _families(scale: int = 1):
    yield ("expander",
           expander_instance(160 * scale, degree=4, seed=1))
    yield ("power-law",
           power_law_instance(160 * scale, attach=3, seed=2))
    k = 3
    matrix = [[(a + b) % 2 for b in range(k)] for a in range(k)]
    x_bits = [i % 2 for i in range(k * k)]
    yield ("hard-instance",
           build_hard_instance(k, 2, 2 + (scale > 1), matrix,
                               x_bits).instance)
    yield (GATE_FAMILY,
           expander_instance(320 * scale, degree=4, seed=3))


def _ledger_digest(net: CongestNetwork):
    ledger = net.ledger
    return (ledger.rounds, ledger.messages, ledger.words,
            ledger.max_link_words, ledger.violations)


def _hard_instance(k: int, d: int, p: int):
    matrix = [[(a + b) % 2 for b in range(k)] for a in range(k)]
    x_bits = [i % 2 for i in range(k * k)]
    return build_hard_instance(k, d, p, matrix, x_bits).instance


def _vector_families(scale: int = 1):
    """n >= 2000 kernel-workload families: (name, instance, hop, k)."""
    yield ("vector-expander",
           expander_instance(2048 * scale, degree=4, seed=9), 16, 8)
    yield ("vector-hard", _hard_instance(14, 3, 2), 96, 16)


def _kernel_workload(net: CongestNetwork, instance, hop: int, k: int):
    """The kernel-covered primitive mix (Lemma 5.5 + Lemma 4.2).

    Returns the algorithm outputs so the harness can assert the
    engines agree on results, not just on ledgers.
    """
    step = max(1, instance.n // k)
    sources = list(range(0, instance.n, step))[:k]
    dist = multi_source_hop_bfs(net, sources, hop)
    seeds = {v: (i, i) for i, v in enumerate(instance.path)}
    tables = pruned_max_hop_bfs(net, seeds, hop_limit=hop,
                                avoid_edges=instance.path_edge_set(),
                                record_for=instance.path)
    return dist, tables


def measure_vector_families(scale: int = 1,
                            repeats: int = 3) -> Dict[str, dict]:
    """Kernel workloads, fast vs. vector, per n >= 2000 family."""
    report: Dict[str, dict] = {}
    for name, instance, hop, k in _vector_families(scale):
        rps: Dict[str, float] = {}
        digests = {}
        results = {}
        # Vector is timed first: the message engine's large-n runs
        # leave the heap grown/fragmented, which measurably slows the
        # kernel's array allocations if it goes second (the reverse
        # contamination is negligible — the kernels barely allocate).
        for fabric in ("vector", "fast"):
            best = float("inf")
            net = None
            # A vector repeat costs ~1/10th of a fast repeat; extra
            # best-of samples are nearly free and squeeze out the
            # first-touch/cache cold starts the short kernel runs are
            # disproportionately sensitive to.
            reps = repeats if fabric == "fast" else max(repeats, 6)
            for _ in range(reps):
                net = instance.build_network(fabric=fabric)
                with _quiet_gc():
                    start = time.perf_counter()
                    results[fabric] = _kernel_workload(net, instance,
                                                       hop, k)
                    best = min(best, time.perf_counter() - start)
            digests[fabric] = _ledger_digest(net)
            rps[fabric] = net.ledger.rounds / best
        if digests["fast"] != digests["vector"]:
            raise AssertionError(
                f"{name}: engines disagree on the ledger: {digests}")
        if results["fast"] != results["vector"]:
            raise AssertionError(
                f"{name}: engines disagree on algorithm outputs")
        report[name] = {
            "n": instance.n,
            "m": instance.m,
            "rounds": digests["fast"][0],
            "messages": digests["fast"][1],
            "words": digests["fast"][2],
            "fast_rps": round(rps["fast"], 1),
            "vector_rps": round(rps["vector"], 1),
            "speedup_vector": round(rps["vector"] / rps["fast"], 3),
        }
    return report


@contextmanager
def _quiet_gc():
    """Collect up front, then keep the collector out of the timed region.

    Collection pauses land on whichever engine happens to be running
    and were the dominant run-to-run noise on the large kernel
    workloads; pinning them outside the timer keeps best-of-N ratios
    stable enough for the CI gate's tolerance.
    """
    gc.collect()
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


def _replay_rps(schedule: Schedule, make_net: Callable[[], CongestNetwork],
                repeats: int):
    """Best-of-``repeats`` rounds/sec for one engine, plus its ledger."""
    best = float("inf")
    net = None
    for _ in range(repeats):
        net = make_net()
        exchange = net.exchange
        with _quiet_gc():
            start = time.perf_counter()
            for outbox in schedule:
                exchange(outbox)
            best = min(best, time.perf_counter() - start)
    return len(schedule) / best, _ledger_digest(net)


def measure_families(scale: int = 1, repeats: int = 3) -> Dict[str, dict]:
    """Record + replay every family; returns the per-family report."""
    report: Dict[str, dict] = {}
    for name, instance in _families(scale):
        recorder = _RecordingNetwork(instance.n, instance.edges)
        _workload(recorder, instance)
        schedule = recorder.schedule

        rps: Dict[str, float] = {}
        digests = {}
        for fabric in ("reference", "strict", "fast"):
            rps[fabric], digests[fabric] = _replay_rps(
                schedule,
                lambda fabric=fabric: instance.build_network(
                    fabric=fabric),
                repeats)
        if not (digests["reference"] == digests["strict"]
                == digests["fast"]):
            raise AssertionError(
                f"{name}: fabrics disagree on the ledger: {digests}")

        report[name] = {
            "n": instance.n,
            "m": instance.m,
            "rounds": len(schedule),
            "messages": digests["reference"][1],
            "words": digests["reference"][2],
            "reference_rps": round(rps["reference"], 1),
            "strict_rps": round(rps["strict"], 1),
            "fast_rps": round(rps["fast"], 1),
            "speedup_strict": round(rps["strict"] / rps["reference"], 3),
            "speedup_fast": round(rps["fast"] / rps["reference"], 3),
        }
    return report


def render_report(families: Dict[str, dict]) -> str:
    from repro.analysis import format_records

    records = [{"family": name, **data}
               for name, data in families.items()]
    return format_records(
        records,
        ["family", "n", "rounds", "messages", "reference_rps",
         "strict_rps", "fast_rps", "speedup_fast"],
        title="fabric throughput — batched exchange vs. reference "
              "engine (replayed schedules, best of N)",
    )


def render_vector_report(families: Dict[str, dict]) -> str:
    from repro.analysis import format_records

    records = [{"family": name, **data}
               for name, data in families.items()]
    return format_records(
        records,
        ["family", "n", "rounds", "messages", "fast_rps",
         "vector_rps", "speedup_vector"],
        title="vector kernels vs. batched engine (kernel workloads, "
              "best of N)",
    )


def environment_info() -> Dict[str, str]:
    """Interpreter/NumPy/platform stamp for baseline attribution."""
    try:
        import numpy
        numpy_version = numpy.__version__
    except ImportError:  # pragma: no cover - numpy is baked in CI
        numpy_version = "absent"
    return {
        "python_version": platform_mod.python_version(),
        "numpy_version": numpy_version,
        "platform": platform_mod.platform(),
    }


def check_against_baseline(families: Dict[str, dict], baseline: dict,
                           tolerance: float,
                           vector_families: Dict[str, dict]) -> List[str]:
    """Regression messages (empty when the gate passes)."""
    problems = []
    for name, base in baseline.get("families", {}).items():
        now = families.get(name)
        if now is None:
            problems.append(f"{name}: family missing from this run")
            continue
        floor = base["speedup_fast"] * (1.0 - tolerance)
        if now["speedup_fast"] < floor:
            problems.append(
                f"{name}: fast-path speedup {now['speedup_fast']:.2f}x "
                f"fell below {floor:.2f}x "
                f"(baseline {base['speedup_fast']:.2f}x - "
                f"{tolerance:.0%} tolerance)")
    gate = families.get(GATE_FAMILY)
    if gate is not None and gate["speedup_fast"] < MIN_GATE_SPEEDUP:
        problems.append(
            f"{GATE_FAMILY}: fast-path speedup "
            f"{gate['speedup_fast']:.2f}x is below the absolute "
            f"{MIN_GATE_SPEEDUP:.1f}x floor")
    # The kernel workloads are memory-bound and disproportionately
    # sensitive to runner noise (a busy neighbor slows the array
    # kernels far more than the interpreter-bound message loops), so
    # their ratio check gets double tolerance; the absolute
    # MIN_VECTOR_SPEEDUP floor below still catches a genuine collapse.
    vector_tolerance = min(2.0 * tolerance, 0.9)
    for name, base in baseline.get("vector_families", {}).items():
        now = vector_families.get(name)
        if now is None:
            problems.append(f"{name}: family missing from this run")
            continue
        floor = base["speedup_vector"] * (1.0 - vector_tolerance)
        if now["speedup_vector"] < floor:
            problems.append(
                f"{name}: vector speedup "
                f"{now['speedup_vector']:.2f}x fell below "
                f"{floor:.2f}x (baseline "
                f"{base['speedup_vector']:.2f}x - "
                f"{vector_tolerance:.0%} tolerance)")
    for name, data in vector_families.items():
        if data["speedup_vector"] < MIN_VECTOR_SPEEDUP:
            problems.append(
                f"{name}: vector speedup "
                f"{data['speedup_vector']:.2f}x is below the absolute "
                f"{MIN_VECTOR_SPEEDUP:.1f}x floor")
    return problems


# -- pytest-benchmark entry points -----------------------------------------


def bench_fabric_throughput(benchmark):
    """Replayed-schedule rounds/sec across fabrics (see module doc)."""
    from _util import report

    families = benchmark.pedantic(
        lambda: measure_families(scale=1, repeats=2),
        rounds=1, iterations=1)
    report("fabric", render_report(families))
    gate = families[GATE_FAMILY]
    assert gate["speedup_fast"] >= MIN_GATE_SPEEDUP, gate
    for data in families.values():
        assert data["speedup_fast"] > 1.0, data


def bench_vector_kernels(benchmark):
    """Kernel-workload rounds/sec, vector vs. fast (see module doc)."""
    from _util import report

    families = benchmark.pedantic(
        lambda: measure_vector_families(scale=1, repeats=2),
        rounds=1, iterations=1)
    report("vector", render_vector_report(families))
    for data in families.values():
        assert data["speedup_vector"] >= MIN_VECTOR_SPEEDUP, data


# -- CLI (CI perf gate) -----------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", type=pathlib.Path, default=None,
                        help="write the machine-readable report here")
    parser.add_argument("--compare", type=pathlib.Path, default=None,
                        help="committed baseline JSON to gate against")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed relative speedup regression")
    parser.add_argument("--repeats", type=int, default=3,
                        help="replays per engine (best-of timing)")
    parser.add_argument("--scale", type=int, default=1,
                        help="instance size multiplier")
    parser.add_argument("--trace", type=pathlib.Path, default=None,
                        help="record spans into this JSONL trace "
                             "directory (read back with "
                             "'repro trace summary')")
    args = parser.parse_args(argv)

    if args.trace is not None:
        from repro import telemetry
        telemetry.enable_tracing(args.trace)
        telemetry.write_meta(args.trace, bench="fabric",
                             scale=args.scale, repeats=args.repeats)

    # Kernel workloads run first, on a clean heap: the replay phase
    # keeps ~100k recorded messages live, and timing the allocation-
    # light kernels behind that measurably (and noisily) slows them.
    vector_families = measure_vector_families(scale=args.scale,
                                              repeats=args.repeats)
    families = measure_families(scale=args.scale, repeats=args.repeats)

    if args.trace is not None:
        from repro import telemetry
        telemetry.flush(args.trace)
        telemetry.disable_tracing()
        print(f"trace: {args.trace}")
    print(render_report(families))
    print(render_vector_report(vector_families))

    payload = {
        "bench": "fabric",
        "gate_family": GATE_FAMILY,
        "min_gate_speedup": MIN_GATE_SPEEDUP,
        "min_vector_speedup": MIN_VECTOR_SPEEDUP,
        "tolerance": args.tolerance,
        "environment": environment_info(),
        "families": families,
        "vector_families": vector_families,
    }
    if args.json is not None:
        args.json.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.json}")

    if args.compare is not None:
        baseline = json.loads(args.compare.read_text())
        problems = check_against_baseline(families, baseline,
                                          args.tolerance,
                                          vector_families)
        if problems:
            for line in problems:
                print(f"PERF REGRESSION: {line}", file=sys.stderr)
            return 1
        print(f"perf gate ok (vs {args.compare}, "
              f"tolerance {args.tolerance:.0%})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
