"""Fabric throughput: batched exchange vs. the pre-fabric engine.

Records a realistic message schedule per instance family (BFS both
ways, k-source BFS, spanning tree + pipelined broadcast — the exact
primitives every catalog scenario funnels through), then replays the
identical schedule through each fabric engine and reports rounds/sec:

* ``reference`` — the pre-PR per-message engine (tuple hashing,
  recursive word sizing, per-round dict allocation), preserved in
  :func:`repro.congest.fastpath.exchange_reference`;
* ``strict`` — batched flat-buffer delivery with per-message
  validation;
* ``fast`` — batched delivery with validation hoisted out of the
  inner loop.

Every replay also cross-checks the ledgers, so the throughput numbers
are only ever reported for byte-identical executions.

Families: the expander and power-law generators (small-D, detour-rich
and hub-congested regimes) plus the Section 6.3 hard instance; the
``scaling-expander`` family is the perf gate's target and must hold a
>= 3x fast-vs-reference speedup.

CLI (used by the ``perf-gate`` CI job)::

    python benchmarks/bench_fabric.py --json BENCH_fabric.json \
        --compare benchmarks/BENCH_fabric.json --tolerance 0.25

The committed baseline stores *speedup ratios* (fast/reference on the
same machine), which are stable across runner hardware, unlike
absolute rounds/sec; the gate fails when a family's measured speedup
drops more than ``tolerance`` below its baseline ratio, i.e. on a >25%
relative rounds/sec regression of the batched path.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time
from typing import Callable, Dict, List

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.congest import (  # noqa: E402
    CongestNetwork,
    bfs_distances,
    broadcast_messages,
    build_spanning_tree,
    multi_source_hop_bfs,
)
from repro.graphs import (  # noqa: E402
    expander_instance,
    power_law_instance,
)
from repro.lowerbound import build_hard_instance  # noqa: E402

#: The acceptance floor for the batched fabric on the gate family.
MIN_GATE_SPEEDUP = 3.0
GATE_FAMILY = "scaling-expander"

Schedule = List[Dict[int, list]]


class _RecordingNetwork(CongestNetwork):
    """Capture every outbox so the schedule can be replayed verbatim."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.schedule: Schedule = []

    def exchange(self, outbox):
        concrete = {u: list(sends) for u, sends in outbox.items()}
        self.schedule.append(concrete)
        return super().exchange(concrete)


def _workload(net: CongestNetwork, instance) -> None:
    """The primitive mix every scenario funnels through the fabric."""
    bfs_distances(net, instance.s, direction="out")
    bfs_distances(net, instance.t, direction="in")
    step = max(1, instance.n // 8)
    sources = list(range(0, instance.n, step))[:8]
    multi_source_hop_bfs(net, sources, hop_limit=12)
    tree = build_spanning_tree(net)
    messages = {v: [("tok", v, i) for i in range(2)]
                for v in range(0, instance.n, max(1, instance.n // 24))}
    broadcast_messages(net, tree, messages)


def _families(scale: int = 1):
    yield ("expander",
           expander_instance(160 * scale, degree=4, seed=1))
    yield ("power-law",
           power_law_instance(160 * scale, attach=3, seed=2))
    k = 3
    matrix = [[(a + b) % 2 for b in range(k)] for a in range(k)]
    x_bits = [i % 2 for i in range(k * k)]
    yield ("hard-instance",
           build_hard_instance(k, 2, 2 + (scale > 1), matrix,
                               x_bits).instance)
    yield (GATE_FAMILY,
           expander_instance(320 * scale, degree=4, seed=3))


def _ledger_digest(net: CongestNetwork):
    ledger = net.ledger
    return (ledger.rounds, ledger.messages, ledger.words,
            ledger.max_link_words, ledger.violations)


def _replay_rps(schedule: Schedule, make_net: Callable[[], CongestNetwork],
                repeats: int):
    """Best-of-``repeats`` rounds/sec for one engine, plus its ledger."""
    best = float("inf")
    net = None
    for _ in range(repeats):
        net = make_net()
        exchange = net.exchange
        start = time.perf_counter()
        for outbox in schedule:
            exchange(outbox)
        best = min(best, time.perf_counter() - start)
    return len(schedule) / best, _ledger_digest(net)


def measure_families(scale: int = 1, repeats: int = 3) -> Dict[str, dict]:
    """Record + replay every family; returns the per-family report."""
    report: Dict[str, dict] = {}
    for name, instance in _families(scale):
        recorder = _RecordingNetwork(instance.n, instance.edges)
        _workload(recorder, instance)
        schedule = recorder.schedule

        rps: Dict[str, float] = {}
        digests = {}
        for fabric in ("reference", "strict", "fast"):
            rps[fabric], digests[fabric] = _replay_rps(
                schedule,
                lambda fabric=fabric: instance.build_network(
                    fabric=fabric),
                repeats)
        if not (digests["reference"] == digests["strict"]
                == digests["fast"]):
            raise AssertionError(
                f"{name}: fabrics disagree on the ledger: {digests}")

        report[name] = {
            "n": instance.n,
            "m": instance.m,
            "rounds": len(schedule),
            "messages": digests["reference"][1],
            "words": digests["reference"][2],
            "reference_rps": round(rps["reference"], 1),
            "strict_rps": round(rps["strict"], 1),
            "fast_rps": round(rps["fast"], 1),
            "speedup_strict": round(rps["strict"] / rps["reference"], 3),
            "speedup_fast": round(rps["fast"] / rps["reference"], 3),
        }
    return report


def render_report(families: Dict[str, dict]) -> str:
    from repro.analysis import format_records

    records = [{"family": name, **data}
               for name, data in families.items()]
    return format_records(
        records,
        ["family", "n", "rounds", "messages", "reference_rps",
         "strict_rps", "fast_rps", "speedup_fast"],
        title="fabric throughput — batched exchange vs. reference "
              "engine (replayed schedules, best of N)",
    )


def check_against_baseline(families: Dict[str, dict], baseline: dict,
                           tolerance: float) -> List[str]:
    """Regression messages (empty when the gate passes)."""
    problems = []
    for name, base in baseline.get("families", {}).items():
        now = families.get(name)
        if now is None:
            problems.append(f"{name}: family missing from this run")
            continue
        floor = base["speedup_fast"] * (1.0 - tolerance)
        if now["speedup_fast"] < floor:
            problems.append(
                f"{name}: fast-path speedup {now['speedup_fast']:.2f}x "
                f"fell below {floor:.2f}x "
                f"(baseline {base['speedup_fast']:.2f}x - "
                f"{tolerance:.0%} tolerance)")
    gate = families.get(GATE_FAMILY)
    if gate is not None and gate["speedup_fast"] < MIN_GATE_SPEEDUP:
        problems.append(
            f"{GATE_FAMILY}: fast-path speedup "
            f"{gate['speedup_fast']:.2f}x is below the absolute "
            f"{MIN_GATE_SPEEDUP:.1f}x floor")
    return problems


# -- pytest-benchmark entry points -----------------------------------------


def bench_fabric_throughput(benchmark):
    """Replayed-schedule rounds/sec across fabrics (see module doc)."""
    from _util import report

    families = benchmark.pedantic(
        lambda: measure_families(scale=1, repeats=2),
        rounds=1, iterations=1)
    report("fabric", render_report(families))
    gate = families[GATE_FAMILY]
    assert gate["speedup_fast"] >= MIN_GATE_SPEEDUP, gate
    for data in families.values():
        assert data["speedup_fast"] > 1.0, data


# -- CLI (CI perf gate) -----------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", type=pathlib.Path, default=None,
                        help="write the machine-readable report here")
    parser.add_argument("--compare", type=pathlib.Path, default=None,
                        help="committed baseline JSON to gate against")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed relative speedup regression")
    parser.add_argument("--repeats", type=int, default=3,
                        help="replays per engine (best-of timing)")
    parser.add_argument("--scale", type=int, default=1,
                        help="instance size multiplier")
    args = parser.parse_args(argv)

    families = measure_families(scale=args.scale, repeats=args.repeats)
    print(render_report(families))

    payload = {
        "bench": "fabric",
        "gate_family": GATE_FAMILY,
        "min_gate_speedup": MIN_GATE_SPEEDUP,
        "tolerance": args.tolerance,
        "families": families,
    }
    if args.json is not None:
        args.json.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.json}")

    if args.compare is not None:
        baseline = json.loads(args.compare.read_text())
        problems = check_against_baseline(families, baseline,
                                          args.tolerance)
        if problems:
            for line in problems:
                print(f"PERF REGRESSION: {line}", file=sys.stderr)
            return 1
        print(f"perf gate ok (vs {args.compare}, "
              f"tolerance {args.tolerance:.0%})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
