"""E8 — Theorem 3: (1+ε)-Apx-RPaths on weighted directed graphs.

For each ε the bench measures the *worst* approximation ratio across
all path edges against the exact centralized oracle (must stay ≤ 1+ε)
and the rounds used.  The h_st-flavoured weighted family exercises both
the rounding short-detour machinery (Section 7.1/7.2) and the scaled
landmark long-detour stage (Section 7.3).
"""

from __future__ import annotations

import pytest

from repro.analysis import approx_quality, format_records, format_table
from repro.graphs import path_with_chords_instance, random_instance

from _util import report, scenario_speedup

EPSILONS = [0.5, 0.25, 0.1]

CASES = [
    ("random-weighted", lambda: random_instance(
        48, seed=1, weighted=True, max_weight=12)),
    ("chords-weighted", lambda: path_with_chords_instance(
        24, seed=2, weighted=True, overlay_hub=True)),
]

_rows = []


@pytest.mark.parametrize("case_idx", range(len(CASES)))
def bench_approx_quality(benchmark, case_idx):
    family, builder = CASES[case_idx]
    instance = builder()

    def run():
        return approx_quality(instance, EPSILONS, seed=case_idx,
                              landmarks=list(range(instance.n)))

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    for eps, worst, rounds in rows:
        assert worst <= 1 + eps + 1e-9, (family, eps, worst)
        _rows.append([family, instance.n, instance.hop_count,
                      eps, f"{worst:.4f}", f"{1 + eps:.2f}", rounds])
    if case_idx == len(CASES) - 1:
        report("approx", format_table(
            ["family", "n", "h_st", "eps", "worst ratio",
             "bound", "rounds"],
            _rows,
            title=("E8/Theorem 3 — measured (1+eps) sandwich on "
                   "weighted instances")))


def bench_approx_rounds_epsilon_tradeoff(benchmark):
    """Rounds grow as ε shrinks (the ζ(1+2/ε) hop budget)."""
    instance = random_instance(40, seed=5, weighted=True)

    def run():
        return approx_quality(instance, EPSILONS, seed=0,
                              landmarks=[0, 7, 19, 31])

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    rounds = [r for _, _, r in rows]
    report("approx_tradeoff", format_table(
        ["eps", "rounds"],
        [[eps, r] for (eps, _, r) in rows],
        title="E8 — rounds vs eps (hop budget ~ zeta*(1+2/eps))"))
    assert rounds[0] < rounds[-1]  # ε = 0.5 cheaper than ε = 0.1


def bench_approx_runtime_executor(benchmark):
    """The eps and weight-scale sweeps through the runtime executor.

    Every (eps | max_weight) x seed cell runs as an independent
    process-pool task; the report includes the measured wall-clock
    speedup of 2 workers over the serial baseline.
    """
    names = ["apx-eps-sweep", "apx-weight-scale"]

    def run():
        return scenario_speedup(names, jobs=2)

    serial, parallel, stats = benchmark.pedantic(
        run, rounds=1, iterations=1)
    assert all(r.ok for r in parallel)
    assert all(r.correct for r in parallel)  # (1+eps) sandwich holds
    for a, b in zip(serial, parallel):
        assert a.metrics == b.metrics, a.spec.label
    records = [{"scenario": r.scenario, "seed": r.seed,
                **r.params, **r.metrics} for r in parallel]
    lines = [
        format_records(
            records,
            ["scenario", "epsilon", "max_weight", "seed",
             "worst_ratio", "rounds"],
            title="E8b — Theorem 3 sweeps via the runtime executor"),
        stats.render(),
    ]
    report("approx_executor", "\n".join(lines))
    assert stats.speedup > 0.3  # pool overhead must never dominate
