"""E3 — h_st-(in)dependence: the paper's questions Q1/Q2.

Sweeps h_st on the chords+hub family (D = 2, n = Θ(h_st)) and compares
how each algorithm's rounds grow.  The decisive quantity is the log-log
slope against h_st: the trivial baseline is ~quadratic in h_st (h_st
BFS runs over a growing graph), MR24b carries its √(n·h_st)-shaped
broadcast, while Theorem 1 should track n^{2/3} ≈ h_st^{2/3}.
"""

from __future__ import annotations

from repro.analysis import fit_power_law, format_table, hst_sweep

from _util import report

HOPS = [24, 48, 96, 192]


def bench_hst_dependence(benchmark):
    def run():
        return hst_sweep(HOPS, seed=1, include_naive=True)

    sweep = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    slopes = {}
    for alg, runs in sweep.items():
        assert all(r.correct for r in runs), alg
        rounds = [r.rounds for r in runs]
        slopes[alg] = fit_power_law(HOPS, rounds).exponent
        rows.append([alg] + rounds + [f"{slopes[alg]:.2f}"])
    text = format_table(
        ["algorithm"] + [f"h={h}" for h in HOPS] + ["slope"],
        rows,
        title=("E3 — rounds vs h_st (chords family, D small); "
               "paper: Thm1 has NO h_st term"))
    text += ("\nExpected ordering of slopes: "
             "theorem1 < mr24b <= trivial.")
    report("hst_dependence", text)
    # The reproduction's headline: the slope ordering.  Theorem 1 rides
    # n^{2/3}·polylog (≈ 1.0–1.1 raw at these sizes, see
    # bench_theorem1_slope for the log² correction); MR24b adds the √(n·h_st) broadcast;
    # the trivial baseline is ~h_st × SSSP ≈ quadratic here.
    assert slopes["theorem1"] < slopes["mr24b"] < slopes["trivial"]
    assert slopes["theorem1"] < 1.2
    assert slopes["trivial"] > 1.5
    assert slopes["trivial"] - slopes["theorem1"] > 0.5
