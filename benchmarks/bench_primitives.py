"""E11/E12 — the toolbox lemmas' round bounds, measured.

E11 (Lemma 2.4): pipelined broadcast of M messages completes in
O(M + D) rounds.  E12 (Lemma 5.5): k-source h-hop BFS completes in
O(k + h) rounds.  Both are measured against their stated budgets on
graphs where M, D, k, h are swept independently.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.congest.broadcast import broadcast_messages
from repro.congest.multisource import multi_source_hop_bfs
from repro.congest.network import CongestNetwork
from repro.congest.spanning_tree import build_spanning_tree
from repro.graphs import random_instance

from _util import report


def bench_broadcast_lemma24(benchmark):
    cases = [(20, 10), (20, 60), (60, 10), (60, 120)]

    def run():
        rows = []
        for n, m in cases:
            net = CongestNetwork(
                n, [(i, i + 1) for i in range(n - 1)])
            tree = build_spanning_tree(net)
            before = net.rounds
            broadcast_messages(
                net, tree, {0: [("msg", i) for i in range(m)]})
            used = net.rounds - before
            diameter = n - 1
            rows.append([n, diameter, m, used, 3 * (m + diameter)])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report("broadcast", format_table(
        ["n", "D", "M", "rounds", "budget 3(M+D)"],
        rows, title="E11/Lemma 2.4 — pipelined broadcast"))
    for row in rows:
        assert row[3] <= row[4]


def bench_ksource_bfs_lemma55(benchmark):
    cases = [(4, 4), (4, 16), (16, 4), (16, 16)]

    def run():
        instance = random_instance(150, seed=9)
        rows = []
        for k, h in cases:
            net = instance.build_network()
            sources = list(range(0, k * 7, 7))[:k]
            multi_source_hop_bfs(net, sources, hop_limit=h)
            rows.append([k, h, net.rounds, 4 * (k + h) + 4])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report("ksource", format_table(
        ["k", "h", "rounds", "budget 4(k+h)+4"],
        rows, title="E12/Lemma 5.5 — k-source h-hop BFS"))
    for row in rows:
        assert row[2] <= row[3]
