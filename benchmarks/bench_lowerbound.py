"""E4–E7 — the Section 6 lower-bound artifacts, executable.

* E4 (Figure 1 / Observation 6.3): G(Γ, d, p) vertex counts and
  diameters.
* E5 (Figure 2 / Observation 6.6 / Lemma 6.8): G(k, d, p, φ, M, x)
  structure and the replacement-length ↔ (M, x) dichotomy over random
  inputs.
* E6 (Proposition 6.1 / Lemma 6.9): set disjointness decided end-to-end
  by the distributed 2-SiSP solver, with Alice/Bob cut-traffic
  measurement against the k² payload.
* E7 (Theorem 2, Ω(D) part): solver rounds grow with D on the
  two-parallel-paths construction.
"""

from __future__ import annotations

import random

from repro.analysis import format_table
from repro.core import solve_two_sisp
from repro.lowerbound import (
    build_diameter_instance,
    build_gamma_graph,
    build_hard_instance,
    decide_disjointness_via_two_sisp,
    expected_optimal_length,
    expected_two_sisp,
    measure_cut_traffic,
    undirected_diameter,
    verify_correspondence,
)

from _util import report


def bench_gamma_graph_observation63(benchmark):
    params = [(2, 2, 2), (4, 2, 2), (2, 2, 3), (3, 3, 2), (8, 2, 3)]

    def run():
        rows = []
        for gamma, d, p in params:
            g = build_gamma_graph(gamma, d, p)
            rows.append([f"G({gamma},{d},{p})", g.n,
                         g.expected_vertex_count(),
                         undirected_diameter(g), 2 * p + 2])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report("gamma_graph", format_table(
        ["graph", "n", "n (Obs 6.3)", "diameter", "2p+2"],
        rows, title="E4/Figure 1 — G(Γ,d,p) structure"))
    for row in rows:
        assert row[1] == row[2]
        assert row[3] <= row[4]


def bench_lemma_6_8_correspondence(benchmark):
    cases = [(2, 2, 1), (2, 2, 2), (3, 2, 1), (3, 2, 2)]

    def run():
        rows = []
        rng = random.Random(42)
        for k, d, p in cases:
            matrix = [[rng.randint(0, 1) for _ in range(k)]
                      for _ in range(k)]
            x = [rng.randint(0, 1) for _ in range(k * k)]
            hard = build_hard_instance(k, d, p, matrix, x)
            rep = verify_correspondence(hard)
            rows.append([
                f"G({k},{d},{p})", hard.n,
                hard.expected_vertex_count_order(),
                rep.optimal_length, expected_optimal_length(k, d, p),
                rep.hit_count, str(rep.holds),
            ])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = format_table(
        ["instance", "n", "n (Obs 6.6)", "L_opt", "3k²+2d^p+4",
         "hits", "Lemma 6.8 holds"],
        rows, title="E5/Figure 2 — hard instance + Lemma 6.8")
    text += ("\nNote: the paper's prose states the constant as "
             "3k²+2d^p+6; the edge-by-edge count (verified here "
             "exhaustively) gives +4.  The iff-dichotomy — the part the "
             "reduction uses — holds verbatim.")
    report("lemma68", text)
    assert all(row[-1] == "True" for row in rows)


def bench_disjointness_reduction(benchmark):
    def run():
        rows = []
        rng = random.Random(7)
        for trial in range(4):
            k = 2
            x = [rng.randint(0, 1) for _ in range(k * k)]
            y = [rng.randint(0, 1) for _ in range(k * k)]
            rep = decide_disjointness_via_two_sisp(
                x, y, k, use_oracle_knowledge=True)
            rows.append([
                "".join(map(str, x)), "".join(map(str, y)),
                rep.expected, rep.decided, rep.rounds, rep.n,
            ])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report("reduction", format_table(
        ["x", "y", "disj(x,y)", "decoded", "rounds", "n"],
        rows,
        title=("E6/Lemma 6.9 — disjointness decided by the distributed "
               "2-SiSP solver")))
    assert all(row[2] == row[3] for row in rows)


def bench_cut_traffic(benchmark):
    hard = build_hard_instance(
        2, 2, 1, [[1, 0], [0, 1]], [1, 1, 1, 1])

    def run():
        def algorithm(net):
            from repro.congest.spanning_tree import build_spanning_tree
            from repro.core.knowledge import oracle_knowledge
            from repro.core.long_detour import long_detour_lengths
            from repro.core.short_detour import short_detour_lengths
            knowledge = oracle_knowledge(hard.instance)
            tree = build_spanning_tree(net)
            short_detour_lengths(hard.instance, net, knowledge, 4)
            long_detour_lengths(hard.instance, net, tree, knowledge, 4,
                                landmarks=list(range(hard.n)))

        return measure_cut_traffic(hard, algorithm)

    rep = benchmark.pedantic(run, rounds=1, iterations=1)
    text = format_table(
        ["rounds", "crossing words", "crossing links",
         "total words", "payload bits (k²)"],
        [[rep.rounds, rep.crossing_words, rep.crossing_links,
          rep.total_words, rep.payload_bits]],
        title=("E6/simulation lemma view — words crossing the "
               "Alice/Bob cut of G(k,d,p,φ,M,x)"))
    text += ("\nLemma 6.4's budget: O(d^p · B) words may cross per "
             "round; deciding the instance needs ≥ k² bits in total.")
    report("cut_traffic", text)
    assert rep.crossing_words >= rep.payload_bits


def bench_omega_d(benchmark):
    diameters = [4, 8, 16, 32]

    def run():
        rows = []
        for diameter in diameters:
            inst = build_diameter_instance(diameter)
            res = solve_two_sisp(inst,
                                 landmarks=list(range(inst.n)))
            assert res.length == expected_two_sisp(diameter, None)
            rows.append([diameter, inst.n, res.length, res.rounds])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report("omega_d", format_table(
        ["D", "n", "2-SiSP", "rounds"],
        rows, title="E7/Theorem 2 — Ω(D) construction: rounds grow "
                    "with D"))
    rounds = [row[3] for row in rows]
    assert rounds == sorted(rounds)
    assert rounds[-1] > rounds[0]
