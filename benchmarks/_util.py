"""Shared helpers for the benchmark harness.

Every bench regenerates one paper artifact (see DESIGN.md's
per-experiment index).  Since pytest captures stdout, each bench also
writes its rendered table to ``benchmarks/results/<name>.txt`` so the
paper-shaped rows survive a plain ``pytest benchmarks/ --benchmark-only``
run; EXPERIMENTS.md-style reference numbers live in those artifacts.

Benches that sweep many cells go through the runtime executor
(:func:`scenario_speedup`), which runs the same cells serially and then
``jobs``-wide and reports the measured wall-clock speedup — on a
single-core host expect ~1x (the executor still overlaps nothing), on a
multi-core host the parallel path wins.
"""

from __future__ import annotations

import pathlib
import time

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def report(name: str, text: str) -> str:
    """Print a rendered experiment table and persist it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n[{name}]\n{text}\n")
    return text


def scenario_speedup(names, jobs: int = 2, smoke: bool = False,
                     timeout: float = 300.0):
    """Run the named scenarios' cells serially, then ``jobs``-wide.

    Returns ``(serial_results, parallel_results, SpeedupStats)``; both
    executions bypass the result cache so the comparison is honest.
    """
    from repro.analysis import speedup_stats
    from repro.runtime import expand_cells, run_cells

    specs = expand_cells(names, smoke=smoke)
    t0 = time.perf_counter()
    serial = run_cells(specs, jobs=1, timeout=timeout)
    t_serial = time.perf_counter() - t0
    t0 = time.perf_counter()
    parallel = run_cells(specs, jobs=jobs, timeout=timeout)
    t_parallel = time.perf_counter() - t0
    return serial, parallel, speedup_stats(t_serial, t_parallel, jobs)
