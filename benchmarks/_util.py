"""Shared helpers for the benchmark harness.

Every bench regenerates one paper artifact (see DESIGN.md's
per-experiment index).  Since pytest captures stdout, each bench also
writes its rendered table to ``benchmarks/results/<name>.txt`` so the
paper-shaped rows survive a plain ``pytest benchmarks/ --benchmark-only``
run; EXPERIMENTS.md records the reference numbers.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def report(name: str, text: str) -> str:
    """Print a rendered experiment table and persist it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n[{name}]\n{text}\n")
    return text
