"""E9/E10 — ablations over the paper's two tuning knobs.

E9: the detour threshold ζ (Section 2 fixes ζ = n^{2/3} to balance the
O(ζ)-round short stage against the landmark count of the long stage).
Sweeping ζ shows the short stage's linear cost in ζ and the long
stage's opposite trend — the crossover justifies the paper's choice.

E10: the landmark density c (Definition 5.2).  Lower c risks missing
long detours (correctness degrades from "always" toward "sometimes"),
higher c inflates the |L|²-word broadcast.  The bench reports
correctness rate over seeds and rounds per c.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.baselines import replacement_lengths
from repro.core.rpaths import default_zeta, solve_rpaths
from repro.graphs import path_with_chords_instance

from _util import report


def bench_zeta_ablation(benchmark):
    instance = path_with_chords_instance(96, seed=2, overlay_hub=True)
    truth = replacement_lengths(instance)
    zetas = [4, 8, 16, default_zeta(instance.n), 64]

    def run():
        rows = []
        for zeta in sorted(set(zetas)):
            rep = solve_rpaths(instance, zeta=zeta, seed=1,
                               landmark_c=3.0)
            rows.append([
                zeta,
                rep.phase_rounds("short-detour(P4.1)"),
                rep.phase_rounds("long-detour(P5.1)"),
                rep.rounds,
                str(rep.lengths == truth),
            ])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report("ablation_zeta", format_table(
        ["zeta", "short rounds", "long rounds", "total", "exact"],
        rows,
        title=(f"E9 — threshold ablation on {instance.name} "
               f"(n={instance.n}, default zeta="
               f"{default_zeta(instance.n)})")))
    # Short stage cost is ~2ζ: strictly increasing in ζ.
    shorts = [row[1] for row in rows]
    assert shorts == sorted(shorts)
    assert all(row[4] == "True" for row in rows)


def bench_landmark_density_ablation(benchmark):
    instance = path_with_chords_instance(64, seed=4, overlay_hub=True)
    truth = replacement_lengths(instance)
    cs = [0.25, 1.0, 2.0, 4.0]
    seeds = [0, 1, 2]

    def run():
        rows = []
        for c in cs:
            exact = 0
            total_rounds = 0
            landmark_counts = []
            for seed in seeds:
                rep = solve_rpaths(instance, seed=seed, landmark_c=c)
                exact += rep.lengths == truth
                total_rounds += rep.rounds
                landmark_counts.append(rep.landmark_count)
            rows.append([
                c,
                f"{sum(landmark_counts) / len(seeds):.1f}",
                f"{exact}/{len(seeds)}",
                total_rounds // len(seeds),
            ])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report("ablation_landmarks", format_table(
        ["c", "avg |L|", "exact runs", "avg rounds"],
        rows,
        title=(f"E10 — landmark density ablation on {instance.name}: "
               "Definition 5.2 rate c·log(n)/zeta")))
    # At the paper's c ≥ 2 the algorithm must be exact on all seeds.
    for row in rows:
        if row[0] >= 2.0:
            assert row[2] == f"{len(seeds)}/{len(seeds)}"
