"""E2 — the Õ(n^{2/3} + D) shape of Theorem 1.

Measures rounds of the full Theorem 1 pipeline as n grows on the
fixed-diameter chords+hub family (D = 2 throughout, h_st = Θ(n)) and
fits the log-log slope.  The paper's claim corresponds to a slope of
2/3 up to polylog drift (the landmark count carries a log n factor, so
slopes modestly above 2/3 are expected at these sizes); the bench
asserts the slope is clearly sublinear and clearly above the Ω̃(√n)
floor of the prior lower bound.
"""

from __future__ import annotations

from repro.analysis import (
    fit_power_law,
    format_records,
    format_series,
    format_table,
)
from repro.core.rpaths import solve_rpaths
from repro.graphs import path_with_chords_instance

from _util import report, scenario_speedup

SIZES = [32, 64, 128, 256]


def bench_slope_theorem1(benchmark):
    def run():
        ns, rounds = [], []
        for hops in SIZES:
            instance = path_with_chords_instance(
                hops, seed=1, overlay_hub=True)
            rep = solve_rpaths(instance, seed=1)
            ns.append(instance.n)
            rounds.append(rep.rounds)
        return ns, rounds

    ns, rounds = benchmark.pedantic(run, rounds=1, iterations=1)
    fit = fit_power_law(ns, rounds)
    # The dominant term at these sizes is the |L|² broadcast with
    # |L| = Θ(n^{1/3} log n), i.e. n^{2/3}·log²n: at n ≤ 600 the log²
    # factor adds ≈ 2/ln(n) ≈ 0.3 to the raw slope.  Dividing it out
    # recovers the paper's 2/3 much more closely.
    import math
    corrected = fit_power_law(
        ns, [r / math.log(n) ** 2 for n, r in zip(ns, rounds)])
    lines = [
        format_series("n", SIZES, ns),
        format_series("rounds(Thm1)", ns, rounds),
        f"raw log-log slope = {fit.exponent:.3f} "
        f"(paper: 2/3 up to polylog), R^2 = {fit.r_squared:.4f}",
        f"log^2-corrected slope = {corrected.exponent:.3f} "
        f"(expect ~ 2/3)",
    ]
    report("scaling", "\n".join(lines))
    assert 0.45 < fit.exponent < 1.30, fit.exponent
    assert 0.40 < corrected.exponent < 1.00, corrected.exponent
    assert fit.r_squared > 0.9


def bench_slope_phase_breakdown(benchmark):
    """Per-phase round shares at one size — the Section 5 budget."""
    instance = path_with_chords_instance(128, seed=3, overlay_hub=True)

    def run():
        return solve_rpaths(instance, seed=2)

    rep = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[name, rounds] for name, rounds in
            rep.ledger.breakdown().items()
            if rounds > 0]
    report("scaling_phases", format_table(
        ["phase", "rounds"], rows,
        title=f"E2 — phase breakdown on {instance.name} "
              f"(n={instance.n})"))
    assert rep.phase_rounds("short-detour(P4.1)") > 0
    assert rep.phase_rounds("long-detour(P5.1)") > 0


def bench_slope_runtime_executor(benchmark):
    """The exact-solver sweep through the runtime executor.

    Same cells the old serial loop ran, now fanned out over the
    process pool; the report records the measured speedup vs. the
    serial baseline on 2 workers (hardware-dependent — ~1x on one
    core, approaching 2x on two).
    """
    names = ["exact-chords", "exact-random"]

    def run():
        return scenario_speedup(names, jobs=2)

    serial, parallel, stats = benchmark.pedantic(
        run, rounds=1, iterations=1)
    assert all(r.ok for r in serial)
    assert all(r.ok for r in parallel)
    # Parallel execution must not change any measurement.
    for a, b in zip(serial, parallel):
        assert a.metrics == b.metrics, a.spec.label
    records = [{"cell": r.spec.label, **r.metrics,
                "wall": f"{r.wall_time:.2f}s"} for r in parallel]
    lines = [
        format_records(
            records, ["cell", "rounds", "max_link_words", "wall"],
            title="E2b — exact sweeps via the runtime executor"),
        stats.render(),
    ]
    report("scaling_executor", "\n".join(lines))
    assert stats.speedup > 0.3  # pool overhead must never dominate
