"""End-to-end solver throughput: ``solve_rpaths`` across the fabrics.

PR 3's kernel bench (``bench_fabric.py``) measures the covered
*primitives*; this bench measures what users actually pay: one full
Theorem 1 execution — spanning tree, Lemma 2.5 knowledge, Prop 4.1
short detours, Prop 5.1 long detours — per fabric, plus the serving
tier's oracle-build funnel (``ShardedQueryService.warm``, one
``solve_rpaths`` per instance).  With every solver round loop now
running as an array kernel, ``fabric="vector"`` executes the whole
solve without per-message Python; the measured end-to-end speedups are
the Amdahl complement of PR 3's per-primitive numbers.

Families (all n ≥ 2048 except the 3-way reference family, which the
pre-fabric engine could not finish at that size in CI time):

* ``solve-expander-2048`` — the gate family: the acceptance floor
  requires ≥ ``MIN_SOLVER_SPEEDUP``x vector-vs-fast here;
* ``solve-power-law-2048`` — hub-concentrated congestion;
* ``solve-hard-instance`` — the Section 6.3 lower-bound construction
  (n = 2286, h_st = 64): long-path phases (chain flood, DP pipeline,
  segment sweeps) carry real weight;
* ``solve-expander-256-3way`` — reference vs fast vs vector on one
  instance the reference engine can finish, keeping the historical
  baseline in the picture.

The big families pass ``landmark_c = 0.5``: at the default c = 2 the
|L|² pair broadcast alone floods ~75M message-hops at n = 2048, which
the *message* engines cannot finish inside a CI budget (the vector
schedule kernel handles it in milliseconds — that asymmetry is the
point, but the gate still needs a finishing baseline).

Every family asserts bit-identical lengths, stage outputs, and ledger
digests across its fabrics before any throughput is reported.

Gates (the CI ``perf-gate`` job runs ``--quick``)::

    python benchmarks/bench_solver.py --json BENCH_solver.json \
        --compare benchmarks/BENCH_solver.json --tolerance 0.25

* every ``solve-*`` family must hold ≥ 5x vector-vs-fast;
* the oracle-build measurement must hold ≥ 2x vector-vs-fast;
* a measured ratio more than the (doubled — end-to-end runs inherit
  the kernel workloads' memory-bound noise profile) tolerance below
  its committed baseline ratio fails the gate.
"""

from __future__ import annotations

import argparse
import gc
import json
import pathlib
import platform as platform_mod
import sys
import time
from contextlib import contextmanager
from typing import Dict, List

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.rpaths import solve_rpaths  # noqa: E402
from repro.graphs import (  # noqa: E402
    expander_instance,
    path_with_chords_instance,
    power_law_instance,
)
from repro.lowerbound import build_hard_instance  # noqa: E402

#: Acceptance floor: end-to-end vector-vs-fast on every solve family.
MIN_SOLVER_SPEEDUP = 5.0
GATE_FAMILY = "solve-expander-2048"

#: Acceptance floor for the serving tier's oracle-build funnel.
MIN_BUILD_SPEEDUP = 2.0


def _hard_instance(k: int, d: int, p: int):
    matrix = [[(a + b) % 2 for b in range(k)] for a in range(k)]
    x_bits = [i % 2 for i in range(k * k)]
    return build_hard_instance(k, d, p, matrix, x_bits).instance


def _families():
    """(name, instance, solver kwargs, fabrics) per family."""
    yield (GATE_FAMILY,
           expander_instance(2048, degree=4, seed=9),
           {"landmark_c": 0.5}, ("fast", "vector"))
    yield ("solve-power-law-2048",
           power_law_instance(2048, attach=3, seed=2),
           {"landmark_c": 0.5}, ("fast", "vector"))
    yield ("solve-hard-instance", _hard_instance(8, 3, 2),
           {"landmark_c": 0.5}, ("fast", "vector"))
    yield ("solve-expander-256-3way",
           expander_instance(256, degree=4, seed=5),
           {}, ("reference", "fast", "vector"))


@contextmanager
def _quiet_gc():
    """Collect up front, keep the collector out of the timed region."""
    gc.collect()
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


def _fingerprint(report):
    ledger = report.ledger
    return (list(report.lengths), list(report.extras["short"]),
            list(report.extras["long"]), ledger.rounds,
            ledger.messages, ledger.words, ledger.max_link_words,
            ledger.violations)


def measure_families(repeats: int) -> Dict[str, dict]:
    """One full solve per fabric per family; best-of-N rounds/sec."""
    results: Dict[str, dict] = {}
    for name, instance, kwargs, fabrics in _families():
        rps: Dict[str, float] = {}
        prints = {}
        rounds = 0
        # Vector first: the message engines' multi-second runs grow and
        # fragment the heap, which measurably slows the array kernels
        # when they go second (same ordering as bench_fabric).
        for fabric in fabrics[::-1]:
            best = float("inf")
            reps = repeats if fabric != "vector" else max(repeats, 3)
            for _ in range(reps):
                with _quiet_gc():
                    start = time.perf_counter()
                    report = solve_rpaths(instance, seed=7,
                                          fabric=fabric, **kwargs)
                    best = min(best, time.perf_counter() - start)
            prints[fabric] = _fingerprint(report)
            rounds = report.rounds
            rps[fabric] = rounds / best
        if any(prints[f] != prints[fabrics[0]] for f in fabrics):
            raise AssertionError(
                f"{name}: fabrics disagree on results or ledger")
        row = {
            "n": instance.n,
            "m": instance.m,
            "hop_count": instance.hop_count,
            "rounds": rounds,
            "solver_kwargs": {k: v for k, v in kwargs.items()},
        }
        for fabric in fabrics:
            row[f"{fabric}_rps"] = round(rps[fabric], 1)
        row["speedup_vector"] = round(rps["vector"] / rps["fast"], 3)
        if "reference" in fabrics:
            row["speedup_fast"] = round(
                rps["fast"] / rps["reference"], 3)
        results[name] = row
    return results


def measure_oracle_build(quick: bool) -> dict:
    """The serving tier's build funnel: warm a sharded service per
    build fabric and compare wall time (identical oracle tables
    asserted first)."""
    from repro.serve.shard import ShardedQueryService

    sizes = (192,) if quick else (192, 256)
    catalog = []
    for n in sizes:
        catalog.append(expander_instance(
            n, degree=4, seed=1, name=f"bench-exp-{n}"))
        catalog.append(path_with_chords_instance(
            n // 2, seed=2, overlay_hub=True, name=f"bench-chords-{n}"))
    elapsed: Dict[str, float] = {}
    tables: Dict[str, list] = {}
    for fabric in ("vector", "fast"):
        service = ShardedQueryService(catalog, shards=1,
                                      capacity=len(catalog),
                                      build_fabric=fabric)
        with _quiet_gc():
            start = time.perf_counter()
            service.warm()
            elapsed[fabric] = time.perf_counter() - start
        shard = service.shard_for(catalog[0].name)
        tables[fabric] = [
            shard.planner_for(inst.name).oracle.lengths
            for inst in catalog
        ]
    if tables["fast"] != tables["vector"]:
        raise AssertionError("oracle tables differ across build fabrics")
    return {
        "instances": len(catalog),
        "fast_seconds": round(elapsed["fast"], 3),
        "vector_seconds": round(elapsed["vector"], 3),
        "speedup_vector": round(elapsed["fast"] / elapsed["vector"], 3),
    }


def render_report(families: Dict[str, dict],
                  oracle_build: dict) -> str:
    from repro.analysis import format_records

    records = [{"family": name, **{k: v for k, v in data.items()
                                   if k != "solver_kwargs"}}
               for name, data in families.items()]
    table = format_records(
        records,
        ["family", "n", "hop_count", "rounds", "fast_rps",
         "vector_rps", "speedup_vector"],
        title="whole-solver throughput — solve_rpaths end to end "
              "(best of N)",
    )
    build = (f"oracle build ({oracle_build['instances']} instances): "
             f"fast {oracle_build['fast_seconds']}s, vector "
             f"{oracle_build['vector_seconds']}s "
             f"({oracle_build['speedup_vector']}x)")
    return table + "\n" + build


def environment_info() -> Dict[str, str]:
    try:
        import numpy
        numpy_version = numpy.__version__
    except ImportError:  # pragma: no cover - numpy is baked in CI
        numpy_version = "absent"
    return {
        "python_version": platform_mod.python_version(),
        "numpy_version": numpy_version,
        "platform": platform_mod.platform(),
    }


def check_against_baseline(families: Dict[str, dict], baseline: dict,
                           tolerance: float,
                           oracle_build: dict) -> List[str]:
    """Regression messages (empty when the gate passes)."""
    problems = []
    # End-to-end runs are dominated by the same memory-bound kernels as
    # bench_fabric's vector families, so the ratio check inherits their
    # doubled tolerance; the absolute floors catch genuine collapse.
    ratio_tolerance = min(2.0 * tolerance, 0.9)
    for name, base in baseline.get("families", {}).items():
        now = families.get(name)
        if now is None:
            problems.append(f"{name}: family missing from this run")
            continue
        floor = base["speedup_vector"] * (1.0 - ratio_tolerance)
        if now["speedup_vector"] < floor:
            problems.append(
                f"{name}: solver speedup {now['speedup_vector']:.2f}x "
                f"fell below {floor:.2f}x (baseline "
                f"{base['speedup_vector']:.2f}x - "
                f"{ratio_tolerance:.0%} tolerance)")
    for name, data in families.items():
        if data["speedup_vector"] < MIN_SOLVER_SPEEDUP:
            problems.append(
                f"{name}: solver speedup "
                f"{data['speedup_vector']:.2f}x is below the absolute "
                f"{MIN_SOLVER_SPEEDUP:.1f}x floor")
    if oracle_build["speedup_vector"] < MIN_BUILD_SPEEDUP:
        problems.append(
            f"oracle-build: speedup "
            f"{oracle_build['speedup_vector']:.2f}x is below the "
            f"absolute {MIN_BUILD_SPEEDUP:.1f}x floor")
    base_build = baseline.get("oracle_build")
    if base_build:
        floor = base_build["speedup_vector"] * (1.0 - ratio_tolerance)
        if oracle_build["speedup_vector"] < floor:
            problems.append(
                f"oracle-build: speedup "
                f"{oracle_build['speedup_vector']:.2f}x fell below "
                f"{floor:.2f}x (baseline "
                f"{base_build['speedup_vector']:.2f}x)")
    return problems


# -- pytest-benchmark entry point -------------------------------------------


def bench_solver_throughput(benchmark):
    """End-to-end rounds/sec, vector vs fast (see module doc)."""
    from _util import report

    families = benchmark.pedantic(
        lambda: measure_families(repeats=1),
        rounds=1, iterations=1)
    build = measure_oracle_build(quick=True)
    report("solver", render_report(families, build))
    for data in families.values():
        assert data["speedup_vector"] >= MIN_SOLVER_SPEEDUP, data
    assert build["speedup_vector"] >= MIN_BUILD_SPEEDUP, build


# -- CLI (CI perf gate) ------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", type=pathlib.Path, default=None,
                        help="write the machine-readable report here")
    parser.add_argument("--compare", type=pathlib.Path, default=None,
                        help="committed baseline JSON to gate against")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed relative speedup regression "
                             "(doubled internally, like the fabric "
                             "bench's vector families)")
    parser.add_argument("--repeats", type=int, default=2,
                        help="solves per fabric (best-of timing)")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: single repeat, smaller "
                             "oracle-build catalog (the solve family "
                             "set never shrinks — the baseline "
                             "comparison needs every family present)")
    parser.add_argument("--trace", type=pathlib.Path, default=None,
                        help="record spans into this JSONL trace "
                             "directory (read back with "
                             "'repro trace summary')")
    args = parser.parse_args(argv)

    if args.trace is not None:
        from repro import telemetry
        telemetry.enable_tracing(args.trace)
        telemetry.write_meta(args.trace, bench="solver",
                             quick=args.quick, repeats=args.repeats)

    repeats = 1 if args.quick else args.repeats
    families = measure_families(repeats)
    oracle_build = measure_oracle_build(args.quick)

    if args.trace is not None:
        from repro import telemetry
        telemetry.flush(args.trace)
        telemetry.disable_tracing()
        print(f"trace: {args.trace}")
    print(render_report(families, oracle_build))

    payload = {
        "bench": "solver",
        "gate_family": GATE_FAMILY,
        "min_solver_speedup": MIN_SOLVER_SPEEDUP,
        "min_build_speedup": MIN_BUILD_SPEEDUP,
        "tolerance": args.tolerance,
        "environment": environment_info(),
        "families": families,
        "oracle_build": oracle_build,
    }
    if args.json is not None:
        args.json.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.json}")

    if args.compare is not None:
        baseline = json.loads(args.compare.read_text())
        problems = check_against_baseline(families, baseline,
                                          args.tolerance, oracle_build)
        if problems:
            for line in problems:
                print(f"PERF REGRESSION: {line}", file=sys.stderr)
            return 1
        print(f"perf gate ok (vs {args.compare}, "
              f"tolerance {args.tolerance:.0%})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
