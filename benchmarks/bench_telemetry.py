"""Microbench — the disabled-tracing overhead gate.

The telemetry design promise is "disabled is free": every instrumented
hot site (``RoundLedger.phase``, the solver entry points, the kernel
dispatch predicates) pays one module-global check when tracing is off.
This bench quantifies that check against a *bypassed* baseline — the
same solve with ``RoundLedger.phase`` monkeypatched back to its
pre-instrumentation body — and gates the relative overhead at
:data:`MAX_OVERHEAD` (< 2%, the committed acceptance bound).

Timing discipline: interleaved best-of-``repeats`` on an identical
deterministic workload.  The minimum filters scheduler noise upward
(noise only ever *adds* time), so the ratio of minima is a stable
estimate of the structural overhead even on a busy machine.

Usage::

    PYTHONPATH=src python benchmarks/bench_telemetry.py [--repeats N]

``tests/test_telemetry.py`` runs :func:`measure_overhead` with the same
workload and asserts the bound.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import pathlib
import sys
import time
from typing import Dict

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.congest.metrics import PhaseStats, RoundLedger
from repro.core.rpaths import solve_rpaths
from repro.graphs.generators import grid_instance
from repro.telemetry import trace as _trace

#: Committed acceptance bound on (instrumented-disabled / bypassed) - 1.
MAX_OVERHEAD = 0.02


@contextlib.contextmanager
def _bare_phase(self, name):
    """``RoundLedger.phase`` as it was before telemetry existed."""
    stats = self._stats.get(name)
    if stats is None:
        stats = PhaseStats(name)
        self._stats[name] = stats
        self._order.append(name)
    self._stack.append(name)
    try:
        yield stats
    finally:
        popped = self._stack.pop()
        assert popped == name, "phase stack corrupted"


def _workload(rows: int, cols: int):
    """One deterministic solve: every instrumented layer on the path."""
    instance = grid_instance(rows, cols)
    return solve_rpaths(instance, fabric="fast").rounds


def measure_overhead(repeats: int = 5, rows: int = 4,
                     cols: int = 12) -> Dict[str, float]:
    """Best-of-``repeats`` instrumented-vs-bypassed solve timings.

    Returns ``{"instrumented": s, "bypassed": s, "overhead": frac}``.
    Tracing is forced off for both arms (the disabled guard is exactly
    what is being measured); the registry stays live in both arms, as
    it does in production.
    """
    was_enabled = _trace._ENABLED
    _trace.disable_tracing()
    original_phase = RoundLedger.phase
    best_instr = float("inf")
    best_bare = float("inf")
    try:
        _workload(rows, cols)  # warm caches/imports outside the clock
        for _ in range(repeats):
            start = time.perf_counter()
            _workload(rows, cols)
            elapsed = time.perf_counter() - start
            if elapsed < best_instr:
                best_instr = elapsed

            RoundLedger.phase = _bare_phase
            try:
                start = time.perf_counter()
                _workload(rows, cols)
                elapsed = time.perf_counter() - start
            finally:
                RoundLedger.phase = original_phase
            if elapsed < best_bare:
                best_bare = elapsed
    finally:
        RoundLedger.phase = original_phase
        if was_enabled:
            _trace.enable_tracing()
    return {
        "instrumented": best_instr,
        "bypassed": best_bare,
        "overhead": best_instr / best_bare - 1.0,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeats", type=int, default=7,
                        help="interleaved repeats (best-of timing)")
    parser.add_argument("--rows", type=int, default=4)
    parser.add_argument("--cols", type=int, default=12)
    parser.add_argument("--json", type=pathlib.Path, default=None,
                        help="write the machine-readable report here")
    args = parser.parse_args(argv)

    result = measure_overhead(repeats=args.repeats, rows=args.rows,
                              cols=args.cols)
    print(f"instrumented (tracing off): {result['instrumented']:.4f}s")
    print(f"bypassed (bare phase):      {result['bypassed']:.4f}s")
    print(f"overhead: {result['overhead'] * 100:+.2f}% "
          f"(bound {MAX_OVERHEAD * 100:.0f}%)")
    if args.json is not None:
        args.json.write_text(json.dumps(
            {"bench": "telemetry", "max_overhead": MAX_OVERHEAD,
             **result}, indent=2) + "\n")
        print(f"wrote {args.json}")
    if result["overhead"] > MAX_OVERHEAD:
        print("OVERHEAD GATE FAILED", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
