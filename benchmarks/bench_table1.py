"""E1 — Table 1: the round-complexity landscape.

Regenerates the paper's Table 1 comparison as *measured* rounds: the
Theorem 1 algorithm versus the MR24b-style algorithm versus the trivial
h_st × SSSP algorithm, on both a small-h_st family (sparse random
digraphs) and the h_st = Θ(n) family (path with chords, hub overlay for
small D).  All algorithms are checked exact against the centralized
oracle; the printed table is the reproduction's Table 1 row set.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table, run_table1_cell
from repro.graphs import path_with_chords_instance, random_instance

from _util import report

CASES = [
    ("random", lambda: random_instance(96, seed=1)),
    ("random", lambda: random_instance(192, seed=2)),
    ("chords+hub", lambda: path_with_chords_instance(
        48, seed=1, overlay_hub=True)),
    ("chords+hub", lambda: path_with_chords_instance(
        96, seed=2, overlay_hub=True)),
]

_rows = []


@pytest.mark.parametrize("case_idx", range(len(CASES)))
def bench_table1_cell(benchmark, case_idx):
    family, builder = CASES[case_idx]
    instance = builder()

    def run():
        return run_table1_cell(instance, seed=case_idx)

    runs = benchmark.pedantic(run, rounds=1, iterations=1)
    by_alg = {r.algorithm: r for r in runs}
    assert all(r.correct for r in runs), instance.name
    diameter = instance.build_network().undirected_diameter()
    _rows.append([
        family, instance.n, instance.hop_count, diameter,
        by_alg["theorem1"].rounds,
        by_alg["mr24b"].rounds,
        by_alg["trivial"].rounds,
    ])
    if len(_rows) == len(CASES):
        text = format_table(
            ["family", "n", "h_st", "D", "rounds(Thm1)",
             "rounds(MR24b)", "rounds(trivial)"],
            _rows,
            title=("E1/Table 1 — measured CONGEST rounds "
                   "(all outputs exact vs oracle)"))
        text += (
            "\nPaper shape: Thm1 ~ n^{2/3}+D (no h_st term); "
            "MR24b ~ n^{2/3}+sqrt(n*h_st)+D; trivial ~ h_st*SSSP.\n"
            "Expectation: trivial wins at small h_st (the Section 1.1 "
            "remark); Thm1 overtakes both as h_st grows.")
        report("table1", text)
