"""Serving-tier throughput: precomputed oracle vs. per-query solves.

Three workload families measure what the serving layer buys:

* ``oracle-hit`` — read-only traffic (the instance's own (s, t) pair,
  failed edge uniform over E) against a built
  :class:`~repro.serve.oracle.ReplacementPathOracle`.  The baseline is
  the operational status quo this tier replaces: re-running the full
  ``solve_rpaths`` pipeline per query.  The ISSUE-level claim — and
  the absolute CI floor — is a >= 20x queries/sec advantage; in
  practice the gap is orders of magnitude (one O(1) lookup vs. a full
  CONGEST execution).
* ``zipf-batched`` — zipf-skewed arbitrary-pair solve traffic through
  the :class:`~repro.serve.planner.BatchPlanner` (one k-source
  vector-fabric solve per failed-edge group), against the unbatched
  distributed status quo: one single-source fabric BFS per query, no
  memo.
* ``adversarial-batched`` — the memo-defeating failed-edge schedule,
  same baseline; only the k-source grouping amortizes anything here,
  so this family bounds the tier's worst case.
* ``daemon-loop`` — the serve daemon (long-lived worker processes
  that warm their shards once, :mod:`repro.serve.daemon`) under a
  closed-loop multi-client load via the admission front-end, against
  the cold ``pool_map`` status quo it replaces:
  ``ShardedQueryService.serve_parallel`` with no spill store, where
  every batch respawns the pool and rebuilds every oracle.  Gated on
  the ISSUE's >= 5x sustained-QPS floor plus a p95 latency ceiling;
  p50/p95/p99 land in the committed JSON.

Every family verifies every answer against the centralized oracle
before any throughput number is reported — a mismatch exits non-zero
regardless of speed.

Gate (used by the CI ``serve-smoke`` step)::

    python benchmarks/bench_serve.py --quick \
        --json BENCH_serve.json \
        --compare benchmarks/BENCH_serve.json --tolerance 0.25

* ``oracle-hit`` must hold the absolute >= 20x speedup floor;
* the batched families must not drop below 1x (batching must never
  lose to the per-query path);
* any family's speedup more than ``tolerance`` below its committed
  baseline ratio fails the gate.  Ratios, not absolute queries/sec,
  are compared: they are stable across runner hardware.  Baselines
  are mode-stamped (``--quick`` vs. full); comparing across modes
  enforces only the absolute floors.
"""

from __future__ import annotations

import argparse
import gc
import json
import pathlib
import platform as platform_mod
import sys
import time
from contextlib import contextmanager
from typing import Dict, List

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.congest import bfs_distances  # noqa: E402
from repro.core.rpaths import solve_rpaths  # noqa: E402
from repro.graphs.generators import (  # noqa: E402
    path_with_chords_instance,
    random_instance,
)
from repro.serve import (  # noqa: E402
    BatchPlanner,
    ReplacementPathOracle,
    ServeDaemon,
    ServeFrontend,
    ShardedQueryService,
    generate_workload,
    hit_ratio,
    latency_summary_ms,
    run_load,
    verify_against_centralized,
)

#: Absolute queries/sec floor for oracle-hit traffic vs. per-query
#: ``solve_rpaths`` (the ISSUE acceptance criterion).
MIN_ORACLE_SPEEDUP = 20.0
ORACLE_FAMILY = "oracle-hit"

#: Batched planning must never lose to the per-query fabric path.
MIN_BATCH_SPEEDUP = 1.0

#: Warm daemon vs. cold pool_map serving (the ISSUE acceptance
#: criterion for the daemon tier): sustained closed-loop QPS must be
#: at least this multiple of the per-batch-rebuild path.
MIN_DAEMON_SPEEDUP = 5.0
DAEMON_FAMILY = "daemon-loop"

#: Absolute p95 ceiling (ms) for ok requests in the daemon family —
#: the committed latency SLO the CI smoke step also enforces.
MAX_DAEMON_P95_MS = 75.0


@contextmanager
def _quiet_gc():
    """Keep collector pauses out of the timed regions (same rationale
    as bench_fabric: pauses land on whichever side is being timed)."""
    gc.collect()
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


def _verify_or_die(name: str, instance, answers) -> None:
    if not verify_against_centralized([instance], answers):
        raise AssertionError(
            f"{name}: serving answers contradict the centralized "
            "oracle")


def measure_oracle_hit(quick: bool) -> Dict[str, object]:
    """Oracle-hit qps vs. per-query solve_rpaths qps."""
    hops = 14 if quick else 24
    queries = 600 if quick else 4000
    solves = 1 if quick else 2
    instance = path_with_chords_instance(hops, seed=1,
                                         overlay_hub=True)

    build_start = time.perf_counter()
    oracle = ReplacementPathOracle.build(instance, solver="theorem1",
                                         seed=0)
    build_time = time.perf_counter() - build_start

    stream = generate_workload("uniform", instance, queries, seed=2)
    with _quiet_gc():
        start = time.perf_counter()
        answers = [oracle.answer(q) for q in stream]
        serve_time = time.perf_counter() - start
    _verify_or_die(ORACLE_FAMILY, instance, answers)

    # Per-answer latency percentiles over a warm sample (the bulk loop
    # above owns the throughput number; individually timed answers
    # carry the clock overhead, so they are a separate pass).
    per_answer = []
    for q in stream[:200]:
        t0 = time.perf_counter()
        oracle.answer(q)
        per_answer.append(time.perf_counter() - t0)
    latency = latency_summary_ms(per_answer)

    # The status quo: every query re-runs the full pipeline.  A couple
    # of timed solves pin down the per-query rate.
    with _quiet_gc():
        start = time.perf_counter()
        for i in range(solves):
            solve_rpaths(instance, seed=i)
        solve_time = (time.perf_counter() - start) / solves

    qps = queries / serve_time
    baseline_qps = 1.0 / solve_time
    return {
        "n": instance.n,
        "m": instance.m,
        "queries": queries,
        "qps": round(qps, 1),
        "baseline_qps": round(baseline_qps, 3),
        "speedup": round(qps / baseline_qps, 1),
        "p50_ms": round(latency["p50"], 4),
        "p95_ms": round(latency["p95"], 4),
        "p99_ms": round(latency["p99"], 4),
        "hit_ratio": round(hit_ratio(answers), 4),
        "build_seconds": round(build_time, 4),
        "build_rounds": oracle.build_rounds,
    }


def measure_batched(kind: str, quick: bool,
                    repeats: int = 2) -> Dict[str, object]:
    """Batched planner qps vs. per-query fabric BFS qps.

    Sized so the fabric work dominates fixed per-call overheads: below
    n ≈ 100 a single-source message BFS is so cheap that the k-source
    kernel's per-round array costs swamp the grouping win; from
    n ≈ 128 up the batched path wins and keeps growing with n.
    """
    n = 128 if quick else 256
    queries = 200 if quick else 600
    instance = random_instance(n, seed=3)
    stream = generate_workload(kind, instance, queries, seed=4)

    # Best-of-N with fresh state per repeat: the planner's (s, e) memo
    # must not carry over (it would turn the second repeat into pure
    # cache hits), and the first vector-kernel call pays one-time
    # NumPy warmup that should not be charged to the family.
    batched_time = float("inf")
    answers, plan = [], None
    for _ in range(repeats):
        oracle = ReplacementPathOracle.build(instance,
                                             solver="centralized")
        planner = BatchPlanner(oracle, fabric="vector")
        with _quiet_gc():
            start = time.perf_counter()
            answers, plan = planner.answer_batch(stream)
            batched_time = min(batched_time,
                               time.perf_counter() - start)
    _verify_or_die(f"{kind}-batched", instance, answers)

    # Unbatched distributed status quo: one single-source BFS on the
    # fabric per query, no (s, e) memo, no grouping.
    unbatched_time = float("inf")
    for _ in range(repeats):
        net = instance.build_network(fabric="fast")
        with _quiet_gc():
            start = time.perf_counter()
            for q in stream:
                bfs_distances(net, q.s,
                              avoid_edges=frozenset([q.edge]))
            unbatched_time = min(unbatched_time,
                                 time.perf_counter() - start)

    qps = queries / batched_time
    baseline_qps = queries / unbatched_time
    return {
        "n": instance.n,
        "m": instance.m,
        "queries": queries,
        "qps": round(qps, 1),
        "baseline_qps": round(baseline_qps, 1),
        "speedup": round(qps / baseline_qps, 3),
        "hit_ratio": round(hit_ratio(answers), 4),
        "batch_solves": plan.batch_solves,
        "solves_saved": plan.solves_saved,
    }


def measure_daemon_loop(quick: bool) -> Dict[str, object]:
    """Warm serve-daemon closed-loop QPS vs. cold pool_map serving.

    Both sides answer the same oracle-hit stream over the same
    catalog.  The cold side is ``serve_parallel`` with **no spill
    store**: each batch spawns a pool whose workers rebuild their
    oracles from scratch — exactly what every batch paid before the
    daemon existed.  The daemon side pays its warm once (reported, not
    timed) and then serves from long-lived workers through the
    admission front-end under ``concurrency`` closed-loop clients.
    """
    # Sized so oracle construction dominates the cold side, as it does
    # at deployment scale: below n ≈ 40 a theorem1 build is a few ms
    # and the cold pool path is mostly spawn overhead, which under-
    # states what warm workers save.
    n = 56 if quick else 72
    per_instance = 50 if quick else 200
    batches = 3
    concurrency = 4
    instances = [
        random_instance(n, seed=10 + i, name=f"daemon-{n}-{i}")
        for i in range(3)
    ]
    queries = []
    for i, inst in enumerate(instances):
        queries.extend(generate_workload(
            "uniform", inst, per_instance, seed=20 + i))

    cold = ShardedQueryService(instances, shards=2,
                               solver="theorem1", build_seed=0)
    batch_size = (len(queries) + batches - 1) // batches
    cold_answers = []
    with _quiet_gc():
        start = time.perf_counter()
        for b in range(batches):
            chunk = queries[b * batch_size:(b + 1) * batch_size]
            report = cold.serve_parallel(chunk, jobs=2)
            cold_answers.extend(report.answers)
        cold_time = time.perf_counter() - start
    if not verify_against_centralized(instances, cold_answers):
        raise AssertionError(
            f"{DAEMON_FAMILY}: cold pool_map answers contradict the "
            "centralized oracle")

    warm_start = time.perf_counter()
    daemon = ServeDaemon(instances, workers=2, solver="theorem1",
                         build_seed=0).start()
    warm_time = time.perf_counter() - warm_start
    try:
        frontend = ServeFrontend(daemon, max_queue=512,
                                 max_inflight=128)
        try:
            with _quiet_gc():
                results, load = run_load(
                    frontend, queries, mode="closed",
                    concurrency=concurrency)
        finally:
            frontend.close()
    finally:
        daemon.stop()
    if load.ok != load.sent:
        raise AssertionError(
            f"{DAEMON_FAMILY}: non-ok outcomes {load.outcomes}")
    answers = [r.answer for r in results]
    if not verify_against_centralized(instances, answers):
        raise AssertionError(
            f"{DAEMON_FAMILY}: daemon answers contradict the "
            "centralized oracle")

    qps = load.achieved_qps
    baseline_qps = len(queries) / cold_time
    return {
        "n": n,
        "instances": len(instances),
        "queries": len(queries),
        "concurrency": concurrency,
        "qps": round(qps, 1),
        "baseline_qps": round(baseline_qps, 1),
        "speedup": round(qps / baseline_qps, 2),
        "p50_ms": round(load.latency_ms["p50"], 4),
        "p95_ms": round(load.latency_ms["p95"], 4),
        "p99_ms": round(load.latency_ms["p99"], 4),
        "hit_ratio": round(hit_ratio(answers), 4),
        "warm_seconds": round(warm_time, 4),
        "cold_batches": batches,
    }


def measure_all(quick: bool) -> Dict[str, dict]:
    return {
        ORACLE_FAMILY: measure_oracle_hit(quick),
        "zipf-batched": measure_batched("zipf", quick),
        "adversarial-batched": measure_batched("adversarial", quick),
        DAEMON_FAMILY: measure_daemon_loop(quick),
    }


def render_report(families: Dict[str, dict]) -> str:
    from repro.analysis import format_records

    records = [{"family": name, **data}
               for name, data in families.items()]
    return format_records(
        records,
        ["family", "n", "queries", "qps", "baseline_qps", "speedup",
         "p50_ms", "p95_ms", "p99_ms", "hit_ratio"],
        title="serving tier — precomputed oracle / batched planner / "
              "warm daemon vs. per-query and cold-pool solves",
    )


def environment_info() -> Dict[str, str]:
    try:
        import numpy
        numpy_version = numpy.__version__
    except ImportError:  # pragma: no cover - numpy is baked in CI
        numpy_version = "absent"
    return {
        "python_version": platform_mod.python_version(),
        "numpy_version": numpy_version,
        "platform": platform_mod.platform(),
    }


def check_against_baseline(families: Dict[str, dict], baseline: dict,
                           tolerance: float,
                           quick: bool) -> List[str]:
    """Regression messages (empty when the gate passes)."""
    problems = []
    same_mode = bool(baseline.get("quick")) == quick
    if same_mode:
        for name, base in baseline.get("families", {}).items():
            now = families.get(name)
            if now is None:
                problems.append(f"{name}: family missing from this "
                                "run")
                continue
            floor = base["speedup"] * (1.0 - tolerance)
            if now["speedup"] < floor:
                problems.append(
                    f"{name}: speedup {now['speedup']:.2f}x fell "
                    f"below {floor:.2f}x (baseline "
                    f"{base['speedup']:.2f}x - {tolerance:.0%} "
                    "tolerance)")
    oracle = families.get(ORACLE_FAMILY)
    if oracle is not None and oracle["speedup"] < MIN_ORACLE_SPEEDUP:
        problems.append(
            f"{ORACLE_FAMILY}: speedup {oracle['speedup']:.1f}x is "
            f"below the absolute {MIN_ORACLE_SPEEDUP:.0f}x floor")
    for name, data in families.items():
        if name in (ORACLE_FAMILY, DAEMON_FAMILY):
            continue
        if data["speedup"] < MIN_BATCH_SPEEDUP:
            problems.append(
                f"{name}: batched speedup {data['speedup']:.2f}x is "
                f"below the absolute {MIN_BATCH_SPEEDUP:.1f}x floor")
    daemon = families.get(DAEMON_FAMILY)
    if daemon is not None:
        if daemon["speedup"] < MIN_DAEMON_SPEEDUP:
            problems.append(
                f"{DAEMON_FAMILY}: warm-daemon speedup "
                f"{daemon['speedup']:.2f}x is below the absolute "
                f"{MIN_DAEMON_SPEEDUP:.0f}x floor")
        if daemon["p95_ms"] > MAX_DAEMON_P95_MS:
            problems.append(
                f"{DAEMON_FAMILY}: p95 {daemon['p95_ms']:.2f}ms "
                f"exceeds the {MAX_DAEMON_P95_MS:.0f}ms SLO ceiling")
    return problems


# -- pytest-benchmark entry point --------------------------------------------


def bench_serve_tier(benchmark):
    """Quick-mode serving families (see module doc)."""
    from _util import report

    families = benchmark.pedantic(lambda: measure_all(quick=True),
                                  rounds=1, iterations=1)
    report("serve", render_report(families))
    assert families[ORACLE_FAMILY]["speedup"] >= MIN_ORACLE_SPEEDUP
    assert (families[DAEMON_FAMILY]["speedup"]
            >= MIN_DAEMON_SPEEDUP), families[DAEMON_FAMILY]
    for name, data in families.items():
        if name not in (ORACLE_FAMILY, DAEMON_FAMILY):
            assert data["speedup"] >= MIN_BATCH_SPEEDUP, (name, data)


# -- CLI (CI serve-smoke gate) -----------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized workloads")
    parser.add_argument("--json", type=pathlib.Path, default=None,
                        help="write the machine-readable report here")
    parser.add_argument("--compare", type=pathlib.Path, default=None,
                        help="committed baseline JSON to gate against")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed relative speedup regression")
    args = parser.parse_args(argv)

    families = measure_all(quick=args.quick)
    print(render_report(families))

    payload = {
        "bench": "serve",
        "quick": bool(args.quick),
        "min_oracle_speedup": MIN_ORACLE_SPEEDUP,
        "min_batch_speedup": MIN_BATCH_SPEEDUP,
        "min_daemon_speedup": MIN_DAEMON_SPEEDUP,
        "max_daemon_p95_ms": MAX_DAEMON_P95_MS,
        "tolerance": args.tolerance,
        "environment": environment_info(),
        "families": families,
    }
    if args.json is not None:
        args.json.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.json}")

    if args.compare is not None:
        baseline = json.loads(args.compare.read_text())
        problems = check_against_baseline(
            families, baseline, args.tolerance, bool(args.quick))
        if problems:
            for line in problems:
                print(f"SERVE REGRESSION: {line}", file=sys.stderr)
            return 1
        print(f"serve gate ok (vs {args.compare}, "
              f"tolerance {args.tolerance:.0%})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
