"""Serving-tier throughput: precomputed oracle vs. per-query solves.

Three workload families measure what the serving layer buys:

* ``oracle-hit`` — read-only traffic (the instance's own (s, t) pair,
  failed edge uniform over E) against a built
  :class:`~repro.serve.oracle.ReplacementPathOracle`.  The baseline is
  the operational status quo this tier replaces: re-running the full
  ``solve_rpaths`` pipeline per query.  The ISSUE-level claim — and
  the absolute CI floor — is a >= 20x queries/sec advantage; in
  practice the gap is orders of magnitude (one O(1) lookup vs. a full
  CONGEST execution).
* ``zipf-batched`` — zipf-skewed arbitrary-pair solve traffic through
  the :class:`~repro.serve.planner.BatchPlanner` (one k-source
  vector-fabric solve per failed-edge group), against the unbatched
  distributed status quo: one single-source fabric BFS per query, no
  memo.
* ``adversarial-batched`` — the memo-defeating failed-edge schedule,
  same baseline; only the k-source grouping amortizes anything here,
  so this family bounds the tier's worst case.

Every family verifies every answer against the centralized oracle
before any throughput number is reported — a mismatch exits non-zero
regardless of speed.

Gate (used by the CI ``serve-smoke`` step)::

    python benchmarks/bench_serve.py --quick \
        --json BENCH_serve.json \
        --compare benchmarks/BENCH_serve.json --tolerance 0.25

* ``oracle-hit`` must hold the absolute >= 20x speedup floor;
* the batched families must not drop below 1x (batching must never
  lose to the per-query path);
* any family's speedup more than ``tolerance`` below its committed
  baseline ratio fails the gate.  Ratios, not absolute queries/sec,
  are compared: they are stable across runner hardware.  Baselines
  are mode-stamped (``--quick`` vs. full); comparing across modes
  enforces only the absolute floors.
"""

from __future__ import annotations

import argparse
import gc
import json
import pathlib
import platform as platform_mod
import sys
import time
from contextlib import contextmanager
from typing import Dict, List

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.congest import bfs_distances  # noqa: E402
from repro.core.rpaths import solve_rpaths  # noqa: E402
from repro.graphs.generators import (  # noqa: E402
    path_with_chords_instance,
    random_instance,
)
from repro.serve import (  # noqa: E402
    BatchPlanner,
    ReplacementPathOracle,
    generate_workload,
    hit_ratio,
    verify_against_centralized,
)

#: Absolute queries/sec floor for oracle-hit traffic vs. per-query
#: ``solve_rpaths`` (the ISSUE acceptance criterion).
MIN_ORACLE_SPEEDUP = 20.0
ORACLE_FAMILY = "oracle-hit"

#: Batched planning must never lose to the per-query fabric path.
MIN_BATCH_SPEEDUP = 1.0


@contextmanager
def _quiet_gc():
    """Keep collector pauses out of the timed regions (same rationale
    as bench_fabric: pauses land on whichever side is being timed)."""
    gc.collect()
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


def _verify_or_die(name: str, instance, answers) -> None:
    if not verify_against_centralized([instance], answers):
        raise AssertionError(
            f"{name}: serving answers contradict the centralized "
            "oracle")


def measure_oracle_hit(quick: bool) -> Dict[str, object]:
    """Oracle-hit qps vs. per-query solve_rpaths qps."""
    hops = 14 if quick else 24
    queries = 600 if quick else 4000
    solves = 1 if quick else 2
    instance = path_with_chords_instance(hops, seed=1,
                                         overlay_hub=True)

    build_start = time.perf_counter()
    oracle = ReplacementPathOracle.build(instance, solver="theorem1",
                                         seed=0)
    build_time = time.perf_counter() - build_start

    stream = generate_workload("uniform", instance, queries, seed=2)
    with _quiet_gc():
        start = time.perf_counter()
        answers = [oracle.answer(q) for q in stream]
        serve_time = time.perf_counter() - start
    _verify_or_die(ORACLE_FAMILY, instance, answers)

    # The status quo: every query re-runs the full pipeline.  A couple
    # of timed solves pin down the per-query rate.
    with _quiet_gc():
        start = time.perf_counter()
        for i in range(solves):
            solve_rpaths(instance, seed=i)
        solve_time = (time.perf_counter() - start) / solves

    qps = queries / serve_time
    baseline_qps = 1.0 / solve_time
    return {
        "n": instance.n,
        "m": instance.m,
        "queries": queries,
        "qps": round(qps, 1),
        "baseline_qps": round(baseline_qps, 3),
        "speedup": round(qps / baseline_qps, 1),
        "hit_ratio": round(hit_ratio(answers), 4),
        "build_seconds": round(build_time, 4),
        "build_rounds": oracle.build_rounds,
    }


def measure_batched(kind: str, quick: bool,
                    repeats: int = 2) -> Dict[str, object]:
    """Batched planner qps vs. per-query fabric BFS qps.

    Sized so the fabric work dominates fixed per-call overheads: below
    n ≈ 100 a single-source message BFS is so cheap that the k-source
    kernel's per-round array costs swamp the grouping win; from
    n ≈ 128 up the batched path wins and keeps growing with n.
    """
    n = 128 if quick else 256
    queries = 200 if quick else 600
    instance = random_instance(n, seed=3)
    stream = generate_workload(kind, instance, queries, seed=4)

    # Best-of-N with fresh state per repeat: the planner's (s, e) memo
    # must not carry over (it would turn the second repeat into pure
    # cache hits), and the first vector-kernel call pays one-time
    # NumPy warmup that should not be charged to the family.
    batched_time = float("inf")
    answers, plan = [], None
    for _ in range(repeats):
        oracle = ReplacementPathOracle.build(instance,
                                             solver="centralized")
        planner = BatchPlanner(oracle, fabric="vector")
        with _quiet_gc():
            start = time.perf_counter()
            answers, plan = planner.answer_batch(stream)
            batched_time = min(batched_time,
                               time.perf_counter() - start)
    _verify_or_die(f"{kind}-batched", instance, answers)

    # Unbatched distributed status quo: one single-source BFS on the
    # fabric per query, no (s, e) memo, no grouping.
    unbatched_time = float("inf")
    for _ in range(repeats):
        net = instance.build_network(fabric="fast")
        with _quiet_gc():
            start = time.perf_counter()
            for q in stream:
                bfs_distances(net, q.s,
                              avoid_edges=frozenset([q.edge]))
            unbatched_time = min(unbatched_time,
                                 time.perf_counter() - start)

    qps = queries / batched_time
    baseline_qps = queries / unbatched_time
    return {
        "n": instance.n,
        "m": instance.m,
        "queries": queries,
        "qps": round(qps, 1),
        "baseline_qps": round(baseline_qps, 1),
        "speedup": round(qps / baseline_qps, 3),
        "hit_ratio": round(hit_ratio(answers), 4),
        "batch_solves": plan.batch_solves,
        "solves_saved": plan.solves_saved,
    }


def measure_all(quick: bool) -> Dict[str, dict]:
    return {
        ORACLE_FAMILY: measure_oracle_hit(quick),
        "zipf-batched": measure_batched("zipf", quick),
        "adversarial-batched": measure_batched("adversarial", quick),
    }


def render_report(families: Dict[str, dict]) -> str:
    from repro.analysis import format_records

    records = [{"family": name, **data}
               for name, data in families.items()]
    return format_records(
        records,
        ["family", "n", "queries", "qps", "baseline_qps", "speedup",
         "hit_ratio"],
        title="serving tier — precomputed oracle / batched planner "
              "vs. per-query solves",
    )


def environment_info() -> Dict[str, str]:
    try:
        import numpy
        numpy_version = numpy.__version__
    except ImportError:  # pragma: no cover - numpy is baked in CI
        numpy_version = "absent"
    return {
        "python_version": platform_mod.python_version(),
        "numpy_version": numpy_version,
        "platform": platform_mod.platform(),
    }


def check_against_baseline(families: Dict[str, dict], baseline: dict,
                           tolerance: float,
                           quick: bool) -> List[str]:
    """Regression messages (empty when the gate passes)."""
    problems = []
    same_mode = bool(baseline.get("quick")) == quick
    if same_mode:
        for name, base in baseline.get("families", {}).items():
            now = families.get(name)
            if now is None:
                problems.append(f"{name}: family missing from this "
                                "run")
                continue
            floor = base["speedup"] * (1.0 - tolerance)
            if now["speedup"] < floor:
                problems.append(
                    f"{name}: speedup {now['speedup']:.2f}x fell "
                    f"below {floor:.2f}x (baseline "
                    f"{base['speedup']:.2f}x - {tolerance:.0%} "
                    "tolerance)")
    oracle = families.get(ORACLE_FAMILY)
    if oracle is not None and oracle["speedup"] < MIN_ORACLE_SPEEDUP:
        problems.append(
            f"{ORACLE_FAMILY}: speedup {oracle['speedup']:.1f}x is "
            f"below the absolute {MIN_ORACLE_SPEEDUP:.0f}x floor")
    for name, data in families.items():
        if name == ORACLE_FAMILY:
            continue
        if data["speedup"] < MIN_BATCH_SPEEDUP:
            problems.append(
                f"{name}: batched speedup {data['speedup']:.2f}x is "
                f"below the absolute {MIN_BATCH_SPEEDUP:.1f}x floor")
    return problems


# -- pytest-benchmark entry point --------------------------------------------


def bench_serve_tier(benchmark):
    """Quick-mode serving families (see module doc)."""
    from _util import report

    families = benchmark.pedantic(lambda: measure_all(quick=True),
                                  rounds=1, iterations=1)
    report("serve", render_report(families))
    assert families[ORACLE_FAMILY]["speedup"] >= MIN_ORACLE_SPEEDUP
    for name, data in families.items():
        if name != ORACLE_FAMILY:
            assert data["speedup"] >= MIN_BATCH_SPEEDUP, (name, data)


# -- CLI (CI serve-smoke gate) -----------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized workloads")
    parser.add_argument("--json", type=pathlib.Path, default=None,
                        help="write the machine-readable report here")
    parser.add_argument("--compare", type=pathlib.Path, default=None,
                        help="committed baseline JSON to gate against")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed relative speedup regression")
    args = parser.parse_args(argv)

    families = measure_all(quick=args.quick)
    print(render_report(families))

    payload = {
        "bench": "serve",
        "quick": bool(args.quick),
        "min_oracle_speedup": MIN_ORACLE_SPEEDUP,
        "min_batch_speedup": MIN_BATCH_SPEEDUP,
        "tolerance": args.tolerance,
        "environment": environment_info(),
        "families": families,
    }
    if args.json is not None:
        args.json.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.json}")

    if args.compare is not None:
        baseline = json.loads(args.compare.read_text())
        problems = check_against_baseline(
            families, baseline, args.tolerance, bool(args.quick))
        if problems:
            for line in problems:
                print(f"SERVE REGRESSION: {line}", file=sys.stderr)
            return 1
        print(f"serve gate ok (vs {args.compare}, "
              f"tolerance {args.tolerance:.0%})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
