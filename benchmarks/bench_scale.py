"""Scale-out gate: int32 memory diet + shared-topology fan-out.

PR 8's tentpole is about *n*, not rounds/sec: push one solve to
n ≥ 65536 and keep it honest.  Three families measure the three
mechanisms that make that size workable:

* ``diet-32768`` / ``diet-65536`` — the int32 memory diet.  Every
  :class:`TopologyArrays` export picks the narrowest dtype its value
  range permits; the family reports the exported bytes against the
  int64-equivalent layout the pre-diet code shipped.  At n = 32768
  every group (indices, keys, weights) fits int32, so the ratio is a
  deterministic 2x; at n = 65536 the ``tail·n + head`` keys exceed
  int32 and promote, leaving ~1.69x.  Both ratios are byte arithmetic,
  not timing — the gate tolerance catches code drift, not noise.
* ``solve-expander-65536`` — one full ``solve_rpaths`` at the target
  size (landmark_c = 0.05 keeps |L|² pair broadcasts within a CI
  budget), serial vs ``parallel=2``.  The family *asserts* bit-equal
  lengths and per-phase ledgers — the fan-out's core contract — and
  reports the wall-clock speedup without gating it: only the landmark
  kBFS pair fans out, so Amdahl caps the whole-solve win well below
  the pool's own scaling.
* ``fanout-kbfs-32768`` — the fan-out mechanism in isolation: eight
  independent 32-source kBFS chunks, run serially and then width-4
  over ``pool_map`` with workers attaching the shared-memory topology
  zero-copy.  Tables and merged ledgers are asserted bit-equal; the
  speedup gate is CPU-conditional (a 1-core host *cannot* win — the
  measured ~0.5x there is pool overhead, which is why the knob
  defaults off) — ≥ 2x with 4+ cores, ≥ 1.2x with 2-3, report-only
  below that.

The run also exports its peak RSS (``resource.getrusage``) through
:func:`repro.telemetry.scale.record_peak_rss`, so a traced run shows
the high-water mark in ``repro trace summary``, and gates it against
an absolute ceiling — the memory diet's end-to-end "does n = 65536
still fit" check.

Gates (the CI ``perf-gate`` job runs ``--quick``)::

    python benchmarks/bench_scale.py --json BENCH_scale.json \
        --compare benchmarks/BENCH_scale.json --tolerance 0.25

* diet ratios must hold the absolute floors (1.9x / 1.5x) and stay
  within the plain tolerance of the committed baseline;
* the fan-out speedup must hold its CPU-tier floor, and is compared
  against the baseline only when both runs had ≥ 2 CPUs;
* peak RSS must stay under ``MAX_PEAK_RSS_MIB``;
* every bit-identity assertion fails the run outright.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import pathlib
import platform as platform_mod
import sys
import time
from contextlib import contextmanager
from typing import Dict, List, Optional

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.congest.multisource import multi_source_hop_bfs  # noqa: E402
from repro.congest.topology import TopologyArrays  # noqa: E402
from repro.core.rpaths import solve_rpaths  # noqa: E402
from repro.graphs import expander_instance  # noqa: E402

#: Absolute diet-ratio floors (int64-equivalent bytes / exported bytes).
MIN_DIET_RATIO = {"diet-32768": 1.9, "diet-65536": 1.5}

SOLVE_FAMILY = "solve-expander-65536"
FANOUT_FAMILY = "fanout-kbfs-32768"

#: Fan-out worker width (the "≥ 2 workers" of the acceptance gate).
FANOUT_WIDTH = 4

#: Peak-RSS ceiling for the whole bench run (self, MiB).  The n=65536
#: solve currently peaks around 1.1 GiB; tripling it is the "still
#: fits a laptop" line, not a tight bound.
MAX_PEAK_RSS_MIB = 3072


def fanout_floor(cpus: int) -> Optional[float]:
    """CPU-conditional speedup floor (None = report-only)."""
    if cpus >= 4:
        return 2.0
    if cpus >= 2:
        return 1.2
    return None


@contextmanager
def _quiet_gc():
    gc.collect()
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


def _phases(ledger) -> List[dict]:
    return [stats.as_dict() for stats in ledger.phases()]


# -- families -----------------------------------------------------------------


def measure_diet(instance) -> dict:
    """Exported bytes vs the int64-equivalent layout (deterministic)."""
    arr = instance.build_network(fabric="vector").topology.arrays()
    diet = arr.nbytes()
    int64_eq = sum(getattr(arr, field).size * 8
                   for field, _role in TopologyArrays.FIELDS)
    import numpy as np
    return {
        "n": instance.n,
        "m": instance.m,
        "diet_bytes": diet,
        "int64_bytes": int64_eq,
        "ratio": round(int64_eq / diet, 3),
        "index_dtype": np.dtype(arr.index_dtype).name,
        "key_dtype": np.dtype(arr.key_dtype).name,
        "weight_dtype": np.dtype(arr.weight_dtype).name,
    }


def measure_solve(instance) -> dict:
    """Whole solve at n=65536: serial vs parallel=2, bit-identity
    asserted, speedup report-only (Amdahl: only the landmark kBFS
    pair fans out)."""
    with _quiet_gc():
        start = time.perf_counter()
        serial = solve_rpaths(instance, seed=7, fabric="vector",
                              landmark_c=0.05)
        serial_s = time.perf_counter() - start
    with _quiet_gc():
        start = time.perf_counter()
        fanned = solve_rpaths(instance, seed=7, fabric="vector",
                              landmark_c=0.05, parallel=2)
        parallel_s = time.perf_counter() - start
    if fanned.lengths != serial.lengths:
        raise AssertionError(f"{SOLVE_FAMILY}: parallel lengths differ")
    if _phases(fanned.ledger) != _phases(serial.ledger):
        raise AssertionError(f"{SOLVE_FAMILY}: parallel ledger differs")
    return {
        "n": instance.n,
        "m": instance.m,
        "rounds": serial.rounds,
        "landmark_c": 0.05,
        "workers": 2,
        "serial_seconds": round(serial_s, 3),
        "parallel_seconds": round(parallel_s, 3),
        "speedup_parallel": round(serial_s / parallel_s, 3),
        "identical": True,
    }


def measure_fanout(instance, chunks: int = 8, chunk_size: int = 32,
                   hop_limit: int = 48) -> dict:
    """The fan-out mechanism in isolation: independent kBFS chunks,
    serial loop vs shared-memory pool, bit-identity asserted."""
    from repro.runtime import sharedmem

    topo = instance.build_network(fabric="vector").topology
    sources = [list(range(c * chunk_size, (c + 1) * chunk_size))
               for c in range(chunks)]

    serial_net = instance.build_network(fabric="vector")
    with _quiet_gc():
        start = time.perf_counter()
        serial = [multi_source_hop_bfs(serial_net, chunk,
                                       hop_limit=hop_limit,
                                       phase="scale-fanout")
                  for chunk in sources]
        serial_s = time.perf_counter() - start

    fanned_net = instance.build_network(fabric="vector")
    with sharedmem.publish_topology(topo) as pub:
        with _quiet_gc():
            start = time.perf_counter()
            fanned = sharedmem.fanout_kbfs(
                fanned_net, pub, FANOUT_WIDTH,
                [dict(sources=chunk, hop_limit=hop_limit,
                      phase="scale-fanout") for chunk in sources],
                site="serve-batch")
            fanout_s = time.perf_counter() - start
    if fanned != serial:
        raise AssertionError(f"{FANOUT_FAMILY}: pooled tables differ")
    if _phases(fanned_net.ledger) != _phases(serial_net.ledger):
        raise AssertionError(f"{FANOUT_FAMILY}: merged ledger differs")
    return {
        "n": instance.n,
        "chunks": chunks,
        "chunk_size": chunk_size,
        "hop_limit": hop_limit,
        "width": FANOUT_WIDTH,
        "cpus": os.cpu_count() or 1,
        "serial_seconds": round(serial_s, 3),
        "fanout_seconds": round(fanout_s, 3),
        "speedup_fanout": round(serial_s / fanout_s, 3),
        "identical": True,
    }


def measure_families() -> Dict[str, dict]:
    families: Dict[str, dict] = {}
    mid = expander_instance(32768, degree=4, seed=5)
    families["diet-32768"] = measure_diet(mid)
    families[FANOUT_FAMILY] = measure_fanout(mid)
    del mid
    gc.collect()
    big = expander_instance(65536, degree=4, seed=3)
    families["diet-65536"] = measure_diet(big)
    families[SOLVE_FAMILY] = measure_solve(big)
    return families


def measure_peak_rss() -> dict:
    """Peak RSS of this process + its pool children, exported as the
    :data:`repro.telemetry.scale.RSS_GAUGE` gauge (``ru_maxrss`` is
    KiB on Linux)."""
    import resource

    from repro.telemetry import scale as _scale

    unit = 1024 if sys.platform != "darwin" else 1
    self_b = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * unit
    child_b = (resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
               * unit)
    _scale.record_peak_rss(self_b)
    return {
        "self_mib": round(self_b / (1 << 20), 1),
        "children_mib": round(child_b / (1 << 20), 1),
    }


# -- reporting / gating -------------------------------------------------------


def render_report(families: Dict[str, dict], peak_rss: dict) -> str:
    from repro.analysis import format_records

    diets = [{"family": name, **families[name]}
             for name in sorted(MIN_DIET_RATIO)]
    blocks = [format_records(
        diets,
        ["family", "n", "m", "diet_bytes", "int64_bytes", "ratio",
         "index_dtype", "key_dtype", "weight_dtype"],
        title="int32 memory diet — exported bytes vs int64 layout")]
    solve = families[SOLVE_FAMILY]
    fanout = families[FANOUT_FAMILY]
    blocks.append(format_records(
        [{"family": SOLVE_FAMILY, **solve}],
        ["family", "n", "rounds", "serial_seconds", "parallel_seconds",
         "speedup_parallel", "identical"],
        title="whole solve at n=65536 — serial vs parallel=2 "
              "(speedup report-only: Amdahl)"))
    blocks.append(format_records(
        [{"family": FANOUT_FAMILY, **fanout}],
        ["family", "n", "chunks", "width", "cpus", "serial_seconds",
         "fanout_seconds", "speedup_fanout", "identical"],
        title="shared-memory fan-out — independent kBFS chunks"))
    floor = fanout_floor(fanout["cpus"])
    blocks.append(
        f"fan-out gate on {fanout['cpus']} cpu(s): "
        + (f">= {floor}x" if floor else "report-only (needs >= 2)")
        + f"; peak RSS self {peak_rss['self_mib']} MiB, "
          f"children {peak_rss['children_mib']} MiB "
          f"(ceiling {MAX_PEAK_RSS_MIB} MiB)")
    return "\n\n".join(blocks)


def environment_info() -> Dict[str, object]:
    try:
        import numpy
        numpy_version = numpy.__version__
    except ImportError:  # pragma: no cover - numpy is baked in CI
        numpy_version = "absent"
    return {
        "python_version": platform_mod.python_version(),
        "numpy_version": numpy_version,
        "platform": platform_mod.platform(),
        "cpus": os.cpu_count() or 1,
    }


def check_against_baseline(families: Dict[str, dict], peak_rss: dict,
                           baseline: dict,
                           tolerance: float) -> List[str]:
    """Regression messages (empty when the gate passes)."""
    problems: List[str] = []
    base = baseline.get("families", {})
    # Diet ratios are deterministic byte math: plain tolerance.
    for name, floor in sorted(MIN_DIET_RATIO.items()):
        row = families.get(name)
        if row is None:
            problems.append(f"{name}: family missing from this run")
            continue
        if row["ratio"] < floor:
            problems.append(
                f"{name}: diet ratio {row['ratio']:.2f}x is below the "
                f"absolute {floor:.1f}x floor")
        old = base.get(name)
        if old and row["ratio"] < old["ratio"] * (1.0 - tolerance):
            problems.append(
                f"{name}: diet ratio {row['ratio']:.2f}x fell below "
                f"baseline {old['ratio']:.2f}x - {tolerance:.0%}")
    fanout = families.get(FANOUT_FAMILY)
    if fanout is None:
        problems.append(f"{FANOUT_FAMILY}: family missing")
    else:
        floor = fanout_floor(fanout["cpus"])
        if floor is not None and fanout["speedup_fanout"] < floor:
            problems.append(
                f"{FANOUT_FAMILY}: speedup "
                f"{fanout['speedup_fanout']:.2f}x is below the "
                f"{floor:.1f}x floor for {fanout['cpus']} cpus")
        old = base.get(FANOUT_FAMILY)
        # Timing ratios only compare across runs that could both
        # actually overlap work (>= 2 CPUs on each side).
        if (old and old.get("cpus", 1) >= 2 and fanout["cpus"] >= 2):
            ratio_tolerance = min(2.0 * tolerance, 0.9)
            limit = old["speedup_fanout"] * (1.0 - ratio_tolerance)
            if fanout["speedup_fanout"] < limit:
                problems.append(
                    f"{FANOUT_FAMILY}: speedup "
                    f"{fanout['speedup_fanout']:.2f}x fell below "
                    f"{limit:.2f}x (baseline "
                    f"{old['speedup_fanout']:.2f}x)")
    if SOLVE_FAMILY not in families:
        problems.append(f"{SOLVE_FAMILY}: family missing")
    if peak_rss["self_mib"] > MAX_PEAK_RSS_MIB:
        problems.append(
            f"peak RSS {peak_rss['self_mib']:.0f} MiB exceeds the "
            f"{MAX_PEAK_RSS_MIB} MiB ceiling")
    return problems


# -- pytest-benchmark entry point ---------------------------------------------


def bench_scale_memory_diet(benchmark):
    """Diet ratio at a size every CI shard can afford (see module doc
    for the full CLI gate; n=16384 keeps keys int32, so 2x exactly)."""
    from _util import report

    instance = expander_instance(16384, degree=4, seed=5)
    row = benchmark.pedantic(
        lambda: measure_diet(instance),
        rounds=1, iterations=1)
    report("scale", json.dumps(row, indent=2))
    assert row["ratio"] >= 1.9, row


# -- CLI (CI perf gate) -------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", type=pathlib.Path, default=None,
                        help="write the machine-readable report here")
    parser.add_argument("--compare", type=pathlib.Path, default=None,
                        help="committed baseline JSON to gate against")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed relative regression (doubled "
                             "for timing ratios, plain for the "
                             "deterministic byte ratios)")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode (accepted for symmetry "
                             "with the other benches; the family set "
                             "never shrinks — the scale gate IS the "
                             "n=65536 run)")
    parser.add_argument("--trace", type=pathlib.Path, default=None,
                        help="record spans into this JSONL trace "
                             "directory (read back with "
                             "'repro trace summary' — the peak-RSS "
                             "gauge lands there)")
    args = parser.parse_args(argv)

    if args.trace is not None:
        from repro import telemetry
        telemetry.enable_tracing(args.trace)
        telemetry.write_meta(args.trace, bench="scale",
                             quick=args.quick)

    families = measure_families()
    peak_rss = measure_peak_rss()

    if args.trace is not None:
        from repro import telemetry
        telemetry.flush(args.trace)
        telemetry.disable_tracing()
        print(f"trace: {args.trace}")
    print(render_report(families, peak_rss))

    payload = {
        "bench": "scale",
        "min_diet_ratio": MIN_DIET_RATIO,
        "fanout_width": FANOUT_WIDTH,
        "max_peak_rss_mib": MAX_PEAK_RSS_MIB,
        "tolerance": args.tolerance,
        "environment": environment_info(),
        "families": families,
        "peak_rss": peak_rss,
    }
    if args.json is not None:
        args.json.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.json}")

    if args.compare is not None:
        baseline = json.loads(args.compare.read_text())
        problems = check_against_baseline(families, peak_rss,
                                          baseline, args.tolerance)
        if problems:
            for line in problems:
                print(f"PERF REGRESSION: {line}", file=sys.stderr)
            return 1
        print(f"perf gate ok (vs {args.compare}, "
              f"tolerance {args.tolerance:.0%})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
