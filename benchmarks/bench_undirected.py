"""E13 (extension) — the undirected case's O(T_SSSP + h_st + D) profile.

The paper contrasts its directed Θ̃(n^{2/3}+D) bound with the much
cheaper undirected case.  This bench measures the extension's
distributed undirected solver on growing ladder graphs: rounds must be
*additive* in h_st (slope ≈ 1 with a tiny constant), not multiplied by
any n^{2/3} machinery — and orders of magnitude below the directed
pipeline on the same instances.
"""

from __future__ import annotations

from repro.analysis import fit_power_law, format_table
from repro.core.rpaths import solve_rpaths
from repro.extensions import (
    solve_rpaths_undirected,
    symmetrize,
    undirected_replacement_lengths,
)
from repro.graphs.instance import RPathsInstance

from _util import report


def ladder(rungs: int) -> RPathsInstance:
    edges = symmetrize(
        [(i, i + 1) for i in range(rungs)]
        + [(i + rungs + 1, i + rungs + 2) for i in range(rungs - 2)]
        + [(i, i + rungs + 1) for i in range(rungs - 1)])
    inst = RPathsInstance(
        n=2 * rungs, edges=edges, path=list(range(rungs + 1)),
        name=f"ladder({rungs})")
    inst.validate()
    return inst


def bench_undirected_profile(benchmark):
    rung_counts = [16, 32, 64, 128]

    def run():
        rows = []
        for rungs in rung_counts:
            inst = ladder(rungs)
            truth = undirected_replacement_lengths(inst)
            rep = solve_rpaths_undirected(inst)
            assert rep.lengths == truth
            rows.append([inst.name, inst.n, inst.hop_count,
                         rep.rounds])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    hst = [row[2] for row in rows]
    rounds = [row[3] for row in rows]
    fit = fit_power_law(hst, rounds)
    text = format_table(
        ["instance", "n", "h_st", "rounds"],
        rows,
        title=("E13 (extension) — undirected RPaths: "
               "O(T_SSSP + h_st + D) rounds"))
    text += (f"\nlog-log slope vs h_st = {fit.exponent:.2f} "
             "(additive profile ⇒ ≈ 1.0, tiny constants)")
    report("undirected", text)
    assert 0.7 < fit.exponent < 1.3
    # Tiny constants: a handful of rounds per h_st unit (measured ≈ 9,
    # from two SSSPs over a diameter ≈ h_st graph plus the aggregation).
    assert all(r <= 12 * h + 60 for h, r in zip(hst, rounds))


def bench_undirected_vs_directed(benchmark):
    inst = ladder(48)
    truth = undirected_replacement_lengths(inst)

    def run():
        und = solve_rpaths_undirected(inst)
        dire = solve_rpaths(inst, seed=1, landmark_c=3.0)
        return und, dire

    und, dire = benchmark.pedantic(run, rounds=1, iterations=1)
    assert und.lengths == truth and dire.lengths == truth
    report("undirected_vs_directed", format_table(
        ["solver", "rounds"],
        [["undirected extension", und.rounds],
         ["Theorem 1 (directed machinery)", dire.rounds]],
        title=f"E13 — both solvers on {inst.name} (same exact answers)"))
    assert und.rounds < dire.rounds
