"""Setup shim.

The execution environment has no network access and no ``wheel`` package,
so PEP 660 editable installs (``pip install -e .``) cannot build the
editable wheel.  This shim lets both routes work:

* ``pip install -e .`` (tries PEP 660 first, falls back through here), or
* ``python setup.py develop`` directly.

All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
