"""The Ω(D) part of Theorem 2 — the two-parallel-paths construction.

From the proof of Theorem 2: two directed s-t paths, one of length D and
one of length D+1, where zero or one edge of the longer path may be
reversed.  The second simple shortest path length is D+1 when no edge is
reversed and ∞ otherwise; distinguishing the two cases requires
information to travel Ω(D) hops.  A clique can be attached to pad the
construction to any n ≥ 2D + 1.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..congest.errors import InvalidInstanceError
from ..congest.words import INF
from ..graphs.instance import RPathsInstance


def build_diameter_instance(
    diameter: int,
    reversed_edge: Optional[int] = None,
    pad_to: Optional[int] = None,
) -> RPathsInstance:
    """The Theorem 2 Ω(D) graph.

    Parameters
    ----------
    diameter:
        D — the short path's edge count (the long path has D+1).
    reversed_edge:
        Index in [0, D] of the long-path edge to flip, or None.  Any flip
        makes the second path unusable, so 2-SiSP jumps from D+1 to ∞.
    pad_to:
        Optionally attach a clique to reach n ≥ 2D+1 vertices.
    """
    if diameter < 2:
        raise ValueError("need D ≥ 2")
    short = list(range(diameter + 1))
    s, t = short[0], short[-1]
    n = diameter + 1
    long_chain = [s] + list(range(n, n + diameter)) + [t]
    n += diameter

    edges: List[Tuple[int, int]] = list(zip(short, short[1:]))
    for idx, (u, v) in enumerate(zip(long_chain, long_chain[1:])):
        if reversed_edge is not None and idx == reversed_edge:
            edges.append((v, u))
        else:
            edges.append((u, v))

    if pad_to is not None:
        if pad_to < n:
            raise InvalidInstanceError("pad_to smaller than base graph")
        # Clique attached to the first long-chain vertex; edges oriented
        # away from the chain so no new s-t routes appear.
        anchor = long_chain[1]
        clique = list(range(n, pad_to))
        n = pad_to
        prev = anchor
        for v in clique:
            edges.append((prev, v))
            prev = v
        for i, u in enumerate(clique):
            for v in clique[i + 1:]:
                if (u, v) not in (e for e in edges):
                    edges.append((u, v))

    instance = RPathsInstance(
        n=n,
        edges=[(u, v, 1) for u, v in sorted(set(edges))],
        path=short,
        weighted=False,
        name=f"omega-D(D={diameter},rev={reversed_edge})",
    )
    instance.validate()
    return instance


def expected_two_sisp(diameter: int,
                      reversed_edge: Optional[int]) -> int:
    """The construction's ground truth: D+1, or ∞ after any flip."""
    return diameter + 1 if reversed_edge is None else INF
