"""Section 6.1 — set disjointness and two-party protocols.

disj_b(x, y) = 1 iff ⟨x, y⟩ = 0.  The classical fact (used black-box by
Lemma 6.5) is R^{cc-pub}_ε(disj_b) = Ω(b); we expose the function, a
protocol abstraction with exact bit accounting, and the trivial
b-bit upper-bound protocol, so the reduction experiments can report
"bits that crossed" against the Ω(b) yardstick.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple


def inner_product(x: Sequence[int], y: Sequence[int]) -> int:
    """⟨x, y⟩ = Σ x_i·y_i — zero exactly when the supports are disjoint."""
    if len(x) != len(y):
        raise ValueError("inputs must have equal length")
    return sum(a * b for a, b in zip(x, y))


def disjointness(x: Sequence[int], y: Sequence[int]) -> int:
    """disj_b(x, y) — 1 when the supports are disjoint, else 0."""
    return 1 if inner_product(x, y) == 0 else 0


@dataclass
class Transcript:
    """Bit-exact record of a two-party protocol run."""

    messages: List[Tuple[str, str]] = field(default_factory=list)

    def send(self, who: str, bits: str) -> None:
        if set(bits) - {"0", "1"}:
            raise ValueError("messages must be bit strings")
        self.messages.append((who, bits))

    @property
    def total_bits(self) -> int:
        return sum(len(bits) for _, bits in self.messages)

    @property
    def alice_bits(self) -> int:
        return sum(len(b) for w, b in self.messages if w == "alice")

    @property
    def bob_bits(self) -> int:
        return sum(len(b) for w, b in self.messages if w == "bob")


class TrivialDisjointnessProtocol:
    """Alice ships x wholesale; Bob answers with one bit.

    Communication b + 1 bits — the matching upper bound to the Ω(b)
    lower bound the simulation lemma leans on.
    """

    def run(self, x: Sequence[int], y: Sequence[int]
            ) -> Tuple[int, Transcript]:
        transcript = Transcript()
        transcript.send("alice", "".join(str(int(b)) for b in x))
        answer = disjointness(x, y)
        transcript.send("bob", str(answer))
        return answer, transcript


def disjointness_lower_bound_bits(b: int) -> int:
    """The Ω(b) yardstick (up to the unstated constant): b bits."""
    return b
