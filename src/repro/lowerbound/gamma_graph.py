"""Section 6.2 — the graph family G(Γ, d, p) of Das Sarma et al. [DHK+11].

Γ paths of d^p vertices each, all attached to the leaves of a depth-p,
branching-d tree; the i-th leaf connects to the i-th vertex of every
path.  The designated communication endpoints are α = u^p_0 (leftmost
leaf) and β = u^p_{d^p−1} (rightmost leaf).

Figure 1 of the paper; Observation 6.3 (vertex count Θ(Γ d^p), diameter
2p + 2) is exposed as checkable predicates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

Name = Tuple  # symbolic vertex names, e.g. ("path", i, j) / ("tree", q, j)


@dataclass
class GammaGraph:
    """G(Γ, d, p) with symbolic-name bookkeeping.

    Attributes
    ----------
    gamma, d, p:
        The construction parameters.
    edges:
        Undirected edges as ordered (u, v) pairs of vertex ids.
    id_of / name_of:
        The symbolic-name ↔ id maps; path vertex v^i_j is
        ("path", i, j) (i ∈ [1, Γ], j ∈ [0, d^p−1]), tree vertex u^q_j is
        ("tree", q, j).
    alpha, beta:
        Ids of the distinguished leaves.
    """

    gamma: int
    d: int
    p: int
    edges: List[Tuple[int, int]]
    id_of: Dict[Name, int]
    name_of: Dict[int, Name] = field(default_factory=dict)
    alpha: int = -1
    beta: int = -1

    @property
    def n(self) -> int:
        return len(self.id_of)

    @property
    def path_vertex_count(self) -> int:
        return self.gamma * self.d ** self.p

    @property
    def tree_vertex_count(self) -> int:
        return (self.d ** (self.p + 1) - 1) // (self.d - 1)

    def expected_vertex_count(self) -> int:
        """Observation 6.3: Γ·d^p + (d^{p+1}−1)/(d−1)."""
        return self.path_vertex_count + self.tree_vertex_count

    def expected_diameter(self) -> int:
        """Observation 6.3: the diameter is 2p + 2."""
        return 2 * self.p + 2


def build_gamma_graph(gamma: int, d: int, p: int) -> GammaGraph:
    """Construct G(Γ, d, p) (Figure 1)."""
    if gamma < 1 or d < 2 or p < 1:
        raise ValueError("need Γ ≥ 1, d ≥ 2, p ≥ 1")
    width = d ** p
    id_of: Dict[Name, int] = {}

    def vid(name: Name) -> int:
        if name not in id_of:
            id_of[name] = len(id_of)
        return id_of[name]

    edges: List[Tuple[int, int]] = []

    # Tree T: u^q_j for q ∈ [0, p], j ∈ [0, d^q − 1].
    for q in range(p):
        for j in range(d ** q):
            parent = vid(("tree", q, j))
            for r in range(d):
                child = vid(("tree", q + 1, j * d + r))
                edges.append((parent, child))

    # Γ paths of width vertices.
    for i in range(1, gamma + 1):
        for j in range(width):
            vid(("path", i, j))
        for j in range(width - 1):
            edges.append((id_of[("path", i, j)],
                          id_of[("path", i, j + 1)]))

    # Leaf-to-path attachment: u^p_j — v^i_j for all i, j.
    for j in range(width):
        leaf = id_of[("tree", p, j)]
        for i in range(1, gamma + 1):
            edges.append((leaf, id_of[("path", i, j)]))

    graph = GammaGraph(
        gamma=gamma, d=d, p=p, edges=edges, id_of=id_of,
        name_of={v: k for k, v in id_of.items()},
        alpha=id_of[("tree", p, 0)],
        beta=id_of[("tree", p, width - 1)],
    )
    return graph


def undirected_diameter(graph: GammaGraph) -> int:
    """Exact diameter of G(Γ, d, p) — tests it equals 2p + 2."""
    from collections import deque

    n = graph.n
    adj: List[List[int]] = [[] for _ in range(n)]
    for u, v in graph.edges:
        adj[u].append(v)
        adj[v].append(u)
    best = 0
    for root in range(n):
        dist = [-1] * n
        dist[root] = 0
        queue = deque([root])
        while queue:
            u = queue.popleft()
            for v in adj[u]:
                if dist[v] < 0:
                    dist[v] = dist[u] + 1
                    queue.append(v)
        ecc = max(dist)
        if min(dist) < 0:
            raise ValueError("G(Γ,d,p) should be connected")
        best = max(best, ecc)
    return best
