"""Lemma 6.9 — reducing set disjointness to 2-SiSP, run end-to-end.

Given Alice's x ∈ {0,1}^{k²} and Bob's y ∈ {0,1}^{k²}:

1. view y as the matrix M and x as the exit gates, build
   G(k, d, p, φ, M, x);
2. run *our own distributed 2-SiSP solver* (Theorem 1 + Corollary 6.2)
   on the instance;
3. output disj(x, y) = 0 iff the second simple shortest path has length
   exactly L_opt(k, d, p).

A correct 2-SiSP algorithm therefore decides disjointness, which is what
Proposition 6.1 converts (via Lemmas 6.4–6.7) into the Ω̃(n^{2/3}) round
lower bound.  Running the reduction through the simulator both validates
the construction and exhibits the information flow the simulation lemma
bounds (see :mod:`~repro.lowerbound.cut_analysis`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..core.two_sisp import solve_two_sisp
from .disjointness import disjointness
from .hard_instance import (
    build_hard_instance,
    expected_optimal_length,
)


@dataclass
class ReductionReport:
    """Outcome of one disjointness-via-2-SiSP run."""

    k: int
    d: int
    p: int
    expected: int           # disj(x, y) computed directly
    decided: int            # disj(x, y) decoded from 2-SiSP
    two_sisp_length: int
    optimal_length: int
    rounds: int
    n: int

    @property
    def correct(self) -> bool:
        return self.expected == self.decided


def bits_to_matrix(y: Sequence[int], k: int) -> List[List[int]]:
    """Bob's lexicographic map y → M (row-major, matching φ)."""
    if len(y) != k * k:
        raise ValueError("y must have k² bits")
    return [[int(y[a * k + b]) for b in range(k)] for a in range(k)]


def decide_disjointness_via_two_sisp(
    x: Sequence[int],
    y: Sequence[int],
    k: int,
    d: int = 2,
    p: int = 1,
    seed: int = 0,
    landmarks: Optional[Sequence[int]] = None,
    use_oracle_knowledge: bool = False,
    fabric: str = "fast",
) -> ReductionReport:
    """Run the full Lemma 6.9 pipeline through the CONGEST simulator."""
    matrix = bits_to_matrix(y, k)
    hard = build_hard_instance(k, d, p, matrix, list(x))
    if landmarks is None:
        # Deterministic exactness for the decision: landmark every
        # vertex (the reduction argues about *correct* algorithms).
        landmarks = list(range(hard.n))
    result = solve_two_sisp(
        hard.instance, seed=seed, landmarks=landmarks,
        use_oracle_knowledge=use_oracle_knowledge, fabric=fabric)
    optimal = expected_optimal_length(k, d, p)
    decided = 0 if result.length == optimal else 1
    return ReductionReport(
        k=k, d=d, p=p,
        expected=disjointness(x, y),
        decided=decided,
        two_sisp_length=result.length,
        optimal_length=optimal,
        rounds=result.rounds,
        n=hard.n,
    )
