"""Lemma 6.8 — the replacement-length ↔ (M, x) correspondence, checked.

``verify_correspondence`` measures |st ⋄ (s_{i−1}, s_i)| for every i on a
G(k, d, p, φ, M, x) instance and checks the lemma's dichotomy:

* x_i = 1 and M_{φ(i)} = 1  ⇒  length == L_opt(k, d, p);
* otherwise                  ⇒  length  > L_opt(k, d, p).

This is the load-bearing fact behind the Ω̃(n^{2/3}) bound: decoding all
of M from the replacement lengths forces k² = Θ(n^{2/3}) bits across the
construction's bottleneck.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from ..baselines.centralized import replacement_lengths
from .hard_instance import (
    HardInstance,
    expected_optimal_length,
    lexicographic_phi,
)


@dataclass
class CorrespondenceReport:
    """Outcome of a Lemma 6.8 verification run."""

    k: int
    d: int
    p: int
    optimal_length: int
    lengths: List[int]
    hits: List[bool]          # the (x_i ∧ M_{φ(i)}) predicate per edge
    holds: bool               # the full dichotomy
    violations: List[int]     # edge indices where it fails (empty)

    @property
    def hit_count(self) -> int:
        return sum(self.hits)


def verify_correspondence(
    hard: HardInstance,
    phi: Optional[Callable[[int], Tuple[int, int]]] = None,
) -> CorrespondenceReport:
    """Measure and check Lemma 6.8 on a built hard instance."""
    if phi is None:
        phi = lexicographic_phi(hard.k)
    ksq = hard.k * hard.k
    optimal = expected_optimal_length(hard.k, hard.d, hard.p)
    lengths = replacement_lengths(hard.instance)

    hits: List[bool] = []
    violations: List[int] = []
    for i in range(1, ksq + 1):
        a, b = phi(i)
        hit = bool(hard.x_bits[i - 1]) and bool(
            hard.matrix[a - 1][b - 1])
        hits.append(hit)
        length = lengths[i - 1]
        if hit:
            if length != optimal:
                violations.append(i)
        else:
            if not (length > optimal):
                violations.append(i)
    return CorrespondenceReport(
        k=hard.k, d=hard.d, p=hard.p,
        optimal_length=optimal,
        lengths=lengths,
        hits=hits,
        holds=not violations,
        violations=violations,
    )


def decode_matrix_from_lengths(
    lengths: List[int],
    k: int,
    d: int,
    p: int,
    phi: Optional[Callable[[int], Tuple[int, int]]] = None,
) -> List[List[Optional[int]]]:
    """Recover M entries from replacement lengths (where x allows).

    For edges with x_i = 1, length == L_opt decodes M_{φ(i)} = 1 and
    length > L_opt decodes 0; entries hidden behind x_i = 0 come back as
    None.  This is Alice's side of the information argument: the RPaths
    output *is* Bob's input, which is why the bits must cross the cut.
    """
    if phi is None:
        phi = lexicographic_phi(k)
    optimal = expected_optimal_length(k, d, p)
    decoded: List[List[Optional[int]]] = [
        [None] * k for _ in range(k)
    ]
    for i, length in enumerate(lengths, start=1):
        a, b = phi(i)
        decoded[a - 1][b - 1] = 1 if length == optimal else 0
    return decoded
