"""Section 6 made executable: lower-bound constructions, the Lemma 6.8
correspondence, and the disjointness → 2-SiSP reduction."""

from .gamma_graph import GammaGraph, build_gamma_graph, undirected_diameter
from .hard_instance import (
    HardInstance,
    build_hard_instance,
    expected_optimal_length,
    lexicographic_phi,
)
from .correspondence import (
    CorrespondenceReport,
    decode_matrix_from_lengths,
    verify_correspondence,
)
from .disjointness import (
    Transcript,
    TrivialDisjointnessProtocol,
    disjointness,
    disjointness_lower_bound_bits,
    inner_product,
)
from .reduction import (
    ReductionReport,
    bits_to_matrix,
    decide_disjointness_via_two_sisp,
)
from .diameter_bound import build_diameter_instance, expected_two_sisp
from .cut_analysis import (
    CutTrafficReport,
    bipartite_cut,
    measure_cut_traffic,
)

__all__ = [
    "CorrespondenceReport",
    "CutTrafficReport",
    "GammaGraph",
    "HardInstance",
    "ReductionReport",
    "Transcript",
    "TrivialDisjointnessProtocol",
    "bipartite_cut",
    "bits_to_matrix",
    "build_diameter_instance",
    "build_gamma_graph",
    "build_hard_instance",
    "decide_disjointness_via_two_sisp",
    "decode_matrix_from_lengths",
    "disjointness",
    "disjointness_lower_bound_bits",
    "expected_optimal_length",
    "expected_two_sisp",
    "inner_product",
    "lexicographic_phi",
    "measure_cut_traffic",
    "undirected_diameter",
    "verify_correspondence",
]
