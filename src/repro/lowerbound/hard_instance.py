"""Section 6.3 — the hard instance G(k, d, p, φ) and its directed
version G(k, d, p, φ, M, x).

The construction (Figure 2) augments G(2k, d, p) with:

* the given s-t path P* = (s_0, ..., s_{k²});
* k "outbound" paths Q^ℓ and k "return" paths R^ℓ of 2k² edges each;
* a complete bipartite gadget on the far ends {v^1..v^k} × {w^1..w^k}
  whose edge *orientations* encode Bob's k² bits (the matrix M);
* optional exits (s_{i−1} → q^{φ₁(i)}_{2(i−1)}) encoding Alice's bits x;
* fixed re-entries (r^{φ₂(i)}_{2i} → s_i);
* edges α → every vertex of P*, Q^ℓ, R^ℓ (keeping the diameter 2p+2
  without creating alternative s-t routes — nothing points *into* the
  tree, so the tree is unreachable from s).

Lemma 6.8: the replacement path for (s_{i−1}, s_i) has the globally
minimal length iff x_i = 1 and M_{φ(i)} = 1; otherwise it is strictly
longer.  The closed-form optimum is

    L_opt(k, d, p) = 3k² + 2·d^p + 4,

counted edge-by-edge along the green path of Figure 2 (the paper's prose
states 3k² + 2d^p + 6; our exhaustive verification —
tests/test_lowerbound_correspondence.py — confirms the +4 count, a
constant-only discrepancy that leaves every claim of Section 6 intact;
see EXPERIMENTS.md E5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..congest.errors import InvalidInstanceError
from ..graphs.instance import RPathsInstance

Name = Tuple


def lexicographic_phi(k: int) -> Callable[[int], Tuple[int, int]]:
    """The default bijection φ : [k²] → [k] × [k] (1-indexed, row-major)."""

    def phi(i: int) -> Tuple[int, int]:
        if not 1 <= i <= k * k:
            raise ValueError(f"phi argument {i} outside [1, k²]")
        return ((i - 1) // k + 1, (i - 1) % k + 1)

    return phi


def expected_optimal_length(k: int, d: int, p: int) -> int:
    """L_opt — the Lemma 6.8 minimal replacement length (see module
    docstring on the constant)."""
    return 3 * k * k + 2 * d ** p + 4


@dataclass
class HardInstance:
    """G(k, d, p, φ, M, x) bundled as an RPaths instance plus metadata."""

    k: int
    d: int
    p: int
    matrix: List[List[int]]
    x_bits: List[int]
    instance: RPathsInstance
    id_of: Dict[Name, int]
    name_of: Dict[int, Name] = field(default_factory=dict)
    alpha: int = -1
    beta: int = -1

    @property
    def n(self) -> int:
        return self.instance.n

    def expected_vertex_count_order(self) -> int:
        """Observation 6.6: Θ(k³ + k·d^p); the exact count."""
        k, d, p = self.k, self.d, self.p
        tree = (d ** (p + 1) - 1) // (d - 1)
        return (2 * k * d ** p + 4 * k ** 3 + 2 * k + k * k + 1 + tree)

    def alice_side(self) -> List[int]:
        """Vertices the Lemma 6.7 simulation assigns to α (P*, Q, R, α)."""
        out = [self.alpha]
        for name, vertex in self.id_of.items():
            if name[0] in ("s", "q", "r"):
                out.append(vertex)
        return sorted(set(out))

    def bob_side(self) -> List[int]:
        """Vertices assigned to β (the bipartite ends and β)."""
        width = self.d ** self.p
        out = [self.beta]
        for name, vertex in self.id_of.items():
            if name[0] in ("v", "w") and name[2] == width - 1:
                out.append(vertex)
        return sorted(set(out))


def build_hard_instance(
    k: int,
    d: int,
    p: int,
    matrix: Sequence[Sequence[int]],
    x_bits: Sequence[int],
    phi: Optional[Callable[[int], Tuple[int, int]]] = None,
    validate: bool = True,
) -> HardInstance:
    """Construct G(k, d, p, φ, M, x) as a directed RPaths instance.

    ``matrix[a][b]`` (0-indexed) is M_{a+1, b+1}; ``x_bits[i-1]`` is x_i.
    """
    if k < 2 or d < 2 or p < 1:
        raise ValueError("need k ≥ 2, d ≥ 2, p ≥ 1")
    if len(matrix) != k or any(len(row) != k for row in matrix):
        raise ValueError("matrix must be k × k")
    if len(x_bits) != k * k:
        raise ValueError("x must have k² bits")
    if phi is None:
        phi = lexicographic_phi(k)

    width = d ** p
    ksq = k * k
    id_of: Dict[Name, int] = {}

    def vid(name: Name) -> int:
        if name not in id_of:
            id_of[name] = len(id_of)
        return id_of[name]

    edges: List[Tuple[int, int]] = []

    def add(u: Name, v: Name) -> None:
        edges.append((vid(u), vid(v)))

    # -- Step 1: G(2k, d, p) skeleton, directed.
    # Tree edges parent → children.
    for q in range(p):
        for j in range(d ** q):
            for r in range(d):
                add(("u", q, j), ("u", q + 1, j * d + r))
    # v-paths (ℓ ∈ [1,k]) left → right; w-paths right → left.
    for ell in range(1, k + 1):
        for j in range(width - 1):
            add(("v", ell, j), ("v", ell, j + 1))
            add(("w", ell, j + 1), ("w", ell, j))
    # Leaf-to-path edges, oriented away from the leaves.
    for j in range(width):
        for ell in range(1, k + 1):
            add(("u", p, j), ("v", ell, j))
            add(("u", p, j), ("w", ell, j))

    # -- Step 2/3 (directed version): bipartite orientations from M.
    for a in range(1, k + 1):
        for b in range(1, k + 1):
            if matrix[a - 1][b - 1]:
                add(("v", a, width - 1), ("w", b, width - 1))
            else:
                add(("w", b, width - 1), ("v", a, width - 1))

    # -- Step 3: the s-t path P*.
    for i in range(ksq):
        add(("s", i), ("s", i + 1))

    # -- Steps 4/5: the Q and R paths with their couplings.
    for ell in range(1, k + 1):
        for j in range(2 * ksq):
            add(("q", ell, j), ("q", ell, j + 1))
            add(("r", ell, j), ("r", ell, j + 1))
        add(("q", ell, 2 * ksq), ("v", ell, 0))
        add(("w", ell, 0), ("r", ell, 0))

    # -- Step 6: exits (gated by x) and re-entries (always present).
    for i in range(1, ksq + 1):
        a, b = phi(i)
        if x_bits[i - 1]:
            add(("s", i - 1), ("q", a, 2 * (i - 1)))
        add(("r", b, 2 * i), ("s", i))

    # -- Step 7: α to every vertex of P*, Q^ℓ, R^ℓ.
    alpha = vid(("u", p, 0))
    beta = vid(("u", p, width - 1))
    for i in range(ksq + 1):
        add(("u", p, 0), ("s", i))
    for ell in range(1, k + 1):
        for j in range(2 * ksq + 1):
            add(("u", p, 0), ("q", ell, j))
            add(("u", p, 0), ("r", ell, j))

    path = [id_of[("s", i)] for i in range(ksq + 1)]
    instance = RPathsInstance(
        n=len(id_of),
        edges=[(u, v, 1) for u, v in edges],
        path=path,
        weighted=False,
        name=f"hard(k={k},d={d},p={p})",
    )
    if validate:
        instance.validate()

    hard = HardInstance(
        k=k, d=d, p=p,
        matrix=[list(row) for row in matrix],
        x_bits=list(x_bits),
        instance=instance,
        id_of=id_of,
        name_of={v: name for name, v in id_of.items()},
        alpha=alpha,
        beta=beta,
    )
    if validate and hard.n != hard.expected_vertex_count_order():
        raise InvalidInstanceError(
            f"vertex count {hard.n} does not match Observation 6.6's "
            f"exact count {hard.expected_vertex_count_order()}")
    return hard
