"""Empirical view of the simulation lemma (Lemmas 6.4 / 6.7).

The lower-bound argument hinges on a counting fact: when an algorithm on
G(k, d, p, φ, M, x) runs for T rounds, at most O(d^p · B · T) bits cross
between Alice's side (P*, Q, R, α and the left of the structure) and
Bob's side (the bipartite gadget and β) — either along the 2k long paths
(dilation) or through the tree (congestion).  Deciding disjointness
needs Ω(k²) bits to cross, so T = Ω̃(k² / d^p) = Ω̃(n^{2/3}).

``measure_cut_traffic`` runs a distributed solver with per-link word
recording switched on and reports how many words actually crossed a cut
of the hard instance, alongside the k² bits the output encodes — the
observable trace of the bottleneck the lemma formalizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence, Set

from ..congest.network import CongestNetwork
from .hard_instance import HardInstance


@dataclass
class CutTrafficReport:
    """Words observed crossing a vertex cut during an execution."""

    rounds: int
    crossing_words: int
    crossing_links: int
    total_words: int
    payload_bits: int  # the k² bits the problem output must encode

    @property
    def words_per_round(self) -> float:
        return self.crossing_words / max(1, self.rounds)


def bipartite_cut(hard: HardInstance) -> Set[int]:
    """Alice's vertex side for the Lemma 6.7 partition.

    Everything except the last column of the long paths, the bipartite
    endpoints, and β — i.e. cutting just before the far end, where the
    paper's simulation places Bob.
    """
    width = hard.d ** hard.p
    bob: Set[int] = set()
    for name, vertex in hard.id_of.items():
        kind = name[0]
        if kind in ("v", "w") and name[2] == width - 1:
            bob.add(vertex)
    bob.add(hard.beta)
    return set(range(hard.n)) - bob


def measure_cut_traffic(
    hard: HardInstance,
    run: Callable[[CongestNetwork], None],
    alice_side: Sequence[int] = (),
) -> CutTrafficReport:
    """Execute ``run`` on a fresh network with link recording and report
    the words that crossed the Alice/Bob cut.

    ``run`` receives the instrumented network and must execute the
    algorithm on it (e.g. a closure invoking the RPaths phases).
    """
    alice: Set[int] = set(alice_side) or bipartite_cut(hard)
    net = hard.instance.build_network()
    net.record_link_totals = True
    run(net)

    crossing_words = 0
    crossing_links = 0
    for (u, v), words in net.link_totals.items():
        if (u in alice) != (v in alice):
            crossing_words += words
            crossing_links += 1
    return CutTrafficReport(
        rounds=net.rounds,
        crossing_words=crossing_words,
        crossing_links=crossing_links,
        total_words=net.ledger.words,
        payload_bits=hard.k * hard.k,
    )
