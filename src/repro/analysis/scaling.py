"""Scaling analysis: exponent fits and invariance statistics.

The paper's headline claims are asymptotic; at finite n we verify the
*shape*: the measured rounds of Theorem 1 should grow like n^{2/3}
(log-log slope ≈ 2/3 up to polylog drift) and be flat in h_st, while the
baselines grow with h_st.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple


@dataclass
class PowerLawFit:
    """Least-squares fit of rounds ≈ C · n^exponent on log-log axes."""

    exponent: float
    coefficient: float
    r_squared: float
    points: List[Tuple[float, float]]

    def predict(self, n: float) -> float:
        return self.coefficient * n ** self.exponent


def fit_power_law(ns: Sequence[float],
                  values: Sequence[float]) -> PowerLawFit:
    """Fit values ≈ C·n^a by linear regression in log space."""
    if len(ns) != len(values) or len(ns) < 2:
        raise ValueError("need at least two matched samples")
    xs = [math.log(x) for x in ns]
    ys = [math.log(max(1e-12, y)) for y in values]
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    slope = sxy / sxx if sxx else 0.0
    intercept = mean_y - slope * mean_x
    ss_res = sum((y - (slope * x + intercept)) ** 2
                 for x, y in zip(xs, ys))
    ss_tot = sum((y - mean_y) ** 2 for y in ys)
    r2 = 1.0 - ss_res / ss_tot if ss_tot else 1.0
    return PowerLawFit(
        exponent=slope,
        coefficient=math.exp(intercept),
        r_squared=r2,
        points=list(zip(ns, values)),
    )


@dataclass
class SpeedupStats:
    """Wall-clock comparison of a serial and a parallel execution.

    Used by the benches to report what the runtime executor buys on the
    current hardware; ``efficiency`` is speedup per worker (1.0 means
    perfect scaling, ~1/workers means the host has a single core).
    """

    serial_seconds: float
    parallel_seconds: float
    workers: int

    @property
    def speedup(self) -> float:
        return self.serial_seconds / max(1e-9, self.parallel_seconds)

    @property
    def efficiency(self) -> float:
        return self.speedup / max(1, self.workers)

    def render(self) -> str:
        return (f"serial {self.serial_seconds:.2f}s vs parallel "
                f"{self.parallel_seconds:.2f}s on {self.workers} "
                f"workers: {self.speedup:.2f}x speedup "
                f"(efficiency {self.efficiency:.2f})")


def speedup_stats(serial_seconds: float, parallel_seconds: float,
                  workers: int) -> SpeedupStats:
    return SpeedupStats(serial_seconds, parallel_seconds, workers)


@dataclass
class InvarianceStats:
    """How flat a series is — used for the h_st-independence claim."""

    spread_ratio: float   # max / min
    slope: float          # log-log slope against the swept parameter

    @property
    def is_flat(self) -> bool:
        """Heuristic flatness: sub-square-root growth in the sweep."""
        return self.slope < 0.5


def invariance(params: Sequence[float],
               values: Sequence[float]) -> InvarianceStats:
    """Flatness statistics of ``values`` against a swept parameter."""
    fit = fit_power_law(params, values)
    return InvarianceStats(
        spread_ratio=max(values) / max(1e-12, min(values)),
        slope=fit.exponent,
    )
