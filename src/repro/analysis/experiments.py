"""Experiment drivers shared by the benchmark harness and the suite.

Each function reproduces one paper artifact (see DESIGN.md's
per-experiment index) and returns plain data structures the benches
print with :mod:`~repro.analysis.tables`.  All measurement flows
through :func:`repro.runtime.measure_algorithm`, so the benches, the
``repro suite`` engine, and the CLI count rounds, words, and oracle
correctness identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..baselines.centralized import replacement_lengths
from ..graphs.generators import path_with_chords_instance
from ..graphs.instance import RPathsInstance
from ..runtime.measure import measure_algorithm
from .scaling import PowerLawFit, fit_power_law


@dataclass
class AlgorithmRun:
    """One (instance, algorithm) measurement."""

    algorithm: str
    instance: str
    n: int
    hop_count: int
    rounds: int
    correct: bool
    max_link_words: int = 0


def _to_run(instance: RPathsInstance, measurement) -> AlgorithmRun:
    return AlgorithmRun(
        measurement.algorithm, instance.name, instance.n,
        instance.hop_count, measurement.rounds, measurement.correct,
        measurement.max_link_words)


def run_table1_cell(
    instance: RPathsInstance,
    seed: int = 0,
    include_naive: bool = True,
) -> List[AlgorithmRun]:
    """One Table-1 row group: ours vs MR24b vs trivial on one instance."""
    truth = replacement_lengths(instance)
    algorithms = ["theorem1", "mr24b"]
    if include_naive:
        algorithms.append("trivial")
    return [
        _to_run(instance, measure_algorithm(
            instance, algorithm, seed=seed, truth=truth))
        for algorithm in algorithms
    ]


def scaling_series(
    builder: Callable[[int, int], RPathsInstance],
    sizes: Sequence[int],
    seed: int = 0,
    algorithm: str = "theorem1",
) -> Tuple[List[int], List[int], PowerLawFit]:
    """Rounds versus n for one algorithm on one family, plus the fit."""
    ns: List[int] = []
    rounds: List[int] = []
    for size in sizes:
        instance = builder(size, seed)
        measurement = measure_algorithm(
            instance, algorithm, seed=seed, check=False)
        rounds.append(measurement.rounds)
        ns.append(instance.n)
    return ns, rounds, fit_power_law(ns, rounds)


def hst_sweep(
    hops_values: Sequence[int],
    seed: int = 0,
    include_naive: bool = True,
) -> Dict[str, List[AlgorithmRun]]:
    """Fixed construction parameters, h_st swept (experiment E3).

    Uses the chords family so that n grows only linearly with h_st while
    the detour structure stays homogeneous; the quantity of interest is
    how each algorithm's rounds scale *with h_st at comparable n* —
    Theorem 1 should track n^{2/3}, the baselines h_st.
    """
    out: Dict[str, List[AlgorithmRun]] = {
        "theorem1": [], "mr24b": []}
    if include_naive:
        out["trivial"] = []
    for hops in hops_values:
        instance = path_with_chords_instance(hops, seed=seed)
        for runs in run_table1_cell(
                instance, seed=seed, include_naive=include_naive):
            out[runs.algorithm].append(runs)
    return out


def approx_quality(
    instance: RPathsInstance,
    epsilons: Sequence[float],
    seed: int = 0,
    landmarks: Optional[Sequence[int]] = None,
) -> List[Tuple[float, float, int]]:
    """(ε, worst measured ratio, rounds) triples — experiment E8."""
    truth = replacement_lengths(instance)
    rows: List[Tuple[float, float, int]] = []
    for eps in epsilons:
        measurement = measure_algorithm(
            instance, "apx", seed=seed, epsilon=eps, truth=truth,
            landmarks=landmarks)
        assert measurement.correct, (
            f"(1+{eps}) guarantee violated on {instance.name}")
        rows.append((eps, float(measurement.extras["worst_ratio"]),
                     measurement.rounds))
    return rows
