"""Experiment drivers shared by the benchmark harness and EXPERIMENTS.md.

Each function reproduces one paper artifact (see DESIGN.md's
per-experiment index) and returns plain data structures the benches
print with :mod:`~repro.analysis.tables`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..baselines.centralized import replacement_lengths
from ..baselines.mr24 import solve_rpaths_mr24
from ..baselines.naive_distributed import solve_rpaths_naive
from ..congest.words import INF
from ..core.rpaths import solve_rpaths
from ..graphs.generators import path_with_chords_instance, random_instance
from ..graphs.instance import RPathsInstance
from .scaling import PowerLawFit, fit_power_law


@dataclass
class AlgorithmRun:
    """One (instance, algorithm) measurement."""

    algorithm: str
    instance: str
    n: int
    hop_count: int
    rounds: int
    correct: bool
    max_link_words: int = 0


def _check(lengths: Sequence[int], truth: Sequence[int]) -> bool:
    return list(lengths) == list(truth)


def run_table1_cell(
    instance: RPathsInstance,
    seed: int = 0,
    include_naive: bool = True,
) -> List[AlgorithmRun]:
    """One Table-1 row group: ours vs MR24b vs trivial on one instance."""
    truth = replacement_lengths(instance)
    runs: List[AlgorithmRun] = []

    ours = solve_rpaths(instance, seed=seed)
    runs.append(AlgorithmRun(
        "theorem1", instance.name, instance.n, instance.hop_count,
        ours.rounds, _check(ours.lengths, truth),
        ours.max_link_words))

    mr = solve_rpaths_mr24(instance, seed=seed)
    runs.append(AlgorithmRun(
        "mr24b", instance.name, instance.n, instance.hop_count,
        mr.rounds, _check(mr.lengths, truth),
        mr.ledger.max_link_words))

    if include_naive:
        nv = solve_rpaths_naive(instance)
        runs.append(AlgorithmRun(
            "trivial", instance.name, instance.n, instance.hop_count,
            nv.rounds, _check(nv.lengths, truth),
            nv.ledger.max_link_words))
    return runs


def scaling_series(
    builder: Callable[[int, int], RPathsInstance],
    sizes: Sequence[int],
    seed: int = 0,
    algorithm: str = "theorem1",
) -> Tuple[List[int], List[int], PowerLawFit]:
    """Rounds versus n for one algorithm on one family, plus the fit."""
    ns: List[int] = []
    rounds: List[int] = []
    for size in sizes:
        instance = builder(size, seed)
        if algorithm == "theorem1":
            rounds.append(solve_rpaths(instance, seed=seed).rounds)
        elif algorithm == "mr24b":
            rounds.append(solve_rpaths_mr24(instance, seed=seed).rounds)
        elif algorithm == "trivial":
            rounds.append(solve_rpaths_naive(instance).rounds)
        else:
            raise ValueError(f"unknown algorithm {algorithm!r}")
        ns.append(instance.n)
    return ns, rounds, fit_power_law(ns, rounds)


def hst_sweep(
    hops_values: Sequence[int],
    seed: int = 0,
    include_naive: bool = True,
) -> Dict[str, List[AlgorithmRun]]:
    """Fixed construction parameters, h_st swept (experiment E3).

    Uses the chords family so that n grows only linearly with h_st while
    the detour structure stays homogeneous; the quantity of interest is
    how each algorithm's rounds scale *with h_st at comparable n* —
    Theorem 1 should track n^{2/3}, the baselines h_st.
    """
    out: Dict[str, List[AlgorithmRun]] = {
        "theorem1": [], "mr24b": []}
    if include_naive:
        out["trivial"] = []
    for hops in hops_values:
        instance = path_with_chords_instance(hops, seed=seed)
        for runs in run_table1_cell(
                instance, seed=seed, include_naive=include_naive):
            out[runs.algorithm].append(runs)
    return out


def approx_quality(
    instance: RPathsInstance,
    epsilons: Sequence[float],
    seed: int = 0,
    landmarks: Optional[Sequence[int]] = None,
) -> List[Tuple[float, float, int]]:
    """(ε, worst measured ratio, rounds) triples — experiment E8."""
    from ..approx.apx_rpaths import solve_apx_rpaths

    truth = replacement_lengths(instance)
    rows: List[Tuple[float, float, int]] = []
    for eps in epsilons:
        report = solve_apx_rpaths(
            instance, epsilon=eps, seed=seed, landmarks=landmarks)
        worst = 1.0
        for got, want in zip(report.lengths, truth):
            if want >= INF:
                assert got == float("inf")
                continue
            ratio = got / want
            worst = max(worst, ratio)
        rows.append((eps, worst, report.rounds))
    return rows
