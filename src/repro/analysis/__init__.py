"""Measurement analysis: power-law fits, invariance checks, tables."""

from .scaling import (
    InvarianceStats,
    PowerLawFit,
    SpeedupStats,
    fit_power_law,
    invariance,
    speedup_stats,
)
from .tables import format_records, format_series, format_table
from .experiments import (
    AlgorithmRun,
    approx_quality,
    hst_sweep,
    run_table1_cell,
    scaling_series,
)

__all__ = [
    "AlgorithmRun",
    "InvarianceStats",
    "PowerLawFit",
    "SpeedupStats",
    "approx_quality",
    "fit_power_law",
    "format_records",
    "format_series",
    "format_table",
    "hst_sweep",
    "invariance",
    "run_table1_cell",
    "scaling_series",
    "speedup_stats",
]
