"""Plain-text table rendering for the benchmark harness.

Benchmarks print the same row/series structure the paper reports
(Table 1's algorithm-vs-bound landscape, scaling series, correspondence
tallies); this module keeps the formatting in one place.
"""

from __future__ import annotations

from typing import Sequence


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]],
                 title: str = "") -> str:
    """Fixed-width table with a rule under the header."""
    cells = [[str(h) for h in headers]]
    for row in rows:
        cells.append([_render(x) for x in row])
    widths = [max(len(r[c]) for r in cells) for c in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(
        cells[0][c].ljust(widths[c]) for c in range(len(headers)))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append("  ".join(
            row[c].rjust(widths[c]) for c in range(len(headers))))
    return "\n".join(lines)


def _render(x: object) -> str:
    if isinstance(x, float):
        if x != x or x in (float("inf"), float("-inf")):
            return str(x)
        return f"{x:.3g}" if abs(x) < 1000 else f"{x:.0f}"
    return str(x)


def format_series(label: str, xs: Sequence[object],
                  ys: Sequence[object]) -> str:
    """One-line series rendering: label: (x=y), (x=y), ..."""
    pairs = ", ".join(f"{x}={_render(y)}" for x, y in zip(xs, ys))
    return f"{label}: {pairs}"


def format_records(records: Sequence[object],
                   columns: Sequence[str],
                   title: str = "") -> str:
    """Table from uniform mappings/objects, one row per record.

    ``records`` may be mappings or attribute-bearing objects (e.g.
    :class:`~repro.runtime.results.CellResult` metrics dicts or
    dataclasses); missing fields render as ``-``.
    """
    def fetch(record: object, column: str) -> object:
        if isinstance(record, dict):
            return record.get(column, "-")
        return getattr(record, column, "-")

    rows = [[fetch(record, column) for column in columns]
            for record in records]
    return format_table(columns, rows, title=title)
