"""repro — reproduction of "Optimal Distributed Replacement Paths"
(Chang, Chen, Dey, Mishra, Nguyen, Sanchez; PODC 2025).

Public API quick reference
--------------------------
``solve_rpaths(instance)``
    Theorem 1: exact RPaths on unweighted directed graphs in
    Õ(n^{2/3} + D) CONGEST rounds (measured, not assumed).
``solve_apx_rpaths(instance, epsilon)``
    Theorem 3: (1+ε)-approximate RPaths on weighted directed graphs.
``solve_two_sisp(instance)``
    Definition 2.3: the second simple shortest path length.
``graphs.*``
    Instance generators for every experimental regime.
``baselines.*``
    Centralized oracle, the trivial h_st × SSSP algorithm, and the
    MR24b-style algorithm the paper improves on.
``lowerbound.*``
    The Section 6 constructions and the disjointness → 2-SiSP reduction,
    executable end-to-end.
``runtime.*``
    The experiment engine: declarative scenario registry, parallel
    cell executor, and the content-addressed result cache behind
    ``python -m repro suite``.

See DESIGN.md for the full system inventory, the runtime quickstart,
and the per-experiment index.
"""

from .congest.words import INF, is_unreachable
from .congest.metrics import RoundLedger
from .congest.network import CongestNetwork
from .graphs.instance import RPathsInstance, instance_from_edges
from .core.rpaths import RPathsReport, default_zeta, solve_rpaths
from .core.two_sisp import TwoSispReport, solve_two_sisp

__version__ = "1.0.0"

__all__ = [
    "CongestNetwork",
    "INF",
    "RPathsInstance",
    "RPathsReport",
    "RoundLedger",
    "TwoSispReport",
    "default_zeta",
    "instance_from_edges",
    "is_unreachable",
    "solve_apx_rpaths",
    "solve_rpaths",
    "solve_two_sisp",
]


def solve_apx_rpaths(instance, epsilon=0.25, **kwargs):
    """Theorem 3 entry point (lazy import to keep startup light)."""
    from .approx.apx_rpaths import solve_apx_rpaths as _solve
    return _solve(instance, epsilon=epsilon, **kwargs)
