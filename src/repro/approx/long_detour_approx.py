"""Proposition 7.11 — (1+ε) long-detour replacement paths, weighted.

Structure is identical to Proposition 5.1; the only change (exactly as
the paper's proof says) is that the n^{2/3}-hop BFS of Lemmas 5.4/5.6 is
replaced with (1+ε)-approximate h-hop k-source shortest paths.

Substitution note (recorded in DESIGN.md): the paper invokes Nanongkai's
algorithm [Nan14, Theorem 3.6] for that primitive.  We instead reuse the
paper's *own* rounding machinery of Section 7.1: for every scale d on
the ladder, a k-source hop-bounded BFS runs on G_d (per-edge delays),
and each (landmark, vertex) pair keeps the best h·μ_d over scales.  Any
≤ h-hop path of weight r ∈ [d/2, d] is represented in G_d within
ζ(1+2/ε) subdivided hops and length ≤ (1+ε)r (Observation 7.4), so the
merged estimate is a (1+ε) upper bound that never drops below the true
distance (Observation 7.3) — the same guarantee, the same Õ(k + h)
round shape.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from ..congest.broadcast import broadcast_messages
from ..congest.multisource import multi_source_hop_bfs
from ..congest.network import CongestNetwork
from ..congest.spanning_tree import SpanningTree
from ..congest.words import INF, clamp_inf
from ..graphs.instance import RPathsInstance
from ..core.knowledge import PathKnowledge
from ..core.landmark_distances import LandmarkDistances, landmark_closure
from ..core.landmarks import sample_landmarks
from ..core.segments import (
    checkpoint_positions,
    finish_distance_tables,
    prefix_min_to_landmarks,
    suffix_min_from_landmarks,
)
from .rounding import Scale


def compute_landmark_distances_weighted(
    net: CongestNetwork,
    tree: SpanningTree,
    landmarks: Sequence[int],
    scales: Sequence[Scale],
    avoid_edges,
    phase: str = "landmark-distances(P7.11)",
) -> LandmarkDistances:
    """The Lemma 5.4 + 5.6 pipeline with scaled BFS distances."""
    k = len(landmarks)
    with net.ledger.phase(phase):
        if k == 0:
            return LandmarkDistances([], [], [], [])
        direct_from = [[INF] * net.n for _ in range(k)]
        direct_to = [[INF] * net.n for _ in range(k)]
        for scale in scales:
            budget = scale.hop_budget
            fwd = multi_source_hop_bfs(
                net, landmarks, budget, direction="out",
                avoid_edges=avoid_edges, delay=scale.delay,
                phase=f"kBFS-fwd(d={scale.d})")
            bwd = multi_source_hop_bfs(
                net, landmarks, budget, direction="in",
                avoid_edges=avoid_edges, delay=scale.delay,
                phase=f"kBFS-bwd(d={scale.d})")
            for a in range(k):
                row_f, row_b = fwd[a], bwd[a]
                out_f, out_b = direct_from[a], direct_to[a]
                for v in range(net.n):
                    if row_f[v] < INF:
                        length = scale.length(row_f[v])
                        if length < out_f[v]:
                            out_f[v] = length
                    if row_b[v] < INF:
                        length = scale.length(row_b[v])
                        if length < out_b[v]:
                            out_b[v] = length

        # Broadcast the |L|² pair estimates (landmark l_b knows its
        # merged distance *from* every l_a) and close locally.
        messages: Dict[int, list] = {}
        for b, l_b in enumerate(landmarks):
            messages[l_b] = [
                ("pair", a, b, direct_from[a][l_b]) for a in range(k)
            ]
        records = broadcast_messages(net, tree, messages,
                                     phase="pair-broadcast(L2.4)")
        pair = [[INF] * k for _ in range(k)]
        for _, payload in records:
            _, a, b, value = payload
            pair[a][b] = value
        closure = landmark_closure(pair)  # values already lengths

        from_landmark = [[INF] * net.n for _ in range(k)]
        to_landmark = [[INF] * net.n for _ in range(k)]
        for v in range(net.n):
            for a in range(k):
                best_f = direct_from[a][v]
                best_t = direct_to[a][v]
                for mid in range(k):
                    if closure[a][mid] < INF and direct_from[mid][v] < INF:
                        candidate = closure[a][mid] + direct_from[mid][v]
                        if candidate < best_f:
                            best_f = candidate
                    if direct_to[mid][v] < INF and closure[mid][a] < INF:
                        candidate = direct_to[mid][v] + closure[mid][a]
                        if candidate < best_t:
                            best_t = candidate
                from_landmark[a][v] = clamp_inf(best_f)
                to_landmark[a][v] = clamp_inf(best_t)
        return LandmarkDistances(list(landmarks), closure,
                                 from_landmark, to_landmark)


def long_detour_lengths_weighted(
    instance: RPathsInstance,
    net: CongestNetwork,
    tree: SpanningTree,
    knowledge: PathKnowledge,
    zeta: int,
    scales: Sequence[Scale],
    landmarks: Optional[Sequence[int]] = None,
    seed: int = 0,
    landmark_c: float = 2.0,
    phase: str = "long-detour(P7.11)",
) -> List[object]:
    """Proposition 7.11 — returns per-edge values x with
    |st ⋄ e| ≤ x ≤ (1+ε) · (best long-detour replacement) w.h.p."""
    h = knowledge.hop_count
    with net.ledger.phase(phase):
        if landmarks is None:
            landmarks = sample_landmarks(
                instance.n, zeta, c=landmark_c, seed=seed)
        landmarks = sorted(set(landmarks))
        if not landmarks:
            return [INF] * h

        distances = compute_landmark_distances_weighted(
            net, tree, landmarks, scales,
            avoid_edges=instance.path_edge_set())

        segment_len = max(1, math.ceil(instance.n ** (2.0 / 3.0)))
        checkpoints = checkpoint_positions(h, segment_len)
        prefix_table = prefix_min_to_landmarks(
            net, knowledge, distances, checkpoints)
        suffix_table = suffix_min_from_landmarks(
            net, knowledge, distances, checkpoints)
        tables = finish_distance_tables(
            net, tree, knowledge, distances, checkpoints,
            prefix_table, suffix_table)
        m_final, n_final = tables["M"], tables["N"]

        out = []
        for i in range(h):
            best = INF
            for j in range(len(landmarks)):
                candidate = m_final[j][i] + n_final[j][i]
                if candidate < best:
                    best = candidate
            out.append(best if best < INF else INF)
        return out
