"""Section 7.2 — information pipelining for weighted short detours.

{0..h_st} is split into ℓ = O(n^{1/3}) intervals I_1..I_ℓ of O(n^{2/3})
indices.  For an edge e = (v_i, v_{i+1}) inside interval I_g the three
ingredients of the Proposition 7.1 proof are:

* nearby-A (Lemma 7.7): eX([l_g, i], [i+1, ∞)) — a rightward sweep per
  target i inside the interval;
* nearby-B (Lemma 7.7): eX((−∞, i], [i+1, r_g]) — a leftward sweep per
  target i, finishing at v_{i+1} and shifted one hop to v_i;
* distant (Lemmas 7.8/7.9): eX((−∞, r_{g−1}], [l_{g+1}, ∞)), assembled
  from the broadcast of every interval's best-detour-to-later-intervals
  summary eX(I_x, [l_k, ∞)) (O(ℓ²) = O(n^{2/3}) words).

All sweeps ride the shared pipelined path engine; the broadcast rides
Lemma 2.4.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..congest.broadcast import broadcast_messages
from ..congest.network import CongestNetwork
from ..congest.pipeline import SweepTask, run_path_sweeps
from ..congest.spanning_tree import SpanningTree
from ..congest.words import INF
from ..core.knowledge import PathKnowledge
from .approximators import ShortDetourTables


def interval_partition(hop_count: int, width: int) -> List[Tuple[int, int]]:
    """[(l_1, r_1), ..., (l_ℓ, r_ℓ)] covering 0..h_st with r_g−l_g < width
    and l_{g+1} = r_g + 1 (the Section 7 partition)."""
    if width < 1:
        raise ValueError("interval width must be positive")
    intervals = []
    left = 0
    while left <= hop_count:
        right = min(left + width - 1, hop_count)
        intervals.append((left, right))
        left = right + 1
    return intervals


def nearby_detours(
    net: CongestNetwork,
    knowledge: PathKnowledge,
    tables: ShortDetourTables,
    intervals: Sequence[Tuple[int, int]],
    phase: str = "nearby(L7.7)",
) -> Tuple[Dict[int, object], Dict[int, object]]:
    """Lemma 7.7 — both nearby quantities for every in-interval edge.

    Returns ``(a, b)`` with, for each edge index i that lies strictly
    inside its interval (i, i+1 ∈ I_g),
    ``a[i]`` = eX([l_g, i], [i+1, ∞)) and
    ``b[i]`` = eX((−∞, i], [i+1, r_g]), both held at v_i.
    """
    path = knowledge.path
    with net.ledger.phase(phase):
        tasks = []
        for left, right in intervals:
            for i in range(left, right):
                # A-sweep: start at v_left, end at v_i, min of
                # eX({k}, [i+1, ∞)) over visited k.
                def combine_a(pos: int, value, i: int = i):
                    return min(value, tables.x_start_at(pos, i + 1))

                tasks.append(SweepTask(
                    key=("A", i), start=left, end=i,
                    init=tables.x_start_at(left, i + 1),
                    combine=combine_a))
                # B-sweep: start at v_right, end at v_{i+1}, min of
                # eX((−∞, i], {k}) over visited k.
                def combine_b(pos: int, value, i: int = i):
                    return min(value, tables.x_end_at(pos, i))

                tasks.append(SweepTask(
                    key=("B", i), start=right, end=i + 1,
                    init=tables.x_end_at(right, i),
                    combine=combine_b))
        results = run_path_sweeps(net, path, tasks, phase="sweeps")

        a: Dict[int, object] = {}
        b_at_next: Dict[int, object] = {}
        for left, right in intervals:
            for i in range(left, right):
                a[i] = results[("A", i)].final
                b_at_next[i] = results[("B", i)].final
        # One extra round: v_{i+1} hands the B value to v_i (the last
        # step of the Lemma 7.7 proof).  All edges fire in parallel.
        outbox: Dict[int, list] = {}
        for i in b_at_next:
            outbox.setdefault(path[i + 1], []).append(
                (path[i], ("Bshift", b_at_next[i])))
        if outbox:
            net.exchange(outbox)
        b = {i: b_at_next[i] for i in b_at_next}
        return a, b


def distant_detours(
    net: CongestNetwork,
    tree: SpanningTree,
    knowledge: PathKnowledge,
    tables: ShortDetourTables,
    intervals: Sequence[Tuple[int, int]],
    phase: str = "distant(L7.8/7.9)",
) -> List[List[object]]:
    """Lemmas 7.8 + 7.9 — the cross-interval quantities.

    Returns ``cross[g][k]`` = eX((−∞, r_g], [l_k, ∞)) for every pair of
    interval indices g < k, known at every vertex after the broadcast.
    """
    path = knowledge.path
    ell = len(intervals)
    with net.ledger.phase(phase):
        # Lemma 7.8: per (g, k > g) sweep across I_g accumulating
        # min_i eX({i}, [l_k, ∞)); result lands at v_{r_g}.
        tasks = []
        for g, (left, right) in enumerate(intervals):
            for k in range(g + 1, ell):
                l_k = intervals[k][0]

                def combine(pos: int, value, l_k: int = l_k):
                    return min(value, tables.x_start_at(pos, l_k))

                tasks.append(SweepTask(
                    key=("S", g, k), start=left, end=right,
                    init=tables.x_start_at(left, l_k),
                    combine=combine))
        results = run_path_sweeps(net, path, tasks, phase="sweeps")

        # Lemma 7.9: broadcast the ℓ(ℓ−1)/2 summaries, then local
        # prefix minima.
        messages: Dict[int, list] = {}
        for g, (left, right) in enumerate(intervals):
            origin = path[right]
            for k in range(g + 1, ell):
                messages.setdefault(origin, []).append(
                    ("Xseg", g, k, results[("S", g, k)].final))
        records = broadcast_messages(net, tree, messages,
                                     phase="interval-broadcast(L2.4)")
        seg = [[INF] * ell for _ in range(ell)]
        for _, payload in records:
            _, g, k, value = payload
            seg[g][k] = value
        cross = [[INF] * ell for _ in range(ell)]
        for k in range(ell):
            running = INF
            for g in range(k):
                if seg[g][k] < running:
                    running = seg[g][k]
                cross[g][k] = running
        return cross


def combine_short_detours(
    knowledge: PathKnowledge,
    tables: ShortDetourTables,
    intervals: Sequence[Tuple[int, int]],
    nearby_a: Dict[int, object],
    nearby_b: Dict[int, object],
    cross: List[List[object]],
) -> List[object]:
    """The Proposition 7.1 case analysis — pure local computation at v_i.

    Returns the per-edge good approximation eX((−∞, i], [i+1, ∞)).
    """
    h = knowledge.hop_count
    ell = len(intervals)
    interval_of = [0] * (h + 1)
    for g, (left, right) in enumerate(intervals):
        for pos in range(left, right + 1):
            interval_of[pos] = g

    out: List[object] = []
    for i in range(h):
        g = interval_of[i]
        left, right = intervals[g]
        if i == right:  # edge crosses two intervals
            value = cross[g][g + 1]
        elif g == 0 and ell == 1:
            value = nearby_a[i]
        elif g == 0:
            # first interval: every start is ≥ l_1 = 0, but ends may lie
            # beyond r_1 — nearby-A already allows ends in [i+1, ∞).
            value = nearby_a[i]
        elif g == ell - 1:
            # last interval: every end is ≤ r_ℓ = h_st.
            value = nearby_b[i]
        else:
            value = min(nearby_a[i], nearby_b[i], cross[g - 1][g + 1])
        out.append(value)
    return out
