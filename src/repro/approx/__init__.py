"""Theorem 3: (1+ε)-Apx-RPaths for weighted directed graphs
(Section 7 — rounding, interval pipelining, scaled landmark BFS)."""

from .rounding import (
    Scale,
    epsilon_as_fraction,
    scale_ladder,
    scale_length,
    subdivided_hops,
)
from .approximators import ShortDetourTables, build_short_detour_tables
from .intervals import (
    combine_short_detours,
    distant_detours,
    interval_partition,
    nearby_detours,
)
from .short_detour_approx import short_detour_lengths_weighted
from .long_detour_approx import (
    compute_landmark_distances_weighted,
    long_detour_lengths_weighted,
)
from .apx_rpaths import ApxRPathsReport, solve_apx_rpaths

__all__ = [
    "ApxRPathsReport",
    "Scale",
    "ShortDetourTables",
    "build_short_detour_tables",
    "combine_short_detours",
    "compute_landmark_distances_weighted",
    "distant_detours",
    "epsilon_as_fraction",
    "interval_partition",
    "long_detour_lengths_weighted",
    "nearby_detours",
    "scale_ladder",
    "scale_length",
    "short_detour_lengths_weighted",
    "solve_apx_rpaths",
    "subdivided_hops",
]
