"""Lemmas 7.5 and 7.2 — short-detour approximators via rounding.

For every scale d on the ladder, the pruned hop-BFS of Lemma 4.2 is run
on G_d (via per-edge delays) for ζ* = ζ(1+2/ε) exact hops.  From each
table, vertex v_i harvests pairs (j, d') into its *short-detour
approximator* C_i:

    j  = f*_{v_i}(h)   (the furthest rejoining index at exact hop h),
    d' = dist(s, v_i) + h·μ_d + dist(v_j, t),

with dist(v_j, t) attached to the BFS message (Lemma 7.5).  Validity
(d' bounds a real replacement) and approximation (every short detour is
(1+ε)-covered) are the two halves of the Lemma 7.5 proof, checked by the
property tests.

Lemma 7.2 then collapses C_i into the query structure
eX({i}, [j, ∞)) = min { d' : (k, d') ∈ C_i, k ≥ j } — a suffix minimum.
The mirrored run (forward sense, min select) produces eX((−∞, j], {i})
analogously via prefix minima.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Sequence

from ..congest.network import CongestNetwork
from ..congest.words import INF
from ..graphs.instance import RPathsInstance
from ..core.hop_bfs import pruned_max_hop_bfs
from ..core.knowledge import PathKnowledge
from .rounding import Scale

Number = object  # int | Fraction — lengths may be fractional


class ShortDetourTables:
    """The per-vertex query structures of Lemma 7.2, both senses.

    ``forward[i][j]`` = eX({i}, [j, ∞))   for j in [i+1, h_st]
    ``backward[i][j]`` = eX((−∞, j], {i}) for j in [0, i−1]

    Entries are exact Fractions (INF sentinel for "none"); the arrays
    live at v_i and were computed from messages v_i received.
    """

    def __init__(self, hop_count: int) -> None:
        self.hop_count = hop_count
        self.forward: List[Dict[int, Number]] = [
            {} for _ in range(hop_count + 1)
        ]
        self.backward: List[Dict[int, Number]] = [
            {} for _ in range(hop_count + 1)
        ]

    def x_start_at(self, i: int, j: int) -> Number:
        """eX({i}, [j, ∞)) — detour leaves exactly at v_i, rejoins ≥ v_j."""
        if j > self.hop_count:
            return INF
        return self.forward[i].get(j, INF)

    def x_end_at(self, i: int, j: int) -> Number:
        """eX((−∞, j], {i}) — detour leaves ≤ v_j, rejoins exactly at v_i."""
        if j < 0:
            return INF
        return self.backward[i].get(j, INF)


def build_short_detour_tables(
    instance: RPathsInstance,
    net: CongestNetwork,
    knowledge: PathKnowledge,
    scales: Sequence[Scale],
    phase: str = "approximators(L7.5)",
) -> ShortDetourTables:
    """Run both pruned-BFS families over all scales and collapse to the
    Lemma 7.2 query structures."""
    path = knowledge.path
    h = knowledge.hop_count
    avoid = instance.path_edge_set()
    tables = ShortDetourTables(h)

    # pairs_fwd[i][k] = best d' among harvested pairs (k, d') at v_i.
    pairs_fwd: List[Dict[int, Number]] = [{} for _ in range(h + 1)]
    pairs_bwd: List[Dict[int, Number]] = [{} for _ in range(h + 1)]

    with net.ledger.phase(phase):
        for scale in scales:
            budget = scale.hop_budget
            seeds_fwd = {
                path[i]: (i, knowledge.dist_to_t[i]) for i in range(h + 1)
            }
            fwd = pruned_max_hop_bfs(
                net, seeds=seeds_fwd, hop_limit=budget,
                avoid_edges=avoid, delay=scale.delay,
                record_for=path, sense="backward", select="max",
                phase=f"scaled-bfs(d={scale.d})")
            seeds_bwd = {
                path[i]: (i, knowledge.dist_from_s[i])
                for i in range(h + 1)
            }
            bwd = pruned_max_hop_bfs(
                net, seeds=seeds_bwd, hop_limit=budget,
                avoid_edges=avoid, delay=scale.delay,
                record_for=path, sense="forward", select="min",
                phase=f"scaled-bfs-rev(d={scale.d})")
            for i in range(h + 1):
                table_f = fwd[path[i]]
                table_b = bwd[path[i]]
                dist_s_i = knowledge.dist_from_s[i]
                dist_t_i = knowledge.dist_to_t[i]
                for hop in range(1, budget + 1):
                    entry = table_f[hop]
                    if entry is not None and entry[0] > i:
                        j, dist_t_j = entry
                        d_prime = dist_s_i + scale.length(hop) + dist_t_j
                        best = pairs_fwd[i].get(j)
                        if best is None or d_prime < best:
                            pairs_fwd[i][j] = d_prime
                    entry = table_b[hop]
                    if entry is not None and entry[0] < i:
                        j, dist_s_j = entry
                        d_prime = dist_s_j + scale.length(hop) + dist_t_i
                        best = pairs_bwd[i].get(j)
                        if best is None or d_prime < best:
                            pairs_bwd[i][j] = d_prime

        # Lemma 7.2 — local suffix/prefix minima over the pair sets.
        for i in range(h + 1):
            running: Number = INF
            for j in range(h, i, -1):
                candidate = pairs_fwd[i].get(j)
                if candidate is not None and candidate < running:
                    running = candidate
                tables.forward[i][j] = running
            running = INF
            for j in range(0, i):
                candidate = pairs_bwd[i].get(j)
                if candidate is not None and candidate < running:
                    running = candidate
                tables.backward[i][j] = running
    return tables
