"""Proposition 7.1 — (1+ε) short-detour replacement paths, weighted.

Driver gluing the Section 7 pieces: the rounding-based short-detour
approximators (Lemma 7.5 / 7.2), the interval sweeps (Lemmas 7.7/7.8)
and the interval broadcast (Lemma 7.9), finished by the local case
analysis of the Proposition 7.1 proof.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from ..congest.network import CongestNetwork
from ..congest.spanning_tree import SpanningTree
from ..graphs.instance import RPathsInstance
from ..core.knowledge import PathKnowledge
from .approximators import build_short_detour_tables
from .intervals import (
    combine_short_detours,
    distant_detours,
    interval_partition,
    nearby_detours,
)
from .rounding import Scale


def short_detour_lengths_weighted(
    instance: RPathsInstance,
    net: CongestNetwork,
    tree: SpanningTree,
    knowledge: PathKnowledge,
    zeta: int,
    scales: Sequence[Scale],
    phase: str = "short-detour(P7.1)",
) -> List[object]:
    """Proposition 7.1 — returns per-edge values x with
    |st ⋄ e| ≤ x ≤ (1+ε) · (best short-detour replacement)."""
    with net.ledger.phase(phase):
        tables = build_short_detour_tables(
            instance, net, knowledge, scales)
        width = max(1, math.ceil(instance.n ** (2.0 / 3.0)))
        intervals = interval_partition(knowledge.hop_count, width)
        nearby_a, nearby_b = nearby_detours(
            net, knowledge, tables, intervals)
        cross = distant_detours(
            net, tree, knowledge, tables, intervals)
        return combine_short_detours(
            knowledge, tables, intervals, nearby_a, nearby_b, cross)
