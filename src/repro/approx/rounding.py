"""Section 7.1 — the rounding graphs G_d and the scale ladder.

For a guess d of the detour weight, the graph G_d replaces every edge e
of G \\ P with a path of ⌈w(e)/μ_d⌉ unit-weight edges, μ_d = εd/(2ζ).
We never materialise G_d: the simulator runs hop-BFS on G with the
per-edge *delay* ⌈w/μ_d⌉, which is exactly BFS on G_d (Observations
7.3/7.4 are verified directly as unit tests of :func:`subdivided_hops`
and :func:`scale_length`).

To keep everything exact we work in integer arithmetic: ε = eps_num /
eps_den, so μ_d = eps_num·d / (2ζ·eps_den) and

    ⌈w/μ_d⌉ = ⌈ w · 2ζ·eps_den / (eps_num·d) ⌉

is an integer ceiling division; a hop count h in G_d converts back to a
length h·μ_d, an exact Fraction rendered as float only at the API edge.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import List


def epsilon_as_fraction(epsilon: float) -> Fraction:
    """A conservative rational ε̂ ≤ ε (so guarantees only tighten)."""
    if not 0 < epsilon < 1:
        raise ValueError("epsilon must lie in (0, 1)")
    frac = Fraction(epsilon).limit_denominator(10 ** 6)
    if frac > Fraction(str(epsilon)):
        frac = Fraction(str(epsilon))
    return frac


@dataclass(frozen=True)
class Scale:
    """One rung of the d = 2, 4, 8, ... ladder."""

    d: int
    zeta: int
    eps: Fraction

    @property
    def mu(self) -> Fraction:
        """μ_d = εd / (2ζ) — the rounding unit."""
        return self.eps * self.d / (2 * self.zeta)

    def delay(self, weight: int) -> int:
        """⌈w/μ_d⌉ — hops an edge of weight w occupies in G_d."""
        num = weight * 2 * self.zeta * self.eps.denominator
        den = self.eps.numerator * self.d
        return -(-num // den)

    def length(self, hops: int) -> Fraction:
        """h·μ_d — the G_d length of an exact-h walk."""
        return hops * self.mu

    @property
    def hop_budget(self) -> int:
        """ζ* = ⌈ζ(1 + 2/ε)⌉ — Observation 7.4's hop bound."""
        budget = self.zeta * (1 + Fraction(2) / self.eps)
        return math.ceil(budget)


def scale_ladder(zeta: int, epsilon: float,
                 max_length: int) -> List[Scale]:
    """All scales d = 2^1 .. 2^⌈log(max_length)⌉ (Lemma 7.5's loop).

    ``max_length`` should upper-bound any relevant path weight (m·W in
    the paper; callers pass the instance's total edge weight).
    """
    eps = epsilon_as_fraction(epsilon)
    scales = []
    d = 2
    top = max(2, max_length)
    while True:
        scales.append(Scale(d=d, zeta=zeta, eps=eps))
        if d >= top:
            break
        d *= 2
    return scales


def subdivided_hops(weights: List[int], scale: Scale) -> int:
    """Hop count of a G_d path corresponding to edge weights ``weights``
    (Observation 7.4's quantity Σ ⌈w/μ⌉)."""
    return sum(scale.delay(w) for w in weights)


def scale_length(weights: List[int], scale: Scale) -> Fraction:
    """G_d length of the same path — Observation 7.3's quantity."""
    return scale.length(subdivided_hops(weights, scale))
