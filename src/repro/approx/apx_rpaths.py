"""Theorem 3 — (1+ε)-Apx-RPaths for weighted directed graphs.

Runs, on a fresh CONGEST network:

1. Lemma 2.5 knowledge acquisition (weighted distances along P);
2. Proposition 7.1 — short detours via rounding + interval pipelining;
3. Proposition 7.11 — long detours via scaled landmark BFS;
4. the pointwise minimum.

Output guarantee (Definition 2.2): for each edge e of P, the reported x
satisfies |st ⋄ e| ≤ x ≤ (1+ε)·|st ⋄ e| w.h.p.  Lengths are reported as
floats; internally everything is exact rational arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .. import telemetry
from ..congest.metrics import RoundLedger
from ..congest.network import resolve_fabric
from ..congest.spanning_tree import build_spanning_tree
from ..congest.words import INF
from ..graphs.instance import RPathsInstance
from ..core.knowledge import acquire_path_knowledge, oracle_knowledge
from ..core.rpaths import default_zeta
from .long_detour_approx import long_detour_lengths_weighted
from .rounding import scale_ladder
from .short_detour_approx import short_detour_lengths_weighted


@dataclass
class ApxRPathsReport:
    """Output of a distributed (1+ε)-Apx-RPaths execution."""

    instance_name: str
    epsilon: float
    lengths: List[float]
    ledger: RoundLedger
    zeta: int
    scale_count: int
    landmark_count: int = 0
    extras: Dict[str, object] = field(default_factory=dict)

    @property
    def rounds(self) -> int:
        return self.ledger.rounds

    @property
    def messages(self) -> int:
        return self.ledger.messages


def solve_apx_rpaths(
    instance: RPathsInstance,
    epsilon: float = 0.25,
    zeta: Optional[int] = None,
    seed: int = 0,
    landmarks: Optional[Sequence[int]] = None,
    landmark_c: float = 2.0,
    use_oracle_knowledge: bool = False,
    bandwidth_words: Optional[int] = None,
    fabric: str = "fast",
) -> ApxRPathsReport:
    """Theorem 3: solve (1+ε)-Apx-RPaths on a weighted directed instance.

    Unweighted instances are accepted too (every guarantee only
    tightens), which the cross-validation tests exploit.
    """
    fabric = resolve_fabric(fabric)
    if zeta is None:
        zeta = default_zeta(instance.n)

    with telemetry.span("solve/apx-rpaths", instance=instance.name,
                        n=instance.n, fabric=fabric,
                        epsilon=epsilon, zeta=zeta) as sp:
        net = instance.build_network(bandwidth_words=bandwidth_words,
                                     fabric=fabric)
        sp.set_ledger(net.ledger)
        tree = build_spanning_tree(net)
        if use_oracle_knowledge:
            knowledge = oracle_knowledge(instance)
        else:
            knowledge = acquire_path_knowledge(
                instance, net, tree=tree, seed=seed)

        max_length = sum(w for _, _, w in instance.edges)
        scales = scale_ladder(zeta, epsilon, max_length)

        short = short_detour_lengths_weighted(
            instance, net, tree, knowledge, zeta, scales)
        long_ = long_detour_lengths_weighted(
            instance, net, tree, knowledge, zeta, scales,
            landmarks=landmarks, seed=seed + 1, landmark_c=landmark_c)

        lengths: List[float] = []
        for a, b in zip(short, long_):
            best = min(a, b)
            lengths.append(float(best) if best < INF else float("inf"))

    if landmarks is not None:
        landmark_count = len(set(landmarks))
    else:
        from ..core.landmarks import sample_landmarks
        landmark_count = len(sample_landmarks(
            instance.n, zeta, c=landmark_c, seed=seed + 1))
    return ApxRPathsReport(
        instance_name=instance.name,
        epsilon=epsilon,
        lengths=lengths,
        ledger=net.ledger,
        zeta=zeta,
        scale_count=len(scales),
        landmark_count=landmark_count,
        extras={"short": short, "long": long_},
    )
