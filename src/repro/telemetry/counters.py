"""Process-local metrics registry: counters, gauges, summaries.

One global :class:`MetricsRegistry` (module-level :data:`registry`)
collects named, labeled counters from every instrumented layer:

* kernel dispatch outcomes (``repro_kernel_dispatch_total``, see
  :mod:`repro.telemetry.dispatch`),
* serve-tier LRU / spill / oracle-build events,
* result-store hits / misses / corrupt-object drops,
* executor cell outcomes and latency summaries.

The registry is **fork-safe**: series are keyed by pid, and the first
touch after a fork resets the inherited state, so a ``pool_map`` worker
never double-reports the parent's counts (and the parent never sees a
worker's — workers export their own snapshot through the trace sink or
their return values).

Exports: :meth:`MetricsRegistry.snapshot` (JSON-safe dict, used by the
trace sink and ``ShardedQueryService.stats()``) and
:meth:`MetricsRegistry.exposition` (Prometheus text format, one
``# TYPE`` block per metric).

Increment cost is two dict lookups; the registry is always on — unlike
spans there is no enable switch to check, because the counted events
(one per kernel dispatch, LRU probe, or cell) are orders of magnitude
rarer than the work they annotate.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Optional, Tuple

LabelItems = Tuple[Tuple[str, str], ...]


def _label_items(labels: Dict[str, str]) -> LabelItems:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def series_name(name: str, labels: LabelItems) -> str:
    """Prometheus-style series key: ``name{k="v",...}``."""
    if not labels:
        return name
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return f"{name}{{{inner}}}"


def parse_series(key: str) -> Tuple[str, Dict[str, str]]:
    """Inverse of :func:`series_name` (for snapshot consumers)."""
    if "{" not in key:
        return key, {}
    name, _, rest = key.partition("{")
    labels: Dict[str, str] = {}
    for part in rest.rstrip("}").split(","):
        if not part:
            continue
        k, _, v = part.partition("=")
        labels[k] = v.strip('"')
    return name, labels


class MetricsRegistry:
    """Named, labeled counters / gauges / summaries for one process."""

    def __init__(self) -> None:
        self._pid = os.getpid()
        #: (name, labels) -> numeric value.
        self._counters: Dict[Tuple[str, LabelItems], float] = {}
        self._gauges: Dict[Tuple[str, LabelItems], float] = {}
        #: (name, labels) -> [count, sum, min, max].
        self._summaries: Dict[Tuple[str, LabelItems], List[float]] = {}

    def _check_fork(self) -> None:
        pid = os.getpid()
        if pid != self._pid:
            self._pid = pid
            self._counters = {}
            self._gauges = {}
            self._summaries = {}

    # -- writing -------------------------------------------------------------

    def inc(self, name: str, amount: float = 1, **labels) -> None:
        self._check_fork()
        key = (name, _label_items(labels))
        self._counters[key] = self._counters.get(key, 0) + amount

    def set_gauge(self, name: str, value: float, **labels) -> None:
        self._check_fork()
        self._gauges[(name, _label_items(labels))] = value

    def observe(self, name: str, value: float, **labels) -> None:
        """Record one sample into a count/sum/min/max summary."""
        self._check_fork()
        key = (name, _label_items(labels))
        entry = self._summaries.get(key)
        if entry is None:
            self._summaries[key] = [1, value, value, value]
        else:
            entry[0] += 1
            entry[1] += value
            if value < entry[2]:
                entry[2] = value
            if value > entry[3]:
                entry[3] = value

    def reset(self) -> None:
        self._check_fork()
        self._counters.clear()
        self._gauges.clear()
        self._summaries.clear()

    # -- reading -------------------------------------------------------------

    def value(self, name: str, **labels) -> float:
        self._check_fork()
        return self._counters.get((name, _label_items(labels)), 0)

    def counters_named(self, name: str) -> Dict[LabelItems, float]:
        """All series of one counter, keyed by their label items."""
        self._check_fork()
        return {labels: v for (n, labels), v in self._counters.items()
                if n == name}

    def snapshot(self) -> Dict[str, object]:
        """JSON-safe dump: ``{"counters": {...}, "gauges": {...},
        "summaries": {series: {count, sum, min, max}}}``."""
        self._check_fork()
        return {
            "counters": {
                series_name(n, labels): v
                for (n, labels), v in sorted(self._counters.items())
            },
            "gauges": {
                series_name(n, labels): v
                for (n, labels), v in sorted(self._gauges.items())
            },
            "summaries": {
                series_name(n, labels): {
                    "count": entry[0], "sum": entry[1],
                    "min": entry[2], "max": entry[3],
                }
                for (n, labels), entry in sorted(self._summaries.items())
            },
        }

    def exposition(self) -> str:
        """Prometheus text exposition of the whole registry."""
        self._check_fork()
        lines: List[str] = []

        def emit(kind: str,
                 items: Iterable[Tuple[Tuple[str, LabelItems], float]],
                 ) -> None:
            seen = set()
            for (name, labels), value in sorted(items):
                if name not in seen:
                    lines.append(f"# TYPE {name} {kind}")
                    seen.add(name)
                rendered = (f"{value:.9g}" if isinstance(value, float)
                            else str(value))
                lines.append(f"{series_name(name, labels)} {rendered}")

        emit("counter", self._counters.items())
        emit("gauge", self._gauges.items())
        summary_points = []
        for (name, labels), entry in self._summaries.items():
            summary_points.append(((name + "_count", labels),
                                   entry[0]))
            summary_points.append(((name + "_sum", labels), entry[1]))
            summary_points.append(((name + "_min", labels), entry[2]))
            summary_points.append(((name + "_max", labels), entry[3]))
        emit("gauge", summary_points)
        return "\n".join(lines) + ("\n" if lines else "")


class BoundCounter:
    """One pre-resolved counter series: label sorting paid at bind time.

    :meth:`MetricsRegistry.inc` costs ~1µs per call in label
    normalization — negligible per kernel dispatch or LRU probe, but
    measurable on per-query paths (the oracle O(1) hit answers in
    ~3µs).  A bound counter freezes the ``(name, labels)`` key once
    and increments in two dict operations.  Fork safety rides on the
    registry's own pid check, so a bound counter created before a
    fork stays valid in the child.
    """

    __slots__ = ("_registry", "_key")

    def __init__(self, reg: MetricsRegistry, name: str,
                 labels: Dict[str, str]) -> None:
        self._registry = reg
        self._key = (name, _label_items(labels))

    def inc(self, amount: float = 1) -> None:
        counters = self._registry._counters
        key = self._key
        counters[key] = counters.get(key, 0) + amount


#: The process registry every instrumented layer writes into.
registry = MetricsRegistry()

# Forked children reset the default registry eagerly, so the
# BoundCounter fast path may skip the per-call pid check.  (The lazy
# _check_fork in every registry method stays as the portable fallback
# — spawn-start children re-import this module fresh anyway.)
if hasattr(os, "register_at_fork"):  # pragma: no branch - CPython/Unix
    os.register_at_fork(after_in_child=lambda: registry._check_fork())


def bound_counter(name: str, **labels) -> BoundCounter:
    """A :class:`BoundCounter` on the default registry (hot paths)."""
    return BoundCounter(registry, name, labels)


def merge_counter_snapshots(snapshots: Iterable[Dict[str, object]],
                            ) -> Dict[str, float]:
    """Sum the ``counters`` sections of several snapshots.

    The trace tooling uses this to aggregate per-process counter events
    (one per worker) into one run-wide view.
    """
    total: Dict[str, float] = {}
    for snap in snapshots:
        counters = snap.get("counters", snap)
        if not isinstance(counters, dict):
            continue
        for key, value in counters.items():
            if isinstance(value, (int, float)):
                total[key] = total.get(key, 0) + value
    return total


def merge_gauge_snapshots(snapshots: Iterable[Dict[str, object]],
                          ) -> Dict[str, float]:
    """Max-merge the ``gauges`` sections of several snapshots.

    Gauges are point-in-time levels, so summing across processes (the
    counter rule) would be meaningless; the run-wide view keeps each
    series' maximum — exactly right for high-water marks like
    :data:`repro.telemetry.scale.RSS_GAUGE` and a sane default for
    the rest.
    """
    merged: Dict[str, float] = {}
    for snap in snapshots:
        gauges = snap.get("gauges")
        if not isinstance(gauges, dict):
            continue
        for key, value in gauges.items():
            if isinstance(value, (int, float)):
                if key not in merged or value > merged[key]:
                    merged[key] = value
    return merged


def snapshot_counters() -> Dict[str, object]:
    """Snapshot of the default registry (convenience)."""
    return registry.snapshot()


def exposition() -> str:
    """Prometheus text exposition of the default registry."""
    return registry.exposition()


def get_registry(fresh: bool = False) -> MetricsRegistry:
    if fresh:
        registry.reset()
    return registry


def observe_optional(name: str, value: Optional[float],
                     **labels) -> None:
    """``observe`` that tolerates None (skipped sample)."""
    if value is not None:
        registry.observe(name, value, **labels)
