"""``repro.telemetry`` — spans, counters, and trace tooling.

A zero-dependency observability layer threaded through every tier of
the repo (solver cores, fabric kernels, runtime executor/store, serve
shards):

* :mod:`~repro.telemetry.trace` — contextvar-based hierarchical spans
  recording wall time joined with :class:`~repro.congest.metrics.
  RoundLedger` deltas; off by default, no-op guard when disabled.
* :mod:`~repro.telemetry.counters` — fork-safe process-local registry
  of labeled counters/gauges/summaries with JSON and Prometheus-text
  exports.
* :mod:`~repro.telemetry.dispatch` — kernel dispatch accounting
  (vector hits vs message-path fallbacks) against the reason set
  derived from the primitive registry, which CI enforces.
* :mod:`~repro.telemetry.scale` — scale-out accounting (int32 export
  decisions, send-plan cache, shared-memory lifecycle, parallel
  fan-out width, peak-RSS gauge), closed-enum enforced like dispatch.
* :mod:`~repro.telemetry.serving` — serve-daemon accounting (worker
  lifecycle events, admission outcomes, queue-depth / in-flight /
  workers-alive gauges, request-latency summary), closed-enum
  enforced like dispatch and scale.
* :mod:`~repro.telemetry.dynamic` — dynamic-graph accounting
  (mutation kinds, skip reasons, invalidation scopes, the epoch-lag
  gauge), closed-enum enforced like dispatch/scale/serving.
* :mod:`~repro.telemetry.sink` — append-only JSONL trace files, one
  per process, schema-versioned.
* :mod:`~repro.telemetry.tooling` — the ``repro trace summary`` /
  ``repro trace diff`` aggregation and rendering.

Quickstart::

    from repro import telemetry
    telemetry.enable_tracing("/tmp/trace")
    ...  # any solver / suite / serve work
    telemetry.flush()

    python -m repro trace summary /tmp/trace
"""

from .counters import (  # noqa: F401
    MetricsRegistry,
    exposition,
    merge_counter_snapshots,
    registry,
    snapshot_counters,
)
from .dispatch import (  # noqa: F401
    DISPATCH_COUNTER,
    known_kernels,
    known_reasons,
    record_fallback,
    record_vector_hit,
    unknown_reasons,
)
from .scale import (  # noqa: F401
    RSS_GAUGE,
    record_export,
    record_fanout,
    record_peak_rss,
    record_plan,
    record_shm,
    unknown_scale_labels,
)
from .dynamic import (  # noqa: F401
    record_invalidation,
    record_mutation,
    record_skip,
    set_epoch_lag,
    unknown_dynamic_labels,
)
from .serving import (  # noqa: F401
    record_admission,
    record_daemon_event,
    record_retry,
    unknown_serving_labels,
)
from .sink import (  # noqa: F401
    SCHEMA,
    latest_trace_dir,
    read_trace,
    write_meta,
)
from .tooling import (  # noqa: F401
    TraceDiff,
    TraceSummary,
    diff_summaries,
    format_diff,
    format_summary,
    load_summary,
    summarize,
)
from .trace import (  # noqa: F401
    TRACE_DIR_ENV,
    Span,
    disable_tracing,
    drain_spans,
    enable_tracing,
    flush,
    maybe_enable_from_env,
    span,
    trace_dir,
    tracing_enabled,
)
