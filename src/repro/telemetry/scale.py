"""Scale-out accounting: shared memory, fan-out, and dtype decisions.

The scale-out machinery of the solver (int32 topology exports, the
send-plan cache, ``multiprocessing.shared_memory`` topology sharing,
and the ``parallel=`` fan-out of independent k-source solves) reports
every decision here, mirroring the kernel-dispatch discipline of
:mod:`repro.telemetry.dispatch`: each counter has a **closed label
enum** declared next to its recording helper, and
:func:`unknown_scale_labels` rejects anything outside it — which is
what ``tests/test_telemetry.py`` enforces, ``--check-reasons`` style.

Counter shapes::

    repro_topology_export_total{array="indices",dtype="int32"}
    repro_sendplan_cache_total{outcome="hit"}
    repro_sharedmem_events_total{event="attach"}
    repro_parallel_fanout_total{site="landmark-kbfs"}

plus the ``repro_parallel_fanout_width`` summary (one sample per
fan-out, the worker width) and the :data:`RSS_GAUGE` gauge that the
benchmarks export so ``repro trace summary`` shows the peak RSS next
to the per-phase costs.
"""

from __future__ import annotations

from typing import Dict, List

from .counters import parse_series, registry

# -- int32-vs-int64 topology array exports -----------------------------------

#: One event per array group of every TopologyArrays / send-plan build.
EXPORT_COUNTER = "repro_topology_export_total"

ARRAY_INDICES = "indices"
ARRAY_KEYS = "keys"
ARRAY_WEIGHTS = "weights"
ARRAY_STEPS = "steps"

KNOWN_EXPORT_ARRAYS = frozenset(
    (ARRAY_INDICES, ARRAY_KEYS, ARRAY_WEIGHTS, ARRAY_STEPS))

DTYPE_INT32 = "int32"
DTYPE_INT64 = "int64"

KNOWN_EXPORT_DTYPES = frozenset((DTYPE_INT32, DTYPE_INT64))


def record_export(array: str, dtype: str) -> None:
    """Count one dtype decision for an exported topology array group."""
    registry.inc(EXPORT_COUNTER, array=array, dtype=dtype)


# -- send-plan cache ----------------------------------------------------------

#: One event per ``CSRTopology.send_arrays`` call.
PLAN_CACHE_COUNTER = "repro_sendplan_cache_total"

PLAN_HIT = "hit"
PLAN_BUILD = "build"
#: Uncacheable call (a ``delay`` callable keys no stable identity).
PLAN_BYPASS = "bypass"

KNOWN_PLAN_OUTCOMES = frozenset((PLAN_HIT, PLAN_BUILD, PLAN_BYPASS))


def record_plan(outcome: str) -> None:
    """Count one send-plan request by cache outcome."""
    registry.inc(PLAN_CACHE_COUNTER, outcome=outcome)


# -- shared-memory topology lifecycle -----------------------------------------

#: One event per shared-memory lifecycle transition.
SHM_COUNTER = "repro_sharedmem_events_total"

SHM_PUBLISH = "publish"
SHM_ATTACH = "attach"
SHM_DETACH = "detach"
SHM_UNLINK = "unlink"

KNOWN_SHM_EVENTS = frozenset(
    (SHM_PUBLISH, SHM_ATTACH, SHM_DETACH, SHM_UNLINK))


def record_shm(event: str) -> None:
    """Count one shared-memory lifecycle event."""
    registry.inc(SHM_COUNTER, event=event)


# -- parallel fan-out ---------------------------------------------------------

#: One event per fan-out decision (a batch of tasks handed to the pool).
FANOUT_COUNTER = "repro_parallel_fanout_total"

#: The forward/backward landmark kBFS pair of ``solve_rpaths``.
SITE_LANDMARK_KBFS = "landmark-kbfs"
#: The per-(failed edge, source chunk) solves of ``BatchPlanner``.
SITE_SERVE_BATCH = "serve-batch"

KNOWN_FANOUT_SITES = frozenset((SITE_LANDMARK_KBFS, SITE_SERVE_BATCH))

#: Summary of worker widths, one sample per fan-out.
FANOUT_WIDTH_SUMMARY = "repro_parallel_fanout_width"


def record_fanout(site: str, width: int) -> None:
    """Count one fan-out and record the worker width it used."""
    registry.inc(FANOUT_COUNTER, site=site)
    registry.observe(FANOUT_WIDTH_SUMMARY, width, site=site)


# -- peak RSS gauge -----------------------------------------------------------

#: Peak resident set size (bytes, via ``resource.getrusage``); exported
#: by the scale benchmark so ``repro trace summary`` surfaces it.
RSS_GAUGE = "repro_peak_rss_bytes"


def record_peak_rss(rss_bytes: float) -> None:
    registry.set_gauge(RSS_GAUGE, rss_bytes)


# -- closed-enum enforcement --------------------------------------------------

#: Counter name -> {label key: legal values} (the whole closed surface).
_ENUMS: Dict[str, Dict[str, frozenset]] = {
    EXPORT_COUNTER: {"array": KNOWN_EXPORT_ARRAYS,
                     "dtype": KNOWN_EXPORT_DTYPES},
    PLAN_CACHE_COUNTER: {"outcome": KNOWN_PLAN_OUTCOMES},
    SHM_COUNTER: {"event": KNOWN_SHM_EVENTS},
    FANOUT_COUNTER: {"site": KNOWN_FANOUT_SITES},
}


def unknown_scale_labels(counters: Dict[str, float]) -> List[str]:
    """Scale-counter labels outside the closed enums above.

    Mirrors :func:`repro.telemetry.dispatch.unknown_reasons`: a
    non-empty return fails the telemetry enum test, so a new shared
    memory event / fan-out site / export array cannot ship without
    being declared here.
    """
    bad: List[str] = []
    for key in counters:
        name, labels = parse_series(key)
        enums = _ENUMS.get(name)
        if enums is None:
            continue
        for label, legal in enums.items():
            value = labels.get(label)
            if value not in legal:
                bad.append(f"{name}:{label}:{value or '<missing>'}")
    return sorted(set(bad))
