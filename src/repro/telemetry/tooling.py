"""Trace analysis: per-phase summaries and run-to-run diffs.

Backs the ``repro trace summary`` / ``repro trace diff`` CLI verbs.
The unit of aggregation is the span *name* (``phase/<ledger phase>``,
``solve/rpaths``, ``cell/<scenario>``, ``serve/...``), which joins the
wall-clock story with the ledger story: a phase row shows both the
seconds it burned and the rounds/messages/words it charged, so a BENCH
regression becomes attributable to a phase instead of a whole solve.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .dispatch import dispatch_rows, unknown_reasons


@dataclass
class SpanAggregate:
    """All spans of one name, rolled up."""

    name: str
    count: int = 0
    wall: float = 0.0
    wall_max: float = 0.0
    rounds: int = 0
    messages: int = 0
    words: int = 0
    violations: int = 0

    def add(self, event: Dict[str, object]) -> None:
        wall = float(event.get("wall", 0.0))
        self.count += 1
        self.wall += wall
        if wall > self.wall_max:
            self.wall_max = wall
        self.rounds += int(event.get("rounds", 0))
        self.messages += int(event.get("messages", 0))
        self.words += int(event.get("words", 0))
        self.violations += int(event.get("violations", 0))


@dataclass
class TraceSummary:
    """Aggregated view of one trace (the ``summary`` verb's model)."""

    aggregates: Dict[str, SpanAggregate] = field(default_factory=dict)
    slowest: List[Dict[str, object]] = field(default_factory=list)
    counters: Dict[str, float] = field(default_factory=dict)
    #: Max-merged gauge levels (e.g. ``repro_peak_rss_bytes``).
    gauges: Dict[str, float] = field(default_factory=dict)
    info: Dict[str, object] = field(default_factory=dict)

    @property
    def span_count(self) -> int:
        return sum(agg.count for agg in self.aggregates.values())

    def fallback_rows(self) -> List[Tuple[str, str, str, float]]:
        """Kernel dispatch rows: (kernel, outcome, reason, count)."""
        return dispatch_rows(self.counters)

    def unknown_reasons(self) -> List[str]:
        return unknown_reasons(self.counters)

    def as_json(self) -> Dict[str, object]:
        return {
            "phases": {
                name: {
                    "count": agg.count,
                    "wall": round(agg.wall, 6),
                    "wall_max": round(agg.wall_max, 6),
                    "rounds": agg.rounds,
                    "messages": agg.messages,
                    "words": agg.words,
                    "violations": agg.violations,
                }
                for name, agg in sorted(self.aggregates.items())
            },
            "slowest": self.slowest,
            "fallbacks": [
                {"kernel": k, "outcome": o, "reason": r, "count": c}
                for k, o, r, c in self.fallback_rows()
            ],
            "unknown_reasons": self.unknown_reasons(),
            "counters": self.counters,
            "gauges": self.gauges,
            "info": {k: v for k, v in self.info.items()
                     if k not in ("meta", "gauges")},
        }


def summarize(spans: List[Dict[str, object]],
              counters: Dict[str, float],
              info: Optional[Dict[str, object]] = None,
              top: int = 10) -> TraceSummary:
    """Roll a trace up into per-name aggregates + top-N slowest spans."""
    info = dict(info or {})
    gauges = info.get("gauges")
    summary = TraceSummary(
        counters=dict(counters),
        gauges=dict(gauges) if isinstance(gauges, dict) else {},
        info=info)
    for event in spans:
        name = str(event.get("name", "?"))
        agg = summary.aggregates.get(name)
        if agg is None:
            agg = summary.aggregates[name] = SpanAggregate(name)
        agg.add(event)
    slowest = sorted(spans, key=lambda e: -float(e.get("wall", 0.0)))
    summary.slowest = [
        {
            "name": e.get("name"),
            "wall": float(e.get("wall", 0.0)),
            "rounds": int(e.get("rounds", 0)),
            "pid": e.get("pid"),
            "depth": e.get("depth", 0),
            "attrs": e.get("attrs", {}),
        }
        for e in slowest[:max(0, top)]
    ]
    return summary


def load_summary(path, top: int = 10) -> TraceSummary:
    """Read a trace directory/file and summarize it."""
    from .sink import read_trace
    spans, counters, info = read_trace(path)
    return summarize(spans, counters, info=info, top=top)


def format_summary(summary: TraceSummary, title: str = "") -> str:
    """Rendered tables: phases, slowest spans, fallback histogram."""
    from ..analysis.tables import format_table

    blocks: List[str] = []
    info = summary.info
    header = (f"trace: {summary.span_count} spans, "
              f"{info.get('processes', '?')} process(es), "
              f"{info.get('files', '?')} file(s)")
    if info.get("unknown_versions"):
        header += (" [unknown schema versions: "
                   f"{', '.join(info['unknown_versions'])}]")
    blocks.append((title + "\n" if title else "") + header)

    rows = []
    for agg in sorted(summary.aggregates.values(),
                      key=lambda a: -a.wall):
        rows.append([
            agg.name, agg.count, f"{agg.wall:.4f}s",
            f"{agg.wall_max:.4f}s", agg.rounds, agg.messages,
            agg.words,
        ])
    if rows:
        blocks.append(format_table(
            ["span", "count", "wall", "max", "rounds", "messages",
             "words"],
            rows, title="per-phase wall time x ledger"))

    if summary.slowest:
        rows = [
            [i + 1, s["name"], f"{s['wall']:.4f}s", s["rounds"],
             s.get("pid", "-")]
            for i, s in enumerate(summary.slowest)
        ]
        blocks.append(format_table(
            ["#", "span", "wall", "rounds", "pid"], rows,
            title=f"top {len(rows)} slowest spans"))

    fb = summary.fallback_rows()
    if fb:
        rows = [[k, o, r or "-", int(c)] for k, o, r, c in fb]
        blocks.append(format_table(
            ["kernel", "outcome", "reason", "count"], rows,
            title="kernel dispatch (vector hits vs fallbacks)"))

    if summary.gauges:
        rows = []
        for series, value in sorted(summary.gauges.items()):
            shown = (f"{value / (1 << 20):.1f} MiB"
                     if series.startswith("repro_peak_rss")
                     else f"{value:.6g}")
            rows.append([series, shown])
        blocks.append(format_table(
            ["gauge", "level"], rows,
            title="gauges (max across processes)"))
    unknown = summary.unknown_reasons()
    if unknown:
        blocks.append("UNKNOWN fallback reasons/kernels: "
                      + ", ".join(unknown))
    return "\n\n".join(blocks)


# -- diffs -------------------------------------------------------------------

@dataclass
class PhaseDelta:
    """One span name's change between two traces."""

    name: str
    wall_old: float
    wall_new: float
    rounds_old: int
    rounds_new: int

    @property
    def wall_delta(self) -> float:
        return self.wall_new - self.wall_old

    @property
    def wall_ratio(self) -> Optional[float]:
        if self.wall_old <= 0:
            return None
        return self.wall_new / self.wall_old

    @property
    def rounds_delta(self) -> int:
        return self.rounds_new - self.rounds_old


@dataclass
class TraceDiff:
    """Phase-level comparison of two traces (old vs new)."""

    deltas: List[PhaseDelta] = field(default_factory=list)
    added: List[str] = field(default_factory=list)
    removed: List[str] = field(default_factory=list)

    def regressions(self, threshold: float) -> List[PhaseDelta]:
        """Phases whose wall grew by more than ``threshold`` (frac)."""
        out = []
        for delta in self.deltas:
            ratio = delta.wall_ratio
            if ratio is not None and ratio > 1.0 + threshold:
                out.append(delta)
        return out

    def as_json(self) -> Dict[str, object]:
        return {
            "phases": [
                {
                    "name": d.name,
                    "wall_old": round(d.wall_old, 6),
                    "wall_new": round(d.wall_new, 6),
                    "wall_ratio": (None if d.wall_ratio is None
                                   else round(d.wall_ratio, 4)),
                    "rounds_old": d.rounds_old,
                    "rounds_new": d.rounds_new,
                }
                for d in self.deltas
            ],
            "added": self.added,
            "removed": self.removed,
        }


def diff_summaries(old: TraceSummary, new: TraceSummary) -> TraceDiff:
    """Join two summaries on span name."""
    diff = TraceDiff()
    names = set(old.aggregates) | set(new.aggregates)
    for name in sorted(names):
        a = old.aggregates.get(name)
        b = new.aggregates.get(name)
        if a is None:
            diff.added.append(name)
            continue
        if b is None:
            diff.removed.append(name)
            continue
        diff.deltas.append(PhaseDelta(
            name=name, wall_old=a.wall, wall_new=b.wall,
            rounds_old=a.rounds, rounds_new=b.rounds))
    diff.deltas.sort(key=lambda d: -abs(d.wall_delta))
    return diff


def format_diff(diff: TraceDiff, threshold: float = 0.25) -> str:
    """Rendered phase-delta table + regression verdict lines."""
    from ..analysis.tables import format_table

    rows = []
    for d in diff.deltas:
        ratio = d.wall_ratio
        rows.append([
            d.name,
            f"{d.wall_old:.4f}s",
            f"{d.wall_new:.4f}s",
            "-" if ratio is None else f"{ratio:.2f}x",
            d.rounds_old,
            d.rounds_new,
            f"{d.rounds_delta:+d}" if d.rounds_delta else "=",
        ])
    blocks = []
    if rows:
        blocks.append(format_table(
            ["span", "wall old", "wall new", "ratio", "rounds old",
             "rounds new", "Δrounds"],
            rows, title="phase-level wall + rounds (old -> new)"))
    for name in diff.added:
        blocks.append(f"  added:   {name}")
    for name in diff.removed:
        blocks.append(f"  removed: {name}")
    regress = diff.regressions(threshold)
    if regress:
        lines = [f"REGRESSION {d.name}: wall {d.wall_old:.4f}s -> "
                 f"{d.wall_new:.4f}s ({d.wall_ratio:.2f}x)"
                 for d in regress]
        blocks.append("\n".join(lines))
    else:
        blocks.append(f"no wall regressions beyond "
                      f"{threshold * 100:.0f}%")
    return "\n\n".join(blocks)
