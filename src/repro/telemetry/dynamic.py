"""Dynamic-graph accounting: mutations, invalidations, epoch lag.

The mutation stream (:mod:`repro.dynamic.stream`) and the serve tier's
incremental invalidation path report every decision here, mirroring
the closed-enum discipline of :mod:`repro.telemetry.dispatch`,
:mod:`~repro.telemetry.scale`, and :mod:`~repro.telemetry.serving`:
each counter's label enum is declared next to its recording helper and
:func:`unknown_dynamic_labels` rejects anything outside it — enforced
by ``tests/test_telemetry.py`` and the ``repro serve load
--check-telemetry`` CI gate (which the chaos smoke step runs).

Counter shapes::

    repro_dynamic_mutations_total{kind="fail"}
    repro_dynamic_skipped_total{reason="disconnects"}
    repro_dynamic_invalidations_total{scope="oracle"}

plus the ``repro_dynamic_epoch_lag`` gauge: how many epochs behind the
current topology the answer a client just received was (0 = fresh).
"""

from __future__ import annotations

from typing import Dict, List

from .counters import parse_series, registry

# -- mutation kinds -----------------------------------------------------------

#: One event per *applied* mutation, labeled by kind.
MUTATIONS_COUNTER = "repro_dynamic_mutations_total"

#: Edge-weight change on a weighted instance.
MUT_WEIGHT = "weight"
#: Failure arrival: the edge leaves the graph.
MUT_FAIL = "fail"
#: Healing: a previously failed (or new) edge joins the graph.
MUT_HEAL = "heal"

KNOWN_MUTATION_KINDS = frozenset((MUT_WEIGHT, MUT_FAIL, MUT_HEAL))


def record_mutation(kind: str, count: int = 1) -> None:
    """Count ``count`` applied mutations of one kind."""
    registry.inc(MUTATIONS_COUNTER, count, kind=kind)


# -- skipped mutations --------------------------------------------------------

#: One event per mutation the applier refused, labeled by reason.
SKIPPED_COUNTER = "repro_dynamic_skipped_total"

#: The mutation references an edge the graph does not have.
SKIP_UNKNOWN_EDGE = "unknown-edge"
#: Healing an edge that already exists.
SKIP_DUPLICATE_EDGE = "duplicate-edge"
#: Applying it would disconnect s from t or the comm graph.
SKIP_DISCONNECTS = "disconnects"
#: Weight mutation on an unweighted (Theorem 1) instance.
SKIP_UNWEIGHTED = "unweighted"
#: Self-loop, endpoint out of range, or non-positive weight.
SKIP_INVALID = "invalid"
#: The mutation would not change anything (same weight, etc.).
SKIP_NOOP = "noop"

KNOWN_SKIP_REASONS = frozenset((
    SKIP_UNKNOWN_EDGE, SKIP_DUPLICATE_EDGE, SKIP_DISCONNECTS,
    SKIP_UNWEIGHTED, SKIP_INVALID, SKIP_NOOP,
))


def record_skip(reason: str) -> None:
    """Count one refused mutation by reason."""
    registry.inc(SKIPPED_COUNTER, reason=reason)


# -- invalidation scopes ------------------------------------------------------

#: One event per invalidation action in the serve tier.
INVALIDATIONS_COUNTER = "repro_dynamic_invalidations_total"

#: A shard dropped (rotated to previous-epoch) one instance's oracle.
SCOPE_ORACLE = "oracle"
#: A fallback-memo row survived the epoch (provably unaffected).
SCOPE_MEMO_KEPT = "memo-kept"
#: A fallback-memo row was dropped (a mutation may have changed it).
SCOPE_MEMO_DROPPED = "memo-dropped"
#: A spilled snapshot was refused because its topology version is
#: superseded (the "stale spills never resurrect" path).
SCOPE_SPILL_STALE = "spill-stale"

KNOWN_INVALIDATION_SCOPES = frozenset((
    SCOPE_ORACLE, SCOPE_MEMO_KEPT, SCOPE_MEMO_DROPPED,
    SCOPE_SPILL_STALE,
))


def record_invalidation(scope: str, count: int = 1) -> None:
    """Count ``count`` invalidation actions of one scope."""
    registry.inc(INVALIDATIONS_COUNTER, count, scope=scope)


# -- epoch-lag gauge ----------------------------------------------------------

#: Epochs behind current topology of the last answer served (0=fresh).
EPOCH_LAG_GAUGE = "repro_dynamic_epoch_lag"


def set_epoch_lag(lag: int) -> None:
    registry.set_gauge(EPOCH_LAG_GAUGE, lag)


# -- closed-enum enforcement --------------------------------------------------

#: Counter name -> {label key: legal values} (the whole closed surface).
_ENUMS: Dict[str, Dict[str, frozenset]] = {
    MUTATIONS_COUNTER: {"kind": KNOWN_MUTATION_KINDS},
    SKIPPED_COUNTER: {"reason": KNOWN_SKIP_REASONS},
    INVALIDATIONS_COUNTER: {"scope": KNOWN_INVALIDATION_SCOPES},
}


def unknown_dynamic_labels(counters: Dict[str, float]) -> List[str]:
    """Dynamic-graph counter labels outside the closed enums above.

    Mirrors :func:`repro.telemetry.serving.unknown_serving_labels`: a
    non-empty return fails the telemetry enum test and the chaos smoke
    gate, so a new mutation kind, skip reason, or invalidation scope
    cannot ship without being declared here.
    """
    bad: List[str] = []
    for key in counters:
        name, labels = parse_series(key)
        enums = _ENUMS.get(name)
        if enums is None:
            continue
        for label, legal in enums.items():
            value = labels.get(label)
            if value not in legal:
                bad.append(f"{name}:{label}:{value or '<missing>'}")
    return sorted(set(bad))
