"""Kernel-dispatch accounting: vector hits vs message-path fallbacks.

The unified dispatcher (:func:`repro.congest.dispatch.dispatch`)
reports every routing decision here, one event per kernel invocation:

* ``outcome="vector"`` — the call ran on the array kernel;
* ``outcome="fallback"`` — the call took the message path, with a
  ``reason`` derived from the first failing constraint declared in
  the primitive registry (or from a registered escape hatch).

The legal label sets are **derived from the registry**, not
hand-maintained: :func:`known_kernels` / :func:`known_reasons` read
:mod:`repro.congest.dispatch` lazily (module-level import would be
circular — the kernels import this module for the label constants).
CI's traced smoke step runs ``repro trace summary --check-reasons``
over the collected counter snapshots and fails on any reason outside
the derived set — so a new kernel constraint cannot ship without a
registration that simultaneously documents it in ``repro kernels
list``.

Counter shape::

    repro_kernel_dispatch_total{kernel="hop_bfs",outcome="vector"}
    repro_kernel_dispatch_total{kernel="hop_bfs",outcome="fallback",
                                reason="non-functional-aux"}
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .counters import registry

#: The dispatch counter name.
DISPATCH_COUNTER = "repro_kernel_dispatch_total"

#: Kernel identifiers (one per vectorized primitive).
KERNEL_HOP_BFS = "hop_bfs"
KERNEL_MULTISOURCE = "multisource"
KERNEL_BROADCAST = "broadcast"
KERNEL_CHAIN_FLOOD = "chain_flood"
KERNEL_DP_SWEEP = "dp_sweep"
KERNEL_PATH_SWEEPS = "path_sweeps"
KERNEL_N_SHIFT = "n_shift"
KERNEL_SPANNING_TREE = "spanning_tree"
KERNEL_LANDMARK_COMPLETION = "landmark_completion"
KERNEL_PAIRWISE_MIN_SUM = "pairwise_min_sum"

# -- fallback reasons (the counter label vocabulary) -------------------------

#: The network does not run ``fabric="vector"`` at all — not a real
#: fallback, but counted so vector coverage is measurable per run.
REASON_FABRIC = "fabric-not-vector"
#: NumPy could not be imported.
REASON_NUMPY_MISSING = "numpy-missing"
#: Per-link total recording (lower-bound cut analysis) needs genuine
#: per-message routing.
REASON_RECORD_LINK_TOTALS = "record-link-totals"
#: Hop-BFS seeds whose auxiliary word is not a function of the index.
REASON_NON_FUNCTIONAL_AUX = "non-functional-aux"
#: Seed/table/init values outside the int64-safe range (or non-int).
REASON_VALUE_RANGE = "value-out-of-int64"
#: k-source key encoding ``d*k + rank`` would overflow int64.
REASON_KEY_OVERFLOW = "key-encoding-overflow"
#: A k-source BFS source is out of vertex range (the message path's
#: error behavior must win).
REASON_SOURCE_RANGE = "source-out-of-range"
#: A delay function produced steps beyond int64 mid-plan.
REASON_DELAY_OVERFLOW = "delay-overflow"
#: A sweep task carries an opaque ``combine`` closure instead of a
#: declarative ``local_min`` table.
REASON_NON_DECLARATIVE = "non-declarative-task"
#: Sweep start groups occupy overlapping link ranges.
REASON_OVERLAPPING_GROUPS = "overlapping-groups"
#: Duplicate sweep-task keys would alias engine results.
REASON_DUPLICATE_KEYS = "duplicate-keys"


def known_kernels() -> frozenset:
    """Legal ``kernel=`` labels, derived from the primitive registry."""
    from ..congest.dispatch import known_kernels as derive
    return derive()


def known_reasons() -> frozenset:
    """Legal ``reason=`` labels, derived from the registered
    constraints and escape hatches."""
    from ..congest.dispatch import known_reasons as derive
    return derive()


def __getattr__(name: str):
    # Backcompat for the pre-registry closed enums: the old frozen-set
    # names now materialize the registry-derived sets on access.
    if name == "KNOWN_KERNELS":
        return known_kernels()
    if name == "KNOWN_REASONS":
        return known_reasons()
    raise AttributeError(name)


def record_vector_hit(kernel: str) -> None:
    """Count one dispatch that ran on the array kernel."""
    registry.inc(DISPATCH_COUNTER, kernel=kernel, outcome="vector")


def record_fallback(kernel: str, reason: str) -> None:
    """Count one dispatch that took the message path."""
    registry.inc(DISPATCH_COUNTER, kernel=kernel, outcome="fallback",
                 reason=reason)


def dispatch_rows(counters: Dict[str, float],
                  ) -> List[Tuple[str, str, str, float]]:
    """Decode a merged counters mapping into dispatch rows.

    Returns ``(kernel, outcome, reason, count)`` tuples for every
    :data:`DISPATCH_COUNTER` series found (reason is ``""`` for vector
    hits).
    """
    from .counters import parse_series
    rows: List[Tuple[str, str, str, float]] = []
    for key, value in sorted(counters.items()):
        name, labels = parse_series(key)
        if name != DISPATCH_COUNTER:
            continue
        rows.append((labels.get("kernel", "?"),
                     labels.get("outcome", "?"),
                     labels.get("reason", ""), value))
    return rows


def unknown_reasons(counters: Dict[str, float]) -> List[str]:
    """Fallback reasons (or kernels) outside the registry-derived sets.

    The CI gate: a non-empty return fails the traced smoke step.
    """
    kernels = known_kernels()
    reasons = known_reasons()
    bad: List[str] = []
    for kernel, outcome, reason, _count in dispatch_rows(counters):
        if kernel not in kernels:
            bad.append(f"kernel:{kernel}")
        if outcome == "fallback" and reason not in reasons:
            bad.append(f"reason:{reason or '<empty>'}")
        if outcome not in ("vector", "fallback"):
            bad.append(f"outcome:{outcome}")
    return sorted(set(bad))
