"""Serve-daemon accounting: admission outcomes, lifecycle, gauges.

The daemon tier (:mod:`repro.serve.daemon` workers + the
:mod:`repro.serve.frontend` admission path) reports every decision
here, mirroring the closed-enum discipline of
:mod:`repro.telemetry.dispatch` and :mod:`repro.telemetry.scale`: each
counter has a label enum declared next to its recording helper, and
:func:`unknown_serving_labels` rejects anything outside it — enforced
by ``tests/test_telemetry.py`` and by ``repro serve load
--check-telemetry`` (the CI serve-daemon smoke step).

Counter shapes::

    repro_serve_daemon_events_total{event="worker-restart"}
    repro_serve_admission_total{outcome="overloaded"}

plus point-in-time gauges (queue depth, per-shard in-flight, live
worker count) and the ``repro_serve_request_seconds`` summary — one
sample per completed request, the closed-loop latency the SLO gates
read.
"""

from __future__ import annotations

from typing import Dict, List

from .counters import parse_series, registry

# -- daemon lifecycle events --------------------------------------------------

#: One event per daemon / worker lifecycle transition.
DAEMON_COUNTER = "repro_serve_daemon_events_total"

EVENT_START = "start"
EVENT_STOP = "stop"
#: A stop that waited for queued requests to finish first.
EVENT_DRAIN = "drain"
EVENT_WORKER_START = "worker-start"
EVENT_WORKER_READY = "worker-ready"
EVENT_WORKER_EXIT = "worker-exit"
#: Heartbeat went stale or the process died.
EVENT_WORKER_DEAD = "worker-dead"
EVENT_WORKER_RESTART = "worker-restart"
#: Outstanding requests re-enqueued onto a restarted worker.
EVENT_RESUBMIT = "resubmit"

KNOWN_DAEMON_EVENTS = frozenset((
    EVENT_START, EVENT_STOP, EVENT_DRAIN,
    EVENT_WORKER_START, EVENT_WORKER_READY, EVENT_WORKER_EXIT,
    EVENT_WORKER_DEAD, EVENT_WORKER_RESTART, EVENT_RESUBMIT,
))


def record_daemon_event(event: str) -> None:
    """Count one daemon lifecycle transition."""
    registry.inc(DAEMON_COUNTER, event=event)


# -- admission / request outcomes ---------------------------------------------

#: One event per front-end request, labeled by its final outcome.
ADMISSION_COUNTER = "repro_serve_admission_total"

OUTCOME_OK = "ok"
#: Rejected at admission: the bounded queue was full (backpressure —
#: the front-end sheds load instead of queueing without bound).
OUTCOME_OVERLOADED = "overloaded"
#: The per-request deadline expired before an answer arrived.
OUTCOME_TIMEOUT = "timeout"
#: The owning worker raised while answering.
OUTCOME_ERROR = "error"
#: The front-end / daemon shut down with the request unanswered.
OUTCOME_SHUTDOWN = "shutdown"
#: The owning worker died and its restart budget was exhausted.
OUTCOME_WORKER_LOST = "worker-lost"
#: Answered from a previous-epoch oracle within the request's
#: ``max_staleness`` budget while the fresh oracle re-warms
#: (degraded-mode serving; the answer is attached, like ``ok``).
OUTCOME_STALE = "stale"

KNOWN_ADMISSION_OUTCOMES = frozenset((
    OUTCOME_OK, OUTCOME_OVERLOADED, OUTCOME_TIMEOUT,
    OUTCOME_ERROR, OUTCOME_SHUTDOWN, OUTCOME_WORKER_LOST,
    OUTCOME_STALE,
))

#: Outcomes that carry an answer a client can use.
SERVED_OUTCOMES = frozenset((OUTCOME_OK, OUTCOME_STALE))


def record_admission(outcome: str) -> None:
    """Count one front-end request by its final outcome."""
    registry.inc(ADMISSION_COUNTER, outcome=outcome)


# -- client retries -----------------------------------------------------------

#: One event per retry the bounded-backoff client helper performed,
#: labeled by the outcome that triggered it (only transient outcomes
#: are ever retried, so the enum is that subset).
RETRY_COUNTER = "repro_serve_retries_total"

RETRYABLE_OUTCOMES = frozenset((OUTCOME_OVERLOADED,
                                OUTCOME_WORKER_LOST))


def record_retry(outcome: str) -> None:
    """Count one client retry by the outcome that triggered it."""
    registry.inc(RETRY_COUNTER, outcome=outcome)


# -- gauges + latency summary -------------------------------------------------

#: Current depth of the front-end's bounded admission queue.
QUEUE_DEPTH_GAUGE = "repro_serve_queue_depth"
#: Queries dispatched to a shard's worker and not yet answered.
INFLIGHT_GAUGE = "repro_serve_inflight"
#: Live (heartbeating) worker processes.
WORKERS_ALIVE_GAUGE = "repro_serve_workers_alive"

#: One sample per completed request: submit -> resolve wall seconds.
REQUEST_SECONDS_SUMMARY = "repro_serve_request_seconds"


def set_queue_depth(depth: int) -> None:
    registry.set_gauge(QUEUE_DEPTH_GAUGE, depth)


def set_inflight(shard: int, count: int) -> None:
    registry.set_gauge(INFLIGHT_GAUGE, count, shard=str(shard))


def set_workers_alive(count: int) -> None:
    registry.set_gauge(WORKERS_ALIVE_GAUGE, count)


def observe_request_seconds(seconds: float) -> None:
    registry.observe(REQUEST_SECONDS_SUMMARY, seconds)


# -- closed-enum enforcement --------------------------------------------------

#: Counter name -> {label key: legal values} (the whole closed surface).
_ENUMS: Dict[str, Dict[str, frozenset]] = {
    DAEMON_COUNTER: {"event": KNOWN_DAEMON_EVENTS},
    ADMISSION_COUNTER: {"outcome": KNOWN_ADMISSION_OUTCOMES},
    RETRY_COUNTER: {"outcome": RETRYABLE_OUTCOMES},
}


def unknown_serving_labels(counters: Dict[str, float]) -> List[str]:
    """Serve-daemon counter labels outside the closed enums above.

    Mirrors :func:`repro.telemetry.scale.unknown_scale_labels`: a
    non-empty return fails the telemetry enum test and the
    ``repro serve load --check-telemetry`` gate, so a new lifecycle
    event or admission outcome cannot ship without being declared
    here.
    """
    bad: List[str] = []
    for key in counters:
        name, labels = parse_series(key)
        enums = _ENUMS.get(name)
        if enums is None:
            continue
        for label, legal in enums.items():
            value = labels.get(label)
            if value not in legal:
                bad.append(f"{name}:{label}:{value or '<missing>'}")
    return sorted(set(bad))
