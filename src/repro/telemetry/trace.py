"""Hierarchical wall-clock spans, joined with ledger deltas.

The tracer answers the question the :class:`~repro.congest.metrics.
RoundLedger` cannot: *where does the wall time go*?  Every span records
its wall-clock duration, and — when it is handed a ledger — the delta
of rounds / messages / words / violations charged while it was open,
so the logical CONGEST cost and the physical cost land in one tree.

Design constraints, in order:

1. **Disabled is free.**  Tracing is off by default; ``span(...)`` on
   the disabled path is one module-global check returning a shared
   no-op context manager — no allocation, no clock read.  The
   committed microbench (``benchmarks/bench_telemetry.py``) gates the
   end-to-end overhead of the disabled guard at < 2%.
2. **Results are untouched.**  Spans observe; they never feed back
   into the algorithms.  ``tests/test_telemetry.py`` asserts traced
   runs are bit-identical (outputs *and* ledgers) to untraced runs on
   every fabric.
3. **Fork-safe.**  ``pool_map`` workers inherit the module state on
   fork; the tracer and its span buffer are keyed by pid, so a worker
   starts from an empty buffer instead of re-flushing the parent's
   spans.  Workers opt in via ``$REPRO_TRACE_DIR`` (set by
   :func:`enable_tracing` in the parent) and flush their own
   per-pid JSONL file.

The span stack lives in a :mod:`contextvars` context variable, so
nesting survives generators/async scheduling and never leaks across
threads.
"""

from __future__ import annotations

import contextvars
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: Environment variable that propagates tracing into worker processes:
#: when set, workers enable tracing and flush spans into the named
#: directory (one ``trace-<pid>.jsonl`` file per process).
TRACE_DIR_ENV = "REPRO_TRACE_DIR"

#: Module-global fast-path guard.  Read directly (one dict lookup) by
#: the instrumented hot paths; mutated only via enable/disable below.
_ENABLED = False

#: Ambient span stack (indices into the tracer's span list).
_STACK: contextvars.ContextVar = contextvars.ContextVar(
    "repro-span-stack", default=())


@dataclass
class Span:
    """One finished (or in-flight) traced region."""

    name: str
    span_id: int
    parent_id: int  # -1 for roots
    depth: int
    start: float  # time.time(), for cross-process ordering
    wall: float = 0.0
    #: Ledger deltas over the span (zeros when no ledger was attached).
    rounds: int = 0
    messages: int = 0
    words: int = 0
    violations: int = 0
    attrs: Dict[str, object] = field(default_factory=dict)

    # -- runtime-only fields (not serialized) --
    _perf_start: float = 0.0
    _ledger: Optional[object] = None
    _base: tuple = (0, 0, 0, 0)

    def set_ledger(self, ledger, fresh: bool = False) -> None:
        """Attach a ledger; deltas are measured from this moment.

        ``fresh=True`` claims the ledger from zero instead — for spans
        that logically cover a ledger created (and already charged)
        inside the span before it could be attached.
        """
        self._ledger = ledger
        if fresh:
            self._base = (0, 0, 0, 0)
            return
        root = ledger[ledger.ROOT]
        self._base = (root.rounds, root.messages, root.words,
                      root.violations)

    def set_attrs(self, **attrs) -> None:
        self.attrs.update(attrs)

    def _close(self) -> None:
        self.wall = time.perf_counter() - self._perf_start
        if self._ledger is not None:
            root = self._ledger[self._ledger.ROOT]
            b = self._base
            self.rounds = root.rounds - b[0]
            self.messages = root.messages - b[1]
            self.words = root.words - b[2]
            self.violations = root.violations - b[3]
            self._ledger = None

    def as_event(self) -> Dict[str, object]:
        """JSON-safe trace event (the sink's wire format)."""
        out: Dict[str, object] = {
            "kind": "span",
            "name": self.name,
            "id": self.span_id,
            "parent": self.parent_id,
            "depth": self.depth,
            "start": round(self.start, 6),
            "wall": round(self.wall, 9),
        }
        if self.rounds or self.messages or self.words:
            out["rounds"] = self.rounds
            out["messages"] = self.messages
            out["words"] = self.words
        if self.violations:
            out["violations"] = self.violations
        if self.attrs:
            out["attrs"] = self.attrs
        return out


class _NoopSpan:
    """Shared disabled-path context manager: everything is a no-op."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def set_ledger(self, ledger, fresh: bool = False) -> None:
        pass

    def set_attrs(self, **attrs) -> None:
        pass


_NOOP = _NoopSpan()


class _ActiveSpan:
    """Context manager recording one span into the process tracer."""

    __slots__ = ("span",)

    def __init__(self, span: Span) -> None:
        self.span = span

    def __enter__(self) -> Span:
        _STACK.set(_STACK.get() + (self.span.span_id,))
        return self.span

    def __exit__(self, *exc) -> bool:
        stack = _STACK.get()
        # Tolerate tracing being toggled mid-span: only pop our own id.
        if stack and stack[-1] == self.span.span_id:
            _STACK.set(stack[:-1])
        self.span._close()
        return False


class Tracer:
    """Per-process span buffer (pid-keyed: resets itself after fork)."""

    def __init__(self) -> None:
        self._pid = os.getpid()
        self.spans: List[Span] = []
        self._next_id = 0

    def _check_fork(self) -> None:
        pid = os.getpid()
        if pid != self._pid:
            self._pid = pid
            self.spans = []
            self._next_id = 0
            _STACK.set(())

    def open(self, name: str, ledger=None, **attrs) -> _ActiveSpan:
        self._check_fork()
        stack = _STACK.get()
        span = Span(
            name=name,
            span_id=self._next_id,
            parent_id=stack[-1] if stack else -1,
            depth=len(stack),
            start=time.time(),
            attrs=dict(attrs),
        )
        span._perf_start = time.perf_counter()
        self._next_id += 1
        self.spans.append(span)
        if ledger is not None:
            span.set_ledger(ledger)
        return _ActiveSpan(span)

    def drain(self) -> List[Span]:
        """Remove and return the buffered spans (flush support)."""
        self._check_fork()
        done, live = [], []
        open_ids = set(_STACK.get())
        for span in self.spans:
            (live if span.span_id in open_ids else done).append(span)
        self.spans = live
        return done


#: The process tracer.  One per process; fork-guarded.
_TRACER = Tracer()


def span(name: str, ledger=None, **attrs):
    """Open a traced region (the instrumentation entry point).

    Disabled path: returns a shared no-op context manager.  Enabled
    path: records wall time, nesting, and — when ``ledger`` is given
    (or attached later via ``set_ledger``) — the ledger's root-phase
    deltas over the region.
    """
    if not _ENABLED:
        return _NOOP
    return _TRACER.open(name, ledger=ledger, **attrs)


def tracing_enabled() -> bool:
    return _ENABLED


def trace_dir() -> Optional[str]:
    """The sink directory tracing flushes into (None when unset)."""
    return os.environ.get(TRACE_DIR_ENV) or None


def enable_tracing(sink_dir: Optional[str] = None) -> None:
    """Turn span recording on, optionally rooting the JSONL sink.

    ``sink_dir`` is exported as ``$REPRO_TRACE_DIR`` so that worker
    processes spawned afterwards (``pool_map``) inherit it, enable
    tracing themselves, and flush their own per-pid files next to the
    parent's.
    """
    global _ENABLED
    if sink_dir is not None:
        os.environ[TRACE_DIR_ENV] = str(sink_dir)
    _ENABLED = True


def disable_tracing() -> None:
    global _ENABLED
    _ENABLED = False
    os.environ.pop(TRACE_DIR_ENV, None)


def maybe_enable_from_env() -> bool:
    """Enable tracing if ``$REPRO_TRACE_DIR`` is set (worker entry)."""
    global _ENABLED
    if os.environ.get(TRACE_DIR_ENV):
        _ENABLED = True
    return _ENABLED


def drain_spans() -> List[Span]:
    """Remove and return this process's finished spans."""
    return _TRACER.drain()


def flush(directory: Optional[str] = None) -> Optional[str]:
    """Append buffered spans (+ a counters snapshot) to the sink.

    Writes ``trace-<pid>.jsonl`` under ``directory`` (default: the
    ``$REPRO_TRACE_DIR`` sink) and returns the file path, or None when
    there is nowhere to write.  Safe to call repeatedly: spans flush
    once, and counters events carry a sequence number so readers keep
    only the freshest snapshot per process.
    """
    directory = directory or trace_dir()
    if directory is None:
        return None
    from .sink import flush_process_events
    return flush_process_events(directory)
