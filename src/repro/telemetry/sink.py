"""JSONL trace sink: schema, per-process files, and the reader.

A *trace directory* holds one ``trace-<pid>.jsonl`` file per process
that participated in a run (the suite parent plus every ``pool_map``
worker).  Files are append-only JSONL; every line is one event stamped
with the schema version:

``{"v": "repro-trace/1", "kind": "span", "pid": ..., ...}``
    One finished span (see :meth:`repro.telemetry.trace.Span.as_event`).
``{"v": "repro-trace/1", "kind": "counters", "pid": ..., "seq": ...,
"data": {...}}``
    A registry snapshot.  Snapshots are cumulative per process, so the
    reader keeps only the highest-``seq`` event per pid and sums across
    pids.
``{"v": "repro-trace/1", "kind": "meta", ...}``
    Free-form run metadata (label, argv, code version).

Directories under the result store's ``traces/`` root are the
convention (`ResultStore.new_trace_dir`), but any directory — or a
single ``.jsonl`` file — can be read back with :func:`read_trace`.

Schema evolution: bump :data:`SCHEMA` when an event's meaning changes;
the reader accepts any ``repro-trace/*`` version and surfaces unknown
majors in the summary header instead of guessing.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Dict, Iterable, List, Optional, Tuple

SCHEMA = "repro-trace/1"
SCHEMA_PREFIX = "repro-trace/"

#: Per-process monotonically increasing counters-snapshot sequence.
_counters_seq = 0
_seq_pid = os.getpid()


def trace_file(directory) -> pathlib.Path:
    """This process's file inside the trace directory."""
    return pathlib.Path(directory) / f"trace-{os.getpid()}.jsonl"


def append_events(path, events: Iterable[Dict[str, object]]) -> None:
    """Append events as JSONL (one line each, schema-stamped)."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    pid = os.getpid()
    with path.open("a") as fh:
        for event in events:
            event.setdefault("v", SCHEMA)
            event.setdefault("pid", pid)
            fh.write(json.dumps(event, sort_keys=True,
                                default=str) + "\n")


def flush_process_events(directory) -> str:
    """Flush this process's spans + a counters snapshot to its file.

    Called by :func:`repro.telemetry.trace.flush`; returns the file
    path written.  Spans drain (each is written once); the counters
    snapshot is cumulative and carries a sequence number so repeated
    flushes from one process do not double-count.
    """
    global _counters_seq, _seq_pid
    from .counters import snapshot_counters
    from .trace import drain_spans
    if os.getpid() != _seq_pid:  # fork guard for the sequence number
        _seq_pid = os.getpid()
        _counters_seq = 0
    path = trace_file(directory)
    events: List[Dict[str, object]] = [
        span.as_event() for span in drain_spans()
    ]
    _counters_seq += 1
    events.append({
        "kind": "counters",
        "seq": _counters_seq,
        "data": snapshot_counters(),
    })
    append_events(path, events)
    return str(path)


def write_meta(directory, **meta) -> None:
    """Record run metadata into this process's trace file."""
    event: Dict[str, object] = {"kind": "meta"}
    event.update(meta)
    append_events(trace_file(directory), [event])


def _iter_files(path: pathlib.Path) -> List[pathlib.Path]:
    if path.is_dir():
        return sorted(path.glob("*.jsonl"))
    return [path]


def read_trace(path) -> Tuple[List[Dict[str, object]],
                              Dict[str, float],
                              Dict[str, object]]:
    """Load a trace directory (or single file).

    Returns ``(spans, counters, info)``:

    * ``spans`` — every span event, in file order;
    * ``counters`` — the merged counter values (freshest snapshot per
      pid, summed across pids);
    * ``info`` — reader diagnostics: files read, bad lines skipped,
      unknown schema versions encountered, any ``meta`` events, and
      ``gauges`` (freshest snapshot per pid, max across pids — the
      high-water-mark merge, e.g. peak RSS).
    """
    from .counters import merge_counter_snapshots, merge_gauge_snapshots
    root = pathlib.Path(path)
    if not root.exists():
        raise FileNotFoundError(f"no trace at {root}")
    spans: List[Dict[str, object]] = []
    latest: Dict[object, Tuple[int, Dict[str, object]]] = {}
    meta: List[Dict[str, object]] = []
    bad_lines = 0
    versions = set()
    files = _iter_files(root)
    for file in files:
        for line in file.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except ValueError:
                bad_lines += 1
                continue
            if not isinstance(event, dict):
                bad_lines += 1
                continue
            version = str(event.get("v", ""))
            if not version.startswith(SCHEMA_PREFIX):
                bad_lines += 1
                continue
            versions.add(version)
            kind = event.get("kind")
            if kind == "span":
                spans.append(event)
            elif kind == "counters":
                pid = event.get("pid", 0)
                seq = int(event.get("seq", 0))
                old = latest.get(pid)
                if old is None or seq >= old[0]:
                    latest[pid] = (seq, event.get("data", {}))
            elif kind == "meta":
                meta.append(event)
    counters = merge_counter_snapshots(
        data for _seq, data in latest.values())
    gauges = merge_gauge_snapshots(
        data for _seq, data in latest.values())
    info: Dict[str, object] = {
        "files": len(files),
        "processes": len(latest) or len({s.get("pid") for s in spans}),
        "spans": len(spans),
        "bad_lines": bad_lines,
        "versions": sorted(versions),
        "meta": meta,
        "gauges": gauges,
    }
    unknown = [v for v in versions if v != SCHEMA]
    if unknown:
        info["unknown_versions"] = unknown
    return spans, counters, info


def latest_trace_dir(store_root) -> Optional[pathlib.Path]:
    """Most recently created trace directory under a store root."""
    traces = pathlib.Path(store_root) / "traces"
    if not traces.is_dir():
        return None
    dirs = [p for p in traces.iterdir() if p.is_dir()]
    return max(dirs, key=lambda p: p.name, default=None)
