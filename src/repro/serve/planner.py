"""Batched query planner — one k-source solve per failed-edge group.

A query stream rarely arrives one lookup at a time; the planner takes a
batch and spends as few solves as possible on it:

1. Queries the oracle can answer from precomputed state ((s, t) is the
   instance's own pair) are answered immediately — O(1) each, no
   grouping needed.
2. The remaining *fallback* queries are grouped by failed edge e: all
   of them want distances in the same graph G \\ {e}, so the group's
   distinct sources are batched (``max_group`` at a time, the Lemma 5.5
   congestion knob) into **one** k-source hop-BFS on the vector fabric.
   One fabric execution answers every (s, t) pair in the group; the
   resulting distance rows are seeded into the oracle's fallback memo
   so later singleton queries for the same (s, e) are cache hits.

The batching rule in one line: *solves per batch = Σ over distinct
failed edges of ⌈distinct sources / max_group⌉*, versus one solve per
query for the unbatched path.

The k-source kernel computes hop distances, so batching applies to
unweighted instances (Theorem 1's regime); on weighted instances the
planner degrades gracefully to the oracle's per-(s, e) memoized
Dijkstra fallback — still one solve per distinct (source, edge), never
per query.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .. import telemetry
from ..congest.multisource import multi_source_hop_bfs
from ..congest.words import INF
from .oracle import ReplacementPathOracle
from .queries import (
    BATCHED_SOLVE,
    Edge,
    Query,
    QueryAnswer,
    kind_counts,
)

#: Default cap on sources per k-source solve (O(k + h) rounds each).
DEFAULT_MAX_GROUP = 32


@dataclass
class PlanReport:
    """What one batch cost: groups formed, solves spent, rounds paid."""

    queries: int = 0
    oracle_answered: int = 0
    groups: int = 0
    batch_solves: int = 0
    batched_queries: int = 0
    memo_answered: int = 0
    rounds: int = 0
    kinds: Dict[str, int] = field(default_factory=dict)

    @property
    def solves_saved(self) -> int:
        """Per-query solves the batching avoided."""
        return self.batched_queries - self.batch_solves

    def as_metrics(self) -> Dict[str, object]:
        return {
            "queries": self.queries,
            "oracle_answered": self.oracle_answered,
            "groups": self.groups,
            "batch_solves": self.batch_solves,
            "batched_queries": self.batched_queries,
            "memo_answered": self.memo_answered,
            "solves_saved": self.solves_saved,
            "rounds": self.rounds,
        }


class BatchPlanner:
    """Answer query batches against one oracle with grouped solves."""

    def __init__(self, oracle: ReplacementPathOracle,
                 fabric: str = "vector",
                 max_group: int = DEFAULT_MAX_GROUP) -> None:
        if max_group < 1:
            raise ValueError("max_group must be positive")
        self.oracle = oracle
        self.fabric = fabric
        self.max_group = max_group
        self._net = None  # built lazily; reused across batches
        self._parallel = 1
        self._shared = None  # PublishedTopology while warmed parallel

    def _network(self):
        if self._net is None:
            self._net = self.oracle.instance.build_network(
                fabric=self.fabric)
        return self._net

    def warm(self, parallel: int = 1) -> None:
        """Pre-build the network; opt into multiprocess fan-out.

        With ``parallel >= 2`` the topology's frozen array export is
        published once into shared memory
        (:mod:`repro.runtime.sharedmem`); every subsequent batch fans
        its per-(failed edge, source chunk) solves over that many
        workers attached to the shared arrays.  Answers, oracle
        seeding, and the ledger stay bit-identical to the serial
        path.  Call :meth:`close` when done to release the block.
        """
        net = self._network()
        self._parallel = max(1, int(parallel))
        if self._parallel >= 2 and self._shared is None:
            from ..runtime import sharedmem
            self._shared = sharedmem.publish_topology(net.topology)

    def close(self) -> None:
        """Release the shared-memory block (idempotent)."""
        if self._shared is not None:
            self._shared.close()
            self._shared = None

    def __enter__(self) -> "BatchPlanner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _solve_jobs(self, net, jobs: Sequence[Tuple[Edge, List[int]]]):
        """Distance tables for the (failed edge, chunk) jobs, in order.

        Serial by default; a warmed-parallel planner fans the jobs
        over workers attached to the published topology and merges
        their ledgers back in job order (bit-identical either way).
        """
        if net is None or not jobs:
            return []
        hop_limit = self.oracle.instance.n
        if (self._shared is not None and self._parallel >= 2
                and len(jobs) >= 2):
            from ..runtime import sharedmem
            from ..telemetry import scale as _scale
            if sharedmem.fanout_ready(net, self._parallel,
                                      self._shared):
                calls = [
                    dict(sources=chunk, hop_limit=hop_limit,
                         avoid_edges=frozenset([edge]),
                         phase=f"serve-batch({edge[0]},{edge[1]})")
                    for edge, chunk in jobs
                ]
                return sharedmem.fanout_kbfs(
                    net, self._shared, self._parallel, calls,
                    site=_scale.SITE_SERVE_BATCH)
        return [
            multi_source_hop_bfs(
                net, chunk, hop_limit=hop_limit,
                avoid_edges=frozenset([edge]),
                phase=f"serve-batch({edge[0]},{edge[1]})")
            for edge, chunk in jobs
        ]

    def answer_batch(
        self, queries: Sequence[Query],
    ) -> Tuple[List[QueryAnswer], PlanReport]:
        """Answer ``queries`` (order preserved) with grouped solves."""
        inst = self.oracle.instance
        report = PlanReport(queries=len(queries))
        answers: List[Optional[QueryAnswer]] = [None] * len(queries)
        rounds_before = (self._net.ledger.rounds
                         if self._net is not None else 0)

        with telemetry.span("serve/plan-batch",
                            instance=inst.name,
                            queries=len(queries)) as sp:
            # Pass 1: O(1) oracle answers and already-memoized
            # fallbacks.  ``groups`` collects what genuinely needs new
            # solves.
            groups: Dict[Edge, Dict[int, List[int]]] = {}
            for idx, q in enumerate(queries):
                edge = (int(q.edge[0]), int(q.edge[1]))
                if ((q.s == inst.s and q.t == inst.t)
                        or self.oracle.fallback_cached_for(q.s, edge)
                        or inst.weighted):
                    answers[idx] = self.oracle.query(
                        q.s, q.t, edge, instance_key=q.instance)
                else:
                    groups.setdefault(edge, {}).setdefault(
                        q.s, []).append(idx)

            # Pass 2: one k-source solve per (failed edge, source
            # chunk).  The jobs are independent by construction, so a
            # warmed-parallel planner fans them over worker processes
            # and replays the results in the same serial order below.
            net = self._network() if groups else None
            if net is not None:
                sp.set_ledger(net.ledger)
            jobs: List[Tuple[Edge, List[int]]] = []
            for edge, by_source in sorted(groups.items()):
                report.groups += 1
                sources = sorted(by_source)
                for lo in range(0, len(sources), self.max_group):
                    jobs.append((edge, sources[lo:lo + self.max_group]))
            tables = self._solve_jobs(net, jobs)
            for (edge, chunk), dist in zip(jobs, tables):
                by_source = groups[edge]
                report.batch_solves += 1
                for rank, s in enumerate(chunk):
                    self.oracle.seed_fallback(s, edge, dist[rank])
                    for idx in by_source[s]:
                        q = queries[idx]
                        length = dist[rank][q.t]
                        answers[idx] = QueryAnswer(
                            q, INF if length >= INF else length,
                            BATCHED_SOLVE)
                        report.batched_queries += 1

        final = [a for a in answers if a is not None]
        assert len(final) == len(queries)
        report.oracle_answered = report.queries - report.batched_queries
        report.memo_answered = kind_counts(final).get(
            "fallback-cached", 0)
        report.rounds = ((self._net.ledger.rounds - rounds_before)
                         if self._net is not None else 0)
        report.kinds = kind_counts(final)
        return final, report
