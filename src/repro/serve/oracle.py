"""Precomputed replacement-path oracle — one solve, many queries.

``solve_rpaths`` already computes |st ⋄ e| for *every* edge e of the
given path P in one Õ(n^{2/3} + D)-round execution; today that table is
printed and discarded, so each query re-pays the full solve.  The
:class:`ReplacementPathOracle` keeps it, turning the common query
classes into O(1) lookups.

Per-query cost model (the kinds of :mod:`repro.serve.queries`):

=================  ==========================================  ========
query shape        answer                                      cost
=================  ==========================================  ========
(s, t) = (S, T),   precomputed |st ⋄ e| table                  O(1)
e on P
(s, t) = (S, T),   |P| — deleting a non-path edge cannot       O(1)
e off P            break or shorten the shortest path P
anything else      one centralized SSSP from s in G \\ {e},    O(m +
                   memoized per (s, e) so every target          n log n)
                   sharing the pair is served from the memo    then O(1)
=================  ==========================================  ========

Construction cost is one ``solve_rpaths`` run (``solver="theorem1"``,
the measured CONGEST execution whose round count the oracle records) or
one centralized sweep (``solver="centralized"``: h_st SSSPs, no fabric
— the cheap choice when only the table matters).  Snapshots make the
built state storable: :meth:`snapshot` / :meth:`from_snapshot`
round-trip through JSON-safe dicts, which is how shards spill cold
oracles into the content-addressed :class:`~repro.runtime.store.
ResultStore` instead of re-solving after eviction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .. import telemetry
from ..congest.words import INF, clamp_inf
from ..graphs.instance import RPathsInstance
from ..telemetry import counters as _counters
from ..telemetry.dynamic import (
    MUT_FAIL,
    MUT_HEAL,
    MUT_WEIGHT,
    SCOPE_MEMO_DROPPED,
    SCOPE_MEMO_KEPT,
    SCOPE_SPILL_STALE,
    record_invalidation,
)
from .queries import (
    FALLBACK_CACHED,
    FALLBACK_SOLVE,
    HIT_OFF_PATH,
    HIT_PATH_EDGE,
    Edge,
    Query,
    QueryAnswer,
)

#: Oracle construction back-ends.
SOLVERS = ("theorem1", "centralized")

#: Per-answer counters, pre-bound per kind: ``query()`` hits answer in
#: a few µs, so the per-call label formatting of ``registry.inc`` is
#: measurable there (it halves oracle-hit queries/sec).
_ANSWER_COUNTERS = {
    kind: _counters.bound_counter("repro_serve_oracle_answers_total",
                                  kind=kind)
    for kind in (HIT_PATH_EDGE, HIT_OFF_PATH,
                 FALLBACK_SOLVE, FALLBACK_CACHED)
}


@dataclass
class OracleStats:
    """Running per-kind query counters (the cost model, measured)."""

    path_hits: int = 0
    off_path_hits: int = 0
    fallback_solves: int = 0
    fallback_cached: int = 0

    @property
    def queries(self) -> int:
        return (self.path_hits + self.off_path_hits
                + self.fallback_solves + self.fallback_cached)

    @property
    def hits(self) -> int:
        return self.path_hits + self.off_path_hits

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.queries if self.queries else 0.0

    def as_metrics(self) -> Dict[str, object]:
        return {
            "queries": self.queries,
            "path_hits": self.path_hits,
            "off_path_hits": self.off_path_hits,
            "fallback_solves": self.fallback_solves,
            "fallback_cached": self.fallback_cached,
            "hit_ratio": round(self.hit_ratio, 4),
        }


@dataclass
class ReplacementPathOracle:
    """Answer (s, t, failed-edge) queries from precomputed state.

    Build with :meth:`build` (runs the solver once) or
    :meth:`from_snapshot` (restores spilled state without solving).
    """

    instance: RPathsInstance
    lengths: List[int]
    solver: str = "theorem1"
    #: Rounds charged by the construction solve (0 for centralized /
    #: restored oracles — they never touched the fabric).
    build_rounds: int = 0
    stats: OracleStats = field(default_factory=OracleStats)

    def __post_init__(self) -> None:
        if len(self.lengths) != self.instance.hop_count:
            raise ValueError(
                f"lengths table has {len(self.lengths)} entries for a "
                f"path with {self.instance.hop_count} edges")
        self._edge_index: Dict[Edge, int] = {
            edge: i for i, edge in enumerate(self.instance.path_edges())}
        self._path_length = self.instance.path_length
        #: (source, failed edge) -> full distance vector; one fallback
        #: SSSP serves every target that shares the pair.
        self._fallback: Dict[Tuple[int, Edge], List[int]] = {}

    # -- construction --------------------------------------------------------

    @classmethod
    def build(cls, instance: RPathsInstance, solver: str = "theorem1",
              seed: int = 0, fabric: str = "fast",
              **solver_kwargs) -> "ReplacementPathOracle":
        """Run the chosen solver once and capture its |st ⋄ e| table."""
        with telemetry.span("serve/oracle-build",
                            instance=instance.name, solver=solver,
                            fabric=fabric):
            _counters.registry.inc("repro_serve_oracle_builds_total",
                                   solver=solver)
            if solver == "theorem1":
                from ..core.rpaths import solve_rpaths
                report = solve_rpaths(instance, seed=seed,
                                      fabric=fabric, **solver_kwargs)
                return cls(
                    instance=instance,
                    lengths=[clamp_inf(x) for x in report.lengths],
                    solver=solver, build_rounds=report.rounds)
            if solver == "centralized":
                from ..baselines.centralized import replacement_lengths
                return cls(instance=instance,
                           lengths=replacement_lengths(instance),
                           solver=solver, build_rounds=0)
        raise ValueError(
            f"unknown oracle solver {solver!r}; expected one of {SOLVERS}")

    # -- queries -------------------------------------------------------------

    def query(self, s: int, t: int, edge: Edge,
              instance_key: str = "") -> QueryAnswer:
        """Answer one query; see the module docstring's cost model."""
        n = self.instance.n
        if not (0 <= s < n and 0 <= t < n):
            raise ValueError(
                f"query endpoints ({s},{t}) out of range for n={n}")
        edge = (int(edge[0]), int(edge[1]))
        q = Query(s=s, t=t, edge=edge,
                  instance=instance_key or self.instance.name)
        if s == self.instance.s and t == self.instance.t:
            idx = self._edge_index.get(edge)
            if idx is not None:
                self.stats.path_hits += 1
                _ANSWER_COUNTERS[HIT_PATH_EDGE].inc()
                return QueryAnswer(q, self.lengths[idx], HIT_PATH_EDGE)
            # e not on P: P survives the deletion, and deleting an edge
            # never shortens distances, so d(s, t, e) = |P| exactly.
            self.stats.off_path_hits += 1
            _ANSWER_COUNTERS[HIT_OFF_PATH].inc()
            return QueryAnswer(q, self._path_length, HIT_OFF_PATH)
        key = (s, edge)
        dist = self._fallback.get(key)
        if dist is None:
            dist = self.instance.dijkstra(
                s, avoid_edges=frozenset([edge]))
            self._fallback[key] = dist
            self.stats.fallback_solves += 1
            kind = FALLBACK_SOLVE
        else:
            self.stats.fallback_cached += 1
            kind = FALLBACK_CACHED
        _ANSWER_COUNTERS[kind].inc()
        return QueryAnswer(q, clamp_inf(dist[t]), kind)

    def answer(self, query: Query) -> QueryAnswer:
        return self.query(query.s, query.t, query.edge,
                          instance_key=query.instance)

    def seed_fallback(self, s: int, edge: Edge,
                      dist: List[int]) -> None:
        """Install an externally computed G \\ {e} distance vector.

        The planner's batched k-source solves land their rows here, so
        later stragglers for the same (s, e) are memo hits.
        """
        self._fallback[(s, (int(edge[0]), int(edge[1])))] = list(dist)

    def fallback_cached_for(self, s: int, edge: Edge) -> bool:
        return (s, (int(edge[0]), int(edge[1]))) in self._fallback

    # -- persistence ---------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """JSON-safe built state (the fallback memo is *not* spilled:
        it is derived, unboundedly large, and cheap to regrow)."""
        return {
            "path": list(self.instance.path),
            "lengths": list(self.lengths),
            "path_length": self._path_length,
            "n": self.instance.n,
            "m": self.instance.m,
            "solver": self.solver,
            "build_rounds": self.build_rounds,
            "topology_version": self.instance.topology_version,
        }

    @classmethod
    def from_snapshot(cls, instance: RPathsInstance,
                      data: Dict[str, object],
                      ) -> Optional["ReplacementPathOracle"]:
        """Restore a spilled oracle; None if the snapshot does not
        match the instance (wrong path or size — never trust it).

        The topology version is checked first: spill keys carry it, so
        a superseded-epoch snapshot should never even be looked up —
        but if one arrives anyway (hand-copied store, renamed
        instance), it is refused with a ``spill-stale`` invalidation
        rather than silently serving pre-mutation lengths.
        """
        try:
            if (int(data.get("topology_version", 0))
                    != instance.topology_version):
                record_invalidation(SCOPE_SPILL_STALE)
                return None
            if (list(data["path"]) != list(instance.path)
                    or int(data["n"]) != instance.n
                    or int(data["m"]) != instance.m):
                return None
            lengths = [int(x) for x in data["lengths"]]
        except (KeyError, TypeError, ValueError):
            return None
        if len(lengths) != instance.hop_count:
            return None
        return cls(instance=instance, lengths=lengths,
                   solver=str(data.get("solver", "theorem1")),
                   build_rounds=int(data.get("build_rounds", 0)))


def _row_survives(dist: List[int], mutations) -> bool:
    """True when no mutation can have changed this (s, e) vector.

    ``dist`` is d(s, ·) in G_old \\ {e}.  It stays exact in
    G_new \\ {e} iff every applied mutation is provably non-affecting
    on that graph:

    * a mutation of the avoided edge e itself — always safe (e is
      excluded either way);
    * removing / raising edge (u, v) — safe iff the edge was not
      *tight* (``dist[u] + w_old != dist[v]``): a non-tight edge lies
      on no shortest path, so losing it changes nothing;
    * adding / lowering (u, v) to w — safe iff non-improving
      (``dist[u] + w >= dist[v]``);
    * either way, an unreachable tail (``dist[u] >= INF``) makes the
      edge unusable from s, hence harmless.

    Removals compose (deleting non-tight edges never creates new
    tight ones under unchanged distances) and individually
    non-improving additions cannot combine to improve, so checking
    each mutation against the *old* vector is sound for the batch.
    """
    for m in mutations:
        u, v = m.edge
        if dist[u] >= INF:
            continue
        if m.kind == MUT_FAIL:
            if dist[u] + m.old_weight == dist[v]:
                return False
        elif m.kind == MUT_HEAL:
            if dist[u] + m.weight < dist[v]:
                return False
        elif m.kind == MUT_WEIGHT:
            if (dist[u] + m.old_weight == dist[v]
                    or dist[u] + m.weight < dist[v]):
                return False
        else:  # unknown kind: never carry across it
            return False
    return True


def carry_fallback_memo(old: ReplacementPathOracle,
                        new: ReplacementPathOracle,
                        mutations) -> Tuple[int, int]:
    """Carry provably-unaffected fallback rows across an epoch.

    ``mutations`` is the full :class:`~repro.dynamic.stream.
    AppliedMutation` sequence separating ``old``'s epoch from
    ``new``'s (possibly several batches, concatenated in order).
    Each surviving row is seeded into ``new`` verbatim — distances
    are unique, so a carried row is bit-identical to what a fresh
    fallback SSSP would produce.  Returns ``(kept, dropped)``.
    """
    kept = dropped = 0
    for (s, edge), dist in old._fallback.items():
        relevant = [m for m in mutations if m.edge != edge]
        if _row_survives(dist, relevant):
            new.seed_fallback(s, edge, dist)
            kept += 1
        else:
            dropped += 1
    if kept:
        record_invalidation(SCOPE_MEMO_KEPT, kept)
    if dropped:
        record_invalidation(SCOPE_MEMO_DROPPED, dropped)
    return kept, dropped


def centralized_truth(instance: RPathsInstance, s: int, t: int,
                      edge: Edge) -> int:
    """Ground-truth d(s, t) in G \\ {edge} — one uncached SSSP.

    The property tests and the bench's correctness gate compare every
    oracle/planner answer against this.
    """
    dist = instance.dijkstra(
        s, avoid_edges=frozenset([(int(edge[0]), int(edge[1]))]))
    return INF if dist[t] >= INF else dist[t]
