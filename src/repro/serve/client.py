"""Bounded retry-with-backoff client over the serve front-end.

``overloaded`` (shed at admission) and ``worker-lost`` (restart budget
exhausted mid-request) are *transient*: the queue drains, the monitor
respawns workers, and an identical resubmission usually succeeds.
:func:`query_with_retry` wraps one query in that loop — exponential
backoff, a hard attempt cap, every retry counted in the closed
``repro_serve_retries_total{outcome}`` enum — so load generators and
the chaos harness share one retry policy instead of each inventing a
slightly-wrong one.

Non-transient outcomes (``ok``, ``stale``, ``timeout``, ``error``,
``shutdown``) return immediately: retrying a deadline miss just
doubles the deadline miss, and retrying into a closing front-end spins.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Sequence

from ..telemetry import serving as _serving
from .frontend import ServeFrontend, ServeResult
from .queries import Query


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with a hard attempt cap."""

    max_attempts: int = 3
    backoff_seconds: float = 0.05
    multiplier: float = 2.0
    max_backoff_seconds: float = 1.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("need at least one attempt")
        if self.backoff_seconds < 0 or self.multiplier < 1:
            raise ValueError("backoff must be non-negative and "
                             "non-shrinking")

    def delay(self, retry_index: int) -> float:
        """Sleep before retry ``retry_index`` (0-based)."""
        return min(self.backoff_seconds * self.multiplier ** retry_index,
                   self.max_backoff_seconds)


DEFAULT_RETRY_POLICY = RetryPolicy()


def query_with_retry(frontend: ServeFrontend, query: Query,
                     timeout: Optional[float] = None,
                     max_staleness: Optional[int] = None,
                     policy: RetryPolicy = DEFAULT_RETRY_POLICY,
                     ) -> ServeResult:
    """Submit ``query``, retrying transient rejections with backoff.

    Returns the first non-transient :class:`ServeResult`, or the last
    transient one once the attempt budget is spent.
    """
    result: ServeResult = frontend.submit(
        query, timeout=timeout, max_staleness=max_staleness).result()
    for retry_index in range(policy.max_attempts - 1):
        if result.outcome not in _serving.RETRYABLE_OUTCOMES:
            return result
        _serving.record_retry(result.outcome)
        time.sleep(policy.delay(retry_index))
        result = frontend.submit(
            query, timeout=timeout,
            max_staleness=max_staleness).result()
    return result


def run_queries_with_retry(frontend: ServeFrontend,
                           queries: Sequence[Query],
                           timeout: Optional[float] = None,
                           max_staleness: Optional[int] = None,
                           policy: RetryPolicy = DEFAULT_RETRY_POLICY,
                           ) -> list:
    """Serial retry-wrapped client (closed-loop; the chaos harness's
    query thread uses this so storms do not silently drop answers)."""
    return [query_with_retry(frontend, q, timeout=timeout,
                             max_staleness=max_staleness, policy=policy)
            for q in queries]
