"""repro.serve — the replacement-path query-serving tier.

One CONGEST solve answers *many* queries; this package keeps the
precomputed answers hot and amortizes everything else:

* :mod:`~repro.serve.queries` — ``Query``/``QueryAnswer`` records and
  the per-answer cost-class taxonomy.
* :mod:`~repro.serve.oracle` — ``ReplacementPathOracle``: one
  ``solve_rpaths`` run becomes an O(1) lookup table for every (s, t,
  failed-edge) query on the given pair, with memoized centralized
  fallbacks for arbitrary pairs, and JSON-safe snapshots.
* :mod:`~repro.serve.planner` — ``BatchPlanner``: groups a query batch
  by failed edge and spends one k-source vector-fabric solve per
  group instead of one solve per query.
* :mod:`~repro.serve.shard` — ``ShardedQueryService``: stable-hash
  instance sharding, per-shard hot-oracle LRU, persistent spill into
  the content-addressed result store, and process-parallel serving
  via the runtime executor's pool machinery.
* :mod:`~repro.serve.workload` — seedable uniform / zipf /
  adversarial / mixed query-stream generators, registered as
  ``serve-*`` suite scenarios.
* :mod:`~repro.serve.daemon` — ``ServeDaemon``: long-lived worker
  processes that own their shards (shared-memory topology attach,
  warm-once oracles, heartbeat health, bounded restart with re-warm).
* :mod:`~repro.serve.frontend` — ``ServeFrontend``: threaded admission
  with a bounded queue, per-request deadlines, per-shard in-flight
  caps (reject-with-``overloaded`` backpressure), and per-request
  staleness budgets (degraded-mode ``stale`` answers while an
  invalidated oracle re-warms).
* :mod:`~repro.serve.client` — ``query_with_retry``: bounded
  exponential-backoff retries on transient ``overloaded`` /
  ``worker-lost`` outcomes.
* :mod:`~repro.serve.loadgen` — open/closed-loop load generation with
  p50/p95/p99 latency reporting for the SLO gates.

See DESIGN.md's "Serving layer" and "Serve daemon" sections for the
full cost model and lifecycle.
"""

from .client import (
    DEFAULT_RETRY_POLICY,
    RetryPolicy,
    query_with_retry,
    run_queries_with_retry,
)
from .daemon import ServeDaemon, WorkerConfig
from .frontend import (
    DEFAULT_TIMEOUT,
    PendingQuery,
    ServeFrontend,
    ServeResult,
    run_queries,
)
from .loadgen import (
    LoadReport,
    latency_summary_ms,
    percentile,
    run_load,
)
from .oracle import (
    OracleStats,
    ReplacementPathOracle,
    centralized_truth,
)
from .planner import BatchPlanner, PlanReport
from .queries import (
    BATCHED_SOLVE,
    FALLBACK_CACHED,
    FALLBACK_SOLVE,
    HIT_OFF_PATH,
    HIT_PATH_EDGE,
    Query,
    QueryAnswer,
    hit_ratio,
    kind_counts,
)
from .shard import (
    OracleShard,
    ServiceReport,
    ShardedQueryService,
    ShardStats,
    shard_of,
    spill_key,
)
from .workload import (
    WORKLOADS,
    generate_workload,
    verify_against_centralized,
)

__all__ = [
    "BATCHED_SOLVE",
    "BatchPlanner",
    "DEFAULT_RETRY_POLICY",
    "DEFAULT_TIMEOUT",
    "FALLBACK_CACHED",
    "FALLBACK_SOLVE",
    "HIT_OFF_PATH",
    "HIT_PATH_EDGE",
    "LoadReport",
    "OracleShard",
    "OracleStats",
    "PendingQuery",
    "PlanReport",
    "Query",
    "QueryAnswer",
    "ReplacementPathOracle",
    "RetryPolicy",
    "ServeDaemon",
    "ServeFrontend",
    "ServeResult",
    "ServiceReport",
    "ShardStats",
    "ShardedQueryService",
    "WORKLOADS",
    "WorkerConfig",
    "centralized_truth",
    "generate_workload",
    "verify_against_centralized",
    "hit_ratio",
    "kind_counts",
    "latency_summary_ms",
    "percentile",
    "query_with_retry",
    "run_load",
    "run_queries",
    "run_queries_with_retry",
    "shard_of",
    "spill_key",
]
