"""Open/closed-loop load generation against the serve front-end.

Drives the existing workload families (uniform / zipf / adversarial /
mixed, :mod:`repro.serve.workload`) through a
:class:`~repro.serve.frontend.ServeFrontend` and reports what an SLO
gate needs: sustained throughput, the admission-outcome histogram, and
p50/p95/p99 latency.

Two loop disciplines, because they answer different questions:

* **closed** — ``concurrency`` client threads, each submits one query
  and waits for its result before the next (optionally paced to an
  aggregate target QPS).  Latency here is service time; throughput is
  what the daemon sustains.
* **open** — a single pacer submits at the target QPS regardless of
  completions, then collects.  This is the discipline that actually
  exercises backpressure: when the service falls behind, the bounded
  admission queue fills and submissions reject ``overloaded`` instead
  of stretching the latency tail unboundedly.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..telemetry.serving import OUTCOME_OK, OUTCOME_STALE, SERVED_OUTCOMES
from .frontend import ServeFrontend
from .queries import Query

__all__ = [
    "LoadReport", "latency_summary_ms", "percentile", "run_load",
]


def percentile(samples: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile (numpy-free), q in [0, 100]."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    frac = rank - low
    return ordered[low] * (1.0 - frac) + ordered[high] * frac


def latency_summary_ms(samples: Sequence[float]) -> Dict[str, float]:
    """{p50, p95, p99, mean, max} in milliseconds from second samples."""
    if not samples:
        return {"p50": 0.0, "p95": 0.0, "p99": 0.0,
                "mean": 0.0, "max": 0.0}
    return {
        "p50": percentile(samples, 50) * 1e3,
        "p95": percentile(samples, 95) * 1e3,
        "p99": percentile(samples, 99) * 1e3,
        "mean": (sum(samples) / len(samples)) * 1e3,
        "max": max(samples) * 1e3,
    }


@dataclass
class LoadReport:
    """One load run, JSON-safe via :meth:`as_json`."""

    mode: str
    sent: int = 0
    wall_seconds: float = 0.0
    achieved_qps: float = 0.0
    target_qps: Optional[float] = None
    concurrency: int = 1
    outcomes: Dict[str, int] = field(default_factory=dict)
    latency_ms: Dict[str, float] = field(default_factory=dict)

    @property
    def ok(self) -> int:
        return self.outcomes.get(OUTCOME_OK, 0)

    @property
    def stale(self) -> int:
        return self.outcomes.get(OUTCOME_STALE, 0)

    @property
    def served(self) -> int:
        """Requests that got an answer (fresh or within-budget stale)."""
        return self.ok + self.stale

    def as_json(self) -> Dict[str, object]:
        return {
            "mode": self.mode,
            "sent": self.sent,
            "ok": self.ok,
            "stale": self.stale,
            "served": self.served,
            "outcomes": dict(sorted(self.outcomes.items())),
            "wall_seconds": round(self.wall_seconds, 6),
            "achieved_qps": round(self.achieved_qps, 3),
            "target_qps": self.target_qps,
            "concurrency": self.concurrency,
            "latency_ms": {k: round(v, 4)
                           for k, v in self.latency_ms.items()},
        }


def _run_closed(frontend: ServeFrontend, queries: Sequence[Query],
                concurrency: int, qps: Optional[float],
                timeout: Optional[float],
                max_staleness: Optional[int]) -> List["object"]:
    """Each thread: take next query, submit, wait, repeat."""
    results: List[object] = [None] * len(queries)
    cursor = iter(range(len(queries)))
    lock = threading.Lock()
    # Aggregate pacing: each thread owns every ``concurrency``-th slot
    # of a shared schedule, so target QPS holds across the fleet.
    interval = (concurrency / qps) if qps else 0.0
    start = time.time()

    def client(worker_idx: int) -> None:
        next_at = start + (worker_idx / qps if qps else 0.0)
        while True:
            with lock:
                idx = next(cursor, None)
            if idx is None:
                return
            if interval:
                delay = next_at - time.time()
                if delay > 0:
                    time.sleep(delay)
                next_at += interval
            results[idx] = frontend.submit(
                queries[idx], timeout=timeout,
                max_staleness=max_staleness).result()

    threads = [threading.Thread(target=client, args=(i,), daemon=True)
               for i in range(concurrency)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return results


def _run_open(frontend: ServeFrontend, queries: Sequence[Query],
              qps: float, timeout: Optional[float],
              max_staleness: Optional[int]) -> List["object"]:
    """Submit on schedule without waiting, then collect."""
    pendings = []
    start = time.time()
    for i, query in enumerate(queries):
        target = start + i / qps
        delay = target - time.time()
        if delay > 0:
            time.sleep(delay)
        pendings.append(frontend.submit(query, timeout=timeout,
                                        max_staleness=max_staleness))
    return [p.result() for p in pendings]


def run_load(frontend: ServeFrontend, queries: Sequence[Query],
             mode: str = "closed", concurrency: int = 4,
             qps: Optional[float] = None,
             timeout: Optional[float] = None,
             max_staleness: Optional[int] = None,
             ) -> "tuple[List[object], LoadReport]":
    """Drive ``queries`` through ``frontend``; return (results, report).

    ``mode="open"`` requires ``qps``.  Latency percentiles cover only
    requests that completed with an answer (``ok`` or within-budget
    ``stale``) — rejected/timed-out requests show up in the outcome
    histogram instead, so shed load cannot flatter the latency
    numbers.  ``max_staleness`` forwards the per-request epoch budget
    (degraded-mode serving during fault storms).
    """
    queries = list(queries)
    if mode not in ("closed", "open"):
        raise ValueError(f"unknown load mode {mode!r}")
    if mode == "open" and not qps:
        raise ValueError("open-loop load needs a target qps")
    if concurrency < 1:
        raise ValueError("concurrency must be positive")
    start = time.time()
    if mode == "closed":
        results = _run_closed(frontend, queries, concurrency, qps,
                              timeout, max_staleness)
    else:
        results = _run_open(frontend, queries, qps, timeout,
                            max_staleness)
    wall = max(time.time() - start, 1e-9)
    outcomes: Dict[str, int] = {}
    served_latencies: List[float] = []
    for res in results:
        outcomes[res.outcome] = outcomes.get(res.outcome, 0) + 1
        if res.outcome in SERVED_OUTCOMES:
            served_latencies.append(res.latency_seconds)
    report = LoadReport(
        mode=mode, sent=len(queries), wall_seconds=wall,
        achieved_qps=len(served_latencies) / wall, target_qps=qps,
        concurrency=(concurrency if mode == "closed" else 1),
        outcomes=outcomes,
        latency_ms=latency_summary_ms(served_latencies))
    return results, report
