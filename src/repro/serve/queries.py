"""Query records shared by every serving-layer component.

A *query* asks for one replacement distance: "what is d(s, t) in
G \\ {e}?" — the unit of traffic the serving tier amortizes one
``solve_rpaths`` run across.  For the instance's own (s, t) pair and a
failed edge on P this is exactly Definition 2.1's |st ⋄ e|; arbitrary
pairs and off-path edges generalize it to the fallback regime the
oracle's cost model distinguishes.

Answers carry a *kind* tag naming the price paid:

``hit-path-edge``
    O(1) lookup into the precomputed |st ⋄ e| table.
``hit-off-path``
    O(1): e is not on P, so P itself survives and the answer is |P|.
``fallback-solve``
    One centralized SSSP in G \\ {e} from the query source (the oracle
    memoizes it, so all targets sharing (s, e) pay once).
``fallback-cached``
    Served from that (source, edge) memo — no new solve.
``batched-solve``
    Answered by the planner's grouped k-source solve (one fabric
    execution covers every source in the group).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..congest.words import INF, is_unreachable

Edge = Tuple[int, int]

#: Answer kinds (the per-query cost classes).
HIT_PATH_EDGE = "hit-path-edge"
HIT_OFF_PATH = "hit-off-path"
FALLBACK_SOLVE = "fallback-solve"
FALLBACK_CACHED = "fallback-cached"
BATCHED_SOLVE = "batched-solve"

#: Kinds answered from precomputed state in O(1).
HIT_KINDS = frozenset({HIT_PATH_EDGE, HIT_OFF_PATH})


@dataclass(frozen=True)
class Query:
    """One replacement-distance request against one instance.

    ``instance`` is the service-level routing key (the instance name);
    single-oracle components ignore it.
    """

    s: int
    t: int
    edge: Edge
    instance: str = ""

    @property
    def label(self) -> str:
        u, v = self.edge
        return f"{self.instance or '?'}:d({self.s},{self.t})\\({u},{v})"


@dataclass(frozen=True)
class QueryAnswer:
    """The answered query: length (INF sentinel when unreachable) and
    the cost class that produced it."""

    query: Query
    length: int
    kind: str

    @property
    def reachable(self) -> bool:
        return not is_unreachable(self.length)

    @property
    def is_hit(self) -> bool:
        return self.kind in HIT_KINDS

    def display_length(self) -> str:
        return "inf" if self.length >= INF else str(self.length)


def kind_counts(answers) -> Dict[str, int]:
    """Histogram of answer kinds (for stats tables and metrics)."""
    out: Dict[str, int] = {}
    for answer in answers:
        out[answer.kind] = out.get(answer.kind, 0) + 1
    return out


def hit_ratio(answers) -> float:
    """Fraction of answers served from precomputed state (0.0 empty)."""
    answers = list(answers)
    if not answers:
        return 0.0
    return sum(1 for a in answers if a.is_hit) / len(answers)
