"""Threaded admission front-end over :class:`~repro.serve.daemon.ServeDaemon`.

The daemon answers batches; this layer turns it into a service with a
load-shedding contract:

* **Bounded admission queue** — :meth:`ServeFrontend.submit` either
  enqueues or rejects immediately with ``overloaded``.  Queueing
  without bound just converts overload into unbounded latency; a
  bounded queue converts it into an explicit, countable outcome the
  client can retry against.
* **Per-request deadline** — every request carries one (the default is
  configurable); :meth:`PendingQuery.result` returns a ``timeout``
  outcome when it expires, whether the request is still queued or
  already dispatched.
* **In-flight cap per shard** — the dispatcher thread groups admitted
  requests by the SHA-256 shard route and holds a shard's batch back
  while that worker already has ``max_inflight`` queries outstanding,
  so one hot shard queues at admission (visible, bounded) instead of
  deep inside a worker pipe (invisible).

Every request resolves to exactly one
:data:`repro.telemetry.serving.KNOWN_ADMISSION_OUTCOMES` member, and
latency is measured submit→resolve on the resolving thread, so
open-loop clients that collect results late still record true service
latency.
"""

from __future__ import annotations

import queue as _thread_queue
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..telemetry import serving as _serving
from ..telemetry.dynamic import set_epoch_lag
from .daemon import ServeDaemon
from .queries import Query, QueryAnswer

#: Default per-request deadline (seconds).
DEFAULT_TIMEOUT = 30.0


class PendingQuery:
    """One admitted request: resolves exactly once to an outcome."""

    __slots__ = ("query", "deadline", "submitted", "resolved_at",
                 "outcome", "answer", "error", "max_staleness", "lag",
                 "_event", "_lock")

    def __init__(self, query: Query, timeout: float,
                 max_staleness: int = 0) -> None:
        self.query = query
        self.submitted = time.time()
        self.deadline = self.submitted + timeout
        self.resolved_at: Optional[float] = None
        self.outcome: Optional[str] = None
        self.answer: Optional[QueryAnswer] = None
        self.error = ""
        #: Epoch budget: answers up to this many topology epochs
        #: behind are acceptable (resolved as ``stale``, with the
        #: answer attached).  0 demands fresh.
        self.max_staleness = int(max_staleness)
        self.lag = 0
        self._event = threading.Event()
        self._lock = threading.Lock()

    @property
    def done(self) -> bool:
        return self._event.is_set()

    def resolve(self, outcome: str, answer: Optional[QueryAnswer] = None,
                error: str = "", lag: int = 0) -> bool:
        """First resolution wins; later ones (e.g. a worker answer
        landing after the deadline fired) are dropped."""
        with self._lock:
            if self._event.is_set():
                return False
            self.outcome = outcome
            self.answer = answer
            self.error = error
            self.lag = int(lag)
            self.resolved_at = time.time()
            self._event.set()
        _serving.record_admission(outcome)
        _serving.observe_request_seconds(self.latency_seconds)
        if outcome in _serving.SERVED_OUTCOMES:
            set_epoch_lag(self.lag)
        return True

    @property
    def latency_seconds(self) -> float:
        end = self.resolved_at if self.resolved_at else time.time()
        return end - self.submitted

    def result(self, timeout: Optional[float] = None) -> "ServeResult":
        """Block until resolved or the request deadline, whichever is
        first; an expired deadline resolves the request as timeout."""
        if timeout is None:
            timeout = max(0.0, self.deadline - time.time())
        if not self._event.wait(timeout=timeout):
            self.resolve(_serving.OUTCOME_TIMEOUT)
        return ServeResult(query=self.query, outcome=self.outcome,
                           answer=self.answer,
                           latency_seconds=self.latency_seconds,
                           error=self.error, lag=self.lag)


@dataclass(frozen=True)
class ServeResult:
    """What a client gets back for one query."""

    query: Query
    outcome: str
    answer: Optional[QueryAnswer]
    latency_seconds: float
    error: str = ""
    #: Epochs behind the current topology (0 = fresh; positive only
    #: for ``stale`` outcomes, bounded by the request's budget).
    lag: int = 0

    @property
    def ok(self) -> bool:
        return self.outcome == _serving.OUTCOME_OK

    @property
    def served(self) -> bool:
        """An answer arrived (fresh or within-budget stale)."""
        return self.outcome in _serving.SERVED_OUTCOMES


class ServeFrontend:
    """Multiplex concurrent clients onto daemon workers.

    One dispatcher thread drains the admission queue, groups by shard,
    and submits batches of up to ``max_batch`` to
    :meth:`ServeDaemon.submit_batch`, respecting ``max_inflight``
    queries outstanding per shard.  Answers resolve on the daemon's
    collector thread.
    """

    def __init__(self, daemon: ServeDaemon, max_queue: int = 256,
                 default_timeout: float = DEFAULT_TIMEOUT,
                 max_batch: int = 32,
                 max_inflight: int = 64,
                 default_staleness: int = 0) -> None:
        if max_queue < 1 or max_batch < 1 or max_inflight < 1:
            raise ValueError("front-end bounds must be positive")
        if default_staleness < 0:
            raise ValueError("staleness budget cannot be negative")
        self.daemon = daemon
        self.default_timeout = default_timeout
        self.max_batch = max_batch
        self.max_inflight = max_inflight
        self.default_staleness = default_staleness
        self._queue: "_thread_queue.Queue[Optional[PendingQuery]]" = (
            _thread_queue.Queue(maxsize=max_queue))
        self._closed = False
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="serve-frontend-dispatch",
            daemon=True)
        self._dispatcher.start()

    # -- client API ---------------------------------------------------------

    def submit(self, query: Query,
               timeout: Optional[float] = None,
               max_staleness: Optional[int] = None) -> PendingQuery:
        """Admit or reject one query; never blocks on a full queue."""
        pending = PendingQuery(
            query, self.default_timeout if timeout is None else timeout,
            max_staleness=(self.default_staleness
                           if max_staleness is None else max_staleness))
        if self._closed:
            pending.resolve(_serving.OUTCOME_SHUTDOWN)
            return pending
        try:
            self._queue.put_nowait(pending)
        except _thread_queue.Full:
            pending.resolve(_serving.OUTCOME_OVERLOADED)
            return pending
        _serving.set_queue_depth(self._queue.qsize())
        return pending

    def query(self, instance_key: str, s: int, t: int,
              edge: Tuple[int, int],
              timeout: Optional[float] = None,
              max_staleness: Optional[int] = None) -> ServeResult:
        """Synchronous submit + wait."""
        q = Query(s=s, t=t, edge=(int(edge[0]), int(edge[1])),
                  instance=instance_key)
        return self.submit(q, timeout=timeout,
                           max_staleness=max_staleness).result()

    def close(self) -> None:
        """Stop admitting; resolve everything still queued as shutdown."""
        if self._closed:
            return
        self._closed = True
        self._queue.put(None)  # wake the dispatcher
        self._dispatcher.join(timeout=5.0)
        while True:
            try:
                pending = self._queue.get_nowait()
            except _thread_queue.Empty:
                break
            if pending is not None:
                pending.resolve(_serving.OUTCOME_SHUTDOWN)
        _serving.set_queue_depth(0)

    def __enter__(self) -> "ServeFrontend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- dispatcher ---------------------------------------------------------

    def _take_batch(self) -> List[PendingQuery]:
        """Block for one request, then drain opportunistically."""
        batch: List[PendingQuery] = []
        try:
            first = self._queue.get(timeout=0.1)
        except _thread_queue.Empty:
            return batch
        if first is not None:
            batch.append(first)
        while len(batch) < self.max_batch:
            try:
                item = self._queue.get_nowait()
            except _thread_queue.Empty:
                break
            if item is not None:
                batch.append(item)
        _serving.set_queue_depth(self._queue.qsize())
        return batch

    def _dispatch_group(self, shard_id: int,
                        group: List[PendingQuery]) -> None:
        # Deadline-expired requests resolve here instead of occupying
        # worker capacity; a deadline hit while we wait on the
        # in-flight cap counts the same way.
        live = [p for p in group if not p.done]
        expired = [p for p in live if time.time() >= p.deadline]
        for p in expired:
            p.resolve(_serving.OUTCOME_TIMEOUT)
        live = [p for p in live if not p.done]
        if not live:
            return
        while (not self._closed
               and self.daemon.inflight(shard_id) >= self.max_inflight):
            time.sleep(0.002)  # backpressure: hold at admission
            now = time.time()
            for p in live:
                if not p.done and now >= p.deadline:
                    p.resolve(_serving.OUTCOME_TIMEOUT)
            live = [p for p in live if not p.done]
            if not live:
                return
        if self._closed:
            for p in live:
                p.resolve(_serving.OUTCOME_SHUTDOWN)
            return

        group_now = list(live)

        def callback(lengths, kinds, lags, error):
            if error:
                outcome = {
                    "shutdown": _serving.OUTCOME_SHUTDOWN,
                    "worker-lost": _serving.OUTCOME_WORKER_LOST,
                }.get(error, _serving.OUTCOME_ERROR)
                for p in group_now:
                    p.resolve(outcome, error=error)
                return
            for p, length, kind, lag in zip(group_now, lengths,
                                            kinds, lags):
                p.resolve(
                    _serving.OUTCOME_STALE if lag > 0
                    else _serving.OUTCOME_OK,
                    QueryAnswer(p.query, length, kind), lag=lag)

        self.daemon.submit_batch(
            [p.query for p in group_now], callback,
            shard_id=shard_id,
            staleness=[p.max_staleness for p in group_now])

    def _dispatch_loop(self) -> None:
        while not self._closed:
            batch = self._take_batch()
            if not batch:
                continue
            groups: Dict[int, List[PendingQuery]] = {}
            for pending in batch:
                try:
                    sid = self.daemon.shard_for_key(
                        pending.query.instance)
                except KeyError as exc:
                    pending.resolve(_serving.OUTCOME_ERROR,
                                    error=str(exc))
                    continue
                groups.setdefault(sid, []).append(pending)
            for sid in sorted(groups):
                self._dispatch_group(sid, groups[sid])

    # -- observability -------------------------------------------------------

    def queue_depth(self) -> int:
        return self._queue.qsize()

    def stats(self) -> Dict[str, object]:
        return {
            "queue_depth": self.queue_depth(),
            "max_queue": self._queue.maxsize,
            "max_batch": self.max_batch,
            "max_inflight": self.max_inflight,
            "default_timeout": self.default_timeout,
            "closed": self._closed,
        }


def run_queries(frontend: ServeFrontend, queries: Sequence[Query],
                timeout: Optional[float] = None,
                max_staleness: Optional[int] = None,
                ) -> List[ServeResult]:
    """Submit everything, then collect — the simple pipelined client."""
    pendings = [frontend.submit(q, timeout=timeout,
                                max_staleness=max_staleness)
                for q in queries]
    return [p.result() for p in pendings]
