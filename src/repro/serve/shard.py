"""Sharded serving engine: instances → shards, shards → processes.

The service partitions its catalog of instances across shards by a
*stable* key hash (SHA-256 of the instance name — ``hash()`` is
per-process salted and would scatter assignments across workers).  Each
shard owns:

* an **LRU of hot oracles** (``capacity`` planners, each wrapping a
  built :class:`~repro.serve.oracle.ReplacementPathOracle` and its
  fabric network), and
* a **persistent spill tier**: every freshly built oracle's snapshot is
  written into the content-addressed
  :class:`~repro.runtime.store.ResultStore` under
  ``sha256(serve-oracle, instance key, solver, code version)`` — so an
  eviction costs nothing (the snapshot is immutable and already on
  disk), a later miss restores the table without re-solving, and the
  spill survives the process.  Restores are validated against the
  instance (wrong path/size ⇒ rebuild) and invalidated automatically
  when the code version changes, exactly like suite cells.

Serving is batch-first: :meth:`ShardedQueryService.serve` routes a
query stream to shards and answers each shard's slice through its
:class:`~repro.serve.planner.BatchPlanner`;
:meth:`~ShardedQueryService.serve_parallel` fans the per-shard batches
out over worker processes through the runtime executor's
:func:`~repro.runtime.executor.pool_map` — the same pool machinery
``repro suite run`` uses for cells.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .. import telemetry
from ..dynamic.stream import (
    AppliedMutation,
    Mutation,
    MutationResult,
    apply_mutations,
)
from ..graphs.instance import RPathsInstance
from ..runtime.executor import default_jobs, pool_map
from ..telemetry import counters as _counters
from ..telemetry.dynamic import SCOPE_ORACLE, record_invalidation
from ..runtime.results import CellResult, CellSpec
from ..runtime.store import ResultStore, cell_key
from .oracle import ReplacementPathOracle, carry_fallback_memo
from .planner import DEFAULT_MAX_GROUP, BatchPlanner
from .queries import Query, QueryAnswer, hit_ratio

#: Pseudo-scenario name spilled oracle snapshots are keyed under.
SPILL_SCENARIO = "serve-oracle"


def shard_of(key: str, shards: int) -> int:
    """Stable shard assignment (identical in every process)."""
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % shards


def spill_key(instance_key: str, solver: str,
              topology_version: int = 0) -> str:
    """Content address of one oracle snapshot.

    Keyed by (instance, solver, topology version, code version): a
    mutation bumps the epoch, so a pre-mutation snapshot sits under a
    different key and can never resurrect into the new epoch.  Old
    epochs' spills stay on disk until ``repro store gc`` prunes them.
    """
    params: Dict[str, object] = {"instance": instance_key,
                                 "solver": solver}
    if topology_version:
        # Epoch 0 omits the param so pre-dynamic spills stay valid.
        params["topology_version"] = topology_version
    return cell_key(CellSpec.make(SPILL_SCENARIO, params, 0))


@dataclass
class ShardStats:
    """One shard's serving counters."""

    shard_id: int = 0
    queries: int = 0
    oracle_builds: int = 0
    lru_hits: int = 0
    evictions: int = 0
    spill_saves: int = 0
    spill_loads: int = 0
    batch_solves: int = 0
    solves_saved: int = 0
    rounds: int = 0
    invalidations: int = 0
    stale_answers: int = 0
    memo_carried: int = 0

    def as_metrics(self) -> Dict[str, int]:
        return {
            "queries": self.queries,
            "oracle_builds": self.oracle_builds,
            "lru_hits": self.lru_hits,
            "evictions": self.evictions,
            "spill_saves": self.spill_saves,
            "spill_loads": self.spill_loads,
            "batch_solves": self.batch_solves,
            "solves_saved": self.solves_saved,
            "rounds": self.rounds,
            "invalidations": self.invalidations,
            "stale_answers": self.stale_answers,
            "memo_carried": self.memo_carried,
        }

    def merge(self, other: "ShardStats") -> None:
        self.queries += other.queries
        self.oracle_builds += other.oracle_builds
        self.lru_hits += other.lru_hits
        self.evictions += other.evictions
        self.spill_saves += other.spill_saves
        self.spill_loads += other.spill_loads
        self.batch_solves += other.batch_solves
        self.solves_saved += other.solves_saved
        self.rounds += other.rounds
        self.invalidations += other.invalidations
        self.stale_answers += other.stale_answers
        self.memo_carried += other.memo_carried


class OracleShard:
    """One shard: its instances, hot-oracle LRU, and spill store."""

    def __init__(self, shard_id: int = 0, capacity: int = 4,
                 store: Optional[ResultStore] = None,
                 solver: str = "theorem1", build_fabric: str = "fast",
                 planner_fabric: str = "vector",
                 max_group: int = DEFAULT_MAX_GROUP,
                 build_seed: int = 0) -> None:
        if capacity < 1:
            raise ValueError("shard LRU capacity must be positive")
        self.shard_id = shard_id
        self.capacity = capacity
        self.store = store
        self.solver = solver
        self.build_fabric = build_fabric
        self.planner_fabric = planner_fabric
        self.max_group = max_group
        self.build_seed = build_seed
        self.instances: Dict[str, RPathsInstance] = {}
        self._planners: "OrderedDict[str, BatchPlanner]" = OrderedDict()
        #: key -> (epoch, planner) rotated out by :meth:`invalidate`;
        #: serves degraded-mode answers until the fresh oracle exists.
        self._previous: Dict[str, Tuple[int, BatchPlanner]] = {}
        #: key -> mutations applied since the previous-epoch oracle was
        #: built (possibly several batches) — the memo-carry input.
        self._pending_carry: Dict[str, List[AppliedMutation]] = {}
        #: Guards the dicts above: the daemon worker's background
        #: rebuild thread races its serving loop.  Oracle builds run
        #: *outside* the lock so stale serving is never blocked.
        self._lock = threading.Lock()
        self.stats = ShardStats(shard_id=shard_id)

    # -- catalog -------------------------------------------------------------

    def add_instance(self, instance: RPathsInstance,
                     key: Optional[str] = None) -> str:
        key = key or instance.name
        if not key:
            raise ValueError("instance needs a non-empty key/name")
        if key in self.instances:
            raise ValueError(f"duplicate instance key {key!r}")
        self.instances[key] = instance
        return key

    # -- oracle lifecycle ----------------------------------------------------

    def _load_spilled(self, key: str,
                      instance: RPathsInstance,
                      ) -> Optional[ReplacementPathOracle]:
        if self.store is None:
            return None
        cached = self.store.get(spill_key(
            key, self.solver, instance.topology_version))
        if cached is None:
            return None
        oracle = ReplacementPathOracle.from_snapshot(
            instance, cached.metrics)
        if oracle is not None:
            self.stats.spill_loads += 1
            _counters.registry.inc("repro_serve_spill_total", op="load")
        return oracle

    def _spill(self, key: str, oracle: ReplacementPathOracle) -> None:
        if self.store is None:
            return
        version = oracle.instance.topology_version
        params: Dict[str, object] = {"instance": key,
                                     "solver": self.solver}
        if version:
            params["topology_version"] = version
        result = CellResult(
            scenario=SPILL_SCENARIO,
            params=params,
            seed=0,
            key=spill_key(key, self.solver, version),
            metrics=oracle.snapshot(),
        )
        self.store.put(result)
        self.stats.spill_saves += 1
        _counters.registry.inc("repro_serve_spill_total", op="save")

    def planner_for(self, key: str) -> BatchPlanner:
        """The hot planner for ``key`` (LRU → spill → build).

        A build after :meth:`invalidate` additionally carries the
        previous epoch's fallback memo: rows the applied mutations
        provably did not affect are seeded into the fresh oracle, and
        the previous-epoch planner is then retired.
        """
        while True:
            with self._lock:
                planner = self._planners.get(key)
                if planner is not None:
                    self._planners.move_to_end(key)
                    self.stats.lru_hits += 1
                    _counters.registry.inc("repro_serve_lru_total",
                                           outcome="hit")
                    return planner
                _counters.registry.inc("repro_serve_lru_total",
                                       outcome="miss")
                try:
                    instance = self.instances[key]
                except KeyError:
                    known = (", ".join(sorted(self.instances))
                             or "<none>")
                    raise KeyError(
                        f"shard {self.shard_id} does not hold "
                        f"{key!r}; instances: {known}") from None
            # Build (or restore) outside the lock: degraded-mode reads
            # of the previous-epoch planner must not wait on a solve.
            oracle = self._load_spilled(key, instance)
            if oracle is None:
                oracle = ReplacementPathOracle.build(
                    instance, solver=self.solver,
                    seed=self.build_seed, fabric=self.build_fabric)
                self.stats.oracle_builds += 1
                self.stats.rounds += oracle.build_rounds
                # Spill at build time: the snapshot is immutable, so
                # the later eviction is free and crash-safe.
                self._spill(key, oracle)
            planner = BatchPlanner(oracle, fabric=self.planner_fabric,
                                   max_group=self.max_group)
            with self._lock:
                if self.instances.get(key) is not instance:
                    continue  # superseded mid-build: solve the newer
                raced = self._planners.get(key)
                if raced is not None:
                    # Another thread built it first; keep theirs.
                    return raced
                previous = self._previous.pop(key, None)
                carry = self._pending_carry.pop(key, None)
                if previous is not None and carry is not None:
                    kept, _dropped = carry_fallback_memo(
                        previous[1].oracle, oracle, carry)
                    self.stats.memo_carried += kept
                self._planners[key] = planner
                while len(self._planners) > self.capacity:
                    self._planners.popitem(last=False)
                    self.stats.evictions += 1
                    _counters.registry.inc(
                        "repro_serve_evictions_total")
            return planner

    # -- dynamic topology ----------------------------------------------------

    def invalidate(self, key: str, new_instance: RPathsInstance,
                   applied: Sequence[AppliedMutation]) -> None:
        """Install a new-epoch instance, rotating the hot oracle out.

        Only this instance is touched: the hot planner (if any) moves
        to the previous-epoch slot for degraded-mode serving, the
        applied mutations accumulate for the memo carry, and the next
        :meth:`planner_for` miss rebuilds against the new topology.
        Other instances' oracles are untouched — that asymmetry is the
        whole point of incremental invalidation.
        """
        if key not in self.instances:
            raise KeyError(f"shard {self.shard_id} does not hold "
                           f"{key!r}")
        if not applied:
            return
        with self._lock:
            old_instance = self.instances[key]
            self.instances[key] = new_instance
            hot = self._planners.pop(key, None)
            if hot is not None:
                self._previous[key] = (
                    old_instance.topology_version, hot)
                self._pending_carry[key] = list(applied)
            elif key in self._previous:
                # Already degraded: keep the older previous planner,
                # extend the carry chain so its memo check spans every
                # mutation since that epoch.
                self._pending_carry.setdefault(key, []).extend(applied)
            self.stats.invalidations += 1
        record_invalidation(SCOPE_ORACLE)

    def current_epoch(self, key: str) -> int:
        return self.instances[key].topology_version

    def has_hot(self, key: str) -> bool:
        with self._lock:
            return key in self._planners

    def previous_for(self, key: str,
                     ) -> Optional[Tuple[int, BatchPlanner]]:
        """The rotated-out (epoch, planner) pair, if still serving."""
        with self._lock:
            return self._previous.get(key)

    def answer_stale(self, queries: Sequence[Query],
                     ) -> Optional[Tuple[List[QueryAnswer], List[int]]]:
        """Answer from previous-epoch planners (degraded mode).

        Returns ``(answers, lags)`` with one epoch-lag entry per
        answer, or None when any queried instance has no
        previous-epoch planner to fall back to.  Never builds.
        """
        groups: "OrderedDict[str, List[int]]" = OrderedDict()
        for idx, q in enumerate(queries):
            groups.setdefault(q.instance, []).append(idx)
        plan: Dict[str, Tuple[int, BatchPlanner]] = {}
        for key in groups:
            prev = self.previous_for(key)
            if prev is None:
                return None
            plan[key] = prev
        answers: List[Optional[QueryAnswer]] = [None] * len(queries)
        lags: List[int] = [0] * len(queries)
        for key, indices in groups.items():
            epoch, planner = plan[key]
            lag = self.current_epoch(key) - epoch
            batch, _report = planner.answer_batch(
                [queries[i] for i in indices])
            for i, answer in zip(indices, batch):
                answers[i] = answer
                lags[i] = lag
        self.stats.stale_answers += len(queries)
        self.stats.queries += len(queries)
        _counters.registry.inc("repro_serve_queries_total",
                               len(queries))
        return ([a for a in answers if a is not None], lags)

    def oracle_for(self, key: str) -> ReplacementPathOracle:
        return self.planner_for(key).oracle

    def warm(self) -> None:
        """Build (or spill-load) the shard's oracles up front.

        With a spill store, every instance is warmed: builds beyond
        the LRU capacity still land their snapshot on disk, so later
        misses restore instead of re-solving.  Without one, only the
        first ``capacity`` keys are built — warming more would run
        full solves whose results the LRU immediately discards.
        """
        keys = sorted(self.instances)
        if self.store is None:
            keys = keys[:self.capacity]
        for key in keys:
            self.planner_for(key)

    # -- serving -------------------------------------------------------------

    def answer_batch(self, queries: Sequence[Query]) -> List[QueryAnswer]:
        """Answer this shard's slice, batch-planned per instance."""
        by_key: "OrderedDict[str, List[int]]" = OrderedDict()
        for idx, q in enumerate(queries):
            by_key.setdefault(q.instance, []).append(idx)
        answers: List[Optional[QueryAnswer]] = [None] * len(queries)
        with telemetry.span("serve/answer-batch", shard=self.shard_id,
                            queries=len(queries),
                            instances=len(by_key)):
            for key, indices in by_key.items():
                planner = self.planner_for(key)
                batch, report = planner.answer_batch(
                    [queries[i] for i in indices])
                for i, answer in zip(indices, batch):
                    answers[i] = answer
                self.stats.batch_solves += report.batch_solves
                self.stats.solves_saved += report.solves_saved
                self.stats.rounds += report.rounds
        self.stats.queries += len(queries)
        _counters.registry.inc("repro_serve_queries_total",
                               len(queries))
        return [a for a in answers if a is not None]


@dataclass
class ServiceReport:
    """Aggregate outcome of one serve invocation.

    In-process serving reports the shards' *lifetime* counters (shards
    are long-lived, like real serving processes);
    :meth:`ShardedQueryService.serve_parallel` workers are rebuilt per
    invocation, so their stats cover exactly that invocation.
    """

    answers: List[QueryAnswer]
    shard_stats: List[ShardStats] = field(default_factory=list)
    jobs: int = 1

    @property
    def queries(self) -> int:
        return len(self.answers)

    @property
    def hit_ratio(self) -> float:
        return hit_ratio(self.answers)

    def totals(self) -> ShardStats:
        total = ShardStats(shard_id=-1)
        for stats in self.shard_stats:
            total.merge(stats)
        return total

    def as_metrics(self) -> Dict[str, object]:
        out: Dict[str, object] = dict(self.totals().as_metrics())
        out["hit_ratio"] = round(self.hit_ratio, 4)
        out["shards"] = len(self.shard_stats)
        return out


class ShardedQueryService:
    """Route replacement-path queries across oracle shards."""

    def __init__(self, instances: Sequence[RPathsInstance],
                 shards: Optional[int] = None, capacity: int = 4,
                 store: Optional[ResultStore] = None,
                 solver: str = "theorem1", build_fabric: str = "fast",
                 planner_fabric: str = "vector",
                 max_group: int = DEFAULT_MAX_GROUP,
                 build_seed: int = 0) -> None:
        instances = list(instances)
        if not instances:
            raise ValueError("service needs at least one instance")
        if shards is None:
            shards = min(default_jobs(), len(instances))
        if shards < 1:
            raise ValueError("shard count must be positive")
        self.store = store
        self._shards = [
            OracleShard(shard_id=i, capacity=capacity, store=store,
                        solver=solver, build_fabric=build_fabric,
                        planner_fabric=planner_fabric,
                        max_group=max_group, build_seed=build_seed)
            for i in range(shards)
        ]
        self._route: Dict[str, int] = {}
        for inst in instances:
            if not inst.name:
                raise ValueError("every served instance needs a name")
            if inst.name in self._route:
                raise ValueError(
                    f"duplicate instance name {inst.name!r}")
            sid = shard_of(inst.name, shards)
            self._shards[sid].add_instance(inst)
            self._route[inst.name] = sid

    @property
    def shards(self) -> int:
        return len(self._shards)

    def warm(self) -> None:
        """Pre-build every shard's oracles (steady-state serving)."""
        for shard in self._shards:
            shard.warm()

    @property
    def instance_keys(self) -> List[str]:
        return sorted(self._route)

    def shard_for(self, instance_key: str) -> OracleShard:
        try:
            return self._shards[self._route[instance_key]]
        except KeyError:
            known = ", ".join(sorted(self._route))
            raise KeyError(f"unknown instance {instance_key!r}; "
                           f"served: {known}") from None

    def query(self, instance_key: str, s: int, t: int,
              edge: Tuple[int, int]) -> QueryAnswer:
        """One-off query (still batch-planned, batch of one)."""
        with telemetry.span("serve/query", instance=instance_key):
            [answer] = self.shard_for(instance_key).answer_batch(
                [Query(s=s, t=t, edge=edge, instance=instance_key)])
        return answer

    # -- dynamic topology ----------------------------------------------------

    def apply_mutations(self, instance_key: str,
                        mutations: Sequence[Mutation]) -> MutationResult:
        """Mutate one live instance and invalidate incrementally.

        Applies the batch (epoch bump, P re-derived), then rotates
        only the owning shard's oracle for this instance — every
        other oracle in the service keeps serving untouched.
        """
        shard = self.shard_for(instance_key)
        result = apply_mutations(shard.instances[instance_key],
                                 mutations)
        if result.applied:
            shard.invalidate(instance_key, result.instance,
                             result.applied)
        return result

    # -- observability -------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """JSON-safe service snapshot: shards, totals, and counters.

        The ``counters`` section is the process metrics registry (LRU
        probes, spill traffic, kernel dispatch, store lookups …), so
        one snapshot answers both "what did the service do" and "how
        did the layers below behave while doing it".
        """
        totals = ShardStats(shard_id=-1)
        for shard in self._shards:
            totals.merge(shard.stats)
        return {
            "shards": [
                {"shard_id": shard.shard_id,
                 "instances": len(shard.instances),
                 "hot_oracles": len(shard._planners),
                 **shard.stats.as_metrics()}
                for shard in self._shards
            ],
            "totals": totals.as_metrics(),
            "counters": _counters.snapshot_counters(),
        }

    def exposition(self) -> str:
        """Prometheus text exposition of the service + registry.

        Shard lifetime stats are published as per-shard gauges next to
        the registry's own series.
        """
        for shard in self._shards:
            labels = {"shard": str(shard.shard_id)}
            _counters.registry.set_gauge(
                "repro_serve_shard_hot_oracles",
                len(shard._planners), **labels)
            for name, value in shard.stats.as_metrics().items():
                _counters.registry.set_gauge(
                    f"repro_serve_shard_{name}", value, **labels)
        return _counters.exposition()

    def _partition(self, queries: Sequence[Query],
                   ) -> Dict[int, List[int]]:
        parts: Dict[int, List[int]] = {}
        for idx, q in enumerate(queries):
            if q.instance not in self._route:
                known = ", ".join(sorted(self._route))
                raise KeyError(f"unknown instance {q.instance!r}; "
                               f"served: {known}")
            parts.setdefault(self._route[q.instance], []).append(idx)
        return parts

    def serve(self, queries: Sequence[Query]) -> ServiceReport:
        """Answer a query stream in-process, shard by shard."""
        answers: List[Optional[QueryAnswer]] = [None] * len(queries)
        for sid, indices in sorted(self._partition(queries).items()):
            batch = self._shards[sid].answer_batch(
                [queries[i] for i in indices])
            for i, answer in zip(indices, batch):
                answers[i] = answer
        return ServiceReport(
            answers=[a for a in answers if a is not None],
            shard_stats=[s.stats for s in self._shards],
            jobs=1)

    def serve_parallel(self, queries: Sequence[Query],
                       jobs: Optional[int] = None) -> ServiceReport:
        """Answer a query stream with one worker process per shard.

        Workers rebuild their shard from the picklable instance data,
        share the spill store (content-addressed, atomic writes), and
        return plain ``(lengths, kinds, stats)`` tuples; parent-side
        oracle state is not touched.  Requires a ``store`` when warm
        oracles should carry over between invocations.
        """
        parts = sorted(self._partition(queries).items())
        if jobs is None:
            jobs = default_jobs()
        jobs = max(1, min(jobs, len(parts) or 1))
        if jobs <= 1 or len(parts) <= 1:
            report = self.serve(queries)
            report.jobs = 1
            return report
        payloads = []
        for sid, indices in parts:
            shard = self._shards[sid]
            payloads.append({
                "shard_id": sid,
                "capacity": shard.capacity,
                "solver": shard.solver,
                "build_fabric": shard.build_fabric,
                "planner_fabric": shard.planner_fabric,
                "max_group": shard.max_group,
                "build_seed": shard.build_seed,
                "store_root": (None if self.store is None
                               else str(self.store.root)),
                "instances": [
                    _portable_instance(inst)
                    for inst in shard.instances.values()
                ],
                "queries": [queries[i] for i in indices],
            })
        outcomes = pool_map(_shard_worker, payloads, jobs=jobs)
        answers: List[Optional[QueryAnswer]] = [None] * len(queries)
        shard_stats: List[ShardStats] = []
        for (sid, indices), (lengths, kinds, stats) in zip(
                parts, outcomes):
            for i, length, kind in zip(indices, lengths, kinds):
                answers[i] = QueryAnswer(queries[i], length, kind)
            shard_stats.append(ShardStats(shard_id=sid, **stats))
        return ServiceReport(
            answers=[a for a in answers if a is not None],
            shard_stats=shard_stats, jobs=jobs)


def _portable_instance(instance: RPathsInstance) -> RPathsInstance:
    """A cache-free copy that pickles small (no CSR/NumPy state)."""
    return RPathsInstance(
        n=instance.n, edges=list(instance.edges),
        path=list(instance.path), weighted=instance.weighted,
        name=instance.name,
        topology_version=instance.topology_version)


def _shard_worker(payload: Dict[str, object]):
    """Rebuild one shard in the worker and answer its slice."""
    telemetry.maybe_enable_from_env()
    store_root = payload["store_root"]
    shard = OracleShard(
        shard_id=int(payload["shard_id"]),
        capacity=int(payload["capacity"]),
        store=None if store_root is None else ResultStore(store_root),
        solver=str(payload["solver"]),
        build_fabric=str(payload["build_fabric"]),
        planner_fabric=str(payload["planner_fabric"]),
        max_group=int(payload["max_group"]),
        build_seed=int(payload["build_seed"]))
    for inst in payload["instances"]:
        shard.add_instance(inst)
    answers = shard.answer_batch(payload["queries"])
    stats = shard.stats.as_metrics()
    telemetry.flush()
    return ([a.length for a in answers], [a.kind for a in answers],
            stats)
