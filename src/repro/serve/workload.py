"""Seedable query-workload generators + their suite scenarios.

Four traffic shapes, each a pure function of ``(instance, count,
seed)`` so workloads replay bit-identically across runs, engines, and
worker processes:

``uniform``
    Read-heavy: the instance's own (s, t) pair with the failed edge
    uniform over *all* graph edges — every query is an O(1) oracle hit
    (path-edge table or the off-path |P| identity).  The regime behind
    the bench's ≥ 20x queries/sec claim.
``zipf``
    Skewed solve traffic: sources drawn Zipf(alpha) over a seeded
    vertex permutation (a few hot sources dominate), targets uniform,
    failed edges uniform over P.  Rewards the planner's per-edge
    grouping and the oracle's (source, edge) memo.
``adversarial``
    Cache-adversarial failed-edge schedule: consecutive queries cycle
    through P's edges and never repeat a (source, edge) pair until the
    whole product is exhausted — the memo never helps inside a wave,
    only the k-source batching does.
``mixed``
    ``read_fraction`` of uniform reads interleaved (seeded shuffle)
    with zipf solves — the "millions of users" shape: most traffic
    hits precomputed state, a tail forces fresh solves.

Each shape is also registered as a runtime scenario (``serve-*``), so
``repro suite run --scenario serve-zipf`` executes a full
generate → shard → batch-plan → verify-against-centralized cycle with
the usual caching/diffing; the scenarios double as end-to-end
integration tests of the serving tier.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Sequence, Tuple

from ..congest.words import INF
from ..graphs.instance import RPathsInstance
from ..runtime.registry import scenario
from .queries import Query

Params = Dict[str, object]


def _rng(seed: int) -> random.Random:
    return random.Random(seed)


def _edge_pool(instance: RPathsInstance) -> List[Tuple[int, int]]:
    return [(u, v) for u, v, _ in instance.edges]


def uniform_workload(instance: RPathsInstance, count: int,
                     seed: int = 0) -> List[Query]:
    """Oracle-hit reads: own (s, t), failed edge uniform over E."""
    rng = _rng(seed)
    pool = _edge_pool(instance)
    key = instance.name
    return [
        Query(s=instance.s, t=instance.t, edge=rng.choice(pool),
              instance=key)
        for _ in range(count)
    ]


def zipf_sources(instance: RPathsInstance, count: int,
                 rng: random.Random, alpha: float = 1.2) -> List[int]:
    """``count`` sources, Zipf(alpha)-skewed over a seeded permutation.

    Pure-stdlib sampling: rank r (0-based) gets weight 1/(r+1)^alpha;
    the permutation decides *which* vertices are hot, so different
    seeds skew toward different sources.
    """
    order = list(range(instance.n))
    rng.shuffle(order)
    weights = [1.0 / (rank + 1) ** alpha for rank in range(instance.n)]
    return rng.choices(order, weights=weights, k=count)


def zipf_workload(instance: RPathsInstance, count: int, seed: int = 0,
                  alpha: float = 1.2) -> List[Query]:
    """Skewed solve traffic: zipf sources x uniform targets x P edges."""
    rng = _rng(seed)
    path_edges = instance.path_edges()
    key = instance.name
    sources = zipf_sources(instance, count, rng, alpha=alpha)
    return [
        Query(s=s, t=rng.randrange(instance.n),
              edge=rng.choice(path_edges), instance=key)
        for s in sources
    ]


def adversarial_workload(instance: RPathsInstance, count: int,
                         seed: int = 0) -> List[Query]:
    """Memo-defeating schedule: no (source, edge) pair repeats until
    all |V'| x h_st combinations are exhausted, and consecutive
    queries always change the failed edge."""
    rng = _rng(seed)
    path_edges = instance.path_edges()
    h = len(path_edges)
    # Sources exclude the instance source so no query collapses into
    # an O(1) oracle hit.
    sources = [v for v in range(instance.n) if v != instance.s]
    rng.shuffle(sources)
    key = instance.name
    out: List[Query] = []
    for i in range(count):
        edge = path_edges[i % h]
        s = sources[(i // h) % len(sources)]
        out.append(Query(s=s, t=rng.randrange(instance.n), edge=edge,
                         instance=key))
    return out


def mixed_workload(instance: RPathsInstance, count: int, seed: int = 0,
                   read_fraction: float = 0.8,
                   alpha: float = 1.2) -> List[Query]:
    """Seeded interleave of uniform reads and zipf solves."""
    if not 0.0 <= read_fraction <= 1.0:
        raise ValueError("read_fraction must be in [0, 1]")
    rng = _rng(seed)
    reads = int(round(count * read_fraction))
    mix = (uniform_workload(instance, reads, seed=rng.randrange(2**30))
           + zipf_workload(instance, count - reads,
                           seed=rng.randrange(2**30), alpha=alpha))
    rng.shuffle(mix)
    return mix


#: kind -> generator(instance, count, seed, **kw)
WORKLOADS: Dict[str, Callable[..., List[Query]]] = {
    "uniform": uniform_workload,
    "zipf": zipf_workload,
    "adversarial": adversarial_workload,
    "mixed": mixed_workload,
}


def generate_workload(kind: str, instance: RPathsInstance, count: int,
                      seed: int = 0, **kwargs) -> List[Query]:
    try:
        gen = WORKLOADS[kind]
    except KeyError:
        known = ", ".join(sorted(WORKLOADS))
        raise ValueError(
            f"unknown workload {kind!r}; expected one of {known}"
        ) from None
    return gen(instance, count, seed=seed, **kwargs)


# -- suite scenarios ----------------------------------------------------------

def _serve_instances(n: int, seed: int) -> List[RPathsInstance]:
    """Two instances per cell so routing/sharding is exercised."""
    from ..graphs.generators import expander_instance, random_instance
    return [
        random_instance(n, seed=seed),
        expander_instance(max(8, n // 2), degree=3, seed=seed + 1),
    ]


def verify_against_centralized(instances: Sequence[RPathsInstance],
                               answers) -> bool:
    """Every answer vs. centralized ground truth (memoized SSSPs).

    Shared by the scenarios, the CLI's ``--check``, and the bench's
    correctness gate — one definition of "the serving tier is right".
    """
    by_key = {inst.name: inst for inst in instances}
    dist_cache: Dict[Tuple[str, int, Tuple[int, int]], List[int]] = {}
    for answer in answers:
        q = answer.query
        inst = by_key[q.instance]
        cache_key = (q.instance, q.s, q.edge)
        dist = dist_cache.get(cache_key)
        if dist is None:
            dist = inst.dijkstra(q.s, avoid_edges=frozenset([q.edge]))
            dist_cache[cache_key] = dist
        want = INF if dist[q.t] >= INF else dist[q.t]
        if answer.length != want:
            return False
    return True


def _run_serve_cell(kind: str, params: Params, seed: int,
                    **workload_kwargs) -> Dict[str, object]:
    from .shard import ShardedQueryService

    n = int(params["n"])
    count = int(params["queries"])
    fabric = params.get("fabric")
    instances = _serve_instances(n, seed)
    service = ShardedQueryService(
        instances, shards=2, capacity=2, store=None,
        solver="theorem1",
        build_fabric=str(fabric) if fabric else "fast",
        planner_fabric=str(fabric) if fabric else "vector",
        build_seed=seed)
    # Interleave the instances' streams and serve in waves, so the
    # second wave exercises warm oracles and the (s, e) memo.
    streams = [
        generate_workload(kind, inst, count // len(instances),
                          seed=seed + i, **workload_kwargs)
        for i, inst in enumerate(instances)
    ]
    queries: List[Query] = [q for pair in zip(*streams) for q in pair]
    waves = [queries[i::3] for i in range(3)]
    answers = []
    for wave in waves:
        answers.extend(service.serve(wave).answers)
    report = service.serve([])  # stats snapshot, no extra queries
    totals = report.totals()
    correct = verify_against_centralized(instances, answers)
    inst = instances[0]
    metrics: Dict[str, object] = {
        "n": inst.n,
        "m": inst.m,
        "hop_count": inst.hop_count,
        "rounds": totals.rounds,
        "messages": 0,
        "words": 0,
        "max_link_words": 0,
        "violations": 0,
        "queries": len(answers),
        "hit_ratio": round(
            sum(1 for a in answers if a.is_hit) / max(1, len(answers)),
            4),
        "oracle_builds": totals.oracle_builds,
        "batch_solves": totals.batch_solves,
        "solves_saved": totals.solves_saved,
        "correct": bool(correct and len(answers) == len(queries)),
    }
    return metrics


@scenario(
    "serve-uniform",
    params=[{"n": 48, "queries": 240}],
    seeds=[0, 1],
    smoke_params=[{"n": 24, "queries": 60}],
    description="Serving tier, read-only traffic: every query an O(1) "
                "oracle hit, verified against centralized truth",
    tags=("serve", "workload"),
)
def run_serve_uniform(params: Params, seed: int):
    return _run_serve_cell("uniform", params, seed)


@scenario(
    "serve-zipf",
    params=[{"n": 48, "queries": 240, "alpha": 1.2}],
    seeds=[0, 1],
    smoke_params=[{"n": 24, "queries": 60, "alpha": 1.2}],
    description="Serving tier, zipf-skewed solve traffic: hot sources "
                "reward batching and the (s, e) memo",
    tags=("serve", "workload"),
)
def run_serve_zipf(params: Params, seed: int):
    return _run_serve_cell("zipf", params, seed,
                           alpha=float(params.get("alpha", 1.2)))


@scenario(
    "serve-adversarial",
    params=[{"n": 40, "queries": 160}],
    seeds=[0, 1],
    smoke_params=[{"n": 20, "queries": 48}],
    description="Serving tier, memo-defeating failed-edge schedule: "
                "only k-source batching amortizes anything",
    tags=("serve", "workload"),
)
def run_serve_adversarial(params: Params, seed: int):
    return _run_serve_cell("adversarial", params, seed)


@scenario(
    "serve-mixed",
    params=[{"n": 48, "queries": 240, "read_fraction": 0.8}],
    seeds=[0, 1],
    smoke_params=[{"n": 24, "queries": 60, "read_fraction": 0.8}],
    description="Serving tier, mixed read/solve traffic at the given "
                "read fraction",
    tags=("serve", "workload"),
)
def run_serve_mixed(params: Params, seed: int):
    return _run_serve_cell(
        "mixed", params, seed,
        read_fraction=float(params.get("read_fraction", 0.8)))
