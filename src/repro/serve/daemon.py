"""Long-lived shard workers — the serve daemon's process tier.

:class:`~repro.serve.shard.ShardedQueryService` is a library object:
``serve_parallel`` rebuilds every shard inside a fresh pool per
invocation, so each batch re-enters the LRU cold and pays oracle
construction again.  The daemon inverts that: **worker processes own
their shards for the life of the service**.  Each worker

* attaches its instances' frozen CSR topologies from the parent's
  ``multiprocessing.shared_memory`` publication
  (:mod:`repro.runtime.sharedmem` — zero-copy, one physical copy of
  the arrays regardless of worker count),
* builds or spill-loads its oracles **once** at startup
  (:meth:`~repro.serve.shard.OracleShard.warm`, ResultStore spill
  intact), and
* then serves request batches from the warm LRU over a
  request/response ``multiprocessing`` queue pair.

Lifecycle is stop-flag + drain (the Morelia threaded-streaming idiom:
a shared flag the worker polls between queue reads): ``stop
(drain=True)`` sets the flag, the worker finishes everything already
queued, reports its lifetime stats, detaches, and exits.  Health is
heartbeat-based — each worker stamps a shared timestamp between
batches; the parent's monitor thread declares a worker dead when the
process exits or the stamp goes stale, and restarts it (bounded by
``max_restarts``) on a **fresh queue pair**, re-warming from the
spill store and re-submitting every outstanding request (queries are
pure, so the occasional duplicate answer is dropped by request id).
Queues are strictly per-worker — a SIGKILL can land while the dying
process's queue feeder thread holds a queue's shared write lock, so
any queue a dead worker may have touched is abandoned wholesale
(fresh pair + fresh collector thread) rather than shared or reused.

Every transition lands in the closed telemetry enums of
:mod:`repro.telemetry.serving`; the threaded admission path in front
of this tier is :class:`repro.serve.frontend.ServeFrontend`.
"""

from __future__ import annotations

import itertools
import os
import queue as _thread_queue
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .. import telemetry
from ..dynamic import stream as _stream
from ..graphs.instance import RPathsInstance
from ..runtime.executor import default_jobs
from ..runtime.store import ResultStore
from ..telemetry import counters as _counters
from ..telemetry import serving as _serving
from .planner import DEFAULT_MAX_GROUP
from .queries import Query, QueryAnswer
from .shard import OracleShard, ShardStats, _portable_instance, shard_of

#: Request-queue message kinds (worker side).
_MSG_BATCH = "batch"
_MSG_STATS = "stats"
#: Topology epoch bump: (kind, instance key, new instance, applied).
_MSG_INVALIDATE = "invalidate"
#: Chaos injection: (kind, seconds) — the worker sleeps in its serving
#: loop without stamping its heartbeat, simulating a wedged queue.
_MSG_STALL = "stall"

#: Response-queue message kinds (parent side).
_RSP_READY = "ready"
_RSP_ANSWER = "answer"
_RSP_STATS = "stats"
_RSP_FINAL = "final"

#: Answer callback: (lengths, kinds, lags, error) — lengths/kinds/lags
#: are None exactly when error is non-empty.  ``lags[i]`` is how many
#: topology epochs behind the current instance answer ``i`` is
#: (0 = fresh; positive = degraded-mode answer from a previous-epoch
#: oracle within the request's staleness budget).
AnswerCallback = Callable[[Optional[List[int]], Optional[List[str]],
                           Optional[List[int]], str], None]


@dataclass(frozen=True)
class WorkerConfig:
    """Everything a worker process needs to rebuild its shard.

    Instances ship cache-free (:func:`~repro.serve.shard.
    _portable_instance`); the heavy CSR arrays arrive through the
    shared-memory ``topology_handles`` instead of the pickle stream.
    """

    shard_id: int
    instances: Tuple[RPathsInstance, ...]
    capacity: int = 4
    store_root: Optional[str] = None
    solver: str = "theorem1"
    build_fabric: str = "fast"
    planner_fabric: str = "vector"
    max_group: int = DEFAULT_MAX_GROUP
    build_seed: int = 0
    #: Queue-poll interval — also the heartbeat cadence while idle.
    poll_seconds: float = 0.05
    #: Artificial delay before an invalidated oracle's background
    #: rebuild starts — a test/chaos knob that widens the degraded
    #: window so stale serving is deterministically observable.
    rebuild_delay: float = 0.0
    #: instance key -> SharedTopologyHandle (empty when numpy absent).
    topology_handles: Tuple[Tuple[str, object], ...] = ()


def _worker_main(config: WorkerConfig, request_q, response_q,
                 stop_flag, heartbeat) -> None:
    """One worker process: attach, warm once, serve until stopped.

    The loop stamps ``heartbeat`` between queue reads; with the stop
    flag set it keeps answering until the request queue is empty
    (drain), then reports lifetime stats and exits.
    """
    from ..runtime import sharedmem

    telemetry.maybe_enable_from_env()
    attached: List[object] = []
    sid = config.shard_id
    heartbeat.value = time.time()
    try:
        store = (None if config.store_root is None
                 else ResultStore(config.store_root))
        shard = OracleShard(
            shard_id=sid, capacity=config.capacity, store=store,
            solver=config.solver, build_fabric=config.build_fabric,
            planner_fabric=config.planner_fabric,
            max_group=config.max_group, build_seed=config.build_seed)
        handles = dict(config.topology_handles)
        for inst in config.instances:
            handle = handles.get(inst.name)
            if handle is not None:
                topo = sharedmem.attach_topology(handle)
                inst._topology = topo  # build_network rides the views
                attached.append(topo)
            shard.add_instance(inst)
        with telemetry.span("serve/daemon-warm", shard=sid,
                            instances=len(config.instances)):
            shard.warm()  # the whole point: built once, served warm
    except Exception as exc:  # noqa: BLE001 - reported to the parent
        response_q.put((_RSP_READY, sid, os.getpid(), {},
                        f"{type(exc).__name__}: {exc}"))
        for topo in attached:
            sharedmem.detach_topology(topo)
        return
    response_q.put((_RSP_READY, sid, os.getpid(),
                    shard.stats.as_metrics(), ""))

    #: key -> Event set once the post-invalidation rebuild finishes.
    rebuild_events: Dict[str, threading.Event] = {}

    def start_rebuild(key: str) -> None:
        event = threading.Event()
        rebuild_events[key] = event

        def run() -> None:
            try:
                if config.rebuild_delay > 0:
                    time.sleep(config.rebuild_delay)
                shard.planner_for(key)
            except Exception:  # noqa: BLE001 - next fresh-demanding
                pass           # batch retries the build inline
            finally:
                event.set()

        threading.Thread(target=run, daemon=True,
                         name=f"serve-rebuild-{sid}-{key}").start()

    def answer_with_staleness(queries: List[Query],
                              staleness: List[int],
                              ) -> Tuple[List[int], List[str],
                                         List[int]]:
        """Per-instance split: fresh when hot, stale within budget
        while the rebuild runs, otherwise wait for fresh."""
        groups: "OrderedDict[str, List[int]]" = OrderedDict()
        for idx, q in enumerate(queries):
            groups.setdefault(q.instance, []).append(idx)
        lengths = [0] * len(queries)
        kinds = [""] * len(queries)
        lags = [0] * len(queries)
        for key, indices in groups.items():
            sub = [queries[i] for i in indices]
            if not shard.has_hot(key):
                budget = min(staleness[i] for i in indices)
                prev = shard.previous_for(key)
                if prev is not None and budget > 0:
                    lag = shard.current_epoch(key) - prev[0]
                    if 0 < lag <= budget:
                        stale = shard.answer_stale(sub)
                        if stale is not None:
                            answers, sub_lags = stale
                            for i, a, lg in zip(indices, answers,
                                                sub_lags):
                                lengths[i] = a.length
                                kinds[i] = a.kind
                                lags[i] = lg
                            continue
                event = rebuild_events.get(key)
                if event is not None:
                    # Fresh demanded mid-rebuild: wait it out,
                    # stamping the heartbeat so the monitor stays calm.
                    while not event.wait(timeout=config.poll_seconds):
                        heartbeat.value = time.time()
            answers = shard.answer_batch(sub)
            for i, a in zip(indices, answers):
                lengths[i] = a.length
                kinds[i] = a.kind
        return lengths, kinds, lags

    try:
        while True:
            heartbeat.value = time.time()
            try:
                item = request_q.get(timeout=config.poll_seconds)
            except _thread_queue.Empty:
                if stop_flag.is_set():
                    break  # stop requested and the queue is drained
                continue
            kind = item[0]
            if kind == _MSG_STATS:
                response_q.put((_RSP_STATS, sid, item[1],
                                shard.stats.as_metrics(),
                                len(shard._planners)))
                continue
            if kind == _MSG_INVALIDATE:
                _kind, key, new_instance, applied = item
                try:
                    shard.invalidate(key, new_instance, list(applied))
                    start_rebuild(key)
                except KeyError:
                    pass  # not this worker's instance: stale route
                continue
            if kind == _MSG_STALL:
                time.sleep(float(item[1]))  # chaos: wedge the loop
                continue
            _kind, req_id, queries, staleness = item
            try:
                lengths, kinds, lags = answer_with_staleness(
                    list(queries), list(staleness))
                response_q.put((_RSP_ANSWER, sid, req_id,
                                lengths, kinds, lags, ""))
            except Exception as exc:  # noqa: BLE001 - per-request
                response_q.put((_RSP_ANSWER, sid, req_id, None, None,
                                None,
                                f"{type(exc).__name__}: {exc}"))
    finally:
        response_q.put((_RSP_FINAL, sid, shard.stats.as_metrics(),
                        _counters.snapshot_counters()))
        for topo in attached:
            sharedmem.detach_topology(topo)
        telemetry.flush()


@dataclass
class _Worker:
    """Parent-side handle for one worker process."""

    config: WorkerConfig
    process: object = None
    request_q: object = None
    response_q: object = None
    collector: Optional[threading.Thread] = None
    stop_flag: object = None
    heartbeat: object = None
    ready: threading.Event = field(default_factory=threading.Event)
    ready_error: str = ""
    warm_stats: Dict[str, int] = field(default_factory=dict)
    final_stats: Optional[Dict[str, int]] = None
    pid: int = 0
    restarts: int = 0
    failed: bool = False


class ServeDaemon:
    """Own a fleet of long-lived shard workers and route to them.

    Instances are partitioned by the same SHA-256 mapping as
    :class:`~repro.serve.shard.ShardedQueryService`, one worker per
    shard.  :meth:`submit_batch` is asynchronous (answers arrive on a
    collector thread's callback); :meth:`query` is the synchronous
    convenience the CLI self-check and tests use.  Admission control,
    deadlines, and backpressure live one layer up in
    :class:`~repro.serve.frontend.ServeFrontend`.
    """

    def __init__(self, instances: Sequence[RPathsInstance],
                 workers: Optional[int] = None, capacity: int = 4,
                 store: Optional[ResultStore] = None,
                 solver: str = "theorem1", build_fabric: str = "fast",
                 planner_fabric: str = "vector",
                 max_group: int = DEFAULT_MAX_GROUP,
                 build_seed: int = 0,
                 share_topology: bool = True,
                 poll_seconds: float = 0.05,
                 heartbeat_timeout: float = 5.0,
                 monitor_interval: float = 0.25,
                 max_restarts: int = 2,
                 rebuild_delay: float = 0.0) -> None:
        instances = list(instances)
        if not instances:
            raise ValueError("daemon needs at least one instance")
        if workers is None:
            workers = min(default_jobs(), len(instances))
        if workers < 1:
            raise ValueError("worker count must be positive")
        self.store = store
        self.share_topology = share_topology
        self.heartbeat_timeout = heartbeat_timeout
        self.monitor_interval = monitor_interval
        self.max_restarts = max_restarts
        self._route: Dict[str, int] = {}
        self._instances: Dict[int, List[RPathsInstance]] = {
            sid: [] for sid in range(workers)}
        for inst in instances:
            if not inst.name:
                raise ValueError("every served instance needs a name")
            if inst.name in self._route:
                raise ValueError(
                    f"duplicate instance name {inst.name!r}")
            sid = shard_of(inst.name, workers)
            self._route[inst.name] = sid
            self._instances[sid].append(inst)
        import multiprocessing as mp
        self._ctx = mp.get_context()
        self._workers: Dict[int, _Worker] = {}
        for sid in range(workers):
            self._workers[sid] = _Worker(config=WorkerConfig(
                shard_id=sid,
                instances=tuple(_portable_instance(i)
                                for i in self._instances[sid]),
                capacity=capacity,
                store_root=(None if store is None
                            else str(store.root)),
                solver=solver, build_fabric=build_fabric,
                planner_fabric=planner_fabric, max_group=max_group,
                build_seed=build_seed, poll_seconds=poll_seconds,
                rebuild_delay=rebuild_delay))
        self._published: List[object] = []
        self._req_ids = itertools.count(1)
        self._lock = threading.Lock()
        #: Serializes topology mutations (epoch bumps are ordered).
        self._mutate_lock = threading.Lock()
        #: req_id -> (shard_id, queries, staleness, callback);
        #: resubmitted on a worker restart, resolved exactly once by
        #: the collector.
        self._pending: Dict[int, Tuple[int, Tuple[Query, ...],
                                       Tuple[int, ...],
                                       AnswerCallback]] = {}
        self._inflight: Dict[int, int] = {
            sid: 0 for sid in self._workers}
        self._stats_waiters: Dict[int, Tuple[threading.Event, list]] = {}
        self._running = False
        self._stopping = False
        self._monitor: Optional[threading.Thread] = None

    # -- routing ------------------------------------------------------------

    @property
    def workers(self) -> int:
        return len(self._workers)

    @property
    def instance_keys(self) -> List[str]:
        return sorted(self._route)

    def shard_for_key(self, instance_key: str) -> int:
        try:
            return self._route[instance_key]
        except KeyError:
            known = ", ".join(sorted(self._route))
            raise KeyError(f"unknown instance {instance_key!r}; "
                           f"served: {known}") from None

    def inflight(self, shard_id: int) -> int:
        """Queries dispatched to ``shard_id`` and not yet answered."""
        with self._lock:
            return self._inflight.get(shard_id, 0)

    def instance_for(self, instance_key: str) -> RPathsInstance:
        """The parent's authoritative (current-epoch) instance."""
        sid = self.shard_for_key(instance_key)
        for inst in self._instances[sid]:
            if inst.name == instance_key:
                return inst
        raise KeyError(instance_key)

    def epoch_of(self, instance_key: str) -> int:
        return self.instance_for(instance_key).topology_version

    # -- dynamic topology ----------------------------------------------------

    def apply_mutations(self, instance_key: str,
                        mutations: Sequence["_stream.Mutation"],
                        ) -> "_stream.MutationResult":
        """Mutate one live instance and invalidate its worker.

        The parent is authoritative for epochs: it applies the batch
        (cheap — one SSSP), swaps the instance into the owning
        worker's config (so a *restart* warms against the new epoch,
        not the old one), drops the now-stale shared-topology handle,
        and sends the worker an invalidate message that rotates its
        hot oracle and kicks the background re-warm.
        """
        sid = self.shard_for_key(instance_key)
        worker = self._workers[sid]
        with self._mutate_lock:
            current = self.instance_for(instance_key)
            result = _stream.apply_mutations(current, mutations)
            if not result.applied:
                return result
            insts = self._instances[sid]
            for i, inst in enumerate(insts):
                if inst.name == instance_key:
                    insts[i] = result.instance
            portable = _portable_instance(result.instance)
            config = worker.config
            worker.config = WorkerConfig(**{
                **config.__dict__,
                "instances": tuple(
                    portable if inst.name == instance_key else inst
                    for inst in config.instances),
                "topology_handles": tuple(
                    (name, handle)
                    for name, handle in config.topology_handles
                    if name != instance_key),
            })
            handles = getattr(self, "_topology_handles", None)
            if handles is not None:
                handles.pop(instance_key, None)
        if (self._running and not self._stopping
                and worker.process is not None and not worker.failed):
            worker.request_q.put((_MSG_INVALIDATE, instance_key,
                                  portable, tuple(result.applied)))
        return result

    def inject_stall(self, shard_id: int, seconds: float) -> None:
        """Chaos hook: wedge one worker's serving loop for
        ``seconds`` without heartbeats (long stalls trip the monitor,
        short ones just back the queue up — both on purpose)."""
        worker = self._workers[shard_id]
        if worker.process is None:
            raise RuntimeError("daemon is not running (call start())")
        worker.request_q.put((_MSG_STALL, float(seconds)))

    # -- lifecycle ----------------------------------------------------------

    def _publish_topologies(self) -> Dict[str, object]:
        """Publish each instance's frozen CSR arrays once (zero-copy
        for every worker and every restart); {} when numpy is absent."""
        if not self.share_topology:
            return {}
        try:
            from ..congest.topology import CSRTopology
            from ..runtime import sharedmem
            handles: Dict[str, object] = {}
            for insts in self._instances.values():
                for inst in insts:
                    if inst._topology is None:
                        inst._topology = CSRTopology(inst.n, inst.edges)
                    shared = sharedmem.publish_topology(inst._topology)
                    self._published.append(shared)
                    handles[inst.name] = shared.handle
            return handles
        except ImportError:  # numpy-less: workers rebuild from edges
            return {}

    def _spawn(self, worker: _Worker,
               handles: Dict[str, object]) -> None:
        config = worker.config
        if handles:
            shard_handles = tuple(
                (inst.name, handles[inst.name])
                for inst in config.instances if inst.name in handles)
            config = WorkerConfig(**{
                **config.__dict__, "topology_handles": shard_handles})
            worker.config = config
        worker.request_q = self._ctx.Queue()
        worker.response_q = self._ctx.Queue()
        worker.stop_flag = self._ctx.Event()
        worker.heartbeat = self._ctx.Value("d", time.time())
        worker.ready = threading.Event()
        worker.ready_error = ""
        worker.process = self._ctx.Process(
            target=_worker_main,
            args=(config, worker.request_q, worker.response_q,
                  worker.stop_flag, worker.heartbeat),
            daemon=True)
        worker.process.start()
        # One collector thread per queue generation: replacing
        # worker.response_q retires the previous thread on its next
        # poll, so a queue a killed worker may have wedged is simply
        # abandoned instead of blocking the other shards' answers.
        worker.collector = threading.Thread(
            target=self._collect_loop,
            args=(worker, worker.response_q),
            name=f"serve-daemon-collector-{config.shard_id}",
            daemon=True)
        worker.collector.start()
        _serving.record_daemon_event(_serving.EVENT_WORKER_START)

    def start(self, warm_timeout: float = 120.0) -> "ServeDaemon":
        """Spawn + warm every worker; raises if any fails to warm."""
        if self._running:
            return self
        _serving.record_daemon_event(_serving.EVENT_START)
        self._topology_handles = self._publish_topologies()
        self._running = True  # before _spawn: collectors poll on it
        for worker in self._workers.values():
            self._spawn(worker, self._topology_handles)
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="serve-daemon-monitor",
            daemon=True)
        self._monitor.start()
        deadline = time.time() + warm_timeout
        for sid, worker in self._workers.items():
            remaining = max(0.0, deadline - time.time())
            if not worker.ready.wait(timeout=remaining):
                self.stop(drain=False)
                raise RuntimeError(
                    f"worker {sid} did not warm within "
                    f"{warm_timeout:.0f}s")
            if worker.ready_error:
                error = worker.ready_error
                self.stop(drain=False)
                raise RuntimeError(
                    f"worker {sid} failed to warm: {error}")
        _serving.set_workers_alive(len(self._workers))
        return self

    def __enter__(self) -> "ServeDaemon":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def stop(self, drain: bool = True,
             timeout: float = 30.0) -> Dict[str, object]:
        """Stop every worker and return the final stats snapshot.

        ``drain=True`` (the default) lets workers finish everything
        already queued before exiting; ``drain=False`` terminates
        them.  Unanswered requests are resolved with a ``shutdown``
        error either way.  Idempotent.
        """
        if not self._running:
            return self.stats()
        self._stopping = True
        _serving.record_daemon_event(
            _serving.EVENT_DRAIN if drain else _serving.EVENT_STOP)
        deadline = time.time() + timeout
        for worker in self._workers.values():
            if worker.process is None:
                continue
            if drain and not worker.failed:
                worker.stop_flag.set()
            else:
                worker.process.terminate()
        for worker in self._workers.values():
            if worker.process is None:
                continue
            worker.process.join(
                timeout=max(0.1, deadline - time.time()))
            if worker.process.is_alive():  # drain overran: force it
                worker.process.terminate()
                worker.process.join(timeout=5.0)
            _serving.record_daemon_event(_serving.EVENT_WORKER_EXIT)
        # Give the collectors one last pass over final-stats messages,
        # then shut them down.
        time.sleep(0.05)
        self._running = False
        threads = [self._monitor] + [w.collector
                                     for w in self._workers.values()]
        for thread in threads:
            if thread is not None:
                thread.join(timeout=5.0)
        self._drain_responses()
        with self._lock:
            leftovers = list(self._pending.items())
            self._pending.clear()
            for sid in self._inflight:
                self._inflight[sid] = 0
        for _req_id, entry in leftovers:
            entry[3](None, None, None, "shutdown")
        for shared in self._published:
            shared.close()
        self._published.clear()
        _serving.set_workers_alive(0)
        if drain:
            _serving.record_daemon_event(_serving.EVENT_STOP)
        return self.stats()

    # -- submission ---------------------------------------------------------

    def submit_batch(self, queries: Sequence[Query],
                     callback: AnswerCallback,
                     shard_id: Optional[int] = None,
                     staleness: Optional[Sequence[int]] = None) -> int:
        """Queue one single-shard batch; the collector thread invokes
        ``callback`` exactly once when the answer (or error) arrives.

        All queries must route to the same shard (the front-end groups
        per shard before submitting).  ``staleness[i]`` is query i's
        epoch budget: the worker may answer from an oracle up to that
        many epochs behind while the fresh one re-warms (0, the
        default, demands fresh).  Returns the request id.
        """
        queries = tuple(queries)
        if not queries:
            raise ValueError("empty batch")
        if staleness is None:
            staleness = (0,) * len(queries)
        else:
            staleness = tuple(int(x) for x in staleness)
            if len(staleness) != len(queries):
                raise ValueError("one staleness budget per query")
        if shard_id is None:
            shard_id = self.shard_for_key(queries[0].instance)
        for q in queries:
            if self.shard_for_key(q.instance) != shard_id:
                raise ValueError(
                    f"query {q.label} does not route to shard "
                    f"{shard_id}")
        worker = self._workers[shard_id]
        if worker.process is None:
            raise RuntimeError("daemon is not running (call start())")
        req_id = next(self._req_ids)
        if worker.failed or self._stopping:
            callback(None, None, None,
                     "worker-lost" if worker.failed else "shutdown")
            return req_id
        with self._lock:
            self._pending[req_id] = (shard_id, queries, staleness,
                                     callback)
            self._inflight[shard_id] += len(queries)
            _serving.set_inflight(shard_id,
                                  self._inflight[shard_id])
        worker.request_q.put((_MSG_BATCH, req_id, queries, staleness))
        return req_id

    def query(self, instance_key: str, s: int, t: int,
              edge: Tuple[int, int],
              timeout: Optional[float] = None,
              max_staleness: int = 0) -> QueryAnswer:
        """Synchronous single query (batch of one) through a worker."""
        q = Query(s=s, t=t, edge=(int(edge[0]), int(edge[1])),
                  instance=instance_key)
        done = threading.Event()
        box: List[object] = [None, None]

        def callback(lengths, kinds, lags, error):
            box[0], box[1] = (lengths, kinds), error
            done.set()

        self.submit_batch([q], callback,
                          staleness=(int(max_staleness),))
        if not done.wait(timeout=timeout):
            raise TimeoutError(
                f"no answer for {q.label} within {timeout}s")
        if box[1]:
            raise RuntimeError(f"worker error: {box[1]}")
        (lengths, kinds) = box[0]
        return QueryAnswer(q, lengths[0], kinds[0])

    # -- collector / monitor threads ----------------------------------------

    def _resolve(self, req_id: int, lengths, kinds, lags,
                 error: str) -> None:
        with self._lock:
            entry = self._pending.pop(req_id, None)
            if entry is None:
                return  # duplicate after a restart resubmit: dropped
            shard_id, queries, _staleness, callback = entry
            self._inflight[shard_id] = max(
                0, self._inflight[shard_id] - len(queries))
            _serving.set_inflight(shard_id, self._inflight[shard_id])
        callback(lengths, kinds, lags, error)

    def _handle_response(self, msg) -> None:
        kind = msg[0]
        if kind == _RSP_ANSWER:
            _kind, _sid, req_id, lengths, kinds, lags, error = msg
            self._resolve(req_id, lengths, kinds, lags, error)
        elif kind == _RSP_READY:
            _kind, sid, pid, warm_stats, error = msg
            worker = self._workers[sid]
            worker.pid = pid
            worker.warm_stats = dict(warm_stats)
            worker.ready_error = error
            worker.ready.set()
            if not error:
                _serving.record_daemon_event(
                    _serving.EVENT_WORKER_READY)
        elif kind == _RSP_STATS:
            _kind, _sid, token, stats, hot = msg
            waiter = self._stats_waiters.pop(token, None)
            if waiter is not None:
                event, box = waiter
                box.append((stats, hot))
                event.set()
        elif kind == _RSP_FINAL:
            _kind, sid, stats, _counters_snap = msg
            self._workers[sid].final_stats = dict(stats)

    def _collect_loop(self, worker: _Worker, response_q) -> None:
        """Route one queue generation's responses; exits when the
        daemon stops or a restart swaps in a fresh queue."""
        while self._running and worker.response_q is response_q:
            try:
                msg = response_q.get(timeout=0.05)
            except _thread_queue.Empty:
                continue
            except Exception:  # noqa: BLE001 - queue torn/corrupted
                return  # a killed producer can leave a partial frame
            self._handle_response(msg)

    def _drain_responses(self) -> None:
        """Consume whatever still sits on the live response queues."""
        for worker in self._workers.values():
            if worker.response_q is None:
                continue
            while True:
                try:
                    msg = worker.response_q.get_nowait()
                except _thread_queue.Empty:
                    break
                except Exception:  # noqa: BLE001 - partial frame
                    break
                self._handle_response(msg)

    def _monitor_loop(self) -> None:
        while self._running:
            time.sleep(self.monitor_interval)
            if not self._running or self._stopping:
                return
            alive = 0
            for sid, worker in self._workers.items():
                if worker.failed or worker.process is None:
                    continue
                stale = (worker.ready.is_set()
                         and not worker.ready_error
                         and (time.time() - worker.heartbeat.value
                              > self.heartbeat_timeout))
                if worker.process.is_alive() and not stale:
                    alive += 1
                    continue
                _serving.record_daemon_event(
                    _serving.EVENT_WORKER_DEAD)
                self._restart(sid, worker)
                if not worker.failed:
                    alive += 1
            _serving.set_workers_alive(alive)

    def _restart(self, sid: int, worker: _Worker) -> None:
        """Replace a dead worker; re-warm, then resubmit outstanding.

        The fresh process gets a fresh request queue (the dead one may
        hold a lock a killed producer never released); every pending
        request for the shard is re-enqueued — workers answer by
        request id, so a duplicate from the old queue resolves once
        and the second response is dropped.
        """
        if worker.process is not None and worker.process.is_alive():
            worker.process.terminate()
            worker.process.join(timeout=5.0)
        if worker.restarts >= self.max_restarts:
            worker.failed = True
            with self._lock:
                lost = [(req_id, entry)
                        for req_id, entry in self._pending.items()
                        if entry[0] == sid]
                for req_id, _entry in lost:
                    del self._pending[req_id]
                self._inflight[sid] = 0
                _serving.set_inflight(sid, 0)
            for _req_id, entry in lost:
                entry[3](None, None, None, "worker-lost")
            return
        worker.restarts += 1
        _serving.record_daemon_event(_serving.EVENT_WORKER_RESTART)
        # The restart warms from worker.config, which apply_mutations
        # keeps at the current epoch — so pending requests resubmit
        # against the *new* topology even when the kill raced an
        # invalidate message the dead worker never consumed.
        self._spawn(worker, getattr(self, "_topology_handles", {}))
        with self._lock:
            outstanding = [
                (req_id, entry[1], entry[2])
                for req_id, entry in sorted(self._pending.items())
                if entry[0] == sid
            ]
        for req_id, queries, staleness in outstanding:
            _serving.record_daemon_event(_serving.EVENT_RESUBMIT)
            worker.request_q.put((_MSG_BATCH, req_id, queries,
                                  staleness))

    # -- observability -------------------------------------------------------

    def worker_stats(self, timeout: float = 5.0) -> List[Dict[str, object]]:
        """Live per-worker shard stats, scraped over the queues."""
        out: List[Dict[str, object]] = []
        for sid, worker in sorted(self._workers.items()):
            row: Dict[str, object] = {
                "shard_id": sid,
                "pid": worker.pid,
                "alive": bool(worker.process is not None
                              and worker.process.is_alive()),
                "failed": worker.failed,
                "restarts": worker.restarts,
                "instances": len(worker.config.instances),
                "inflight": self.inflight(sid),
            }
            stats: Optional[Dict[str, int]] = worker.final_stats
            if (stats is None and self._running and not worker.failed
                    and row["alive"]):
                token = next(self._req_ids)
                event = threading.Event()
                box: list = []
                self._stats_waiters[token] = (event, box)
                worker.request_q.put((_MSG_STATS, token))
                if event.wait(timeout=timeout) and box:
                    stats, hot = box[0]
                    row["hot_oracles"] = hot
                else:
                    self._stats_waiters.pop(token, None)
            if stats is None:
                stats = worker.warm_stats
            row.update(stats)
            out.append(row)
        return out

    def stats(self) -> Dict[str, object]:
        """JSON-safe daemon snapshot, shaped like
        :meth:`ShardedQueryService.stats`: per-shard rows, merged
        totals, and the process counter registry (which carries the
        admission / lifecycle / gauge series)."""
        shards = self.worker_stats()
        totals = ShardStats(shard_id=-1)
        for row in shards:
            known = {k: int(row[k])
                     for k in ShardStats(shard_id=0).as_metrics()
                     if k in row}
            totals.merge(ShardStats(shard_id=row["shard_id"],
                                    **known))
        return {
            "workers": self.workers,
            "running": self._running,
            "restarts": sum(w.restarts
                            for w in self._workers.values()),
            "epochs": {key: self.epoch_of(key)
                       for key in self.instance_keys},
            "shards": shards,
            "totals": totals.as_metrics(),
            "counters": _counters.snapshot_counters(),
        }

    def exposition(self) -> str:
        """Prometheus text exposition: per-shard gauges + registry."""
        for row in self.worker_stats():
            labels = {"shard": str(row["shard_id"])}
            for name, value in row.items():
                if isinstance(value, (int, float)):
                    _counters.registry.set_gauge(
                        f"repro_serve_shard_{name}", value, **labels)
        return _counters.exposition()
