"""Round, message, and congestion accounting for CONGEST executions.

Every call to :meth:`repro.congest.network.CongestNetwork.exchange`
advances the global round counter by one and records, per named *phase*,

* how many rounds the phase used,
* how many messages and words were moved,
* the maximum number of words carried by any single directed link in any
  single round (the *congestion*, which in the CONGEST model must be O(1)
  words, i.e. O(log n) bits).

Phases nest (a long-detour phase contains a broadcast sub-phase); metrics
are charged to every phase on the current stack, with the root phase
``"total"`` always present.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Mapping

from ..telemetry import trace as _trace


@dataclass
class PhaseStats:
    """Aggregated statistics for one named phase of an execution."""

    name: str
    rounds: int = 0
    messages: int = 0
    words: int = 0
    max_link_words: int = 0
    #: Number of (link, round) pairs that exceeded the bandwidth budget.
    violations: int = 0

    def charge_round(self, messages: int, words: int, max_link_words: int,
                     violations: int) -> None:
        self.rounds += 1
        self.messages += messages
        self.words += words
        if max_link_words > self.max_link_words:
            self.max_link_words = max_link_words
        self.violations += violations

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "rounds": self.rounds,
            "messages": self.messages,
            "words": self.words,
            "max_link_words": self.max_link_words,
            "violations": self.violations,
        }


class RoundLedger:
    """Hierarchical round/message accounting.

    Usage::

        ledger = RoundLedger()
        with ledger.phase("short-detour"):
            ...  # exchanges performed here are charged to the phase
        print(ledger.rounds, ledger["short-detour"].rounds)
    """

    ROOT = "total"

    def __init__(self) -> None:
        self._stats: Dict[str, PhaseStats] = {
            self.ROOT: PhaseStats(self.ROOT)
        }
        self._stack: List[str] = [self.ROOT]
        #: Order in which phases were first opened, for stable reporting.
        self._order: List[str] = [self.ROOT]

    # -- phase management -------------------------------------------------

    @contextlib.contextmanager
    def phase(self, name: str) -> Iterator[PhaseStats]:
        """Open a named accounting phase for the duration of the block.

        When tracing is enabled (:mod:`repro.telemetry.trace`), every
        phase additionally opens a ``phase/<name>`` span joining its
        wall time with this ledger's round/message/word deltas; the
        disabled path is one module-global check.
        """
        stats = self._stats.get(name)
        if stats is None:
            stats = PhaseStats(name)
            self._stats[name] = stats
            self._order.append(name)
        self._stack.append(name)
        try:
            if _trace._ENABLED:
                with _trace.span(f"phase/{name}", ledger=self):
                    yield stats
            else:
                yield stats
        finally:
            popped = self._stack.pop()
            assert popped == name, "phase stack corrupted"

    @property
    def current_phases(self) -> List[str]:
        return list(self._stack)

    # -- charging ----------------------------------------------------------

    def charge_round(self, messages: int, words: int, max_link_words: int,
                     violations: int = 0) -> None:
        """Charge one synchronous round to every phase on the stack."""
        for name in set(self._stack):
            self._stats[name].charge_round(
                messages, words, max_link_words, violations)

    def charge_rounds(self, rounds: int, messages: int, words: int,
                      max_link_words: int, violations: int = 0) -> None:
        """Charge ``rounds`` rounds' aggregate totals in one call.

        Equivalent to any sequence of ``rounds`` :meth:`charge_round`
        calls whose message/word/violation counts sum to the given
        totals and whose per-round link maxima peak at
        ``max_link_words`` — phase stats only ever hold aggregates, so
        the vector kernels use this to charge a whole schedule at once
        without walking it round by round.
        """
        if rounds <= 0:
            return
        for name in set(self._stack):
            stats = self._stats[name]
            stats.rounds += rounds
            stats.messages += messages
            stats.words += words
            if max_link_words > stats.max_link_words:
                stats.max_link_words = max_link_words
            stats.violations += violations

    # -- merging (parallel fan-out) ----------------------------------------

    def phase_snapshot(self) -> List[dict]:
        """Picklable dump: every phase's aggregates, first-opened order.

        A ``parallel=`` worker runs its primitive calls on a fresh
        ledger (with the parent's open phase stack replicated, so
        charges land under the same names) and ships this snapshot
        home; the parent folds it back via :meth:`merge_phases`.
        """
        return [self._stats[name].as_dict() for name in self._order]

    def merge_phases(self, phases: Iterable[Mapping[str, int]]) -> None:
        """Fold another ledger's phase aggregates into this one.

        Per phase: rounds/messages/words/violations add, the per-link
        maximum takes the max, and phases this ledger has not opened
        yet are appended in the given order.  Because
        :class:`PhaseStats` only ever holds aggregates, merging worker
        snapshots in the serial call order reproduces the serial
        ledger exactly — the bit-identity contract of the parallel
        fan-out (asserted by ``tests/test_scaleout.py``).
        """
        for snap in phases:
            name = snap["name"]
            stats = self._stats.get(name)
            if stats is None:
                stats = PhaseStats(name)
                self._stats[name] = stats
                self._order.append(name)
            stats.rounds += snap["rounds"]
            stats.messages += snap["messages"]
            stats.words += snap["words"]
            if snap["max_link_words"] > stats.max_link_words:
                stats.max_link_words = snap["max_link_words"]
            stats.violations += snap["violations"]

    # -- reading -----------------------------------------------------------

    def __getitem__(self, name: str) -> PhaseStats:
        return self._stats[name]

    def __contains__(self, name: str) -> bool:
        return name in self._stats

    @property
    def rounds(self) -> int:
        return self._stats[self.ROOT].rounds

    @property
    def messages(self) -> int:
        return self._stats[self.ROOT].messages

    @property
    def words(self) -> int:
        return self._stats[self.ROOT].words

    @property
    def max_link_words(self) -> int:
        return self._stats[self.ROOT].max_link_words

    @property
    def violations(self) -> int:
        return self._stats[self.ROOT].violations

    def phases(self) -> List[PhaseStats]:
        """All phase stats in first-opened order (root first)."""
        return [self._stats[name] for name in self._order]

    def breakdown(self) -> Dict[str, int]:
        """Mapping of phase name to rounds, root first."""
        return {s.name: s.rounds for s in self.phases()}

    def report(self) -> str:
        """Human-readable multi-line summary.

        Every column of :class:`PhaseStats` appears — including
        ``max_link_words`` and ``violations`` — so this report and the
        traced per-phase view (``repro trace summary``) agree on what a
        phase cost.
        """
        lines = [
            f"{'phase':<28} {'rounds':>8} {'messages':>10} "
            f"{'words':>10} {'max link':>9} {'violations':>11}"
        ]
        for stats in self.phases():
            lines.append(
                f"{stats.name:<28} {stats.rounds:>8} {stats.messages:>10} "
                f"{stats.words:>10} {stats.max_link_words:>9} "
                f"{stats.violations:>11}"
            )
        return "\n".join(lines)
