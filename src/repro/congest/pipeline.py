"""Pipelined sweeps along the given s-t path P.

Several of the paper's subroutines are "sweeps": a token starts at one
vertex of P, walks along consecutive path vertices, combines a carried
value with vertex-local knowledge at every stop, and terminates at a
target vertex (Lemmas 4.4, 5.7, 7.7, 7.8).  Running many sweeps over the
same subpath is made cheap by pipelining: each path link carries one token
per round, FIFO, so T tokens over an L-link subpath cost O(L + T) rounds.

This module provides that engine once, congestion-checked, so every sweep
in the repository shares the same verified schedule.

Positions are indices into the path (0..h_st); a sweep with
``start < end`` walks rightward (toward t), ``start > end`` leftward.
Tokens may also deposit their running value at every vertex they visit
(used by the prefix-minimum computations of Lemma 5.7).

Sweeps come in two flavors.  A *callable* task supplies ``combine``, an
arbitrary per-visit local update.  A *declarative* task supplies
``local_min`` instead — a per-position table with the fixed semantics
``value ← min(value, local_min[pos])`` — which is all the prefix/suffix
minima of Lemmas 5.7/5.9 need.  Declarative tasks are what the vector
fabric can batch: when every task is declarative (and the start groups
occupy disjoint link ranges), the whole schedule runs as array kernels
(:func:`repro.congest.kernels.run_path_sweeps_vector`) with identical
results and ledger accounting; otherwise the message engine below serves
the call.
"""

from __future__ import annotations

from bisect import insort
from collections import deque
from dataclasses import dataclass, field
from typing import (
    Callable, Dict, Hashable, List, Optional, Sequence, Tuple,
)

from .dispatch import dispatch
from .network import CongestNetwork

#: combine(position, carried) -> new carried value.  ``position`` is the
#: path index of the vertex the token just arrived at.  The callable runs
#: as *local computation* of that vertex, so it may consult any knowledge
#: that vertex holds.
CombineFn = Callable[[int, object], object]


@dataclass
class SweepTask:
    """One token to route along the path.

    Attributes
    ----------
    key:
        Caller-chosen identifier for reading results back.
    start, end:
        Path positions; the token departs ``start`` carrying ``init`` and
        is combined at every subsequent position up to and including
        ``end``.
    init:
        The value leaving the start vertex (computed locally there).
    combine:
        Per-visit local update; ``None`` for declarative tasks.
    deposit:
        When True, the value *after* combining is recorded at every
        visited position (including ``start`` with the raw ``init``).
    local_min:
        Declarative form of ``combine``: a table indexed by path
        position (each entry is knowledge the owning vertex holds
        locally), giving the fixed update ``min(value,
        local_min[pos])``.  Exactly one of ``combine``/``local_min``
        must be provided; declarative tasks are vector-kernel eligible.
    """

    key: Hashable
    start: int
    end: int
    init: object
    combine: Optional[CombineFn] = None
    deposit: bool = False
    local_min: Optional[Sequence[int]] = None


@dataclass
class SweepResult:
    """Outcome of one sweep: the final value and optional per-stop trace."""

    key: Hashable
    final: object
    trace: Dict[int, object] = field(default_factory=dict)


def run_path_sweeps(
    net: CongestNetwork,
    path: Sequence[int],
    tasks: Sequence[SweepTask],
    phase: Optional[str] = None,
) -> Dict[Hashable, SweepResult]:
    """Run all sweeps concurrently with per-link FIFO pipelining.

    Rounds consumed: the makespan of the FIFO schedule, which is
    O(max sweep length + max tokens per link); the congestion accounting
    of the network confirms one token (a constant number of words) per
    link per round.
    """
    name = phase if phase is not None else "path-sweeps"
    if not tasks:
        return {}
    hops = len(path) - 1
    for task in tasks:
        if not (0 <= task.start <= hops and 0 <= task.end <= hops):
            raise ValueError(
                f"sweep {task.key!r} leaves the path bounds")
        if (task.combine is None) == (task.local_min is None):
            raise ValueError(
                f"sweep {task.key!r} needs exactly one of "
                "combine/local_min")

    raw = dispatch("path_sweeps", net, path=path, tasks=tasks, name=name)
    return {
        key: SweepResult(key=key, final=final, trace=trace)
        for key, (final, trace) in raw.items()
    }


def _path_sweeps_message(
    net: CongestNetwork,
    path: Sequence[int],
    tasks: Sequence[SweepTask],
    name: str,
) -> Dict[Hashable, Tuple[object, Dict[int, object]]]:
    """The per-link FIFO round loop (the registry's fallback lane).

    Returns the same raw ``{key: (final, trace)}`` mapping as the
    vector kernel; :func:`run_path_sweeps` wraps both lanes into
    :class:`SweepResult` objects.
    """
    results: Dict[Hashable, SweepResult] = {}
    with net.ledger.phase(name):
        # Directed link queues keyed by (position, direction); direction
        # +1 moves token from path[p] to path[p+1].  The deterministic
        # (position, direction) service order is maintained
        # incrementally — keys are only ever added — instead of
        # re-sorting the queue table every round.
        queues: Dict[Tuple[int, int], deque] = {}
        key_order: List[Tuple[int, int]] = []
        pending = 0

        def enqueue(task: SweepTask, position: int, value: object) -> None:
            direction = 1 if task.end > task.start else -1
            key = (position, direction)
            queue = queues.get(key)
            if queue is None:
                queue = queues[key] = deque()
                insort(key_order, key)
            queue.append((task, position + direction, value))

        for task in tasks:
            result = SweepResult(key=task.key, final=task.init)
            if task.deposit:
                result.trace[task.start] = task.init
            results[task.key] = result
            if task.start == task.end:
                continue
            enqueue(task, task.start, task.init)
            pending += 1

        # One message object per distinct carried value, shared across
        # links and rounds (sweeps carry the same value — often INF —
        # over and over): the batched fabric's per-round id-keyed size
        # memo then prices each distinct value once per round instead
        # of once per token.  Unhashable values fall back to a fresh
        # tuple.
        message_of: Dict[object, tuple] = {}

        def message_for(value: object) -> tuple:
            try:
                message = message_of.get(value)
            except TypeError:
                return ("sweep", value)
            if message is None:
                message = message_of[value] = ("sweep", value)
            return message

        while pending:
            outbox: Dict[int, List[Tuple[int, object]]] = {}
            moves: List[Tuple[SweepTask, int, object]] = []
            for key in key_order:
                queue = queues[key]
                if not queue:
                    continue
                task, nxt, value = queue.popleft()
                pending -= 1
                sender = path[key[0]]
                receiver = path[nxt]
                # One token per link per round; a token's wire format is
                # (sweep id, carried value) — a constant number of words.
                outbox.setdefault(sender, []).append(
                    (receiver, message_for(value)))
                moves.append((task, nxt, value))
            net.exchange(outbox)
            for task, position, value in moves:
                if task.combine is not None:
                    value = task.combine(position, value)
                else:
                    local = task.local_min[position]
                    if local < value:
                        value = local
                result = results[task.key]
                if task.deposit:
                    result.trace[position] = value
                if position == task.end:
                    result.final = value
                else:
                    enqueue(task, position, value)
                    pending += 1
    return {key: (r.final, r.trace) for key, r in results.items()}
