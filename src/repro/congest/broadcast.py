"""Pipelined broadcast and convergecast over a spanning tree.

Implements the classical routing tool the paper states as Lemma 2.4
([Pel00]): if each vertex v wants to broadcast ``m_v`` messages of
O(log n) bits to the whole network, the task completes in O(M + D) rounds
where M = Σ m_v.

The implementation floods every message over the spanning tree with
per-link FIFO queues and one message per link direction per round; each
message crosses each tree link at most once per direction, so with
pipelining the schedule finishes in O(M + D) rounds (verified empirically
by the primitive benchmarks).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from .dispatch import dispatch
from .network import CongestNetwork
from .spanning_tree import SpanningTree

Payload = Tuple  # small tuples of ints


def broadcast_messages(
    net: CongestNetwork,
    tree: SpanningTree,
    messages: Mapping[int, Sequence[Payload]],
    phase: Optional[str] = None,
) -> List[Tuple[int, Payload]]:
    """Broadcast every vertex's messages to all vertices (Lemma 2.4).

    Parameters
    ----------
    messages:
        Maps origin vertex -> sequence of payload tuples it broadcasts.

    Returns
    -------
    The complete list of ``(origin, payload)`` pairs, sorted, which after
    the broadcast is known to *every* vertex.  (The simulator returns one
    shared list rather than n identical copies; tests assert delivery by
    construction: a message is delivered once it has crossed every tree
    link, which the engine tracks.)
    """
    name = phase if phase is not None else "broadcast"
    return dispatch("broadcast", net, tree=tree, messages=messages,
                    name=name)


def _broadcast_message(
    net: CongestNetwork,
    tree: SpanningTree,
    messages: Mapping[int, Sequence[Payload]],
    name: str,
) -> List[Tuple[int, Payload]]:
    """The per-link FIFO round loop (the registry's fallback lane)."""
    tree_nbrs = [tree.tree_neighbors(v) for v in range(net.n)]
    exchange = net.exchange
    with net.ledger.phase(name):
        # Per directed tree link FIFO queue of (origin, payload).  Only
        # *active* (non-empty) links are visited each round, tracked in
        # FIFO order — the pre-fabric engine re-scanned every tree link
        # every round, which is O(n) per round even near quiescence.
        queues: Dict[Tuple[int, int], deque] = {}
        for v in range(net.n):
            for u in tree_nbrs[v]:
                queues[(v, u)] = deque()
        active: deque = deque()

        def push(link: Tuple[int, int], item: Tuple[int, Payload]) -> None:
            queue = queues[link]
            if not queue:
                active.append(link)
            queue.append(item)

        all_messages: List[Tuple[int, Payload]] = []
        for origin in sorted(messages):
            for payload in messages[origin]:
                item = (origin, payload)
                all_messages.append(item)
                for u in tree_nbrs[origin]:
                    push((origin, u), item)

        while active:
            outbox: Dict[int, List[Tuple[int, Payload]]] = {}
            for _ in range(len(active)):
                link = active.popleft()
                u, v = link
                queue = queues[link]
                outbox.setdefault(u, []).append((v, queue.popleft()))
                if queue:
                    active.append(link)
            inbox = exchange(outbox)
            for v, arrivals in inbox.items():
                nbrs = tree_nbrs[v]
                for sender, item in arrivals:
                    # Forward to every tree neighbor except the sender.
                    for u in nbrs:
                        if u != sender:
                            push((v, u), item)
        return sorted(all_messages)


def convergecast(
    net: CongestNetwork,
    tree: SpanningTree,
    values: Mapping[int, object],
    combine: Callable[[object, object], object],
    identity: object,
    phase: Optional[str] = None,
) -> object:
    """Aggregate one value per vertex up to the root in O(D) rounds.

    ``combine`` must be associative and commutative (min, max, sum, ...).
    Vertices missing from ``values`` contribute ``identity``.  The
    aggregate lands at ``tree.root``; use :func:`broadcast_value` to
    disseminate it back down.
    """
    name = phase if phase is not None else "convergecast"
    with net.ledger.phase(name):
        partial: Dict[int, object] = {
            v: values.get(v, identity) for v in range(net.n)
        }
        waiting = [len(tree.children[v]) for v in range(net.n)]
        ready = deque(v for v in range(net.n)
                      if waiting[v] == 0 and v != tree.root)
        reported = [False] * net.n
        # Leaves fire first; each round, every vertex whose children have
        # all reported sends its partial aggregate to its parent.
        while ready:
            outbox: Dict[int, List[Tuple[int, object]]] = {}
            batch = list(ready)
            ready.clear()
            for v in batch:
                reported[v] = True
                outbox[v] = [(tree.parent[v], ("agg", partial[v]))]
            inbox = net.exchange(outbox)
            for p, arrivals in inbox.items():
                for child, (_, value) in arrivals:
                    partial[p] = combine(partial[p], value)
                    waiting[p] -= 1
                if (waiting[p] == 0 and p != tree.root
                        and not reported[p]):
                    ready.append(p)
        return partial[tree.root]


def broadcast_value(
    net: CongestNetwork,
    tree: SpanningTree,
    value: object,
    phase: Optional[str] = None,
) -> object:
    """Send one value from the root to all vertices in O(D) rounds."""
    name = phase if phase is not None else "broadcast-value"
    with net.ledger.phase(name):
        frontier = [tree.root]
        message = ("val", value)
        while frontier:
            outbox: Dict[int, List[Tuple[int, object]]] = {}
            next_frontier: List[int] = []
            for v in frontier:
                children = tree.children[v]
                if children:
                    outbox[v] = [(child, message) for child in children]
                    next_frontier.extend(children)
            if outbox:
                net.exchange(outbox)
            frontier = next_frontier
        return value


def staggered_convergecast_min(
    net: CongestNetwork,
    tree: SpanningTree,
    local_values: Callable[[int, int], object],
    count: int,
    identity: object,
    phase: Optional[str] = None,
) -> List[object]:
    """``count`` independent min-aggregations, pipelined up the tree.

    Wave w aggregates min over all vertices v of ``local_values(v, w)``.
    Waves are staggered by subtree height: a vertex of height h sends
    wave w to its parent at round w + h, after all its children (height
    ≤ h−1) have reported — one message per tree link per round, so all
    ``count`` aggregates land at the root within count + height rounds
    (the O(h_st + D) pipelining that the undirected RPaths extension
    and [MR24b]'s path sweeps rely on).
    """
    name = phase if phase is not None else "staggered-convergecast"
    with net.ledger.phase(name):
        n = net.n
        height = [0] * n
        order = sorted(range(n), key=lambda v: -tree.depth[v])
        for v in order:
            if v != tree.root:
                p = tree.parent[v]
                height[p] = max(height[p], height[v] + 1)

        partial: List[Dict[int, object]] = [dict() for _ in range(n)]

        def value_at(v: int, wave: int) -> object:
            own = local_values(v, wave)
            acc = partial[v].pop(wave, None)
            if acc is None:
                return own
            return own if own <= acc else acc

        results: List[object] = [identity] * count
        total_rounds = count + (max(height) if n else 0)
        parent = tree.parent
        root = tree.root
        for rnd in range(total_rounds):
            outbox: Dict[int, List] = {}
            for v in range(n):
                wave = rnd - height[v]
                if v == root or not (0 <= wave < count):
                    continue
                outbox[v] = [(parent[v], ("wave", wave, value_at(v, wave)))]
            if outbox:
                inbox = net.exchange(outbox)
            else:
                net.idle_round()
                inbox = {}
            for p, arrivals in inbox.items():
                for _, (_, wave, value) in arrivals:
                    acc = partial[p].get(wave)
                    if acc is None or value < acc:
                        partial[p][wave] = value
        for wave in range(count):
            results[wave] = value_at(tree.root, wave)
        return results


def global_min(
    net: CongestNetwork,
    tree: SpanningTree,
    values: Mapping[int, int],
    identity: int,
    phase: Optional[str] = None,
) -> int:
    """Convergecast-min followed by a downcast: every vertex learns the
    minimum of ``values`` in O(D) rounds total."""
    name = phase if phase is not None else "global-min"
    with net.ledger.phase(name):
        result = convergecast(net, tree, values,
                              combine=min, identity=identity)
        broadcast_value(net, tree, result)
        return result
