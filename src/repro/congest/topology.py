"""Frozen CSR topology shared by every round of a CONGEST execution.

The pre-fabric simulator re-derived per-round bookkeeping (tuple-keyed
link dicts, frozenset membership probes) inside ``exchange`` — pure
overhead, since the communication graph never changes after
construction.  :class:`CSRTopology` hoists all of it into one immutable
object built exactly once per instance:

* adjacency in compressed-sparse-row form (``indptr``/``indices`` flat
  arrays) for the directed out-edges, directed in-edges, and the
  undirected communication support, plus per-vertex list views so the
  hot loops keep Python-list iteration speed;
* a dense *directed-link id* space: every direction of every
  communication link gets an integer id laid out **receiver-major**
  (all links into vertex 0 first, then vertex 1, ...; within a
  receiver, senders ascending).  Sorting touched link ids therefore
  yields inboxes grouped by receiver with senders ascending — exactly
  the deterministic delivery order the validated engine guarantees —
  without ever sorting messages;
* an O(1) link lookup ``link_id(u, v)`` backed by an int-keyed dict
  (``u·n + v``), avoiding tuple allocation and tuple hashing on the
  per-message hot path.

Instances of this class are *frozen by contract*: nothing in the
repository mutates a topology after construction, so one topology can
back any number of :class:`~repro.congest.network.CongestNetwork`
objects (fresh ledgers, shared adjacency).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..telemetry import scale as _scale
from .errors import UnknownVertexError

#: Largest value an int32 export may hold; any array group whose value
#: range exceeds this promotes back to int64 (the "memory diet" rule).
_INT32_MAX = (1 << 31) - 1

#: Cached send plans per topology: ``avoid_edges`` sets per run are few
#: (the empty set, the instance's path edges, per-query failed edges),
#: so a small FIFO bound keeps the cache from growing with query load.
_SEND_CACHE_LIMIT = 8


def _numpy():
    """NumPy, imported on first array-view use (kept lazy on purpose).

    The message engines never touch arrays, so the package stays fully
    importable — and the reference/fast fabrics fully functional — on
    interpreters without NumPy; only the vector fabric requires it.
    """
    try:
        import numpy
    except ImportError as exc:  # pragma: no cover - numpy is baked in CI
        raise RuntimeError(
            "the vector fabric needs NumPy; install it or use "
            "fabric='fast'") from exc
    return numpy


def _flatten(lists: Sequence[List[int]]) -> Tuple[List[int], List[int]]:
    """CSR-flatten per-vertex lists into (indptr, indices)."""
    indptr = [0] * (len(lists) + 1)
    indices: List[int] = []
    for v, row in enumerate(lists):
        indices.extend(row)
        indptr[v + 1] = len(indices)
    return indptr, indices


class TopologyArrays:
    """Frozen, read-only int-array views of a :class:`CSRTopology`.

    Built lazily, exactly once per topology, by
    :meth:`CSRTopology.arrays`; the vector kernels gather over these
    instead of materializing per-message Python tuples.  ``*_keys``
    hold the dense edge key ``tail·n + head`` per CSR slot (input
    order), which is what avoid-edge masks are matched against;
    ``*_weights`` hold the slot-aligned edge weight so per-run delay
    step tables vectorize.

    **Memory diet.**  Each array group picks the narrowest dtype its
    value range permits — int32 when every value fits, int64 otherwise:

    * *indices* (indptr/indices/link_receiver) hold vertex ids < n and
      slot offsets ≤ nnz, so they fit int32 whenever both do;
    * *keys* hold ``tail·n + head`` < n², so they promote to int64
      already at n > 46340;
    * *weights* promote when any edge weight exceeds int32.

    Since one export is now shared across every solve of a run (and,
    via :mod:`repro.runtime.sharedmem`, across worker processes), all
    arrays are frozen with ``writeable=False``.  Kernels must treat
    int32 operands as *addressing* data only: arithmetic that can
    exceed int32 (hop sums, key encodings) upcasts to int64 at the
    gather site.
    """

    __slots__ = (
        "out_indptr", "out_indices", "out_weights", "out_keys",
        "in_indptr", "in_indices", "in_weights", "in_keys",
        "nbr_indptr", "nbr_indices", "link_receiver",
        "index_dtype", "key_dtype", "weight_dtype",
    )

    #: Field layout: (name, dtype role) — what the shared-memory
    #: publisher serializes and the attach side reconstructs.
    FIELDS = (
        ("out_indptr", "index"), ("out_indices", "index"),
        ("out_weights", "weight"), ("out_keys", "key"),
        ("in_indptr", "index"), ("in_indices", "index"),
        ("in_weights", "weight"), ("in_keys", "key"),
        ("nbr_indptr", "index"), ("nbr_indices", "index"),
        ("link_receiver", "index"),
    )

    def __init__(self, topology: Optional["CSRTopology"]) -> None:
        if topology is None:
            return  # shell for _from_arrays (shared-memory attach)
        np = _numpy()
        n = topology.n
        wbk = topology._weight_by_key
        nnz = max(len(topology.out_indices), len(topology.in_indices),
                  len(topology.nbr_indices))
        idx = np.int32 if max(n, nnz) <= _INT32_MAX else np.int64
        key = np.int32 if n * n - 1 <= _INT32_MAX else np.int64
        max_w = max(wbk.values(), default=1)
        wgt = np.int32 if max_w <= _INT32_MAX else np.int64
        self.index_dtype = idx
        self.key_dtype = key
        self.weight_dtype = wgt
        _scale.record_export(
            _scale.ARRAY_INDICES, np.dtype(idx).name)
        _scale.record_export(_scale.ARRAY_KEYS, np.dtype(key).name)
        _scale.record_export(
            _scale.ARRAY_WEIGHTS, np.dtype(wgt).name)
        self.out_indptr = np.asarray(topology.out_indptr, dtype=idx)
        self.out_indices = np.asarray(topology.out_indices, dtype=idx)
        self.in_indptr = np.asarray(topology.in_indptr, dtype=idx)
        self.in_indices = np.asarray(topology.in_indices, dtype=idx)
        self.nbr_indptr = np.asarray(topology.nbr_indptr, dtype=idx)
        self.nbr_indices = np.asarray(topology.nbr_indices, dtype=idx)
        self.link_receiver = np.asarray(topology.link_receiver, dtype=idx)
        out_keys = [u * n + v
                    for u, row in enumerate(topology.out_lists)
                    for v in row]
        in_keys = [x * n + u
                   for u, row in enumerate(topology.in_lists)
                   for x in row]
        self.out_keys = np.asarray(out_keys, dtype=key)
        self.in_keys = np.asarray(in_keys, dtype=key)
        self.out_weights = np.asarray([wbk[k] for k in out_keys],
                                      dtype=wgt)
        self.in_weights = np.asarray([wbk[k] for k in in_keys],
                                     dtype=wgt)
        self._freeze()

    def _freeze(self) -> None:
        for name, _role in self.FIELDS:
            getattr(self, name).flags.writeable = False

    @classmethod
    def _from_arrays(cls, fields: Dict[str, object]) -> "TopologyArrays":
        """Rebuild from prebuilt arrays (the shared-memory attach path).

        The arrays are adopted as-is (typically read-only views over a
        shared buffer); dtype roles are re-derived from the fields.
        """
        self = cls(None)
        for name, role in cls.FIELDS:
            setattr(self, name, fields[name])
        self.index_dtype = fields["nbr_indices"].dtype.type
        self.key_dtype = fields["out_keys"].dtype.type
        self.weight_dtype = fields["out_weights"].dtype.type
        return self

    def nbytes(self) -> int:
        """Total bytes of all exported arrays (the diet's scoreboard)."""
        return sum(getattr(self, name).nbytes for name, _ in self.FIELDS)


class CSRTopology:
    """Immutable adjacency + link-id index for one communication graph.

    Parameters
    ----------
    n:
        Number of vertices; vertices are ``0..n-1``.
    edges:
        Iterable of ``(u, v)`` or ``(u, v, w)`` directed edges with
        positive integer weights.  Parallel duplicates are ignored
        (first weight wins), matching the historical network semantics.
    """

    __slots__ = (
        "n", "num_edges", "num_dirlinks",
        "out_indptr", "out_indices", "in_indptr", "in_indices",
        "nbr_indptr", "nbr_indices",
        "out_lists", "in_lists", "nbr_lists",
        "link_receiver", "_link_index", "_weight_by_key",
        "_edge_order", "_link_pairs", "_arrays", "_send_cache",
    )

    def __init__(self, n: int, edges: Iterable[Sequence[int]]) -> None:
        if n <= 0:
            raise ValueError("network needs at least one vertex")
        self.n = n

        out_lists: List[List[int]] = [[] for _ in range(n)]
        in_lists: List[List[int]] = [[] for _ in range(n)]
        neighbor_sets: List[set] = [set() for _ in range(n)]
        weight_by_key: Dict[int, int] = {}
        edge_order: List[int] = []

        for edge in edges:
            if len(edge) == 2:
                u, v = edge
                w = 1
            else:
                u, v, w = edge
            if not (0 <= u < n) or not (0 <= v < n):
                raise UnknownVertexError(u if not (0 <= u < n) else v)
            if u == v:
                raise ValueError(f"self-loop at {u} is not allowed")
            if w <= 0:
                raise ValueError(f"edge ({u},{v}) has non-positive weight")
            key = u * n + v
            if key in weight_by_key:
                continue  # ignore parallel duplicates
            weight_by_key[key] = int(w)
            edge_order.append(key)
            out_lists[u].append(v)
            in_lists[v].append(u)
            neighbor_sets[u].add(v)
            neighbor_sets[v].add(u)

        nbr_lists = [sorted(s) for s in neighbor_sets]

        self.out_lists = out_lists
        self.in_lists = in_lists
        self.nbr_lists = nbr_lists
        self.out_indptr, self.out_indices = _flatten(out_lists)
        self.in_indptr, self.in_indices = _flatten(in_lists)
        self.nbr_indptr, self.nbr_indices = _flatten(nbr_lists)

        # Receiver-major directed-link ids: link (u -> v) sits in v's
        # block of the undirected-support CSR, so ``nbr_indices`` doubles
        # as the lid -> sender map.
        link_index: Dict[int, int] = {}
        link_receiver: List[int] = [0] * len(self.nbr_indices)
        for v in range(n):
            base = self.nbr_indptr[v]
            for offset, u in enumerate(nbr_lists[v]):
                lid = base + offset
                link_index[u * n + v] = lid
                link_receiver[lid] = v
        self._link_index = link_index
        self.link_receiver = link_receiver
        self.num_dirlinks = len(self.nbr_indices)
        self.num_edges = len(weight_by_key)
        self._weight_by_key = weight_by_key
        self._edge_order = edge_order
        self._link_pairs: Optional[frozenset] = None
        self._arrays: Optional[TopologyArrays] = None
        self._send_cache: Dict[Tuple[str, frozenset], tuple] = {}

    # -- accessors ---------------------------------------------------------

    def out_neighbors(self, u: int) -> List[int]:
        """Heads of directed edges leaving ``u`` (do not mutate)."""
        return self.out_lists[u]

    def in_neighbors(self, u: int) -> List[int]:
        """Tails of directed edges entering ``u`` (do not mutate)."""
        return self.in_lists[u]

    def neighbors(self, u: int) -> List[int]:
        """Sorted communication neighbors of ``u`` (do not mutate)."""
        return self.nbr_lists[u]

    def degree(self, u: int) -> int:
        return self.nbr_indptr[u + 1] - self.nbr_indptr[u]

    def has_edge(self, u: int, v: int) -> bool:
        return (u * self.n + v) in self._weight_by_key

    def has_link(self, u: int, v: int) -> bool:
        return (u * self.n + v) in self._link_index

    def link_id(self, u: int, v: int) -> int:
        """Dense id of directed link ``u -> v`` (O(1); raises if absent)."""
        try:
            return self._link_index[u * self.n + v]
        except KeyError:
            raise KeyError((u, v)) from None

    def link_endpoints(self, lid: int) -> Tuple[int, int]:
        """``(sender, receiver)`` of directed link ``lid``."""
        return self.nbr_indices[lid], self.link_receiver[lid]

    def weight(self, u: int, v: int) -> int:
        try:
            return self._weight_by_key[u * self.n + v]
        except KeyError:
            raise KeyError((u, v)) from None

    def directed_edges(self) -> Iterator[Tuple[int, int]]:
        """Directed edges in input order (duplicates removed)."""
        n = self.n
        return ((key // n, key % n) for key in self._edge_order)

    def link_pairs(self) -> frozenset:
        """Frozenset of directed link tuples.

        Lazily built; only the pre-fabric reference engine (kept as the
        equivalence/benchmark baseline) still probes tuple sets.
        """
        if self._link_pairs is None:
            n = self.n
            self._link_pairs = frozenset(
                (key // n, key % n) for key in self._link_index)
        return self._link_pairs

    # -- array views (vector fabric) ---------------------------------------

    def arrays(self) -> TopologyArrays:
        """Read-only NumPy views of the frozen CSR (built once, cached).

        One export backs *every* solve on this topology — the k-source
        and landmark runs of a ``solve_rpaths`` execution, every batch
        the serve planner answers, and (via
        :mod:`repro.runtime.sharedmem`) the worker processes of a
        ``parallel=`` fan-out all gather over the same frozen arrays
        instead of re-materializing per call.  Dtypes follow the int32
        memory diet (see :class:`TopologyArrays`).

        Requires NumPy; the message fabrics never call this, so the
        dependency stays confined to ``fabric="vector"`` executions.
        """
        if self._arrays is None:
            self._arrays = TopologyArrays(self)
        return self._arrays

    def send_arrays(self, direction: str,
                    avoid_edges: frozenset = frozenset(),
                    delay=None):
        """Array analog of :func:`downstream_step_tables`.

        Returns ``(indptr, indices, steps)`` arrays: the avoid-filtered
        send adjacency for ``direction`` (``"out"`` follows edges,
        ``"in"`` walks them backward) together with the per-slot
        exact-hop advance (1 without ``delay``, else ``delay(weight)``
        — the G_d subdivision of Section 7).  Index arrays inherit the
        topology export's diet dtype; steps are int32 when every step
        fits, int64 otherwise (and the vector kernels upcast at their
        arithmetic sites either way).

        Delay-free plans are memoized per ``(direction, avoid_edges)``
        — a run fixes its avoid set, so every k-source/landmark solve
        of the run shares one read-only plan instead of rebuilding the
        filter per call (``delay`` callables have no stable identity
        and bypass the cache).  All returned arrays are frozen;
        callers must not write into them.
        """
        np = _numpy()
        cache_key = None
        if delay is None:
            cache_key = (direction, avoid_edges)
            cached = self._send_cache.get(cache_key)
            if cached is not None:
                _scale.record_plan(_scale.PLAN_HIT)
                return cached
        arr = self.arrays()
        if direction == "out":
            indptr, indices = arr.out_indptr, arr.out_indices
            keys, weights = arr.out_keys, arr.out_weights
        elif direction == "in":
            indptr, indices = arr.in_indptr, arr.in_indices
            keys, weights = arr.in_keys, arr.in_weights
        else:
            raise ValueError(f"unknown direction {direction!r}")
        if avoid_edges:
            n = self.n
            # Out-of-range pairs cannot name an edge — the message
            # path's tuple-membership test ignores them — but their
            # dense keys would collide with real edges' keys, so they
            # must be dropped before encoding.
            avoid_keys = [u * n + v for u, v in avoid_edges
                          if 0 <= u < n and 0 <= v < n]
            avoid = np.asarray(avoid_keys, dtype=np.int64)
            keep = ~np.isin(keys, avoid)
            tails = np.repeat(np.arange(n, dtype=np.int64),
                              np.diff(indptr))[keep]
            indices = indices[keep]
            weights = weights[keep]
            counts = np.bincount(tails, minlength=n)
            indptr = np.concatenate(
                (np.zeros(1, dtype=np.int64),
                 np.cumsum(counts, dtype=np.int64))).astype(
                     arr.index_dtype, copy=False)
        if delay is None:
            steps = np.ones(len(indices), dtype=np.int32)
            _scale.record_export(_scale.ARRAY_STEPS, "int32")
        else:
            _scale.record_plan(_scale.PLAN_BYPASS)
            # Delay is an arbitrary Python callable; evaluate it once
            # per distinct weight so the per-slot table stays exact.
            uniq, inverse = np.unique(weights, return_inverse=True)
            per_weight = [int(delay(int(w))) for w in uniq]
            if any(not (1 <= s < (1 << 62)) for s in per_weight):
                # Steps this large (or non-positive) would wrap when
                # added to hop counts in int64; raise the same error a
                # too-big asarray would, which the kernel dispatchers
                # catch to fall back to the message path (the oracle
                # for pathological delay functions).
                raise OverflowError(
                    "delay steps outside the vector kernels' range")
            sdtype = (np.int32 if all(s <= _INT32_MAX
                                      for s in per_weight)
                      else np.int64)
            _scale.record_export(_scale.ARRAY_STEPS,
                                 np.dtype(sdtype).name)
            steps = (np.asarray(per_weight, dtype=sdtype)[inverse]
                     if uniq.size else np.zeros(0, dtype=sdtype))
        for out in (indptr, indices, steps):
            out.flags.writeable = False
        if cache_key is not None:
            _scale.record_plan(_scale.PLAN_BUILD)
            if len(self._send_cache) >= _SEND_CACHE_LIMIT:
                self._send_cache.pop(next(iter(self._send_cache)))
            self._send_cache[cache_key] = (indptr, indices, steps)
        return indptr, indices, steps


def downstream_step_tables(
    topology: CSRTopology,
    direction: str,
    avoid_edges: frozenset = frozenset(),
    delay=None,
) -> Tuple[List[List[Tuple[int, int]]], List[Dict[int, int]]]:
    """Precomputed per-run send/settle tables for hop-advancing BFS.

    ``avoid_edges`` and ``delay`` are fixed for a whole run, so every
    hop-BFS variant (plain, k-source, pruned Lemma 4.2) hoists the
    membership filtering and the per-edge hop advance out of its round
    loop through this one helper.  Returns

    * ``pairs[u]`` — list of ``(v, step)``: the vertices one hop
      downstream of ``u`` for the given direction (``"out"`` follows
      edges, ``"in"`` walks them backward), with the exact-hop advance
      of the connecting edge (1 when ``delay`` is None, else
      ``delay(weight)`` — the G_d subdivision of Section 7);
    * ``step_in[v]`` — ``{sender: step}``: the same steps keyed for the
      receiving side.  Both endpoints know each edge's weight, so
      sender-side pruning and receiver-side settling legitimately read
      one shared table.
    """
    if direction == "out":
        raw = [[(v, u, v) for v in targets if (u, v) not in avoid_edges]
               for u, targets in enumerate(topology.out_lists)]
    elif direction == "in":
        raw = [[(x, x, u) for x in sources if (x, u) not in avoid_edges]
               for u, sources in enumerate(topology.in_lists)]
    else:
        raise ValueError(f"unknown direction {direction!r}")
    if delay is None:
        pairs = [[(v, 1) for v, _, _ in row] for row in raw]
    else:
        weight = topology.weight
        pairs = [[(v, delay(weight(tail, head)))
                  for v, tail, head in row] for row in raw]
    step_in: List[Dict[int, int]] = [{} for _ in range(topology.n)]
    for u, row in enumerate(pairs):
        for v, step in row:
            step_in[v][u] = step
    return pairs, step_in
