"""Batched CONGEST message delivery over flat per-link buffers.

:func:`exchange_batch` is the fabric behind
:meth:`~repro.congest.network.CongestNetwork.exchange`.  One call
executes one synchronous round:

* every message is routed to its *directed link id* with a single
  int-keyed dict probe (no tuple allocation, no tuple hashing);
* payloads accumulate in per-link buffers allocated **once** in
  :class:`FabricState` and recycled every round — the pre-fabric
  engine rebuilt tuple-keyed dicts per round, which dominated the
  profile on message-heavy schedules;
* word counts accumulate in a flat ``int`` array indexed by link id;
* delivery sorts the *touched link ids* (a C-speed int sort).  Link
  ids are receiver-major with senders ascending
  (see :class:`~repro.congest.topology.CSRTopology`), so the resulting
  inbox lists replicate the validated engine's deterministic
  sorted-sender order without ever sorting messages.

Validation is hoisted out of the inner loop behind the ``strict``
flag:

* ``strict=True`` re-checks every message against the model (vertex
  ranges, link existence) exactly like the historical engine and
  raises the same error types — the *strict path*;
* ``strict=False`` trusts the algorithms (which address only topology
  neighbors by construction) and relies on the link-index probe: a
  failed probe still raises the proper
  :class:`~repro.congest.errors.UnknownVertexError` /
  :class:`~repro.congest.errors.NotALinkError` via a cold diagnostic
  branch, so model violations never pass silently.  The only checks
  actually skipped are per-message range comparisons, which can
  misattribute (not mask) errors for wildly out-of-range ids.

Both paths are byte-identical to the reference engine in delivered
inboxes, word counts, and ledger contents — asserted by
``tests/test_fabric_equivalence.py`` and benchmarked by
``benchmarks/bench_fabric.py``.

:func:`exchange_reference` preserves the pre-fabric per-message engine
verbatim.  It is the semantic oracle for the equivalence suite and the
baseline the perf-regression CI gate measures speedups against.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .errors import BandwidthExceededError, NotALinkError, UnknownVertexError
from .metrics import RoundLedger
from .topology import CSRTopology
from .words import words_of

Inbox = Dict[int, List[Tuple[int, object]]]


class FabricState:
    """Per-network exchange buffers, allocated once and recycled.

    Hoisting these out of ``exchange`` is what lets both the strict and
    the fast path stop paying per-round allocation: buffers are cleared
    link-by-link after delivery (only links actually touched), so an
    idle round costs nothing and a busy round costs O(messages).
    """

    __slots__ = ("link_payloads", "link_words")

    def __init__(self, topology: CSRTopology) -> None:
        self.link_payloads: List[List[object]] = [
            [] for _ in range(topology.num_dirlinks)
        ]
        self.link_words: List[int] = [0] * topology.num_dirlinks


def _payload_words(payload: object) -> int:
    """Inlined fast path of :func:`~repro.congest.words.words_of`.

    Specializes the overwhelmingly common wire shapes (possibly nested
    tuples of ints and short strings, bare ints) with exact-type
    dispatch — ``words_of`` pays an abstract-class ``isinstance`` probe
    per field — and defers anything else to the canonical recursive
    sizer, so accounting stays byte-identical.
    """
    t = type(payload)
    if t is tuple:
        total = 0
        for item in payload:
            ti = type(item)
            if ti is int:
                total += 1
            elif ti is str:
                length = len(item)
                total += 1 if length <= 8 else (length + 7) // 8
            elif ti is tuple:
                total += _payload_words(item)
            else:
                total += words_of(item)
        return total
    if t is int:
        return 1
    return words_of(payload)


def _diagnose_bad_message(topology: CSRTopology, sender: int,
                          receiver: int) -> None:
    """Cold branch: raise the precise model error for a failed probe."""
    n = topology.n
    if not (isinstance(sender, int) and 0 <= sender < n):
        raise UnknownVertexError(sender)
    if not (isinstance(receiver, int) and 0 <= receiver < n):
        raise UnknownVertexError(receiver)
    raise NotALinkError(sender, receiver)


def _route_messages(topology, outbox, strict, link_index_get, payloads,
                    words_acc, touched_append, size_memo_get, size_memo):
    """Route one round's outboxes into the per-link buffers.

    Returns ``(total_messages, total_words)``.  May raise on invalid
    messages; the caller unwinds the partially-filled buffers.
    """
    n = topology.n
    total_messages = 0
    total_words = 0
    if strict:
        for sender in outbox:
            if not (isinstance(sender, int) and 0 <= sender < n):
                raise UnknownVertexError(sender)
            base = sender * n
            for receiver, payload in outbox[sender]:
                if not (isinstance(receiver, int) and 0 <= receiver < n):
                    raise UnknownVertexError(receiver)
                lid = link_index_get(base + receiver)
                if lid is None:
                    raise NotALinkError(sender, receiver)
                pid = id(payload)
                size = size_memo_get(pid)
                if size is None:
                    size = size_memo[pid] = _payload_words(payload)
                bucket = payloads[lid]
                if not bucket:
                    touched_append(lid)
                bucket.append((sender, payload))
                words_acc[lid] += size
                total_messages += 1
                total_words += size
    else:
        for sender, sends in outbox.items():
            base = sender * n
            for receiver, payload in sends:
                lid = link_index_get(base + receiver)
                if lid is None:
                    _diagnose_bad_message(topology, sender, receiver)
                pid = id(payload)
                size = size_memo_get(pid)
                if size is None:
                    size = size_memo[pid] = _payload_words(payload)
                bucket = payloads[lid]
                if not bucket:
                    touched_append(lid)
                bucket.append((sender, payload))
                words_acc[lid] += size
                total_messages += 1
                total_words += size
    return total_messages, total_words


def exchange_batch(
    topology: CSRTopology,
    state: FabricState,
    outbox,
    ledger: RoundLedger,
    bandwidth_words: int,
    raise_on_overload: bool,
    strict: bool = False,
    link_totals: Optional[Dict[Tuple[int, int], int]] = None,
) -> Inbox:
    """Execute one synchronous round through the batched fabric.

    Returns the inbox mapping receivers to ``(sender, payload)`` lists
    in deterministic (sender-ascending) order; charges the ledger
    exactly like the reference engine.
    """
    link_index_get = topology._link_index.get
    payloads = state.link_payloads
    words_acc = state.link_words
    touched: List[int] = []
    touched_append = touched.append
    # Per-round payload-size memo keyed by object identity.  Safe: every
    # key's object is referenced by the outbox for the duration of this
    # call, so ids cannot be recycled; and very effective, because the
    # batch-friendly algorithms share one message object across all of a
    # sender's targets (and broadcast forwards one object over many
    # links).
    size_memo: Dict[int, int] = {}
    size_memo_get = size_memo.get

    try:
        total_messages, total_words = _route_messages(
            topology, outbox, strict, link_index_get, payloads,
            words_acc, touched_append, size_memo_get, size_memo)
    except BaseException:
        # A validation (or sizing) error aborted routing mid-way: drop
        # everything buffered this round so the recycled state stays
        # clean for subsequent exchanges.  Every non-empty bucket's lid
        # is in ``touched`` (appended before the first payload lands).
        for lid in touched:
            payloads[lid].clear()
            words_acc[lid] = 0
        raise
    # Receiver-major link ids: sorting touched ids delivers inboxes
    # grouped by receiver with senders ascending.  Buckets already hold
    # ready-made (sender, payload) pairs, so delivery per link is one
    # C-speed list copy/extend.
    touched.sort()
    receivers = topology.link_receiver
    inbox: Inbox = {}
    max_link = 0
    violations = 0
    first_overload = None
    current_receiver = -1
    box: List[Tuple[int, object]] = []
    for lid in touched:
        loaded = words_acc[lid]
        receiver = receivers[lid]
        bucket = payloads[lid]
        if loaded > max_link:
            max_link = loaded
        if loaded > bandwidth_words:
            violations += 1
            if first_overload is None:
                first_overload = (bucket[0][0], receiver, loaded)
        if link_totals is not None:
            key = (bucket[0][0], receiver)
            link_totals[key] = link_totals.get(key, 0) + loaded
        if receiver != current_receiver:
            current_receiver = receiver
            box = bucket[:]
            inbox[receiver] = box
        else:
            box.extend(bucket)
        bucket.clear()
        words_acc[lid] = 0

    # The round happened on the wire either way: charge it before
    # raising so post-mortem ledgers stay truthful.
    ledger.charge_round(total_messages, total_words, max_link, violations)
    if raise_on_overload and first_overload is not None:
        sender, receiver, loaded = first_overload
        raise BandwidthExceededError(sender, receiver, loaded,
                                     bandwidth_words)
    return inbox


def exchange_reference(
    topology: CSRTopology,
    ledger: RoundLedger,
    outbox,
    bandwidth_words: int,
    raise_on_overload: bool,
    link_totals: Optional[Dict[Tuple[int, int], int]] = None,
) -> Inbox:
    """The pre-fabric per-message engine, preserved verbatim.

    Semantics oracle for the equivalence tests and the baseline for the
    fabric benchmarks / CI perf gate.  Deliberately un-optimized: every
    message pays tuple hashing, recursive word sizing, and per-round
    dict allocation, exactly as the historical ``exchange`` did.
    """
    n = topology.n
    link_set = topology.link_pairs()
    inbox: Inbox = {}
    link_words: Dict[Tuple[int, int], int] = {}
    total_messages = 0
    total_words = 0

    for sender in sorted(outbox):
        if not (0 <= sender < n):
            raise UnknownVertexError(sender)
        for receiver, payload in outbox[sender]:
            if not (0 <= receiver < n):
                raise UnknownVertexError(receiver)
            if (sender, receiver) not in link_set:
                raise NotALinkError(sender, receiver)
            size = words_of(payload)
            key = (sender, receiver)
            link_words[key] = link_words.get(key, 0) + size
            total_messages += 1
            total_words += size
            inbox.setdefault(receiver, []).append((sender, payload))

    if link_totals is not None:
        for key, size in link_words.items():
            link_totals[key] = link_totals.get(key, 0) + size

    max_link = max(link_words.values()) if link_words else 0
    violations = 0
    first_overload = None
    for (u, v), loaded in link_words.items():
        if loaded > bandwidth_words:
            violations += 1
            if first_overload is None:
                first_overload = (u, v, loaded)

    ledger.charge_round(total_messages, total_words, max_link, violations)
    if raise_on_overload and first_overload is not None:
        u, v, loaded = first_overload
        raise BandwidthExceededError(u, v, loaded, bandwidth_words)
    return inbox
