"""The CONGEST model substrate: simulator, accounting, and primitives.

This package contains everything the paper assumes of its execution
environment:

* :class:`~repro.congest.network.CongestNetwork` — the synchronous
  message-passing engine with per-link bandwidth accounting;
* :class:`~repro.congest.topology.CSRTopology` and
  :mod:`~repro.congest.fastpath` — the communication fabric proper:
  frozen CSR adjacency with dense link ids, and batched flat-buffer
  message delivery with validation hoisted behind a flag;
* :mod:`~repro.congest.kernels` — the vector fabric: NumPy
  whole-frontier kernels for the round loops of the pruned hop-BFS,
  the k-source BFS, and the pipelined broadcast, bit-identical to the
  message engines in results and ledger accounting;
* :mod:`~repro.congest.dispatch` — the declarative primitive registry
  and the one :func:`~repro.congest.dispatch.dispatch` entry point
  that routes each primitive call to its vector kernel or message
  engine based on the registered constraints;
* :class:`~repro.congest.metrics.RoundLedger` — round/message/congestion
  bookkeeping with named phases;
* BFS primitives (:mod:`~repro.congest.bfs`), the k-source h-hop BFS of
  Lemma 5.5 (:mod:`~repro.congest.multisource`), the pipelined tree
  broadcast of Lemma 2.4 (:mod:`~repro.congest.broadcast`), and the
  pipelined path-sweep engine (:mod:`~repro.congest.pipeline`) shared by
  Lemmas 4.4, 5.7, 7.7 and 7.8.
"""

from .errors import (
    BandwidthExceededError,
    CongestError,
    InvalidInstanceError,
    NotALinkError,
    RoundLimitExceededError,
    UnknownVertexError,
)
from .dispatch import check, dispatch, registry
from .fastpath import FabricState, exchange_batch, exchange_reference
from .kernels import vector_enabled
from .metrics import PhaseStats, RoundLedger
from .network import (
    DEFAULT_BANDWIDTH_WORDS,
    FABRICS,
    CongestNetwork,
    resolve_fabric,
)
from .topology import CSRTopology
from .words import INF, clamp_inf, is_unreachable, words_of
from .bfs import bfs_distances, bfs_tree, sssp_distances_weighted
from .multisource import multi_source_hop_bfs
from .spanning_tree import (
    SpanningTree,
    build_spanning_tree,
    replay_spanning_tree_charges,
)
from .broadcast import (
    broadcast_messages,
    broadcast_value,
    convergecast,
    global_min,
)
from .pipeline import SweepResult, SweepTask, run_path_sweeps

__all__ = [
    "BandwidthExceededError",
    "CSRTopology",
    "CongestError",
    "CongestNetwork",
    "DEFAULT_BANDWIDTH_WORDS",
    "FABRICS",
    "FabricState",
    "INF",
    "InvalidInstanceError",
    "NotALinkError",
    "PhaseStats",
    "RoundLedger",
    "RoundLimitExceededError",
    "SpanningTree",
    "SweepResult",
    "SweepTask",
    "UnknownVertexError",
    "bfs_distances",
    "bfs_tree",
    "broadcast_messages",
    "broadcast_value",
    "build_spanning_tree",
    "check",
    "clamp_inf",
    "convergecast",
    "dispatch",
    "exchange_batch",
    "exchange_reference",
    "global_min",
    "is_unreachable",
    "multi_source_hop_bfs",
    "registry",
    "replay_spanning_tree_charges",
    "resolve_fabric",
    "run_path_sweeps",
    "sssp_distances_weighted",
    "vector_enabled",
    "words_of",
]
