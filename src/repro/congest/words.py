"""Message-size accounting in O(log n)-bit words.

The CONGEST model allows each vertex to send an O(log n)-bit message to
each neighbor per round.  We account message sizes in *words*, where one
word is one O(log n)-bit field: an integer of magnitude poly(n), a vertex
identifier, a distance, or an index.  A message that is a tuple of k such
fields costs k words.

The accounting is intentionally simple and conservative:

* ``None`` costs 0 words (absence of a message),
* ``int`` / ``float`` / ``bool`` cost 1 word,
* strings cost 1 word per 8 characters (identifiers/labels),
* tuples and lists cost the sum of their fields,
* dicts cost the sum over key/value pairs.

Infinities (the ``INF`` sentinel used for "unreachable") cost one word: a
real implementation would reserve one bit pattern for them.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Any

#: Sentinel for "unreachable" distances.  A plain large int (not float inf)
#: so that sums of a few INFs stay well-ordered and hashable; callers
#: compare with ``>= INF`` via :func:`is_unreachable`.
INF = 1 << 60


def is_unreachable(value: Any) -> bool:
    """Return True when ``value`` denotes an unreachable distance."""
    if value is None:
        return True
    try:
        return value >= INF
    except TypeError:
        return False


def clamp_inf(value: int) -> int:
    """Collapse any value at or beyond INF back to the INF sentinel.

    Sums like ``INF + d`` are still "unreachable"; clamping keeps reported
    distances canonical.
    """
    return INF if value >= INF else value


def words_of(payload: Any) -> int:
    """Number of O(log n)-bit words needed to encode ``payload``."""
    if payload is None:
        return 0
    if isinstance(payload, bool):
        return 1
    if isinstance(payload, (int, float)):
        return 1
    if isinstance(payload, Fraction):
        # Exact rounded lengths h·μ_d: a real implementation would send
        # the integer hop count plus the scale index, i.e. two words.
        return 2
    if isinstance(payload, str):
        return max(1, (len(payload) + 7) // 8)
    if isinstance(payload, (tuple, list)):
        return sum(words_of(item) for item in payload)
    if isinstance(payload, dict):
        return sum(words_of(k) + words_of(v) for k, v in payload.items())
    if isinstance(payload, (set, frozenset)):
        return sum(words_of(item) for item in payload)
    raise TypeError(f"cannot size payload of type {type(payload).__name__}")
