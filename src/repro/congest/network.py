"""The synchronous CONGEST network simulator.

A :class:`CongestNetwork` wraps a directed graph (the *problem* graph) and
exposes the communication substrate the CONGEST model defines on it:

* vertices are integers ``0..n-1``;
* the communication links are the *undirected support* of the edge set —
  in CONGEST on directed graphs, messages travel both ways along a link
  even when the graph edge is one-way (the standard assumption, used
  throughout the paper, e.g. for the backward BFS of Lemma 4.2);
* in each synchronous round every vertex may send one B-word message per
  incident link (B words ≈ O(log n) bits); the simulator counts words and
  records the worst per-link load;
* rounds are advanced exclusively by :meth:`exchange`, so the ledger's
  round counter is exactly the CONGEST round complexity of the execution.

Algorithms are written as ordinary Python functions that loop over rounds,
calling ``net.exchange(outbox)`` once per round.  Local computation is free
(the model allows unbounded local computation), but any *knowledge* a
vertex uses must have arrived through exchanges — the test-suite's
correctness checks compare against centralized oracles computed directly
on the graph, which keeps the algorithms honest.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from .errors import (
    BandwidthExceededError,
    NotALinkError,
    RoundLimitExceededError,
    UnknownVertexError,
)
from .metrics import RoundLedger
from .words import words_of

Outbox = Mapping[int, Iterable[Tuple[int, object]]]
Inbox = Dict[int, List[Tuple[int, object]]]

#: Default per-link bandwidth, in words per round.  The paper's messages
#: are O(log n) bits, i.e. a constant number of words; 8 accommodates the
#: small tuples our primitives send while still flagging genuinely
#: congested schedules.
DEFAULT_BANDWIDTH_WORDS = 8


class CongestNetwork:
    """A directed graph together with its CONGEST communication fabric.

    Parameters
    ----------
    n:
        Number of vertices; vertices are ``0..n-1``.
    edges:
        Iterable of directed edges ``(u, v)`` or weighted edges
        ``(u, v, w)`` with positive integer weight ``w``.
    bandwidth_words:
        Per-link per-round word budget.  Exceeding it either raises
        (``strict=True``) or is recorded as a violation.
    strict:
        Whether bandwidth violations raise :class:`BandwidthExceededError`.
    ledger:
        Optional shared :class:`RoundLedger`; a fresh one is created
        otherwise.
    """

    def __init__(
        self,
        n: int,
        edges: Iterable[Sequence[int]],
        bandwidth_words: int = DEFAULT_BANDWIDTH_WORDS,
        strict: bool = False,
        ledger: Optional[RoundLedger] = None,
    ) -> None:
        if n <= 0:
            raise ValueError("network needs at least one vertex")
        self.n = n
        self.bandwidth_words = bandwidth_words
        self.strict = strict
        self.ledger = ledger if ledger is not None else RoundLedger()
        #: When True, cumulative words per directed link are recorded in
        #: :attr:`link_totals` (used by the lower-bound cut analysis).
        self.record_link_totals = False
        self.link_totals: Dict[Tuple[int, int], int] = {}

        self._out: List[List[int]] = [[] for _ in range(n)]
        self._in: List[List[int]] = [[] for _ in range(n)]
        self._weights: Dict[Tuple[int, int], int] = {}
        neighbor_sets: List[set] = [set() for _ in range(n)]

        for edge in edges:
            if len(edge) == 2:
                u, v = edge
                w = 1
            else:
                u, v, w = edge
            if not (0 <= u < n) or not (0 <= v < n):
                raise UnknownVertexError(u if not (0 <= u < n) else v)
            if u == v:
                raise ValueError(f"self-loop at {u} is not allowed")
            if w <= 0:
                raise ValueError(f"edge ({u},{v}) has non-positive weight")
            if (u, v) in self._weights:
                continue  # ignore parallel duplicates
            self._weights[(u, v)] = int(w)
            self._out[u].append(v)
            self._in[v].append(u)
            neighbor_sets[u].add(v)
            neighbor_sets[v].add(u)

        self._neighbors: List[List[int]] = [
            sorted(s) for s in neighbor_sets
        ]
        self._link_set = frozenset(
            (u, v) for u in range(n) for v in neighbor_sets[u]
        )

    # -- topology accessors --------------------------------------------------

    def vertices(self) -> range:
        return range(self.n)

    def out_neighbors(self, u: int) -> List[int]:
        """Heads of directed edges leaving ``u``."""
        return self._out[u]

    def in_neighbors(self, u: int) -> List[int]:
        """Tails of directed edges entering ``u``."""
        return self._in[u]

    def neighbors(self, u: int) -> List[int]:
        """Communication neighbors (undirected support)."""
        return self._neighbors[u]

    def has_edge(self, u: int, v: int) -> bool:
        return (u, v) in self._weights

    def has_link(self, u: int, v: int) -> bool:
        return (u, v) in self._link_set

    def weight(self, u: int, v: int) -> int:
        return self._weights[(u, v)]

    def directed_edges(self) -> Iterable[Tuple[int, int]]:
        return self._weights.keys()

    @property
    def num_edges(self) -> int:
        return len(self._weights)

    # -- the synchronous round primitive --------------------------------------

    @property
    def rounds(self) -> int:
        return self.ledger.rounds

    def exchange(self, outbox: Outbox) -> Inbox:
        """Execute one synchronous round.

        ``outbox`` maps each sending vertex to an iterable of
        ``(receiver, payload)`` pairs.  All messages are delivered at the
        end of the round; the returned inbox maps receivers to lists of
        ``(sender, payload)`` pairs in a deterministic order.
        """
        inbox: Inbox = {}
        link_words: Dict[Tuple[int, int], int] = {}
        total_messages = 0
        total_words = 0

        for sender in sorted(outbox):
            if not (0 <= sender < self.n):
                raise UnknownVertexError(sender)
            for receiver, payload in outbox[sender]:
                if not (0 <= receiver < self.n):
                    raise UnknownVertexError(receiver)
                if (sender, receiver) not in self._link_set:
                    raise NotALinkError(sender, receiver)
                size = words_of(payload)
                key = (sender, receiver)
                link_words[key] = link_words.get(key, 0) + size
                total_messages += 1
                total_words += size
                inbox.setdefault(receiver, []).append((sender, payload))

        if self.record_link_totals:
            for key, size in link_words.items():
                self.link_totals[key] = self.link_totals.get(key, 0) + size

        max_link = max(link_words.values()) if link_words else 0
        violations = 0
        first_overload = None
        for (u, v), loaded in link_words.items():
            if loaded > self.bandwidth_words:
                violations += 1
                if first_overload is None:
                    first_overload = (u, v, loaded)

        # The round happened on the wire either way: charge it before
        # raising so post-mortem ledgers stay truthful.
        self.ledger.charge_round(
            total_messages, total_words, max_link, violations)
        if self.strict and first_overload is not None:
            u, v, loaded = first_overload
            raise BandwidthExceededError(u, v, loaded,
                                         self.bandwidth_words)
        return inbox

    def idle_round(self, count: int = 1) -> None:
        """Advance ``count`` rounds without any communication."""
        for _ in range(count):
            self.ledger.charge_round(0, 0, 0)

    def check_round_budget(self, limit: int, context: str = "") -> None:
        if self.rounds > limit:
            raise RoundLimitExceededError(limit, context)

    # -- centralized helpers (free local knowledge for setup/oracles) ---------

    def undirected_bfs_layers(self, root: int) -> List[int]:
        """Hop distance from ``root`` in the communication graph.

        Used for spanning-tree construction and diameter estimation; this
        is setup machinery, not part of any algorithm's round count.
        """
        dist = [-1] * self.n
        dist[root] = 0
        queue = deque([root])
        while queue:
            u = queue.popleft()
            for v in self._neighbors[u]:
                if dist[v] < 0:
                    dist[v] = dist[u] + 1
                    queue.append(v)
        return dist

    def undirected_diameter(self) -> int:
        """Exact diameter of the communication graph.

        O(n · m); intended for the modest instance sizes the simulator
        targets.  Raises if the communication graph is disconnected.
        """
        best = 0
        for root in range(self.n):
            dist = self.undirected_bfs_layers(root)
            ecc = max(dist)
            if min(dist) < 0:
                raise ValueError("communication graph is disconnected")
            best = max(best, ecc)
        return best

    def undirected_eccentricity(self, root: int) -> int:
        dist = self.undirected_bfs_layers(root)
        if min(dist) < 0:
            raise ValueError("communication graph is disconnected")
        return max(dist)

    def is_connected(self) -> bool:
        return min(self.undirected_bfs_layers(0)) >= 0
