"""The synchronous CONGEST network simulator.

A :class:`CongestNetwork` wraps a directed graph (the *problem* graph) and
exposes the communication substrate the CONGEST model defines on it:

* vertices are integers ``0..n-1``;
* the communication links are the *undirected support* of the edge set —
  in CONGEST on directed graphs, messages travel both ways along a link
  even when the graph edge is one-way (the standard assumption, used
  throughout the paper, e.g. for the backward BFS of Lemma 4.2);
* in each synchronous round every vertex may send one B-word message per
  incident link (B words ≈ O(log n) bits); the simulator counts words and
  records the worst per-link load;
* rounds are advanced exclusively by :meth:`exchange`, so the ledger's
  round counter is exactly the CONGEST round complexity of the execution.

Algorithms are written as ordinary Python functions that loop over rounds,
calling ``net.exchange(outbox)`` once per round.  Local computation is free
(the model allows unbounded local computation), but any *knowledge* a
vertex uses must have arrived through exchanges — the test-suite's
correctness checks compare against centralized oracles computed directly
on the graph, which keeps the algorithms honest.

Since PR 2 the network is a thin facade over the swappable fabric:

* :class:`~repro.congest.topology.CSRTopology` — frozen adjacency, link
  ids, and O(1) link lookup, built once and shared by all rounds (and,
  via the ``topology=`` parameter, by any number of networks);
* :mod:`~repro.congest.fastpath` — batched delivery through flat
  per-link buffers, with validation hoisted out of the inner loop.

``fabric`` selects the engine: ``"fast"`` (default; deferred validation,
still raises the proper model errors for in-range vertex ids),
``"strict"`` (per-message validation, airtight even against wildly
out-of-range ids), ``"reference"`` (the pre-fabric per-message loop,
kept as the equivalence oracle and benchmark baseline), or ``"vector"``
(the batched engine for explicit exchanges, plus whole-frontier NumPy
kernels — :mod:`~repro.congest.kernels` — for the round loops of the
pruned hop-BFS, the k-source BFS, and the pipelined broadcast).  All
four are byte-identical in delivered inboxes, algorithm outputs, and
ledger contents.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from .errors import RoundLimitExceededError
from .fastpath import FabricState, exchange_batch, exchange_reference
from .metrics import RoundLedger
from .topology import CSRTopology

Outbox = Mapping[int, Iterable[Tuple[int, object]]]
Inbox = Dict[int, List[Tuple[int, object]]]

#: Default per-link bandwidth, in words per round.  The paper's messages
#: are O(log n) bits, i.e. a constant number of words; 8 accommodates the
#: small tuples our primitives send while still flagging genuinely
#: congested schedules.
DEFAULT_BANDWIDTH_WORDS = 8

#: Recognized fabric engines.
FABRICS = ("fast", "strict", "reference", "vector")


def resolve_fabric(fabric: str) -> str:
    """Validate a fabric name and return it.

    The one place fabric names are checked: every solver entry point,
    the suite runner, the CLI, and the network constructor funnel
    through here, so an unknown name always produces the same
    ``ValueError`` listing the valid choices.
    """
    if fabric not in FABRICS:
        raise ValueError(
            f"unknown fabric {fabric!r}; expected one of {FABRICS}")
    return fabric


class CongestNetwork:
    """A directed graph together with its CONGEST communication fabric.

    Parameters
    ----------
    n:
        Number of vertices; vertices are ``0..n-1``.
    edges:
        Iterable of directed edges ``(u, v)`` or weighted edges
        ``(u, v, w)`` with positive integer weight ``w``.  Ignored when
        a prebuilt ``topology`` is supplied.
    bandwidth_words:
        Per-link per-round word budget.  Exceeding it either raises
        (``strict=True``) or is recorded as a violation.
    strict:
        Whether bandwidth violations raise :class:`BandwidthExceededError`.
    ledger:
        Optional shared :class:`RoundLedger`; a fresh one is created
        otherwise.
    fabric:
        Exchange engine: ``"fast"`` (batched, validation deferred),
        ``"strict"`` (batched, per-message validation), ``"reference"``
        (pre-fabric loop; equivalence baseline), or ``"vector"``
        (batched exchanges + whole-frontier array kernels for the
        kernel-covered primitives; needs NumPy, degrades to the
        batched path per primitive when a kernel declines a call).
    topology:
        Optional prebuilt :class:`CSRTopology` to share across networks
        of the same graph (skips re-parsing ``edges``).
    """

    def __init__(
        self,
        n: int,
        edges: Iterable[Sequence[int]],
        bandwidth_words: int = DEFAULT_BANDWIDTH_WORDS,
        strict: bool = False,
        ledger: Optional[RoundLedger] = None,
        fabric: str = "fast",
        topology: Optional[CSRTopology] = None,
    ) -> None:
        fabric = resolve_fabric(fabric)
        if topology is None:
            topology = CSRTopology(n, edges)
        elif topology.n != n:
            raise ValueError(
                f"shared topology has n={topology.n}, network asked "
                f"for n={n}")
        self.n = n
        self.bandwidth_words = bandwidth_words
        self.strict = strict
        self.ledger = ledger if ledger is not None else RoundLedger()
        self.fabric = fabric
        self.topology = topology
        #: When True, cumulative words per directed link are recorded in
        #: :attr:`link_totals` (used by the lower-bound cut analysis).
        self.record_link_totals = False
        self.link_totals: Dict[Tuple[int, int], int] = {}
        # Exchange buffers are hoisted here, once, so neither the strict
        # nor the fast path pays per-round allocation.
        self._state = FabricState(topology)

    # -- topology accessors --------------------------------------------------

    def vertices(self) -> range:
        return range(self.n)

    def out_neighbors(self, u: int) -> List[int]:
        """Heads of directed edges leaving ``u``."""
        return self.topology.out_lists[u]

    def in_neighbors(self, u: int) -> List[int]:
        """Tails of directed edges entering ``u``."""
        return self.topology.in_lists[u]

    def neighbors(self, u: int) -> List[int]:
        """Communication neighbors (undirected support)."""
        return self.topology.nbr_lists[u]

    def has_edge(self, u: int, v: int) -> bool:
        return self.topology.has_edge(u, v)

    def has_link(self, u: int, v: int) -> bool:
        return self.topology.has_link(u, v)

    def weight(self, u: int, v: int) -> int:
        return self.topology.weight(u, v)

    def directed_edges(self) -> Iterable[Tuple[int, int]]:
        return self.topology.directed_edges()

    @property
    def num_edges(self) -> int:
        return self.topology.num_edges

    # -- the synchronous round primitive --------------------------------------

    @property
    def rounds(self) -> int:
        return self.ledger.rounds

    def exchange(self, outbox: Outbox) -> Inbox:
        """Execute one synchronous round.

        ``outbox`` maps each sending vertex to an iterable of
        ``(receiver, payload)`` pairs.  All messages are delivered at the
        end of the round; the returned inbox maps receivers to lists of
        ``(sender, payload)`` pairs in a deterministic order (senders
        ascending per receiver, message order preserved per sender).
        """
        link_totals = self.link_totals if self.record_link_totals else None
        if self.fabric == "reference":
            return exchange_reference(
                self.topology, self.ledger, outbox,
                self.bandwidth_words, self.strict, link_totals)
        return exchange_batch(
            self.topology, self._state, outbox, self.ledger,
            self.bandwidth_words, self.strict,
            strict=(self.fabric == "strict"),
            link_totals=link_totals)

    def idle_round(self, count: int = 1) -> None:
        """Advance ``count`` rounds without any communication."""
        for _ in range(count):
            self.ledger.charge_round(0, 0, 0)

    def check_round_budget(self, limit: int, context: str = "") -> None:
        if self.rounds > limit:
            raise RoundLimitExceededError(limit, context)

    # -- centralized helpers (free local knowledge for setup/oracles) ---------

    def undirected_bfs_layers(self, root: int) -> List[int]:
        """Hop distance from ``root`` in the communication graph.

        Used for spanning-tree construction and diameter estimation; this
        is setup machinery, not part of any algorithm's round count.
        """
        nbr_lists = self.topology.nbr_lists
        dist = [-1] * self.n
        dist[root] = 0
        queue = deque([root])
        while queue:
            u = queue.popleft()
            du = dist[u] + 1
            for v in nbr_lists[u]:
                if dist[v] < 0:
                    dist[v] = du
                    queue.append(v)
        return dist

    def undirected_diameter(self) -> int:
        """Exact diameter of the communication graph.

        O(n · m); intended for the modest instance sizes the simulator
        targets.  Raises if the communication graph is disconnected.
        """
        best = 0
        for root in range(self.n):
            dist = self.undirected_bfs_layers(root)
            ecc = max(dist)
            if min(dist) < 0:
                raise ValueError("communication graph is disconnected")
            best = max(best, ecc)
        return best

    def undirected_eccentricity(self, root: int) -> int:
        dist = self.undirected_bfs_layers(root)
        if min(dist) < 0:
            raise ValueError("communication graph is disconnected")
        return max(dist)

    def is_connected(self) -> bool:
        return min(self.undirected_bfs_layers(0)) >= 0
