"""Distributed construction of a BFS spanning tree.

The paper (and [Pel00]) uses a breadth-first spanning tree of the
communication graph as the backbone for broadcast (Lemma 2.4) and
convergecast.  Building it costs O(D) rounds: a flood from the root where
each vertex adopts the first sender it hears as its parent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from .dispatch import dispatch
from .errors import CongestError
from .network import CongestNetwork
from .words import words_of


@dataclass
class SpanningTree:
    """A rooted spanning tree of the communication graph.

    Attributes
    ----------
    root:
        The root vertex (the elected leader; vertex 0 by convention).
    parent:
        ``parent[v]`` is v's tree parent; ``parent[root] == root``.
    children:
        ``children[v]`` lists v's tree children (sorted).
    depth:
        ``depth[v]`` is the hop distance from the root.
    """

    root: int
    parent: List[int]
    children: List[List[int]]
    depth: List[int]

    @property
    def height(self) -> int:
        return max(self.depth)

    def tree_neighbors(self, v: int) -> List[int]:
        """Tree-adjacent vertices of ``v`` (parent plus children)."""
        if v == self.root:
            return list(self.children[v])
        return [self.parent[v]] + list(self.children[v])

    def verify(self) -> None:
        """Raise if the structure is not a spanning tree."""
        n = len(self.parent)
        seen = 0
        for v in range(n):
            if v == self.root:
                if self.parent[v] != v or self.depth[v] != 0:
                    raise CongestError("malformed root")
                seen += 1
                continue
            p = self.parent[v]
            if p < 0:
                raise CongestError(f"vertex {v} is not in the tree")
            if self.depth[v] != self.depth[p] + 1:
                raise CongestError(f"depth invariant broken at {v}")
            if v not in self.children[p]:
                raise CongestError(f"child link missing for {v}")
            seen += 1
        if seen != n:
            raise CongestError("tree does not span all vertices")


def build_spanning_tree(
    net: CongestNetwork,
    root: int = 0,
    phase: Optional[str] = None,
) -> SpanningTree:
    """Build a BFS spanning tree by flooding from ``root``.

    Rounds: the eccentricity of ``root`` plus one confirmation round per
    level (children announce themselves to their chosen parent), so O(D)
    in total.
    """
    name = phase if phase is not None else "spanning-tree"
    parent, depth = dispatch("spanning_tree", net, root=root, name=name)
    if min(parent) < 0:
        raise CongestError(
            "communication graph is disconnected; no spanning tree")
    children: List[List[int]] = [[] for _ in range(net.n)]
    for v in range(net.n):
        if v != root:
            children[parent[v]].append(v)
    tree = SpanningTree(root=root, parent=parent,
                        children=children, depth=depth)
    tree.verify()
    return tree


def _flood_message(net: CongestNetwork, root: int,
                   name: str) -> Tuple[List[int], List[int]]:
    """The offer/confirm flood rounds (the registry's fallback lane).

    Opens phase ``name`` and returns ``(parent, depth)`` with ``-1``
    marking unreached vertices; :func:`build_spanning_tree` raises the
    disconnection error and assembles/verifies the tree, identically
    for both lanes.
    """
    nbr_lists = net.topology.nbr_lists
    exchange = net.exchange
    with net.ledger.phase(name):
        parent = [-1] * net.n
        depth = [-1] * net.n
        parent[root] = root
        depth[root] = 0
        frontier = [root]
        offer = ("offer",)
        adopt = ("adopt",)
        while frontier:
            # Level announcement: frontier vertices offer parenthood.
            outbox = {}
            for u in frontier:
                offers = [(v, offer) for v in nbr_lists[u]
                          if parent[v] < 0]
                if offers:
                    outbox[u] = offers
            if not outbox:
                break
            inbox = exchange(outbox)
            # Adoption: each newly reached vertex picks the smallest
            # offering neighbor and confirms (one more round).
            adopted = {}
            for v in sorted(inbox):
                if parent[v] >= 0:
                    continue
                chosen = min(s for s, _ in inbox[v])
                parent[v] = chosen
                adopted[v] = chosen
            if adopted:
                confirm = {v: [(p, adopt)] for v, p in adopted.items()}
                confirm_inbox = exchange(confirm)
                for p, arrivals in confirm_inbox.items():
                    for child, _ in arrivals:
                        depth[child] = depth[p] + 1
            frontier = sorted(adopted)
        return parent, depth


def replay_spanning_tree_charges(
    net: CongestNetwork,
    tree: SpanningTree,
    phase: Optional[str] = None,
) -> None:
    """Charge the ledger exactly as rebuilding ``tree`` on ``net`` would.

    The BFS flood is deterministic on a frozen topology, so its
    per-round charges are a pure function of the topology and the BFS
    layering: level ℓ costs one offers round (one 1-word message per
    (depth-ℓ vertex, depth-(ℓ+1) neighbor) link — every not-yet-reached
    neighbor of a frontier vertex sits exactly one level deeper) and
    one confirmation round (one 1-word message per level-(ℓ+1) vertex).
    Callers that already hold the tree for this topology (Corollary
    6.2's 2-SiSP aggregation reuses the solver's tree) replay the
    charges instead of re-flooding, keeping ledgers bit-identical to a
    rebuild at none of the cost.  Assumes a non-strict network (the
    1-word control messages cannot overload any real budget).
    """
    name = phase if phase is not None else "spanning-tree"
    nbr_lists = net.topology.nbr_lists
    depth = tree.depth
    height = max(depth)
    offers = [0] * (height + 1)
    adopted = [0] * (height + 1)
    for u in range(net.n):
        du = depth[u]
        if du > 0:
            adopted[du] += 1
        for v in nbr_lists[u]:
            if depth[v] == du + 1:
                offers[du] += 1
    size = words_of(("offer",))
    oversized = size > net.bandwidth_words
    with net.ledger.phase(name):
        for level in range(height):
            off = offers[level]
            net.ledger.charge_round(off, off * size, size,
                                    off if oversized else 0)
            ado = adopted[level + 1]
            net.ledger.charge_round(ado, ado * size, size,
                                    ado if oversized else 0)
