"""Distributed construction of a BFS spanning tree.

The paper (and [Pel00]) uses a breadth-first spanning tree of the
communication graph as the backbone for broadcast (Lemma 2.4) and
convergecast.  Building it costs O(D) rounds: a flood from the root where
each vertex adopts the first sender it hears as its parent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .errors import CongestError
from .network import CongestNetwork


@dataclass
class SpanningTree:
    """A rooted spanning tree of the communication graph.

    Attributes
    ----------
    root:
        The root vertex (the elected leader; vertex 0 by convention).
    parent:
        ``parent[v]`` is v's tree parent; ``parent[root] == root``.
    children:
        ``children[v]`` lists v's tree children (sorted).
    depth:
        ``depth[v]`` is the hop distance from the root.
    """

    root: int
    parent: List[int]
    children: List[List[int]]
    depth: List[int]

    @property
    def height(self) -> int:
        return max(self.depth)

    def tree_neighbors(self, v: int) -> List[int]:
        """Tree-adjacent vertices of ``v`` (parent plus children)."""
        if v == self.root:
            return list(self.children[v])
        return [self.parent[v]] + list(self.children[v])

    def verify(self) -> None:
        """Raise if the structure is not a spanning tree."""
        n = len(self.parent)
        seen = 0
        for v in range(n):
            if v == self.root:
                if self.parent[v] != v or self.depth[v] != 0:
                    raise CongestError("malformed root")
                seen += 1
                continue
            p = self.parent[v]
            if p < 0:
                raise CongestError(f"vertex {v} is not in the tree")
            if self.depth[v] != self.depth[p] + 1:
                raise CongestError(f"depth invariant broken at {v}")
            if v not in self.children[p]:
                raise CongestError(f"child link missing for {v}")
            seen += 1
        if seen != n:
            raise CongestError("tree does not span all vertices")


def build_spanning_tree(
    net: CongestNetwork,
    root: int = 0,
    phase: Optional[str] = None,
) -> SpanningTree:
    """Build a BFS spanning tree by flooding from ``root``.

    Rounds: the eccentricity of ``root`` plus one confirmation round per
    level (children announce themselves to their chosen parent), so O(D)
    in total.
    """
    name = phase if phase is not None else "spanning-tree"
    nbr_lists = net.topology.nbr_lists
    exchange = net.exchange
    with net.ledger.phase(name):
        parent = [-1] * net.n
        depth = [-1] * net.n
        children: List[List[int]] = [[] for _ in range(net.n)]
        parent[root] = root
        depth[root] = 0
        frontier = [root]
        offer = ("offer",)
        adopt = ("adopt",)
        while frontier:
            # Level announcement: frontier vertices offer parenthood.
            outbox = {}
            for u in frontier:
                offers = [(v, offer) for v in nbr_lists[u]
                          if parent[v] < 0]
                if offers:
                    outbox[u] = offers
            if not outbox:
                break
            inbox = exchange(outbox)
            # Adoption: each newly reached vertex picks the smallest
            # offering neighbor and confirms (one more round).
            adopted = {}
            for v in sorted(inbox):
                if parent[v] >= 0:
                    continue
                chosen = min(s for s, _ in inbox[v])
                parent[v] = chosen
                adopted[v] = chosen
            if adopted:
                confirm = {v: [(p, adopt)] for v, p in adopted.items()}
                confirm_inbox = exchange(confirm)
                for p, arrivals in confirm_inbox.items():
                    for child, _ in arrivals:
                        children[p].append(child)
                        depth[child] = depth[p] + 1
            frontier = sorted(adopted)
        if any(p < 0 for p in parent):
            raise CongestError(
                "communication graph is disconnected; no spanning tree")
        for lst in children:
            lst.sort()
        tree = SpanningTree(root=root, parent=parent,
                            children=children, depth=depth)
        tree.verify()
        return tree
