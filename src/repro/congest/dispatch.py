"""Declarative primitive registry + unified kernel dispatcher.

Every CONGEST primitive the solver phases route through a fabric
choice is registered here exactly once, as *data*: its message-engine
implementation, its vector (array-kernel) implementation, the
constraints under which the vector implementation is bit-identical to
the message engines, and its ledger-charging contract.  One
:func:`dispatch` entry point replaces the per-call-site applicability
predicates that used to make up DESIGN.md's hand-maintained fallback
matrix (the deprecated shims over them are gone since the scale-out
PR).

The registry is the single source of truth for three consumers:

* **dispatch** — :func:`dispatch` evaluates a primitive's constraints
  in declared order and routes the call: all pass → the vector kernel
  (counted as a ``vector`` hit); first failure → the message engine,
  counted as a ``fallback`` whose reason *is* the failing constraint's
  reason.  No hand-kept enum can drift from the checks.
* **telemetry** — :func:`known_kernels` / :func:`known_reasons` derive
  the legal counter label sets from the registered constraints (plus
  escape hatches), which is what ``repro trace summary
  --check-reasons`` enforces in CI.
* **docs** — ``repro kernels list`` renders :func:`table_rows` /
  :func:`registry_json`, so the dispatch table users read is the one
  the dispatcher executes.

Implementations are stored as dotted ``(module, attribute)``
references and resolved lazily: the registry can therefore name
message engines living in :mod:`repro.core` modules that themselves
import this module, without an import cycle.

Constraint evaluation order is the contract: the reported fallback
reason is the *first* failing declared constraint (global fabric gates
first, then per-call constraints in registration order).  Constraints
may rely on their predecessors having passed — e.g. the hop-BFS
functional-aux check hashes seed indices, which the preceding
value-range constraint has already vouched for.

Adding a kernel or backend is one registration here (see DESIGN.md's
"Adding a kernel/backend" walkthrough): the dispatcher, the telemetry
enums, the ``repro kernels list`` table, and the registry-parametrized
force-fallback equivalence suite in ``tests/test_kernel_equivalence``
all pick it up with no further code.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import (
    Callable, Dict, List, Mapping, Optional, Tuple,
)

from ..telemetry import dispatch as _counters
from . import kernels as _kernels

#: A constraint check: ``check(net, call) -> bool`` (True = satisfied).
CheckFn = Callable[[object, Mapping[str, object]], bool]

#: A lazily-resolved implementation: (dotted module, attribute).
ImplRef = Tuple[str, str]


@dataclass(frozen=True)
class Constraint:
    """One declared applicability condition of a vector kernel.

    ``reason`` is the fallback-reason counter label charged when this
    constraint is the first to fail; ``description`` is what ``repro
    kernels list`` prints for it.
    """

    reason: str
    description: str
    check: CheckFn


@dataclass(frozen=True)
class Primitive:
    """One registered CONGEST primitive (a row of the dispatch table).

    Attributes
    ----------
    name:
        The kernel identifier used in dispatch counters.
    title, lemma:
        Human-readable row labels (``repro kernels list``).
    message, vector:
        Dotted references to the message-engine and array-kernel
        implementations.  Both take ``(net, **call)`` with identical
        keyword names and return identical values.
    constraints:
        Per-call constraints beyond :data:`GLOBAL_GATES`, evaluated in
        order after them.
    ledger:
        The charging contract both implementations honor.
    prepare:
        Optional ``prepare(net, call) -> plan`` hook run after all
        constraints pass and before the vector hit is counted; the
        plan is passed to the vector implementation as ``plan=``.
        Used for the overflow-prone send-plan builds: an
        ``OverflowError`` here falls back with ``escape_reason``
        before anything is charged.
    escape_reason:
        The fallback reason charged when ``prepare`` escapes.
    """

    name: str
    title: str
    lemma: str
    message: ImplRef
    vector: ImplRef
    constraints: Tuple[Constraint, ...] = ()
    ledger: str = ""
    prepare: Optional[Callable] = None
    escape_reason: Optional[str] = None
    #: resolved-implementation cache (per-registration, lazy).
    _cache: Dict[str, Callable] = field(default_factory=dict, repr=False,
                                        compare=False)

    def resolve(self, which: str) -> Callable:
        impl = self._cache.get(which)
        if impl is None:
            module, attr = self.message if which == "message" else self.vector
            impl = getattr(importlib.import_module(module), attr)
            self._cache[which] = impl
        return impl


# -- global gates (shared head of every primitive's constraint list) ---------

GLOBAL_GATES: Tuple[Constraint, ...] = (
    Constraint(
        _counters.REASON_FABRIC,
        'network runs fabric="vector"',
        lambda net, call: getattr(net, "fabric", None) == "vector",
    ),
    Constraint(
        _counters.REASON_RECORD_LINK_TOTALS,
        "per-link total recording off (cut analysis wants real routing)",
        lambda net, call: not net.record_link_totals,
    ),
    Constraint(
        _counters.REASON_NUMPY_MISSING,
        "NumPy importable",
        lambda net, call: _kernels.numpy_or_none() is not None,
    ),
)


# -- per-call constraint checks ----------------------------------------------


def _hop_bfs_values_ok(net, call) -> bool:
    n = net.n
    for u, value in call["seeds"].items():
        idx, aux = value
        if not isinstance(idx, int) or not isinstance(aux, int):
            return False
        if not (_kernels._fits_int64(idx) and _kernels._fits_int64(aux)
                and 0 <= u < n):
            return False
    return True


def _hop_bfs_aux_functional(net, call) -> bool:
    aux_of: Dict[int, int] = {}
    for idx, aux in call["seeds"].values():
        if aux_of.setdefault(idx, aux) != aux:
            return False
    return True


def _multisource_key_fits(net, call) -> bool:
    hop_limit = call["hop_limit"]
    k = len(call["sources"])
    return (hop_limit >= 0
            and (hop_limit + 2) * max(k, 1) < _kernels._INT64_SAFE)


def _multisource_sources_ok(net, call) -> bool:
    n = net.n
    return all(isinstance(s, int) and 0 <= s < n
               for s in call["sources"])


def _chain_prefix_fits(net, call) -> bool:
    return _kernels._fits_int64(call["prefix"][-1])


def _dp_zeta_fits(net, call) -> bool:
    return 0 <= call["zeta"] < _kernels._INT64_SAFE


def _sweeps_declarative(net, call) -> bool:
    return all(task.local_min is not None for task in call["tasks"])


def _sweeps_values_ok(net, call) -> bool:
    checked = set()
    for task in call["tasks"]:
        if type(task.init) is not int or not _kernels._fits_int64(task.init):
            return False
        local = task.local_min
        if id(local) not in checked:
            if not all(type(x) is int and _kernels._fits_int64(x)
                       for x in local):
                return False
            checked.add(id(local))
    return True


def _sweeps_keys_distinct(net, call) -> bool:
    seen = set()
    for task in call["tasks"]:
        if task.key in seen:
            return False
        seen.add(task.key)
    return True


def _sweeps_groups_disjoint(net, call) -> bool:
    spans: Dict[int, Dict[int, List[int]]] = {1: {}, -1: {}}
    for task in call["tasks"]:
        if task.start == task.end:
            continue
        direction = 1 if task.end > task.start else -1
        lo, hi = sorted((task.start, task.end))
        span = spans[direction].get(task.start)
        if span is None:
            spans[direction][task.start] = [lo, hi]
        else:
            span[0] = min(span[0], lo)
            span[1] = max(span[1], hi)
    for groups in spans.values():
        intervals = sorted(groups.values())
        for (_, a_hi), (b_lo, _) in zip(intervals, intervals[1:]):
            if a_hi > b_lo:
                return False
    return True


def _n_shift_rows_int(net, call) -> bool:
    return all(type(v) is int for row in call["rows"] for v in row)


# -- send-plan prepare hooks (the OverflowError escape hatches) ---------------


def _hop_bfs_prepare(net, call):
    direction = "in" if call["sense"] == "backward" else "out"
    return net.topology.send_arrays(direction, call["avoid_edges"],
                                    call["delay"])


def _multisource_prepare(net, call):
    if not call["sources"]:
        return None  # the k == 0 kernel never touches the plan
    return net.topology.send_arrays(call["direction"],
                                    call["avoid_edges"], call["delay"])


# -- the registry -------------------------------------------------------------

_PRIMITIVES: Tuple[Primitive, ...] = (
    Primitive(
        name=_counters.KERNEL_HOP_BFS,
        title="pruned hop-BFS flood",
        lemma="L4.2/L7.5",
        message=("repro.core.hop_bfs", "_hop_bfs_message"),
        vector=("repro.congest.kernels", "pruned_max_hop_bfs_vector"),
        constraints=(
            Constraint(
                _counters.REASON_VALUE_RANGE,
                "seed vertices in range; (index, aux) int64-safe ints",
                _hop_bfs_values_ok,
            ),
            Constraint(
                _counters.REASON_NON_FUNCTIONAL_AUX,
                "auxiliary word is a function of the path index",
                _hop_bfs_aux_functional,
            ),
        ),
        ledger="opens its phase; uniform 3-word rounds over the "
               "frontier schedule",
        prepare=_hop_bfs_prepare,
        escape_reason=_counters.REASON_DELAY_OVERFLOW,
    ),
    Primitive(
        name=_counters.KERNEL_MULTISOURCE,
        title="k-source hop BFS",
        lemma="L5.5",
        message=("repro.congest.multisource", "_multisource_message"),
        vector=("repro.congest.kernels", "multi_source_hop_bfs_vector"),
        constraints=(
            Constraint(
                _counters.REASON_KEY_OVERFLOW,
                "priority keys d*k + rank fit int64 (sane hop limit)",
                _multisource_key_fits,
            ),
            Constraint(
                _counters.REASON_SOURCE_RANGE,
                "sources are in-range ints (message path owns the "
                "error behavior otherwise)",
                _multisource_sources_ok,
            ),
        ),
        ledger="opens its phase; uniform 3-word rounds of the "
               "priority schedule",
        prepare=_multisource_prepare,
        escape_reason=_counters.REASON_DELAY_OVERFLOW,
    ),
    Primitive(
        name=_counters.KERNEL_BROADCAST,
        title="pipelined tree broadcast",
        lemma="L2.4",
        message=("repro.congest.broadcast", "_broadcast_message"),
        vector=("repro.congest.kernels", "broadcast_messages_vector"),
        ledger="opens its phase; per-item FIFO charges, or one bulk "
               "charge for uniform-size batches",
    ),
    Primitive(
        name=_counters.KERNEL_CHAIN_FLOOD,
        title="path-chain flood",
        lemma="L2.5",
        message=("repro.core.knowledge", "_chain_flood_message"),
        vector=("repro.congest.kernels", "chain_flood_vector"),
        constraints=(
            Constraint(
                _counters.REASON_VALUE_RANGE,
                "prefix weights int64-safe (tokens carry their "
                "differences)",
                _chain_prefix_fits,
            ),
        ),
        ledger="charges in the caller's open phase (bulk uniform "
               "gap schedule)",
    ),
    Primitive(
        name=_counters.KERNEL_DP_SWEEP,
        title="descending DP pipeline",
        lemma="L4.4",
        message=("repro.core.short_detour", "_dp_sweep_message"),
        vector=("repro.congest.kernels", "dp_sweep_vector"),
        constraints=(
            Constraint(
                _counters.REASON_VALUE_RANGE,
                "0 <= zeta, int64-safe round count",
                _dp_zeta_fits,
            ),
        ),
        ledger="opens its phase; bulk-charges zeta-1 uniform rounds",
    ),
    Primitive(
        name=_counters.KERNEL_PATH_SWEEPS,
        title="pipelined path sweeps",
        lemma="L4.4/5.7/5.9",
        message=("repro.congest.pipeline", "_path_sweeps_message"),
        vector=("repro.congest.kernels", "run_path_sweeps_vector"),
        constraints=(
            Constraint(
                _counters.REASON_NON_DECLARATIVE,
                "every task declarative (local_min table, no combine "
                "closure)",
                _sweeps_declarative,
            ),
            Constraint(
                _counters.REASON_VALUE_RANGE,
                "task init values and local_min tables int64-safe ints",
                _sweeps_values_ok,
            ),
            Constraint(
                _counters.REASON_DUPLICATE_KEYS,
                "task keys pairwise distinct",
                _sweeps_keys_distinct,
            ),
            Constraint(
                _counters.REASON_OVERLAPPING_GROUPS,
                "start groups occupy disjoint link ranges per direction",
                _sweeps_groups_disjoint,
            ),
        ),
        ledger="opens its phase; bulk-charges the FIFO makespan",
    ),
    Primitive(
        name=_counters.KERNEL_SPANNING_TREE,
        title="BFS spanning-tree flood",
        lemma="L2.4 backbone",
        message=("repro.congest.spanning_tree", "_flood_message"),
        vector=("repro.congest.kernels", "spanning_tree_flood_vector"),
        ledger="opens its phase; one offers + one confirmation round "
               "per BFS level",
    ),
    Primitive(
        name=_counters.KERNEL_N_SHIFT,
        title="segment-table N-shift",
        lemma="L5.9",
        message=("repro.core.segments", "_n_shift_message"),
        vector=("repro.congest.kernels", "n_shift_vector"),
        constraints=(
            Constraint(
                _counters.REASON_VALUE_RANGE,
                "all shifted values plain ints (3-word tokens; "
                "Fractions take the message path)",
                _n_shift_rows_int,
            ),
        ),
        ledger="charges in the caller's open phase (k bulk rounds)",
    ),
    Primitive(
        name=_counters.KERNEL_LANDMARK_COMPLETION,
        title="landmark min-plus completion",
        lemma="L5.6",
        message=("repro.core.landmark_distances", "_completion_message"),
        vector=("repro.congest.kernels", "landmark_completion_vector"),
        ledger="ledger-free local computation (value equality only)",
    ),
    Primitive(
        name=_counters.KERNEL_PAIRWISE_MIN_SUM,
        title="pairwise min-sum finish",
        lemma="P5.1",
        message=("repro.core.long_detour", "_pairwise_min_sum_message"),
        vector=("repro.congest.kernels", "pairwise_min_sum_vector"),
        ledger="ledger-free local computation (value equality only)",
    ),
)

REGISTRY: Dict[str, Primitive] = {p.name: p for p in _PRIMITIVES}


def registry() -> Mapping[str, Primitive]:
    """The primitive registry, keyed by kernel name."""
    return REGISTRY


# -- dispatch -----------------------------------------------------------------


def check(primitive: str, net, **call) -> Optional[str]:
    """First failing declared constraint's reason, or None (vector-ok).

    Pure: no counters are recorded (that is :func:`dispatch`'s job).
    Does not run ``prepare``, so an escape-hatch fallback (e.g. a
    delay-overflow mid-plan) is not predicted here — by design, since
    the escapes exist precisely because the condition is only
    discoverable while building the plan.
    """
    prim = REGISTRY[primitive]
    for constraint in GLOBAL_GATES + prim.constraints:
        if not constraint.check(net, call):
            return constraint.reason
    return None


def dispatch(primitive: str, net, **call):
    """Route one primitive invocation to the vector or message path.

    Evaluates the registered constraints in declared order; the first
    failure records a ``fallback`` counter with that constraint's
    reason and runs the message engine.  When all pass, any ``prepare``
    hook builds the send plan (its ``OverflowError`` escape falls back
    with the registered escape reason — nothing has been charged yet),
    the ``vector`` hit is recorded, and the array kernel runs.  Both
    implementations receive the identical ``**call`` keywords.
    """
    prim = REGISTRY[primitive]
    reason = check(primitive, net, **call)
    plan = None
    if reason is None and prim.prepare is not None:
        try:
            plan = prim.prepare(net, call)
        except OverflowError:
            reason = prim.escape_reason
    if reason is not None:
        _counters.record_fallback(prim.name, reason)
        return prim.resolve("message")(net, **call)
    _counters.record_vector_hit(prim.name)
    if prim.prepare is not None:
        return prim.resolve("vector")(net, plan=plan, **call)
    return prim.resolve("vector")(net, **call)


# -- derived telemetry enums --------------------------------------------------


def known_kernels() -> frozenset:
    """The legal ``kernel=`` counter labels (derived from the registry)."""
    return frozenset(REGISTRY)


def known_reasons() -> frozenset:
    """The legal ``reason=`` labels: every registered constraint's
    reason plus every escape-hatch reason.  This is what CI's
    ``--check-reasons`` gate validates against."""
    reasons = {gate.reason for gate in GLOBAL_GATES}
    for prim in REGISTRY.values():
        reasons.update(c.reason for c in prim.constraints)
        if prim.escape_reason is not None:
            reasons.add(prim.escape_reason)
    return frozenset(reasons)


# -- rendering (the ``repro kernels list`` verb) ------------------------------


def _ref_name(ref: ImplRef) -> str:
    return f"{ref[0].rsplit('.', 1)[-1]}.{ref[1].lstrip('_')}"


def table_rows() -> List[List[str]]:
    """One row per primitive: the dispatch table as ``repro kernels
    list`` renders it (reference/fast/strict share the message engine
    atop different exchange fabrics; vector is the array kernel)."""
    rows: List[List[str]] = []
    for prim in _PRIMITIVES:
        conditions = [c.reason for c in prim.constraints]
        if prim.escape_reason is not None:
            conditions.append(prim.escape_reason + " (escape)")
        rows.append([
            prim.name,
            prim.lemma,
            _ref_name(prim.message),
            _ref_name(prim.vector),
            ", ".join(conditions) if conditions else "-",
        ])
    return rows


def registry_json() -> List[Dict[str, object]]:
    """Machine-readable registry dump (``repro kernels list --json``)."""
    out: List[Dict[str, object]] = []
    for prim in _PRIMITIVES:
        out.append({
            "name": prim.name,
            "title": prim.title,
            "lemma": prim.lemma,
            "implementations": {
                "reference": ".".join(prim.message),
                "fast": ".".join(prim.message),
                "strict": ".".join(prim.message),
                "vector": ".".join(prim.vector),
            },
            "global_gates": [
                {"reason": g.reason, "description": g.description}
                for g in GLOBAL_GATES
            ],
            "constraints": [
                {"reason": c.reason, "description": c.description}
                for c in prim.constraints
            ],
            "escape_reason": prim.escape_reason,
            "ledger": prim.ledger,
        })
    return out
