"""NumPy array kernels: whole-frontier CONGEST rounds without messages.

``fabric="vector"`` keeps the batched exchange engine for explicit
``exchange`` calls, but routes **every round loop of the Theorem 1
solver** through whole-structure computation over the frozen CSR
arrays (:meth:`~repro.congest.topology.CSRTopology.arrays` /
:meth:`~repro.congest.topology.CSRTopology.send_arrays`): the pruned
hop-BFS of Lemma 4.2, the k-source hop BFS of Lemma 5.5, the
pipelined tree broadcast of Lemma 2.4 (per-item, plus a schedule-free
uniform-size path), the Lemma 2.5 path-chain flood, the descending
ζ-round DP pipeline of Lemma 4.4, the segment prefix/suffix sweeps of
Lemmas 5.7/5.9 and their one-hop shift, and the BFS spanning-tree
flood.  One synchronous round becomes a handful of vectorized
operations (frontier gathers via CSR range expansion, delay-shifted
scheduling buckets, segmented max/min via
``np.maximum.at``/``np.minimum.at``) instead of one Python tuple per
(sender, target) pair — and closed-form schedules (chain gaps, DP
rounds, disjoint sweep groups, uniform broadcasts) charge whole
executions in bulk via
:meth:`~repro.congest.metrics.RoundLedger.charge_rounds` without
walking rounds at all.

The contract, asserted by ``tests/test_kernel_equivalence.py`` and
``tests/test_solver_equivalence.py``, is **bit-identical
observables**: the kernels return exactly the result tables the
message engines return, and charge the
:class:`~repro.congest.metrics.RoundLedger` exactly the same per-phase
rounds, message counts, word totals, per-link maxima, and violation
counts.  The message engines stay the semantic oracles; the
conditions under which a kernel can guarantee parity for a given call
(functional auxiliary words, no ``record_link_totals`` cut analysis,
NumPy present, no key-encoding overflow, declarative sweep tasks) are
declared as per-primitive constraints in the registry of
:mod:`repro.congest.dispatch`, whose :func:`~repro.congest.dispatch.
dispatch` entry point routes every call and falls back to the message
path on the first failing constraint.  (The historical applicability
predicates lived here as deprecated shims for one release; they are
gone — the registry is the only gatekeeper.)

NumPy is imported lazily (module import never touches it), so the
message engines remain importable — and fully functional — without it.

The topology exports the kernels gather over follow the int32 memory
diet (:class:`~repro.congest.topology.TopologyArrays`): indptr/
indices/steps arrive as int32 whenever the value ranges permit and
are **read-only**.  Kernels treat them as addressing data; any
arithmetic that can outgrow int32 (hop sums against the budget, key
encodings ``d·k + rank``) is performed in int64, upcasting at the
gather site.  Value/distance arrays (INF sentinels at 2^60) always
stay int64.

Ledger parity leans on one structural invariant of the round-loop
kernels: in any round, each directed link carries at most one message,
and all messages of the round have the same word size.  The per-round
charge is therefore ``(M messages, M·size words, max_link = size,
violations = M·[size > bandwidth])`` — exactly what
:func:`~repro.congest.fastpath.exchange_batch` computes message by
message — and aggregating it over a whole schedule is exact because
phase stats only ever hold aggregates.  The per-item broadcast kernel
charges per-item sizes the same way the per-link FIFO engine does.
"""

from __future__ import annotations

import functools
from collections import deque
from typing import (
    Callable, Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple,
)

from ..telemetry import trace as _trace
from .errors import BandwidthExceededError
from .words import INF, words_of

Value = Tuple[int, int]
EdgeSet = FrozenSet[Tuple[int, int]]

#: Wire size of the BFS kernel messages.  Both schedules send
#: ``(tag, int, int)`` tuples whose tag is at most 8 characters, so the
#: size is independent of the carried values.
HOP_MESSAGE_WORDS = words_of(("hopv", 0, 0))

#: Magnitude bound for values packed into int64 kernel arrays.
_INT64_SAFE = 1 << 62

_NUMPY = None
_NUMPY_CHECKED = False


def numpy_or_none():
    """NumPy module, or None when unavailable (checked once, lazily)."""
    global _NUMPY, _NUMPY_CHECKED
    if not _NUMPY_CHECKED:
        try:
            import numpy
            _NUMPY = numpy
        except ImportError:  # pragma: no cover - numpy is baked in CI
            _NUMPY = None
        _NUMPY_CHECKED = True
    return _NUMPY


def _kernel_span(kernel: str):
    """Wrap a vector kernel in a ``kernel/<name>`` span when tracing.

    When the first argument carries a ledger (the ``net``-taking
    kernels), the span joins it and reports the kernel's own
    rounds/messages/words deltas.  Tracing off costs one boolean.
    """
    def deco(fn):
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if not _trace._ENABLED:
                return fn(*args, **kwargs)
            with _trace.span("kernel/" + kernel) as sp:
                ledger = getattr(args[0], "ledger", None) if args else None
                if ledger is not None:
                    sp.set_ledger(ledger)
                return fn(*args, **kwargs)
        return wrapper
    return deco


def vector_gate_reason(net) -> Optional[str]:
    """The global-gate fallback reason for ``net``, or None when the
    array kernels may run.

    Requires the vector fabric, NumPy, and no per-link total recording
    (the lower-bound cut analysis wants genuine per-message routing).
    The gates themselves are declared once, as data, in
    :data:`repro.congest.dispatch.GLOBAL_GATES`; the returned strings
    are members of the registry-derived reason set
    (:func:`repro.telemetry.dispatch.known_reasons`).
    """
    from .dispatch import GLOBAL_GATES
    for gate in GLOBAL_GATES:
        if not gate.check(net, {}):
            return gate.reason
    return None


def vector_enabled(net) -> bool:
    """Should ``net`` route kernel-covered primitives through arrays?"""
    return vector_gate_reason(net) is None


def _fits_int64(value: int) -> bool:
    return -_INT64_SAFE < value < _INT64_SAFE


def _expand_ranges(np, starts, counts, total: int):
    """Concatenated ``[starts[i], starts[i]+counts[i])`` slot indices."""
    shifts = np.concatenate(
        (np.zeros(1, dtype=np.int64),
         np.cumsum(counts, dtype=np.int64)[:-1]))
    return np.repeat(starts - shifts, counts) + np.arange(
        total, dtype=np.int64)


def charge_uniform_rounds(net, rounds: int, messages: int, size: int,
                          senders: Sequence[int],
                          targets: Sequence[int]) -> None:
    """Bulk-charge a whole schedule of equal-size, distinct-link rounds.

    ``messages`` is the total over all ``rounds``; every message has
    ``size`` words and rides a link of its own, so the aggregate charge
    (``rounds`` rounds, ``messages·size`` words, per-round link max of
    ``size``, one violation per oversized message) is exactly what
    per-round :func:`~repro.congest.fastpath.exchange_batch` calls
    would accumulate.  Under strict mode an oversized message aborts
    the schedule inside its first round, exactly like the message
    engines: the first round is charged alone and the same
    first-overload error raised over the round-1 ``(sender, target)``
    pairs (the callers pass exactly the links of round 1).
    """
    if rounds <= 0:
        return
    ledger = net.ledger
    if messages and size > net.bandwidth_words:
        if net.strict:
            first = len(senders)
            ledger.charge_round(first, first * size, size, first)
            _raise_first_overload(net, senders, targets, size)
        ledger.charge_rounds(rounds, messages, messages * size, size,
                             messages)
    else:
        ledger.charge_rounds(rounds, messages, messages * size,
                             size if messages else 0, 0)


def _charge_uniform_round(net, messages: int, size: int) -> None:
    """Charge one round of equal-size messages on distinct links.

    Mirrors :func:`~repro.congest.fastpath.exchange_batch` for the BFS
    kernels' schedules (at most one message per directed link): the
    ledger is charged *before* a strict-mode overload raises, exactly
    like the message engines, so post-mortem ledgers stay truthful.
    """
    if messages:
        violations = messages if size > net.bandwidth_words else 0
        net.ledger.charge_round(messages, messages * size, size,
                                violations)
    else:
        net.ledger.charge_round(0, 0, 0)


def _raise_first_overload(net, senders, targets, size: int) -> None:
    """Cold path: raise the same first-overload error the fabric would.

    ``exchange_batch`` reports the overloaded link with the smallest
    receiver-major link id; replicate that ordering over the round's
    (sender, target) pairs.
    """
    topology = net.topology
    best = None
    for u, x in zip(senders, targets):
        lid = topology.link_id(int(u), int(x))
        if best is None or lid < best[0]:
            best = (lid, int(u), int(x))
    assert best is not None
    raise BandwidthExceededError(best[1], best[2], size,
                                 net.bandwidth_words)


# -- pruned hop-BFS (Lemma 4.2) ---------------------------------------------


@_kernel_span("hop_bfs")
def pruned_max_hop_bfs_vector(
    net,
    seeds: Mapping[int, Value],
    hop_limit: int,
    avoid_edges: EdgeSet,
    delay: Optional[Callable[[int], int]],
    record_for: Optional[Sequence[int]],
    name: str,
    run_full_budget: bool,
    sense: str,
    select: str,
    plan=None,
) -> Dict[int, List[Optional[Value]]]:
    """Whole-frontier rounds of the pruned hop-BFS (Lemma 4.2).

    Bit-identical to the message path in ``repro.core.hop_bfs``: same
    tables, same ledger.  Per round: one CSR range expansion over the
    frontier, one delay shift into per-arrival-hop buckets, one
    segmented max (or min) per touched bucket.

    ``plan`` is the prebuilt send-arrays triple the dispatcher's
    prepare hook supplies (built before the phase opens, so a
    pathological delay function overflows before anything is charged
    and the dispatcher falls back); direct callers may omit it.
    """
    np = numpy_or_none()
    n = net.n
    if plan is None:
        direction = "in" if sense == "backward" else "out"
        plan = net.topology.send_arrays(direction, avoid_edges, delay)
    indptr, indices, steps = plan
    # Unit steps (the unweighted Lemma 4.2) collapse the scheduling:
    # everything sent in round d arrives at exact hop d.
    unit_steps = delay is None or bool((steps == 1).all())
    prefer_larger = select == "max"
    reduce_at = np.maximum.at if prefer_larger else np.minimum.at
    sentinel = -_INT64_SAFE if prefer_larger else _INT64_SAFE
    aux_of = {value[0]: value[1] for value in seeds.values()}
    record = (None if record_for is None else set(record_for))
    size = HOP_MESSAGE_WORDS
    overload = net.strict and size > net.bandwidth_words
    empty = np.zeros(0, dtype=np.int64)

    with net.ledger.phase(name):
        fr_v = np.fromiter(seeds.keys(), dtype=np.int64,
                           count=len(seeds))
        fr_idx = np.fromiter((v[0] for v in seeds.values()),
                             dtype=np.int64, count=len(seeds))
        #: arrival hop -> dense best-index array (lazily allocated; at
        #: most max-delay buckets live at once).
        buckets: Dict[int, object] = {}
        settled: List[Tuple[int, object, object]] = []

        for d in range(1, hop_limit + 1):
            if not run_full_budget and not fr_v.size and not buckets:
                break
            if fr_v.size:
                counts = indptr[fr_v + 1] - indptr[fr_v]
                total = int(counts.sum())
            else:
                counts = empty
                total = 0
            _charge_uniform_round(net, total, size)
            if total:
                slots = _expand_ranges(np, indptr[fr_v], counts, total)
                if overload:
                    _raise_first_overload(
                        net, np.repeat(fr_v, counts), indices[slots],
                        size)
                if unit_steps:
                    # Every send of round d settles at hop d (<= the
                    # budget, by the loop bound): one segmented reduce.
                    bucket = buckets.get(d)
                    if bucket is None:
                        bucket = buckets[d] = np.full(
                            n, sentinel, dtype=np.int64)
                    reduce_at(bucket, indices[slots],
                              np.repeat(fr_idx, counts))
                else:
                    # Steps may be an int32 diet export; the hop sum
                    # can exceed int32, so upcast at the gather site.
                    arrive = (d - 1) + steps[slots].astype(
                        np.int64, copy=False)
                    keep = arrive <= hop_limit
                    targets = indices[slots][keep]
                    if targets.size:
                        arrive = arrive[keep]
                        idx_e = np.repeat(fr_idx, counts)[keep]
                        for a in np.unique(arrive).tolist():
                            bucket = buckets.get(a)
                            if bucket is None:
                                bucket = buckets[a] = np.full(
                                    n, sentinel, dtype=np.int64)
                            mask = arrive == a
                            reduce_at(bucket, targets[mask],
                                      idx_e[mask])
            bucket = buckets.pop(d, None)
            if bucket is None:
                fr_v = fr_idx = empty
            else:
                fr_v = np.nonzero(bucket != sentinel)[0]
                fr_idx = bucket[fr_v]
                settled.append((d, fr_v, fr_idx))

        tables: Dict[int, List[Optional[Value]]] = {
            u: [None] * (hop_limit + 1)
            for u in (range(n) if record is None else record)
        }
        for u, value in seeds.items():
            if record is None or u in record:
                tables[u][0] = value
        for d, verts, idxs in settled:
            for u, idx in zip(verts.tolist(), idxs.tolist()):
                if record is None or u in record:
                    tables[u][d] = (idx, aux_of[idx])
        return tables


# -- k-source hop BFS (Lemma 5.5) -------------------------------------------


@_kernel_span("multisource")
def multi_source_hop_bfs_vector(
    net,
    sources: Sequence[int],
    hop_limit: int,
    direction: str,
    avoid_edges: EdgeSet,
    delay: Optional[Callable[[int], int]],
    name: str,
    max_rounds: Optional[int],
    plan=None,
) -> List[List[int]]:
    """Whole-frontier rounds of the k-source hop BFS (Lemma 5.5).

    The per-vertex priority queue of the message path is equivalent to
    "announce the lexicographically smallest (distance, rank) pair not
    yet announced": stale heap entries can never become valid again,
    so the queue's valid entries are exactly the un-announced current
    distances.  The kernel tracks that as a (k, n) un-announced mask
    plus an incrementally-maintained per-vertex minimal key
    ``d·k + rank`` — arrivals lower it via ``np.minimum.at``, and only
    the columns that just announced recompute their minimum.
    """
    np = numpy_or_none()
    n = net.n
    k = len(sources)
    if k == 0:
        with net.ledger.phase(name):
            return []
    if plan is None:
        plan = net.topology.send_arrays(direction, avoid_edges, delay)
    indptr, indices, steps = plan
    size = HOP_MESSAGE_WORDS
    overload = net.strict and size > net.bandwidth_words
    # Valid queue entries all have distance <= hop_limit, so
    # hop_limit + 1 is a safe (non-overflowing) key sentinel.
    key_cap = (hop_limit + 1) * k

    with net.ledger.phase(name):
        dist = np.full((k, n), INF, dtype=np.int64)
        unannounced = np.zeros((k, n), dtype=bool)
        best_key = np.full(n, key_cap, dtype=np.int64)
        for rank, s in enumerate(sources):
            if dist[rank, s] > 0:
                dist[rank, s] = 0
                unannounced[rank, s] = True
                if rank < best_key[s]:  # d == 0: key is the rank
                    best_key[s] = rank
        rank_col = np.arange(k, dtype=np.int64)[:, None]
        dist_flat = dist.reshape(-1)
        unannounced_flat = unannounced.reshape(-1)
        rounds_used = 0

        unit_steps = delay is None or bool((steps == 1).all())

        while True:
            senders = np.nonzero(best_key < key_cap)[0]
            if not senders.size:
                break
            best = best_key[senders]
            d_s = best // k
            rank_s = best % k
            unannounced[rank_s, senders] = False
            # The announced pair left each sender's queue: recompute
            # those columns' minima (everyone else is unchanged).
            best_key[senders] = (
                np.where(unannounced[:, senders], dist[:, senders],
                         hop_limit + 1) * k + rank_col).min(axis=0)

            if unit_steps:
                # The hop-budget prune is per sender, not per edge:
                # filter before the CSR expansion.
                ok = d_s < hop_limit
                send_v = senders[ok]
                counts = indptr[send_v + 1] - indptr[send_v]
                sent = int(counts.sum())
                if sent:
                    slots = _expand_ranges(np, indptr[send_v], counts,
                                           sent)
                    target_e = indices[slots]
                    cand = np.repeat(d_s[ok] + 1, counts)
                    rank_e = np.repeat(rank_s[ok], counts)
            else:
                counts = indptr[senders + 1] - indptr[senders]
                total = int(counts.sum())
                if total:
                    slots = _expand_ranges(np, indptr[senders], counts,
                                           total)
                    cand = np.repeat(d_s, counts) + steps[slots]
                    keep = cand <= hop_limit
                    sent = int(keep.sum())
                    if sent:
                        send_v = np.repeat(senders, counts)[keep]
                        target_e = indices[slots][keep]
                        cand = cand[keep]
                        rank_e = np.repeat(rank_s, counts)[keep]
                else:
                    sent = 0
            _charge_uniform_round(net, sent, size)
            if sent and overload:
                _raise_first_overload(
                    net,
                    np.repeat(send_v, counts) if unit_steps else send_v,
                    target_e, size)
            rounds_used += 1
            if max_rounds is not None and rounds_used > max_rounds:
                break
            if sent:
                flat = rank_e * n + target_e
                before = dist_flat[flat]
                np.minimum.at(dist_flat, flat, cand)
                # A candidate below the pre-round distance re-enters
                # its vertex's queue.  Duplicate (rank, vertex) hits in
                # one round all pass this test when any does, exactly
                # like the sequential heap pushes — the stale larger
                # pushes are unobservable there, and the min-reductions
                # make them unobservable here.
                imp = cand < before
                if imp.any():
                    fi = flat[imp]
                    unannounced_flat[fi] = True
                    np.minimum.at(best_key, target_e[imp],
                                  cand[imp] * k + rank_e[imp])
        return dist.tolist()


# -- pipelined tree broadcast (Lemma 2.4) -----------------------------------


def _uniform_broadcast_schedule(net, tree, item_counts: List[int],
                                count: int, size: int) -> None:
    """Charge the whole FIFO broadcast schedule without routing items.

    When every item has the same word size, the ledger charge is fully
    determined by the *queue-length* dynamics: each active directed
    tree link pops exactly one item per round (``size`` words, its own
    link), so a round charges ``(a, a·size, size, a·[size > B])`` for
    ``a`` active links — no item identity needed.  The queue lengths
    themselves evolve by local conservation (one pop per active link;
    each delivery to ``v`` feeds every link out of ``v`` except the
    reverse one), which this helper iterates as whole-array updates:
    O(rounds) NumPy steps instead of O(items · links) Python steps.

    Total crossings are conserved — every item crosses every undirected
    tree link exactly once — which the final assertion double-checks
    before the bulk charge.
    """
    np = numpy_or_none()
    n = net.n
    nonroot = [v for v in range(n) if v != tree.root]
    if not nonroot or count == 0:
        return
    nr = np.asarray(nonroot, dtype=np.int64)
    par = np.asarray(tree.parent, dtype=np.int64)[nr]
    links = 2 * nr.size
    tail = np.empty(links, dtype=np.int64)
    head = np.empty(links, dtype=np.int64)
    tail[0::2] = nr
    head[0::2] = par
    tail[1::2] = par
    head[1::2] = nr
    rev = np.arange(links, dtype=np.int64)
    rev[0::2] += 1
    rev[1::2] -= 1
    counts_v = np.asarray(item_counts, dtype=np.int64)
    # Every origin pushes all of its items onto each of its tree links.
    queue = counts_v[tail].copy()
    rounds = 0
    total = 0
    while True:
        active = queue > 0
        moved = int(active.sum())
        if not moved:
            break
        rounds += 1
        total += moved
        delivered = np.bincount(head[active], minlength=n)
        queue += delivered[tail] - active[rev] - active
    assert total == count * (n - 1), "broadcast schedule lost items"
    violations = total if size > net.bandwidth_words else 0
    net.ledger.charge_rounds(rounds, total, total * size, size, violations)


@_kernel_span("broadcast")
def broadcast_messages_vector(net, tree, messages, name: str):
    """Frontier-batched rounds of the pipelined broadcast (Lemma 2.4).

    The per-link FIFO discipline is inherently sequential per queue, so
    this kernel vectorizes the *round*, not the queue: items travel as
    dense integer ids with their word size computed once (the message
    engine re-sizes the same payload on every link it crosses), rounds
    charge the ledger in one call, and deliveries apply in the exact
    receiver-major sender-ascending order the exchange engines
    guarantee — which is what makes the queue states, and therefore the
    ledgers, bit-identical.

    Uniform-size batches (the Lemma 5.4 pair broadcast, the Lemma 5.8
    segment summaries) skip the per-item queues entirely: the result is
    schedule-independent (``sorted(all_messages)``) and the ledger
    charge reduces to the queue-length dynamics, handled whole-array by
    :func:`_uniform_broadcast_schedule`.  Mixed sizes — and strict-mode
    overloads, which must abort mid-schedule with the exact first
    offender — keep the per-item path.
    """
    n = net.n
    bandwidth = net.bandwidth_words
    strict = net.strict

    with net.ledger.phase(name):
        all_messages: List[Tuple[int, Tuple]] = []
        sizes: List[int] = []
        item_counts = [0] * n
        for origin in sorted(messages):
            for payload in messages[origin]:
                item = (origin, payload)
                all_messages.append(item)
                sizes.append(words_of(item))
                item_counts[origin] += 1
        if sizes and min(sizes) == max(sizes) and not (
                strict and sizes[0] > bandwidth):
            _uniform_broadcast_schedule(net, tree, item_counts,
                                        len(all_messages), sizes[0])
            return sorted(all_messages)

        tree_nbrs = [tree.tree_neighbors(v) for v in range(n)]
        queues: Dict[Tuple[int, int], deque] = {}
        for v in range(n):
            for u in tree_nbrs[v]:
                queues[(v, u)] = deque()
        active: deque = deque()

        def push(link: Tuple[int, int], item_id: int) -> None:
            queue = queues[link]
            if not queue:
                active.append(link)
            queue.append(item_id)

        for item_id, (origin, _) in enumerate(all_messages):
            for u in tree_nbrs[origin]:
                push((origin, u), item_id)

        while active:
            total_words = 0
            max_link = 0
            violations = 0
            first_overload = None
            #: (receiver, sender, item) triples of this round, applied
            #: after the synchronous cut in receiver-major order.
            deliveries: List[Tuple[int, int, int]] = []
            for _ in range(len(active)):
                link = active.popleft()
                queue = queues[link]
                item_id = queue.popleft()
                if queue:
                    active.append(link)
                deliveries.append((link[1], link[0], item_id))
                size = sizes[item_id]
                total_words += size
                if size > max_link:
                    max_link = size
                if size > bandwidth:
                    violations += 1
            deliveries.sort()
            net.ledger.charge_round(len(deliveries), total_words,
                                    max_link, violations)
            if strict and violations:
                for v, sender, item_id in deliveries:
                    if sizes[item_id] > bandwidth:
                        first_overload = (sender, v, sizes[item_id])
                        break
                assert first_overload is not None
                raise BandwidthExceededError(*first_overload, bandwidth)
            for v, sender, item_id in deliveries:
                for u in tree_nbrs[v]:
                    if u != sender:
                        push((v, u), item_id)
        return sorted(all_messages)


# -- local landmark completion (Lemma 5.6) ----------------------------------


@_kernel_span("landmark_completion")
def landmark_completion_vector(net, closure, from_len, to_len):
    """Vectorized min-plus completion of Lemma 5.6 (local computation).

    Every vertex stitches its hop-bounded landmark distances with the
    broadcast closure; this is ledger-free local work, so the only
    contract is value equality with the scalar loops in
    ``repro.core.landmark_distances``.  All operands are bounded by
    the INF sentinel (2^60), so int64 sums are exact.  ``net`` is
    unused beyond the uniform dispatch signature (and the span join).
    """
    np = numpy_or_none()
    k = len(closure)
    closure_m = np.asarray(closure, dtype=np.int64)
    from_m = np.asarray(from_len, dtype=np.int64)
    to_m = np.asarray(to_len, dtype=np.int64)
    from_out = []
    to_out = []
    for a in range(k):
        # closure[a][a] == 0, so the min-plus row already includes the
        # direct hop-bounded distance the scalar loops seed with.
        best_f = (closure_m[a][:, None] + from_m).min(axis=0)
        best_t = (closure_m[:, a][:, None] + to_m).min(axis=0)
        from_out.append(np.where(best_f >= INF, INF, best_f).tolist())
        to_out.append(np.where(best_t >= INF, INF, best_t).tolist())
    return from_out, to_out


@_kernel_span("pairwise_min_sum")
def pairwise_min_sum_vector(net, m_rows, n_rows) -> List[int]:
    """``out[i] = clamp_inf(min_j m_rows[j][i] + n_rows[j][i])``.

    The Proposition 5.1 finish (ledger-free local computation); operands
    are clamped at INF = 2^60, so int64 sums are exact.  ``net`` is
    unused beyond the uniform dispatch signature (and the span join).
    """
    np = numpy_or_none()
    best = (np.asarray(m_rows, dtype=np.int64)
            + np.asarray(n_rows, dtype=np.int64)).min(axis=0)
    return np.where(best >= INF, INF, best).tolist()


# -- Lemma 2.5 path-chain flood ----------------------------------------------

#: Wire size of the chain tokens: ("chain", origin, hops, dist).
CHAIN_MESSAGE_WORDS = words_of(("chain", 0, 0, 0))

#: Wire size of the Lemma 5.9 shift tokens: ("Nshift", j, value).
N_SHIFT_MESSAGE_WORDS = words_of(("Nshift", 0, 0))


@_kernel_span("chain_flood")
def chain_flood_vector(
    net,
    path: Sequence[int],
    sampled: Sequence[int],
    prefix: Sequence[int],
) -> Dict[int, tuple]:
    """The Lemma 2.5 step-2 flood, computed from gap arithmetic.

    Charges within the caller's open phase (``knowledge(L2.5)``), like
    the inline round loop it replaces.  Tokens advance in lockstep, one
    per path link, so round ``r`` carries one ``CHAIN_MESSAGE_WORDS``
    message per sampled gap of length ≥ r; the records every position
    learns are pure prefix-weight differences.  Sampled positions are
    O(√n) w.h.p., so this is cheap scalar arithmetic — the point is
    skipping the O(max gap) per-token exchange rounds, not NumPy.
    """
    gaps = [b - a for a, b in zip(sampled, sampled[1:])]
    rounds = max(gaps, default=0)
    total = sum(gaps)
    senders = [path[a] for a in sampled[:-1]]
    targets = [path[a + 1] for a in sampled[:-1]]
    charge_uniform_rounds(net, rounds, total, CHAIN_MESSAGE_WORDS,
                           senders, targets)
    from_left: Dict[int, tuple] = {}
    for a, b in zip(sampled, sampled[1:]):
        origin = path[a]
        base = prefix[a]
        for pos in range(a + 1, b + 1):
            from_left[pos] = (origin, pos - a, prefix[pos] - base)
    return from_left


# -- Lemma 4.4 descending DP pipeline (Prop 4.1 Stage 3) ---------------------

#: Wire size of the Stage-3 tokens: ("dp", X value).
DP_MESSAGE_WORDS = words_of(("dp", 0))


@_kernel_span("dp_sweep")
def dp_sweep_vector(
    net,
    path: Sequence[int],
    x_geq: Sequence[Dict[int, int]],
    hop_count: int,
    zeta: int,
    name: str,
) -> List[int]:
    """The ζ−1 descending rounds of Lemma 4.4 as array shifts.

    Every round moves exactly ``hop_count`` two-word tokens, one per
    P-edge, so the whole schedule bulk-charges; the prefix-closed
    recurrence X[≤ i, ≥ i+d−1] = min(X[≤ i−1, ≥ i+d], X[i, ≥ i+d−1])
    is one shifted elementwise minimum per descending d.
    """
    np = numpy_or_none()
    h = hop_count

    def column(d: int):
        return np.fromiter(
            ((x_geq[i].get(i + d, INF) if i + d <= h else INF)
             for i in range(h + 1)),
            dtype=np.int64, count=h + 1)

    with net.ledger.phase(name):
        rounds = max(0, zeta - 1)
        charge_uniform_rounds(net, rounds, rounds * h, DP_MESSAGE_WORDS,
                               path[:h], path[1:h + 1])
        best = column(zeta)
        inf_head = np.full(1, INF, dtype=np.int64)
        for d in range(zeta, 1, -1):
            shifted = np.concatenate((inf_head, best[:-1]))
            best = np.minimum(shifted, column(d - 1))
        return best.tolist()


# -- pipelined path sweeps (Lemmas 4.4/5.7/5.9 engine) -----------------------

#: Wire size of a sweep token: ("sweep", carried int).
SWEEP_MESSAGE_WORDS = words_of(("sweep", 0))


@_kernel_span("path_sweeps")
def run_path_sweeps_vector(net, path, tasks, name: str) -> Dict:
    """Whole-schedule sweeps: returns ``{key: (final, trace)}``.

    The FIFO pipeline of one start-group is closed-form (token j
    crosses link m in round j + 1 + m), so the ledger bulk-charges the
    makespan and total token-hops; values are running minima of each
    task's ``local_min`` table along the visited positions — one
    ``np.minimum.accumulate`` per task.
    """
    np = numpy_or_none()
    with net.ledger.phase(name):
        out: Dict = {}
        groups: Dict[Tuple[int, int], List] = {}
        for task in tasks:
            if task.start == task.end:
                trace = {task.start: task.init} if task.deposit else {}
                out[task.key] = (task.init, trace)
                continue
            direction = 1 if task.end > task.start else -1
            groups.setdefault((task.start, direction), []).append(task)

        rounds = 0
        total = 0
        first_senders: List[int] = []
        first_targets: List[int] = []
        for (start, direction), members in groups.items():
            for j, task in enumerate(members):
                length = abs(task.end - task.start)
                total += length
                if j + length > rounds:
                    rounds = j + length
            first_senders.append(path[start])
            first_targets.append(path[start + direction])
        charge_uniform_rounds(net, rounds, total, SWEEP_MESSAGE_WORDS,
                               first_senders, first_targets)

        tables: Dict[int, object] = {}
        for (start, direction), members in groups.items():
            for task in members:
                table = tables.get(id(task.local_min))
                if table is None:
                    table = tables[id(task.local_min)] = np.asarray(
                        task.local_min, dtype=np.int64)
                if direction == 1:
                    seg = table[start + 1: task.end + 1]
                else:
                    seg = table[task.end: start][::-1]
                values = np.minimum(
                    task.init, np.minimum.accumulate(seg)).tolist()
                trace = {}
                if task.deposit:
                    trace[start] = task.init
                    pos = start
                    for value in values:
                        pos += direction
                        trace[pos] = value
                out[task.key] = (values[-1], trace)
        return out


# -- BFS spanning-tree flood -------------------------------------------------

#: Wire size of the flood control messages: ("offer",) / ("adopt",).
TREE_MESSAGE_WORDS = words_of(("offer",))


@_kernel_span("spanning_tree")
def spanning_tree_flood_vector(net, root: int, name: str):
    """Whole-frontier rounds of the BFS spanning-tree flood.

    Opens phase ``name`` and returns ``(parent, depth)`` lists (``-1``
    marks unreached vertices; the caller raises the disconnection
    error and assembles the tree).  Each level costs two rounds
    exactly like the message path: an offers round (one 1-word message
    per (frontier vertex, unreached neighbor) link) and a confirmation
    round (one per adopted vertex); adoption picks the smallest
    offering neighbor via a segmented minimum.
    """
    np = numpy_or_none()
    n = net.n
    arr = net.topology.arrays()
    indptr, indices = arr.nbr_indptr, arr.nbr_indices
    size = TREE_MESSAGE_WORDS
    overload = net.strict and size > net.bandwidth_words
    with net.ledger.phase(name):
        depth = np.full(n, -1, dtype=np.int64)
        parent = np.full(n, -1, dtype=np.int64)
        depth[root] = 0
        parent[root] = root
        #: per-vertex smallest offering neighbor (n = "no offer yet").
        chosen = np.full(n, n, dtype=np.int64)
        frontier = np.asarray([root], dtype=np.int64)
        level = 0
        while frontier.size:
            counts = indptr[frontier + 1] - indptr[frontier]
            total = int(counts.sum())
            if not total:
                break
            slots = _expand_ranges(np, indptr[frontier], counts, total)
            targets = indices[slots]
            unreached = depth[targets] < 0
            offer_targets = targets[unreached]
            if not offer_targets.size:
                break
            offer_senders = np.repeat(frontier, counts)[unreached]
            _charge_uniform_round(net, int(offer_targets.size), size)
            if overload:
                _raise_first_overload(net, offer_senders, offer_targets,
                                      size)
            np.minimum.at(chosen, offer_targets, offer_senders)
            adopted = np.unique(offer_targets)
            parent[adopted] = chosen[adopted]
            depth[adopted] = level + 1
            _charge_uniform_round(net, int(adopted.size), size)
            frontier = adopted
            level += 1
        return parent.tolist(), depth.tolist()


@_kernel_span("n_shift")
def n_shift_vector(net, path: Sequence[int], rows,
                   hop_count: int) -> List[List[int]]:
    """The Lemma 5.9 one-hop leftward shift, charged in bulk.

    Charges within the caller's open phase (``N-shift``).  Every round
    moves exactly ``hop_count`` three-word tokens one hop leftward and
    the shifted row is already local knowledge, so the whole k-round
    schedule bulk-charges and the result is pure slicing.
    """
    h = hop_count
    k = len(rows)
    charge_uniform_rounds(net, k, k * h, N_SHIFT_MESSAGE_WORDS,
                          path[1:h + 1], path[:h])
    return [list(row[1:h + 1]) for row in rows]
