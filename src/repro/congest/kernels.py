"""NumPy array kernels: whole-frontier CONGEST rounds without messages.

``fabric="vector"`` keeps the batched exchange engine for every
primitive these kernels do not cover, but routes the round loops that
dominate the post-PR-2 profile — the pruned hop-BFS of Lemma 4.2, the
k-source hop BFS of Lemma 5.5, and the pipelined tree broadcast of
Lemma 2.4 — through whole-frontier computation over the frozen CSR
arrays (:meth:`~repro.congest.topology.CSRTopology.arrays` /
:meth:`~repro.congest.topology.CSRTopology.send_arrays`): one
synchronous round becomes a handful of vectorized operations (frontier
gathers via CSR range expansion, delay-shifted scheduling buckets,
segmented max/min via ``np.maximum.at``/``np.minimum.at``) instead of
one Python tuple per (sender, target) pair.

The contract, asserted by ``tests/test_kernel_equivalence.py``, is
**bit-identical observables**: the kernels return exactly the result
tables the message engines return, and charge the
:class:`~repro.congest.metrics.RoundLedger` exactly the same per-phase
rounds, message counts, word totals, per-link maxima, and violation
counts.  The message engines stay the semantic oracles; a kernel that
cannot guarantee parity for a given call (non-functional auxiliary
words, ``record_link_totals`` cut analysis, NumPy absent, key-encoding
overflow) must decline via its ``*_applicable`` predicate so the
dispatchers in :mod:`repro.core.hop_bfs`,
:mod:`repro.congest.multisource`, and :mod:`repro.congest.broadcast`
fall back to the message path.

NumPy is imported lazily (module import never touches it), so the
message engines remain importable — and fully functional — without it.

Ledger parity leans on one structural invariant of the BFS kernels:
in any round, each directed link carries at most one message, and all
messages of the round have the same word size.  The per-round charge
is therefore ``(M messages, M·size words, max_link = size,
violations = M·[size > bandwidth])`` — exactly what
:func:`~repro.congest.fastpath.exchange_batch` computes message by
message.  The broadcast kernel charges per-item sizes the same way the
per-link FIFO engine does.
"""

from __future__ import annotations

from collections import deque
from typing import (
    Callable, Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple,
)

from .errors import BandwidthExceededError
from .words import INF, words_of

Value = Tuple[int, int]
EdgeSet = FrozenSet[Tuple[int, int]]

#: Wire size of the BFS kernel messages.  Both schedules send
#: ``(tag, int, int)`` tuples whose tag is at most 8 characters, so the
#: size is independent of the carried values.
HOP_MESSAGE_WORDS = words_of(("hopv", 0, 0))

#: Magnitude bound for values packed into int64 kernel arrays.
_INT64_SAFE = 1 << 62

_NUMPY = None
_NUMPY_CHECKED = False


def numpy_or_none():
    """NumPy module, or None when unavailable (checked once, lazily)."""
    global _NUMPY, _NUMPY_CHECKED
    if not _NUMPY_CHECKED:
        try:
            import numpy
            _NUMPY = numpy
        except ImportError:  # pragma: no cover - numpy is baked in CI
            _NUMPY = None
        _NUMPY_CHECKED = True
    return _NUMPY


def vector_enabled(net) -> bool:
    """Should ``net`` route kernel-covered primitives through arrays?

    Requires the vector fabric, NumPy, and no per-link total recording
    (the lower-bound cut analysis wants genuine per-message routing).
    """
    return (getattr(net, "fabric", None) == "vector"
            and not net.record_link_totals
            and numpy_or_none() is not None)


def _fits_int64(value: int) -> bool:
    return -_INT64_SAFE < value < _INT64_SAFE


def _expand_ranges(np, starts, counts, total: int):
    """Concatenated ``[starts[i], starts[i]+counts[i])`` slot indices."""
    shifts = np.concatenate(
        (np.zeros(1, dtype=np.int64),
         np.cumsum(counts, dtype=np.int64)[:-1]))
    return np.repeat(starts - shifts, counts) + np.arange(
        total, dtype=np.int64)


def _charge_uniform_round(net, messages: int, size: int) -> None:
    """Charge one round of equal-size messages on distinct links.

    Mirrors :func:`~repro.congest.fastpath.exchange_batch` for the BFS
    kernels' schedules (at most one message per directed link): the
    ledger is charged *before* a strict-mode overload raises, exactly
    like the message engines, so post-mortem ledgers stay truthful.
    """
    if messages:
        violations = messages if size > net.bandwidth_words else 0
        net.ledger.charge_round(messages, messages * size, size,
                                violations)
    else:
        net.ledger.charge_round(0, 0, 0)


def _raise_first_overload(net, senders, targets, size: int) -> None:
    """Cold path: raise the same first-overload error the fabric would.

    ``exchange_batch`` reports the overloaded link with the smallest
    receiver-major link id; replicate that ordering over the round's
    (sender, target) pairs.
    """
    topology = net.topology
    best = None
    for u, x in zip(senders, targets):
        lid = topology.link_id(int(u), int(x))
        if best is None or lid < best[0]:
            best = (lid, int(u), int(x))
    assert best is not None
    raise BandwidthExceededError(best[1], best[2], size,
                                 net.bandwidth_words)


# -- pruned hop-BFS (Lemma 4.2) ---------------------------------------------


def hop_bfs_vector_applicable(net, seeds: Mapping[int, Value]) -> bool:
    """Can the pruned hop-BFS run on the array kernel for ``seeds``?

    Beyond :func:`vector_enabled`, the kernel tracks frontiers by path
    index alone, recovering the auxiliary word through an index->aux
    map at recording time; that is only sound under the documented
    contract that the auxiliary word is a function of the index.  A
    seed set violating it (or carrying non-int64-able values) falls
    back to the message path.
    """
    if not vector_enabled(net):
        return False
    aux_of: Dict[int, int] = {}
    for u, value in seeds.items():
        idx, aux = value
        if not isinstance(idx, int) or not isinstance(aux, int):
            return False
        if not (_fits_int64(idx) and _fits_int64(aux)
                and 0 <= u < net.n):
            return False
        if aux_of.setdefault(idx, aux) != aux:
            return False
    return True


def pruned_max_hop_bfs_vector(
    net,
    seeds: Mapping[int, Value],
    hop_limit: int,
    avoid_edges: EdgeSet,
    delay: Optional[Callable[[int], int]],
    record_for: Optional[Sequence[int]],
    name: str,
    run_full_budget: bool,
    sense: str,
    select: str,
) -> Dict[int, List[Optional[Value]]]:
    """Whole-frontier rounds of the pruned hop-BFS (Lemma 4.2).

    Bit-identical to the message path in ``repro.core.hop_bfs``: same
    tables, same ledger.  Per round: one CSR range expansion over the
    frontier, one delay shift into per-arrival-hop buckets, one
    segmented max (or min) per touched bucket.
    """
    np = numpy_or_none()
    n = net.n
    direction = "in" if sense == "backward" else "out"
    # Build the send plan before opening the phase: a pathological
    # delay function overflows here, before anything is charged, so
    # the dispatcher can still fall back to the message path.
    indptr, indices, steps = net.topology.send_arrays(
        direction, avoid_edges, delay)
    # Unit steps (the unweighted Lemma 4.2) collapse the scheduling:
    # everything sent in round d arrives at exact hop d.
    unit_steps = delay is None or bool((steps == 1).all())
    prefer_larger = select == "max"
    reduce_at = np.maximum.at if prefer_larger else np.minimum.at
    sentinel = -_INT64_SAFE if prefer_larger else _INT64_SAFE
    aux_of = {value[0]: value[1] for value in seeds.values()}
    record = (None if record_for is None else set(record_for))
    size = HOP_MESSAGE_WORDS
    overload = net.strict and size > net.bandwidth_words
    empty = np.zeros(0, dtype=np.int64)

    with net.ledger.phase(name):
        fr_v = np.fromiter(seeds.keys(), dtype=np.int64,
                           count=len(seeds))
        fr_idx = np.fromiter((v[0] for v in seeds.values()),
                             dtype=np.int64, count=len(seeds))
        #: arrival hop -> dense best-index array (lazily allocated; at
        #: most max-delay buckets live at once).
        buckets: Dict[int, object] = {}
        settled: List[Tuple[int, object, object]] = []

        for d in range(1, hop_limit + 1):
            if not run_full_budget and not fr_v.size and not buckets:
                break
            if fr_v.size:
                counts = indptr[fr_v + 1] - indptr[fr_v]
                total = int(counts.sum())
            else:
                counts = empty
                total = 0
            _charge_uniform_round(net, total, size)
            if total:
                slots = _expand_ranges(np, indptr[fr_v], counts, total)
                if overload:
                    _raise_first_overload(
                        net, np.repeat(fr_v, counts), indices[slots],
                        size)
                if unit_steps:
                    # Every send of round d settles at hop d (<= the
                    # budget, by the loop bound): one segmented reduce.
                    bucket = buckets.get(d)
                    if bucket is None:
                        bucket = buckets[d] = np.full(
                            n, sentinel, dtype=np.int64)
                    reduce_at(bucket, indices[slots],
                              np.repeat(fr_idx, counts))
                else:
                    arrive = (d - 1) + steps[slots]
                    keep = arrive <= hop_limit
                    targets = indices[slots][keep]
                    if targets.size:
                        arrive = arrive[keep]
                        idx_e = np.repeat(fr_idx, counts)[keep]
                        for a in np.unique(arrive).tolist():
                            bucket = buckets.get(a)
                            if bucket is None:
                                bucket = buckets[a] = np.full(
                                    n, sentinel, dtype=np.int64)
                            mask = arrive == a
                            reduce_at(bucket, targets[mask],
                                      idx_e[mask])
            bucket = buckets.pop(d, None)
            if bucket is None:
                fr_v = fr_idx = empty
            else:
                fr_v = np.nonzero(bucket != sentinel)[0]
                fr_idx = bucket[fr_v]
                settled.append((d, fr_v, fr_idx))

        tables: Dict[int, List[Optional[Value]]] = {
            u: [None] * (hop_limit + 1)
            for u in (range(n) if record is None else record)
        }
        for u, value in seeds.items():
            if record is None or u in record:
                tables[u][0] = value
        for d, verts, idxs in settled:
            for u, idx in zip(verts.tolist(), idxs.tolist()):
                if record is None or u in record:
                    tables[u][d] = (idx, aux_of[idx])
        return tables


# -- k-source hop BFS (Lemma 5.5) -------------------------------------------


def multisource_vector_applicable(net, sources: Sequence[int],
                                  hop_limit: int) -> bool:
    """Can the k-source BFS run on the array kernel?

    The kernel encodes the per-vertex priority schedule as lexical
    keys ``d·k + rank``; decline when that encoding could overflow
    int64 (absurd hop limits) or when a source is out of range (the
    message path's error behavior should win there).
    """
    if not vector_enabled(net):
        return False
    k = len(sources)
    if hop_limit < 0 or (hop_limit + 2) * max(k, 1) >= _INT64_SAFE:
        return False
    return all(isinstance(s, int) and 0 <= s < net.n for s in sources)


def multi_source_hop_bfs_vector(
    net,
    sources: Sequence[int],
    hop_limit: int,
    direction: str,
    avoid_edges: EdgeSet,
    delay: Optional[Callable[[int], int]],
    name: str,
    max_rounds: Optional[int],
) -> List[List[int]]:
    """Whole-frontier rounds of the k-source hop BFS (Lemma 5.5).

    The per-vertex priority queue of the message path is equivalent to
    "announce the lexicographically smallest (distance, rank) pair not
    yet announced": stale heap entries can never become valid again,
    so the queue's valid entries are exactly the un-announced current
    distances.  The kernel tracks that as a (k, n) un-announced mask
    plus an incrementally-maintained per-vertex minimal key
    ``d·k + rank`` — arrivals lower it via ``np.minimum.at``, and only
    the columns that just announced recompute their minimum.
    """
    np = numpy_or_none()
    n = net.n
    k = len(sources)
    if k == 0:
        with net.ledger.phase(name):
            return []
    indptr, indices, steps = net.topology.send_arrays(
        direction, avoid_edges, delay)
    size = HOP_MESSAGE_WORDS
    overload = net.strict and size > net.bandwidth_words
    # Valid queue entries all have distance <= hop_limit, so
    # hop_limit + 1 is a safe (non-overflowing) key sentinel.
    key_cap = (hop_limit + 1) * k

    with net.ledger.phase(name):
        dist = np.full((k, n), INF, dtype=np.int64)
        unannounced = np.zeros((k, n), dtype=bool)
        best_key = np.full(n, key_cap, dtype=np.int64)
        for rank, s in enumerate(sources):
            if dist[rank, s] > 0:
                dist[rank, s] = 0
                unannounced[rank, s] = True
                if rank < best_key[s]:  # d == 0: key is the rank
                    best_key[s] = rank
        rank_col = np.arange(k, dtype=np.int64)[:, None]
        dist_flat = dist.reshape(-1)
        unannounced_flat = unannounced.reshape(-1)
        rounds_used = 0

        unit_steps = delay is None or bool((steps == 1).all())

        while True:
            senders = np.nonzero(best_key < key_cap)[0]
            if not senders.size:
                break
            best = best_key[senders]
            d_s = best // k
            rank_s = best % k
            unannounced[rank_s, senders] = False
            # The announced pair left each sender's queue: recompute
            # those columns' minima (everyone else is unchanged).
            best_key[senders] = (
                np.where(unannounced[:, senders], dist[:, senders],
                         hop_limit + 1) * k + rank_col).min(axis=0)

            if unit_steps:
                # The hop-budget prune is per sender, not per edge:
                # filter before the CSR expansion.
                ok = d_s < hop_limit
                send_v = senders[ok]
                counts = indptr[send_v + 1] - indptr[send_v]
                sent = int(counts.sum())
                if sent:
                    slots = _expand_ranges(np, indptr[send_v], counts,
                                           sent)
                    target_e = indices[slots]
                    cand = np.repeat(d_s[ok] + 1, counts)
                    rank_e = np.repeat(rank_s[ok], counts)
            else:
                counts = indptr[senders + 1] - indptr[senders]
                total = int(counts.sum())
                if total:
                    slots = _expand_ranges(np, indptr[senders], counts,
                                           total)
                    cand = np.repeat(d_s, counts) + steps[slots]
                    keep = cand <= hop_limit
                    sent = int(keep.sum())
                    if sent:
                        send_v = np.repeat(senders, counts)[keep]
                        target_e = indices[slots][keep]
                        cand = cand[keep]
                        rank_e = np.repeat(rank_s, counts)[keep]
                else:
                    sent = 0
            _charge_uniform_round(net, sent, size)
            if sent and overload:
                _raise_first_overload(
                    net,
                    np.repeat(send_v, counts) if unit_steps else send_v,
                    target_e, size)
            rounds_used += 1
            if max_rounds is not None and rounds_used > max_rounds:
                break
            if sent:
                flat = rank_e * n + target_e
                before = dist_flat[flat]
                np.minimum.at(dist_flat, flat, cand)
                # A candidate below the pre-round distance re-enters
                # its vertex's queue.  Duplicate (rank, vertex) hits in
                # one round all pass this test when any does, exactly
                # like the sequential heap pushes — the stale larger
                # pushes are unobservable there, and the min-reductions
                # make them unobservable here.
                imp = cand < before
                if imp.any():
                    fi = flat[imp]
                    unannounced_flat[fi] = True
                    np.minimum.at(best_key, target_e[imp],
                                  cand[imp] * k + rank_e[imp])
        return dist.tolist()


# -- pipelined tree broadcast (Lemma 2.4) -----------------------------------


def broadcast_vector_applicable(net) -> bool:
    """Broadcast kernel gate (same conditions as :func:`vector_enabled`)."""
    return vector_enabled(net)


def broadcast_messages_vector(net, tree, messages, name: str):
    """Frontier-batched rounds of the pipelined broadcast (Lemma 2.4).

    The per-link FIFO discipline is inherently sequential per queue, so
    this kernel vectorizes the *round*, not the queue: items travel as
    dense integer ids with their word size computed once (the message
    engine re-sizes the same payload on every link it crosses), rounds
    charge the ledger in one call, and deliveries apply in the exact
    receiver-major sender-ascending order the exchange engines
    guarantee — which is what makes the queue states, and therefore the
    ledgers, bit-identical.
    """
    n = net.n
    bandwidth = net.bandwidth_words
    strict = net.strict
    tree_nbrs = [tree.tree_neighbors(v) for v in range(n)]

    with net.ledger.phase(name):
        queues: Dict[Tuple[int, int], deque] = {}
        for v in range(n):
            for u in tree_nbrs[v]:
                queues[(v, u)] = deque()
        active: deque = deque()

        def push(link: Tuple[int, int], item_id: int) -> None:
            queue = queues[link]
            if not queue:
                active.append(link)
            queue.append(item_id)

        all_messages: List[Tuple[int, Tuple]] = []
        sizes: List[int] = []
        for origin in sorted(messages):
            for payload in messages[origin]:
                item = (origin, payload)
                item_id = len(all_messages)
                all_messages.append(item)
                sizes.append(words_of(item))
                for u in tree_nbrs[origin]:
                    push((origin, u), item_id)

        while active:
            total_words = 0
            max_link = 0
            violations = 0
            first_overload = None
            #: (receiver, sender, item) triples of this round, applied
            #: after the synchronous cut in receiver-major order.
            deliveries: List[Tuple[int, int, int]] = []
            for _ in range(len(active)):
                link = active.popleft()
                queue = queues[link]
                item_id = queue.popleft()
                if queue:
                    active.append(link)
                deliveries.append((link[1], link[0], item_id))
                size = sizes[item_id]
                total_words += size
                if size > max_link:
                    max_link = size
                if size > bandwidth:
                    violations += 1
            deliveries.sort()
            net.ledger.charge_round(len(deliveries), total_words,
                                    max_link, violations)
            if strict and violations:
                for v, sender, item_id in deliveries:
                    if sizes[item_id] > bandwidth:
                        first_overload = (sender, v, sizes[item_id])
                        break
                assert first_overload is not None
                raise BandwidthExceededError(*first_overload, bandwidth)
            for v, sender, item_id in deliveries:
                for u in tree_nbrs[v]:
                    if u != sender:
                        push((v, u), item_id)
        return sorted(all_messages)


# -- local landmark completion (Lemma 5.6) ----------------------------------


def landmark_completion_vector(closure, from_len, to_len):
    """Vectorized min-plus completion of Lemma 5.6 (local computation).

    Every vertex stitches its hop-bounded landmark distances with the
    broadcast closure; this is ledger-free local work, so the only
    contract is value equality with the scalar loops in
    ``repro.core.landmark_distances``.  All operands are bounded by
    the INF sentinel (2^60), so int64 sums are exact.
    """
    np = numpy_or_none()
    k = len(closure)
    closure_m = np.asarray(closure, dtype=np.int64)
    from_m = np.asarray(from_len, dtype=np.int64)
    to_m = np.asarray(to_len, dtype=np.int64)
    from_out = []
    to_out = []
    for a in range(k):
        # closure[a][a] == 0, so the min-plus row already includes the
        # direct hop-bounded distance the scalar loops seed with.
        best_f = (closure_m[a][:, None] + from_m).min(axis=0)
        best_t = (closure_m[:, a][:, None] + to_m).min(axis=0)
        from_out.append(np.where(best_f >= INF, INF, best_f).tolist())
        to_out.append(np.where(best_t >= INF, INF, best_t).tolist())
    return from_out, to_out
