"""k-source h-hop BFS (Lemma 5.5, after Lenzen–Patt-Shamir–Peleg [LPP19]).

Every vertex learns its hop distance (up to ``hop_limit``) from each of k
sources, in O(k + h) rounds, using the classical priority schedule: each
vertex announces at most one (distance, source) pair per round, smallest
pair first.  The standard argument shows the pair ranked r-th in
lexicographic order is never delayed more than r rounds behind its BFS
schedule, giving the O(k + h) makespan; the primitive benchmark measures
the constant.

Also provides the weighted-delay variant used to simulate BFS on the
rounding graphs G_d of Section 7: an edge of weight w behaves like a path
of ``delay(w)`` unit edges, so a wave crossing it advances ``delay(w)``
hops at once.  Distances are carried explicitly in messages, so the
schedule only affects *when* values settle, never their correctness; the
run continues to quiescence.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

from .dispatch import dispatch
from .network import CongestNetwork
from .topology import downstream_step_tables
from .words import INF

EdgeSet = FrozenSet[Tuple[int, int]]
_EMPTY: EdgeSet = frozenset()


def multi_source_hop_bfs(
    net: CongestNetwork,
    sources: Sequence[int],
    hop_limit: int,
    direction: str = "out",
    avoid_edges: EdgeSet = _EMPTY,
    delay: Optional[Callable[[int], int]] = None,
    phase: Optional[str] = None,
    max_rounds: Optional[int] = None,
) -> List[List[int]]:
    """Hop-bounded BFS from ``k`` sources under the CONGEST bandwidth.

    Parameters
    ----------
    sources:
        The k source vertices; ranks follow this order.
    hop_limit:
        Distances strictly beyond this are not propagated.
    direction:
        ``"out"``: distance source→v along edges.  ``"in"``: distance
        v→source (BFS in the reverse graph, as Lemma 5.6 requires).
    delay:
        Optional ``delay(weight) -> hops`` function; when given, crossing
        an edge advances that many hops (BFS on the subdivided graph G_d).
        ``None`` means unit hops regardless of weights.
    max_rounds:
        Safety valve; the schedule is run to quiescence otherwise.

    Returns
    -------
    ``dist`` with ``dist[rank][v]`` = hop distance from ``sources[rank]``
    to v (or from v to the source for ``direction="in"``), INF beyond
    ``hop_limit``.
    """
    name = phase if phase is not None else "k-source-bfs"
    return dispatch(
        "multisource", net, sources=sources, hop_limit=hop_limit,
        direction=direction, avoid_edges=avoid_edges, delay=delay,
        name=name, max_rounds=max_rounds)


def _multisource_message(
    net: CongestNetwork,
    sources: Sequence[int],
    hop_limit: int,
    direction: str,
    avoid_edges: EdgeSet,
    delay: Optional[Callable[[int], int]],
    name: str,
    max_rounds: Optional[int],
) -> List[List[int]]:
    """The priority-schedule round loop (the registry's fallback lane)."""
    k = len(sources)
    n = net.n
    downstream, step_in = downstream_step_tables(
        net.topology, direction, avoid_edges, delay)
    exchange = net.exchange
    heappush = heapq.heappush
    heappop = heapq.heappop
    with net.ledger.phase(name):
        dist: List[List[int]] = [[INF] * n for _ in range(k)]
        # Per-vertex priority queue of announcements not yet sent.
        pending: List[List[Tuple[int, int]]] = [[] for _ in range(n)]
        for rank, s in enumerate(sources):
            if dist[rank][s] > 0:
                dist[rank][s] = 0
                heappush(pending[s], (0, rank))

        rounds_used = 0
        while True:
            outbox: Dict[int, List[Tuple[int, object]]] = {}
            senders: List[Tuple[int, int, int]] = []
            for u in range(n):
                queue = pending[u]
                # Pop until a still-current announcement is found.
                while queue:
                    d, rank = heappop(queue)
                    if dist[rank][u] == d:
                        senders.append((u, rank, d))
                        break
            if not senders:
                break
            for u, rank, d in senders:
                # The sender locally prunes announcements that would
                # exceed the hop budget; it cannot (and does not)
                # consult the receiver's state.
                sends = [(v, ("hop", rank, d)) for v, step in downstream[u]
                         if d + step <= hop_limit]
                if sends:
                    outbox[u] = sends
            if outbox:
                inbox = exchange(outbox)
            else:
                net.idle_round()
                inbox = {}
            rounds_used += 1
            if max_rounds is not None and rounds_used > max_rounds:
                break
            for v, arrivals in inbox.items():
                steps = step_in[v]
                row_pending = pending[v]
                for sender, (_, rank, d) in arrivals:
                    candidate = d + steps[sender]
                    if candidate <= hop_limit and candidate < dist[rank][v]:
                        dist[rank][v] = candidate
                        heappush(row_pending, (candidate, rank))
        return dist
