"""Distributed breadth-first search primitives.

All functions here move real messages through
:meth:`~repro.congest.network.CongestNetwork.exchange`, so their round
cost is measured by the network's ledger, exactly as the CONGEST model
charges it.

Conventions
-----------
* ``direction="out"`` computes distances *from* the source following edge
  directions; ``direction="in"`` computes distances from every vertex *to*
  the source (a BFS along reversed edges, as used pervasively by the
  paper, e.g. the backward hop-constrained BFS of Lemma 4.2).
* ``avoid_edges`` removes directed edges from consideration (the paper's
  ``G \\ P`` and ``G \\ e`` graphs) while the communication links remain —
  a failed or excluded edge can still carry messages in CONGEST.
* Unreachable vertices get distance :data:`~repro.congest.words.INF`.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

from .network import CongestNetwork
from .words import INF

EdgeSet = FrozenSet[Tuple[int, int]]

_EMPTY: EdgeSet = frozenset()


def _next_hops(net: CongestNetwork, u: int, direction: str,
               avoid_edges: EdgeSet) -> List[int]:
    """Vertices one hop *downstream* of ``u`` for the given direction.

    For ``direction="out"`` these are out-neighbors (BFS expands forward);
    for ``direction="in"`` these are in-neighbors (BFS expands backward).
    """
    if direction == "out":
        return [v for v in net.out_neighbors(u)
                if (u, v) not in avoid_edges]
    if direction == "in":
        return [x for x in net.in_neighbors(u)
                if (x, u) not in avoid_edges]
    raise ValueError(f"unknown direction {direction!r}")


def bfs_distances(
    net: CongestNetwork,
    source: int,
    direction: str = "out",
    hop_limit: Optional[int] = None,
    avoid_edges: EdgeSet = _EMPTY,
    phase: Optional[str] = None,
) -> List[int]:
    """Single-source BFS; returns the hop-distance of every vertex.

    Rounds consumed: the depth explored (≤ ``hop_limit`` when given).
    One word per link per round — congestion-free by construction.
    """
    name = phase if phase is not None else f"bfs[{source}]"
    with net.ledger.phase(name):
        dist = [INF] * net.n
        dist[source] = 0
        frontier = [source]
        depth = 0
        while frontier:
            if hop_limit is not None and depth >= hop_limit:
                break
            outbox = {}
            for u in frontier:
                targets = [(v, dist[u]) for v in
                           _next_hops(net, u, direction, avoid_edges)]
                if targets:
                    outbox[u] = targets
            if not outbox:
                break
            inbox = net.exchange(outbox)
            depth += 1
            frontier = []
            for v, arrivals in inbox.items():
                if dist[v] >= INF:
                    dist[v] = depth
                    frontier.append(v)
        return dist


def bfs_tree(
    net: CongestNetwork,
    source: int,
    direction: str = "out",
    hop_limit: Optional[int] = None,
    avoid_edges: EdgeSet = _EMPTY,
    phase: Optional[str] = None,
) -> Tuple[List[int], List[int]]:
    """BFS returning ``(dist, parent)``; parent[source] == source.

    Ties are broken toward the smallest sender identifier, matching the
    deterministic tie-breaking the paper's deterministic subroutines need.
    """
    name = phase if phase is not None else f"bfs-tree[{source}]"
    with net.ledger.phase(name):
        dist = [INF] * net.n
        parent = [-1] * net.n
        dist[source] = 0
        parent[source] = source
        frontier = [source]
        depth = 0
        while frontier:
            if hop_limit is not None and depth >= hop_limit:
                break
            outbox = {}
            for u in frontier:
                targets = [(v, 0) for v in
                           _next_hops(net, u, direction, avoid_edges)]
                if targets:
                    outbox[u] = targets
            if not outbox:
                break
            inbox = net.exchange(outbox)
            depth += 1
            frontier = []
            for v in sorted(inbox):
                if dist[v] >= INF:
                    dist[v] = depth
                    parent[v] = min(s for s, _ in inbox[v])
                    frontier.append(v)
        return dist, parent


def eccentricity_via_bfs(net: CongestNetwork, source: int) -> int:
    """Depth of the undirected BFS from ``source`` (charged to the ledger).

    Used by algorithms that need to know when a flood has quiesced; the
    undirected support is explored, mirroring a beacon flood.
    """
    with net.ledger.phase(f"flood[{source}]"):
        dist = [INF] * net.n
        dist[source] = 0
        frontier = [source]
        depth = 0
        while frontier:
            outbox = {}
            for u in frontier:
                targets = [(v, 0) for v in net.neighbors(u)
                           if dist[v] >= INF]
                if targets:
                    outbox[u] = targets
            if not outbox:
                break
            inbox = net.exchange(outbox)
            depth += 1
            frontier = []
            for v in inbox:
                if dist[v] >= INF:
                    dist[v] = depth
                    frontier.append(v)
        return depth


def sssp_distances_weighted(
    net: CongestNetwork,
    source: int,
    direction: str = "out",
    avoid_edges: EdgeSet = _EMPTY,
    distance_limit: Optional[int] = None,
    phase: Optional[str] = None,
) -> List[int]:
    """Exact weighted SSSP by time-expanded BFS (one weight unit per round).

    A message crossing an edge of weight ``w`` is delayed ``w`` rounds, so
    after ``r`` rounds every vertex at weighted distance ≤ r is settled.
    This is the folklore O(weighted-diameter)-round exact algorithm; it is
    used by baselines and oracles, not by the paper's solvers (which use
    rounding, Section 7).

    Rounds consumed: the largest finite distance found (≤ distance_limit).
    """
    name = phase if phase is not None else f"sssp[{source}]"
    with net.ledger.phase(name):
        dist = [INF] * net.n
        dist[source] = 0
        # pending[r] = list of (vertex, dist) settling messages that become
        # visible to neighbors at round r.
        pending: Dict[int, List[int]] = {0: [source]}
        clock = 0
        horizon = 0
        while pending:
            if distance_limit is not None and clock > distance_limit:
                break
            settlers = pending.pop(clock, [])
            outbox = {}
            for u in settlers:
                if dist[u] != clock:
                    continue  # superseded by a shorter path
                sends = []
                for v in _next_hops(net, u, direction, avoid_edges):
                    w = (net.weight(u, v) if direction == "out"
                         else net.weight(v, u))
                    if dist[u] + w < dist[v]:
                        sends.append((v, (dist[u], w)))
                if sends:
                    outbox[u] = sends
            if outbox:
                inbox = net.exchange(outbox)
            else:
                inbox = {}
                if pending:
                    net.idle_round()
            clock += 1
            for v, arrivals in inbox.items():
                for _, (du, w) in arrivals:
                    candidate = du + w
                    if candidate < dist[v]:
                        dist[v] = candidate
                        arrival_round = candidate
                        pending.setdefault(arrival_round, []).append(v)
                        horizon = max(horizon, arrival_round)
            if not pending and clock <= horizon:
                break
        return dist
