"""Distributed breadth-first search primitives.

All functions here move real messages through
:meth:`~repro.congest.network.CongestNetwork.exchange`, so their round
cost is measured by the network's ledger, exactly as the CONGEST model
charges it.

Conventions
-----------
* ``direction="out"`` computes distances *from* the source following edge
  directions; ``direction="in"`` computes distances from every vertex *to*
  the source (a BFS along reversed edges, as used pervasively by the
  paper, e.g. the backward hop-constrained BFS of Lemma 4.2).
* ``avoid_edges`` removes directed edges from consideration (the paper's
  ``G \\ P`` and ``G \\ e`` graphs) while the communication links remain —
  a failed or excluded edge can still carry messages in CONGEST.
* Unreachable vertices get distance :data:`~repro.congest.words.INF`.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

from .network import CongestNetwork
from .words import INF

EdgeSet = FrozenSet[Tuple[int, int]]

_EMPTY: EdgeSet = frozenset()


def _downstream_lists(net: CongestNetwork, direction: str,
                      avoid_edges: EdgeSet) -> List[List[int]]:
    """Per-vertex downstream adjacency, filtered once for the whole run.

    ``avoid_edges`` is fixed for the duration of a BFS, so hoisting the
    membership tests out of the round loop makes outbox construction a
    straight scan over prebuilt lists (batch-friendly: the fabric sees
    exactly the same messages, built with zero per-round set probes).
    """
    topo = net.topology
    if direction == "out":
        if not avoid_edges:
            return topo.out_lists
        return [[v for v in targets if (u, v) not in avoid_edges]
                for u, targets in enumerate(topo.out_lists)]
    if direction == "in":
        if not avoid_edges:
            return topo.in_lists
        return [[x for x in sources if (x, u) not in avoid_edges]
                for u, sources in enumerate(topo.in_lists)]
    raise ValueError(f"unknown direction {direction!r}")


def bfs_distances(
    net: CongestNetwork,
    source: int,
    direction: str = "out",
    hop_limit: Optional[int] = None,
    avoid_edges: EdgeSet = _EMPTY,
    phase: Optional[str] = None,
) -> List[int]:
    """Single-source BFS; returns the hop-distance of every vertex.

    Rounds consumed: the depth explored (≤ ``hop_limit`` when given).
    One word per link per round — congestion-free by construction.
    """
    name = phase if phase is not None else f"bfs[{source}]"
    downstream = _downstream_lists(net, direction, avoid_edges)
    exchange = net.exchange
    with net.ledger.phase(name):
        dist = [INF] * net.n
        dist[source] = 0
        frontier = [source]
        depth = 0
        while frontier:
            if hop_limit is not None and depth >= hop_limit:
                break
            outbox = {}
            for u in frontier:
                hops = downstream[u]
                if hops:
                    du = dist[u]
                    outbox[u] = [(v, du) for v in hops]
            if not outbox:
                break
            inbox = exchange(outbox)
            depth += 1
            frontier = []
            for v in inbox:
                if dist[v] >= INF:
                    dist[v] = depth
                    frontier.append(v)
        return dist


def bfs_tree(
    net: CongestNetwork,
    source: int,
    direction: str = "out",
    hop_limit: Optional[int] = None,
    avoid_edges: EdgeSet = _EMPTY,
    phase: Optional[str] = None,
) -> Tuple[List[int], List[int]]:
    """BFS returning ``(dist, parent)``; parent[source] == source.

    Ties are broken toward the smallest sender identifier, matching the
    deterministic tie-breaking the paper's deterministic subroutines need.
    """
    name = phase if phase is not None else f"bfs-tree[{source}]"
    downstream = _downstream_lists(net, direction, avoid_edges)
    exchange = net.exchange
    with net.ledger.phase(name):
        dist = [INF] * net.n
        parent = [-1] * net.n
        dist[source] = 0
        parent[source] = source
        frontier = [source]
        depth = 0
        while frontier:
            if hop_limit is not None and depth >= hop_limit:
                break
            outbox = {}
            for u in frontier:
                hops = downstream[u]
                if hops:
                    outbox[u] = [(v, 0) for v in hops]
            if not outbox:
                break
            inbox = exchange(outbox)
            depth += 1
            frontier = []
            for v in sorted(inbox):
                if dist[v] >= INF:
                    dist[v] = depth
                    parent[v] = min(s for s, _ in inbox[v])
                    frontier.append(v)
        return dist, parent


def eccentricity_via_bfs(net: CongestNetwork, source: int) -> int:
    """Depth of the undirected BFS from ``source`` (charged to the ledger).

    Used by algorithms that need to know when a flood has quiesced; the
    undirected support is explored, mirroring a beacon flood.
    """
    nbr_lists = net.topology.nbr_lists
    exchange = net.exchange
    with net.ledger.phase(f"flood[{source}]"):
        dist = [INF] * net.n
        dist[source] = 0
        frontier = [source]
        depth = 0
        while frontier:
            outbox = {}
            for u in frontier:
                targets = [(v, 0) for v in nbr_lists[u]
                           if dist[v] >= INF]
                if targets:
                    outbox[u] = targets
            if not outbox:
                break
            inbox = exchange(outbox)
            depth += 1
            frontier = []
            for v in inbox:
                if dist[v] >= INF:
                    dist[v] = depth
                    frontier.append(v)
        return depth


def sssp_distances_weighted(
    net: CongestNetwork,
    source: int,
    direction: str = "out",
    avoid_edges: EdgeSet = _EMPTY,
    distance_limit: Optional[int] = None,
    phase: Optional[str] = None,
) -> List[int]:
    """Exact weighted SSSP by time-expanded BFS (one weight unit per round).

    A message crossing an edge of weight ``w`` is delayed ``w`` rounds, so
    after ``r`` rounds every vertex at weighted distance ≤ r is settled.
    This is the folklore O(weighted-diameter)-round exact algorithm; it is
    used by baselines and oracles, not by the paper's solvers (which use
    rounding, Section 7).

    Rounds consumed: the largest finite distance found (≤ distance_limit).
    """
    name = phase if phase is not None else f"sssp[{source}]"
    weight = net.weight
    downstream = [
        [(v, weight(u, v) if direction == "out" else weight(v, u))
         for v in hops]
        for u, hops in enumerate(
            _downstream_lists(net, direction, avoid_edges))
    ]
    exchange = net.exchange
    with net.ledger.phase(name):
        dist = [INF] * net.n
        dist[source] = 0
        # pending[r] = list of (vertex, dist) settling messages that become
        # visible to neighbors at round r.
        pending: Dict[int, List[int]] = {0: [source]}
        clock = 0
        horizon = 0
        while pending:
            if distance_limit is not None and clock > distance_limit:
                break
            settlers = pending.pop(clock, [])
            outbox = {}
            for u in settlers:
                du = dist[u]
                if du != clock:
                    continue  # superseded by a shorter path
                sends = [(v, (du, w)) for v, w in downstream[u]
                         if du + w < dist[v]]
                if sends:
                    outbox[u] = sends
            if outbox:
                inbox = exchange(outbox)
            else:
                inbox = {}
                if pending:
                    net.idle_round()
            clock += 1
            for v, arrivals in inbox.items():
                for _, (du, w) in arrivals:
                    candidate = du + w
                    if candidate < dist[v]:
                        dist[v] = candidate
                        arrival_round = candidate
                        pending.setdefault(arrival_round, []).append(v)
                        horizon = max(horizon, arrival_round)
            if not pending and clock <= horizon:
                break
        return dist
