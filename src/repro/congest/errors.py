"""Exceptions raised by the CONGEST simulator.

The simulator is strict by design: violations of the model (sending over a
non-existent link, exceeding the per-edge bandwidth in strict mode, or
exceeding a round budget) raise rather than silently degrade, so that every
algorithm in this repository is validated against the model it claims to
run in.
"""


class CongestError(Exception):
    """Base class for all simulator errors."""


class UnknownVertexError(CongestError):
    """A message was addressed to or from a vertex not in the network."""

    def __init__(self, vertex):
        super().__init__(f"vertex {vertex!r} is not part of the network")
        self.vertex = vertex


class NotALinkError(CongestError):
    """A message was sent along a pair that is not a communication link."""

    def __init__(self, sender, receiver):
        super().__init__(
            f"no communication link between {sender!r} and {receiver!r}"
        )
        self.sender = sender
        self.receiver = receiver


class BandwidthExceededError(CongestError):
    """A link carried more words in one round than the bandwidth allows.

    Only raised when the network is constructed with ``strict=True``;
    otherwise the violation is recorded in the ledger and execution
    continues (useful for measuring congestion of deliberately congested
    schedules).
    """

    def __init__(self, sender, receiver, words, bandwidth):
        super().__init__(
            f"link {sender!r}->{receiver!r} carried {words} words in one "
            f"round; bandwidth is {bandwidth} words"
        )
        self.sender = sender
        self.receiver = receiver
        self.words = words
        self.bandwidth = bandwidth


class RoundLimitExceededError(CongestError):
    """An algorithm ran longer than its configured round budget."""

    def __init__(self, limit, context=""):
        detail = f" during {context}" if context else ""
        super().__init__(f"round limit {limit} exceeded{detail}")
        self.limit = limit
        self.context = context


class InvalidInstanceError(CongestError):
    """A problem instance violates its declared invariants.

    Raised, for example, when the path handed to an RPaths solver is not a
    shortest s-t path of the graph, or when edge weights are not positive
    integers.
    """
