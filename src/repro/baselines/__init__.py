"""Baselines: centralized oracles and the distributed algorithms the
paper compares against (Table 1 and the Section 1.1 remark)."""

from .centralized import (
    detour_replacement_lengths,
    detour_replacement_lengths_with_threshold,
    replacement_lengths,
    two_sisp_length,
)
from .naive_distributed import NaiveReport, solve_rpaths_naive
from .mr24 import MR24Report, solve_rpaths_mr24
from .roditty_zwick import solve_rpaths_roditty_zwick
from .witnesses import (
    ReplacementWitness,
    canonical_decomposition,
    detour_is_edge_disjoint,
    replacement_witnesses,
)

__all__ = [
    "MR24Report",
    "NaiveReport",
    "ReplacementWitness",
    "canonical_decomposition",
    "detour_is_edge_disjoint",
    "replacement_witnesses",
    "detour_replacement_lengths",
    "detour_replacement_lengths_with_threshold",
    "replacement_lengths",
    "solve_rpaths_mr24",
    "solve_rpaths_naive",
    "solve_rpaths_roditty_zwick",
    "two_sisp_length",
]
