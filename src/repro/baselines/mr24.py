"""The Manoharan–Ramachandran (SIROCCO 2024) style algorithm [MR24b].

The prior state of the art that Theorem 1 improves on.  Its structure
(Section 3.1 of the paper):

* assume every vertex knows the identifiers of P in sequence — justified
  for them because their round budget already carries an O(h_st) term;
  implemented as an O(h_st + D) broadcast of the P sequence;
* short detours: a ζ-hop BFS from *every* vertex of P simultaneously,
  O(h_st + ζ) rounds via the k-source BFS of Lemma 5.5 with k = h_st+1;
* long detours: landmarks as in Section 5, but *both* the landmarks and
  every vertex of P broadcast all their landmark distances —
  O(|L|² + |L|·h_st + D) broadcast rounds, the term our paper's
  Section 5 removes;
* final combination is local (everything was broadcast).

The output is exact (same guarantees as Theorem 1); only the round
profile differs — which is precisely what benchmarks E1/E3 measure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..congest.broadcast import broadcast_messages
from ..congest.metrics import RoundLedger
from ..congest.network import resolve_fabric
from ..congest.multisource import multi_source_hop_bfs
from ..congest.spanning_tree import build_spanning_tree
from ..congest.words import INF, clamp_inf
from ..core.landmark_distances import landmark_closure
from ..core.landmarks import sample_landmarks
from ..graphs.instance import RPathsInstance


@dataclass
class MR24Report:
    """Output of the MR24b-style execution."""

    instance_name: str
    lengths: List[int]
    ledger: RoundLedger
    zeta: int
    landmark_count: int

    @property
    def rounds(self) -> int:
        return self.ledger.rounds


def solve_rpaths_mr24(
    instance: RPathsInstance,
    zeta: Optional[int] = None,
    seed: int = 0,
    landmarks: Optional[Sequence[int]] = None,
    landmark_c: float = 2.0,
    fabric: str = "fast",
) -> MR24Report:
    """Run the MR24b-style algorithm (exact answers, h_st-heavy rounds)."""
    fabric = resolve_fabric(fabric)
    if instance.weighted:
        raise ValueError("this baseline reproduces the unweighted MR24b "
                         "algorithm")
    n = instance.n
    h = instance.hop_count
    path = instance.path
    if zeta is None:
        zeta = max(1, math.ceil(n ** (2.0 / 3.0)))
    avoid = instance.path_edge_set()

    net = instance.build_network(fabric=fabric)
    tree = build_spanning_tree(net)

    with net.ledger.phase("mr24"):
        # Their initial-knowledge assumption, made explicit: broadcast
        # the P sequence (h_st + 1 messages → O(h_st + D) rounds).
        broadcast_messages(
            net, tree,
            {path[i]: [("pseq", i)] for i in range(h + 1)},
            phase="mr24-path-broadcast")

        # -- short detours: ζ-hop BFS from all of P at once.
        to_path = multi_source_hop_bfs(
            net, path, zeta, direction="in", avoid_edges=avoid,
            phase="mr24-short-kBFS")
        # to_path[j][u] = hop distance u → v_j in G \ P (≤ ζ).
        short = [INF] * h
        for i in range(h + 1):
            u = path[i]
            for j in range(i + 1, h + 1):
                d = to_path[j][u]
                if d >= INF:
                    continue
                length = h - (j - i) + d
                for e in range(i, j):
                    if length < short[e]:
                        short[e] = length
        # (The combination above is local at each v_i after an O(h_st)
        # propagation sweep along P; the sweep's rounds are charged
        # explicitly — this is the h_st term their algorithm carries.)
        with net.ledger.phase("mr24-short-propagation"):
            for step in range(h):
                outbox = {path[step]: [(path[step + 1], ("sw", 0))]}
                net.exchange(outbox)

        # -- long detours: landmarks; L and P both broadcast.
        if landmarks is None:
            landmarks = sample_landmarks(n, zeta, c=landmark_c, seed=seed)
        landmarks = sorted(set(landmarks))
        long_ = [INF] * h
        if landmarks:
            k = len(landmarks)
            fwd = multi_source_hop_bfs(
                net, landmarks, zeta, direction="out",
                avoid_edges=avoid, phase="mr24-kBFS-fwd")
            bwd = multi_source_hop_bfs(
                net, landmarks, zeta, direction="in",
                avoid_edges=avoid, phase="mr24-kBFS-bwd")

            # THE broadcast [MR24b]: landmarks send |L| pair distances
            # each, and every vertex of P sends its 2|L| landmark
            # distances — O(|L|² + |L|·h_st) words in total.
            messages: Dict[int, list] = {}
            for b, l_b in enumerate(landmarks):
                messages.setdefault(l_b, []).extend(
                    ("LL", a, b, fwd[a][l_b]) for a in range(k))
            for i in range(h + 1):
                u = path[i]
                messages.setdefault(u, []).extend(
                    ("PL", i, a, bwd[a][u]) for a in range(k))
                messages.setdefault(u, []).extend(
                    ("LP", i, a, fwd[a][u]) for a in range(k))
            records = broadcast_messages(
                net, tree, messages, phase="mr24-big-broadcast")

            pair = [[INF] * k for _ in range(k)]
            p_to_l = [[INF] * k for _ in range(h + 1)]
            l_to_p = [[INF] * k for _ in range(h + 1)]
            for _, payload in records:
                tag = payload[0]
                if tag == "LL":
                    _, a, b, val = payload
                    pair[a][b] = val
                elif tag == "PL":
                    _, i, a, val = payload
                    p_to_l[i][a] = val
                elif tag == "LP":
                    _, i, a, val = payload
                    l_to_p[i][a] = val
            closure = landmark_closure(pair)

            # Local combination (global knowledge): for each edge e_i,
            # min over landmark pairs of prefix + closure + suffix.
            best_to = [[INF] * k for _ in range(h + 1)]
            best_from = [[INF] * k for _ in range(h + 1)]
            for i in range(h + 1):
                for a in range(k):
                    direct = p_to_l[i][a]
                    best = direct if direct < INF else INF
                    for mid in range(k):
                        if p_to_l[i][mid] < INF and closure[mid][a] < INF:
                            cand = p_to_l[i][mid] + closure[mid][a]
                            if cand < best:
                                best = cand
                    best_to[i][a] = best
                    direct = l_to_p[i][a]
                    best = direct if direct < INF else INF
                    for mid in range(k):
                        if closure[a][mid] < INF and l_to_p[i][mid] < INF:
                            cand = closure[a][mid] + l_to_p[i][mid]
                            if cand < best:
                                best = cand
                    best_from[i][a] = best

            m_prefix = [[INF] * k for _ in range(h + 1)]
            for i in range(h + 1):
                for a in range(k):
                    cand = i + best_to[i][a]
                    prev = m_prefix[i - 1][a] if i > 0 else INF
                    m_prefix[i][a] = min(prev, cand)
            n_suffix = [[INF] * k for _ in range(h + 2)]
            for i in range(h, -1, -1):
                for a in range(k):
                    cand = best_from[i][a] + (h - i)
                    nxt = n_suffix[i + 1][a] if i < h else INF
                    n_suffix[i][a] = min(nxt, cand)
            for e in range(h):
                best = INF
                for a in range(k):
                    cand = m_prefix[e][a] + n_suffix[e + 1][a]
                    if cand < best:
                        best = cand
                long_[e] = clamp_inf(best)

    lengths = [clamp_inf(min(a, b)) for a, b in zip(short, long_)]
    return MR24Report(
        instance_name=instance.name,
        lengths=lengths,
        ledger=net.ledger,
        zeta=zeta,
        landmark_count=len(landmarks),
    )
