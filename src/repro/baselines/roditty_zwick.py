"""A centralized Roditty–Zwick style short/long-detour algorithm [RZ12].

The short-/long-detour split that both [MR24b] and this paper build on
originates here.  This centralized implementation is an *independent*
realisation of the same structure (truncated BFS for short detours,
sampled landmarks for long ones), used by the test-suite to cross-check
the structural lemmas (the detour decomposition, the landmark coverage
argument) without any distributed machinery in the loop.

It is Monte Carlo exactly like the original: correct w.h.p. over the
landmark sample; tests either use generous sampling or a full landmark
set for determinism.
"""

from __future__ import annotations

import math
import random
from collections import deque
from typing import Dict, List, Optional, Sequence

from ..congest.words import INF, clamp_inf
from ..graphs.instance import RPathsInstance


def _truncated_bfs(adj: List[List[int]], source: int,
                   limit: int, n: int) -> Dict[int, int]:
    """Hop distances from ``source`` up to ``limit`` (dict, sparse)."""
    dist = {source: 0}
    queue = deque([source])
    while queue:
        u = queue.popleft()
        d = dist[u]
        if d >= limit:
            continue
        for v in adj[u]:
            if v not in dist:
                dist[v] = d + 1
                queue.append(v)
    return dist


def _full_bfs(adj: List[List[int]], source: int, n: int) -> List[int]:
    dist = [INF] * n
    dist[source] = 0
    queue = deque([source])
    while queue:
        u = queue.popleft()
        for v in adj[u]:
            if dist[v] >= INF:
                dist[v] = dist[u] + 1
                queue.append(v)
    return dist


def solve_rpaths_roditty_zwick(
    instance: RPathsInstance,
    zeta: Optional[int] = None,
    seed: int = 0,
    landmarks: Optional[Sequence[int]] = None,
) -> List[int]:
    """Exact-w.h.p. replacement lengths via the RZ short/long split."""
    if instance.weighted:
        raise ValueError("the RZ algorithm targets unweighted graphs")
    n = instance.n
    h = instance.hop_count
    path = instance.path
    pos_of = {v: i for i, v in enumerate(path)}
    if zeta is None:
        zeta = max(1, math.ceil(math.sqrt(n)))  # RZ's √n threshold

    avoid = instance.path_edge_set()
    adj: List[List[int]] = [[] for _ in range(n)]
    radj: List[List[int]] = [[] for _ in range(n)]
    for u, v, _ in instance.edges:
        if (u, v) in avoid:
            continue
        adj[u].append(v)
        radj[v].append(u)

    lengths = [INF] * h

    # -- short detours: truncated BFS in G \ P from every path vertex.
    for i in range(h + 1):
        dist = _truncated_bfs(adj, path[i], zeta, n)
        for v, d in dist.items():
            j = pos_of.get(v)
            if j is not None and j > i:
                length = h - (j - i) + d
                for e in range(i, j):
                    if length < lengths[e]:
                        lengths[e] = length

    # -- long detours: landmarks hit every ζ-hop stretch w.h.p.
    rng = random.Random(seed)
    if landmarks is None:
        prob = min(1.0, 9.0 * math.log(max(2, n)) / zeta)
        landmarks = [v for v in range(n) if rng.random() < prob]
    for lm in sorted(set(landmarks)):
        from_l = _full_bfs(adj, lm, n)
        to_l = _full_bfs(radj, lm, n)
        # best prefix entering l from v_{≤ i}, best suffix leaving l to
        # v_{≥ i+1}; standard prefix/suffix minima.
        enter = [INF] * (h + 1)
        for i in range(h + 1):
            cand = i + to_l[path[i]]
            enter[i] = min(enter[i - 1] if i else INF, clamp_inf(cand))
        leave = [INF] * (h + 2)
        for i in range(h, -1, -1):
            cand = from_l[path[i]] + (h - i)
            leave[i] = min(leave[i + 1] if i < h else INF,
                           clamp_inf(cand))
        for e in range(h):
            cand = enter[e] + leave[e + 1]
            if cand < lengths[e]:
                lengths[e] = cand

    return [clamp_inf(x) for x in lengths]
