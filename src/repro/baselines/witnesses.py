"""Witness reconstruction: the actual replacement *paths*, not just
their lengths.

The distributed algorithms output lengths (Definition 2.1 asks for
lengths); operators usually also want the concrete fallback route.
This module reconstructs, for each failed edge e of P, one shortest
replacement path — and verifies the canonical decomposition of
Section 2 (prefix of P + detour edge-disjoint from P + suffix of P)
that Lemma 4.3 and Section 5 rely on.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..congest.words import INF
from ..graphs.instance import RPathsInstance


@dataclass
class ReplacementWitness:
    """One failed edge's fallback route and its decomposition."""

    edge_index: int
    failed_edge: Tuple[int, int]
    length: int
    path: Optional[List[int]]          # None when no replacement exists
    #: Canonical decomposition positions on P (Section 2's j and l,
    #: with leaves_at ≤ edge_index < rejoins_at): the witness follows P
    #: up to position ``leaves_at``, detours, and follows P again from
    #: position ``rejoins_at``.
    leaves_at: Optional[int] = None
    rejoins_at: Optional[int] = None

    @property
    def exists(self) -> bool:
        return self.path is not None


def _shortest_avoiding(instance: RPathsInstance, avoid,
                       ) -> Tuple[int, Optional[List[int]]]:
    """Dijkstra/BFS with parents in G minus ``avoid`` edges."""
    adj = instance.adjacency()
    n = instance.n
    dist = [INF] * n
    parent = [-1] * n
    s, t = instance.s, instance.t
    dist[s] = 0
    heap = [(0, s)]
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist[u]:
            continue
        for v, w in adj[u]:
            if (u, v) in avoid:
                continue
            nd = d + w
            if nd < dist[v] or (nd == dist[v] and
                                parent[v] > u >= 0):
                dist[v] = nd
                parent[v] = u
                heapq.heappush(heap, (nd, v))
    if dist[t] >= INF:
        return INF, None
    path = [t]
    while path[-1] != s:
        path.append(parent[path[-1]])
    path.reverse()
    return dist[t], path


def canonical_decomposition(
    instance: RPathsInstance, witness: List[int],
) -> Tuple[int, int]:
    """(leave position, rejoin position) of a replacement path on P.

    Returns the largest prefix of P the witness follows and the largest
    suffix it rejoins for good; the middle part is the detour.  (The
    witness may brush P's vertices in between — Section 2 only requires
    edge-disjointness from P, which callers may check via
    :func:`detour_is_edge_disjoint`.)
    """
    position = {v: i for i, v in enumerate(instance.path)}
    leave = 0
    for offset, v in enumerate(witness):
        if position.get(v) == offset:
            leave = offset
        else:
            break
    rejoin = len(instance.path) - 1
    for back in range(len(witness)):
        v = witness[len(witness) - 1 - back]
        expected = len(instance.path) - 1 - back
        if position.get(v) == expected:
            rejoin = expected
        else:
            break
    return leave, rejoin


def detour_is_edge_disjoint(instance: RPathsInstance,
                            witness: List[int],
                            leave: int, rejoin: int) -> bool:
    """Whether the witness's middle part avoids every edge of P."""
    p_edges = instance.path_edge_set()
    middle = witness[leave:len(witness) - (instance.hop_count - rejoin)]
    return all((u, v) not in p_edges
               for u, v in zip(middle, middle[1:]))


def replacement_witnesses(
    instance: RPathsInstance,
) -> List[ReplacementWitness]:
    """One shortest replacement path per failed edge of P."""
    out = []
    for i, edge in enumerate(instance.path_edges()):
        length, path = _shortest_avoiding(
            instance, frozenset([edge]))
        if path is None:
            out.append(ReplacementWitness(
                edge_index=i, failed_edge=edge,
                length=INF, path=None))
            continue
        leave, rejoin = canonical_decomposition(instance, path)
        out.append(ReplacementWitness(
            edge_index=i, failed_edge=edge, length=length,
            path=path, leaves_at=leave, rejoins_at=rejoin))
    return out
