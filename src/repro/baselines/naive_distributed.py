"""The trivial O(h_st · T_SSSP) algorithm (Section 1.1 remark).

For each edge e of P in turn, run a fresh SSSP from s in G \\ e and let
t record its distance.  The paper notes this beats the Õ(n^{2/3}+D)
algorithm when h_st is small — our Table 1 / h_st benchmarks reproduce
exactly that crossover.

The per-edge SSSP here is a plain distributed BFS (unweighted graphs),
so the round cost is h_st × (BFS depth of G \\ e), sequentialised —
faithful to the trivial algorithm's schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..congest.bfs import bfs_distances
from ..congest.broadcast import broadcast_messages
from ..congest.metrics import RoundLedger
from ..congest.network import resolve_fabric
from ..congest.spanning_tree import build_spanning_tree
from ..congest.words import clamp_inf
from ..graphs.instance import RPathsInstance


@dataclass
class NaiveReport:
    """Output of the trivial h_st × SSSP execution."""

    instance_name: str
    lengths: List[int]
    ledger: RoundLedger

    @property
    def rounds(self) -> int:
        return self.ledger.rounds


def solve_rpaths_naive(instance: RPathsInstance,
                       fabric: str = "fast") -> NaiveReport:
    """Run the trivial algorithm; exact output, h_st-proportional rounds."""
    fabric = resolve_fabric(fabric)
    if instance.weighted:
        raise ValueError("the trivial baseline here targets unweighted "
                         "instances (the Section 1.1 remark's regime)")
    net = instance.build_network(fabric=fabric)
    tree = build_spanning_tree(net)
    lengths: List[int] = []
    with net.ledger.phase("naive(h_st x SSSP)"):
        for idx, edge in enumerate(instance.path_edges()):
            dist = bfs_distances(
                net, instance.s, direction="out",
                avoid_edges=frozenset([edge]),
                phase=f"sssp-avoiding-{idx}")
            # t announces the result to the first endpoint of the failed
            # edge via the tree (the output must live at v_i).
            broadcast_messages(
                net, tree,
                {instance.t: [("repl", idx, clamp_inf(dist[instance.t]))]},
                phase=f"report-{idx}")
            lengths.append(clamp_inf(dist[instance.t]))
    return NaiveReport(
        instance_name=instance.name,
        lengths=lengths,
        ledger=net.ledger,
    )
