"""Centralized reference algorithms — the correctness oracle.

``replacement_lengths`` computes, for every edge e of P, the exact value
|st ⋄ e| by deleting e and re-running BFS/Dijkstra (O(h_st) shortest-path
computations).  Every distributed algorithm in this repository is tested
against it.

Also provides the canonical detour decomposition of Section 2 (each
replacement path can be taken as P-prefix + detour + P-suffix with the
detour edge-disjoint from P), used by unit tests to cross-check the
structure Lemma 4.3 and Section 5 rely on.
"""

from __future__ import annotations

from typing import List, Tuple

from ..congest.words import INF, clamp_inf
from ..graphs.instance import RPathsInstance


def replacement_lengths(instance: RPathsInstance) -> List[int]:
    """Exact |st ⋄ (v_i, v_{i+1})| for every i (Definition 2.1).

    Returns a list of length h_st; entry i is INF when no replacement
    path exists for the i-th path edge.
    """
    out = []
    for edge in instance.path_edges():
        dist = instance.dijkstra(
            instance.s, avoid_edges=frozenset([edge]))
        out.append(clamp_inf(dist[instance.t]))
    return out


def two_sisp_length(instance: RPathsInstance) -> int:
    """Exact second-simple-shortest-path length (Definition 2.3)."""
    lengths = replacement_lengths(instance)
    return clamp_inf(min(lengths)) if lengths else INF


def detour_replacement_lengths(
    instance: RPathsInstance,
) -> Tuple[List[int], List[int]]:
    """Replacement lengths split by detour hop count.

    Computes, for each path edge e = (v_i, v_{i+1}), the best replacement
    length realised by a canonical decomposition P[s, v_j] + detour +
    P[v_l, t] (j ≤ i < l, detour edge-disjoint from P), reported twice:
    once over *short* detours (≤ ζ = n^{2/3} hops) and once over *long*
    detours.  Used to validate Propositions 4.1 and 5.1 separately.
    """
    zeta = max(1, round(instance.n ** (2.0 / 3.0)))
    return detour_replacement_lengths_with_threshold(instance, zeta)


def detour_replacement_lengths_with_threshold(
    instance: RPathsInstance,
    zeta: int,
) -> Tuple[List[int], List[int]]:
    """As :func:`detour_replacement_lengths` with an explicit threshold.

    The detour from v_j to v_l is a shortest path in G \\ P; its hop count
    decides short (≤ zeta) versus long (> zeta).  For each (j, l) pair we
    need both the weighted detour length and its hop count; we take, for
    each pair, the minimum-weight detour and among those the minimum hop
    count (ties resolved in favour of fewer hops, matching how a BFS
    explores the unweighted case).
    """
    h = instance.hop_count
    path = instance.path
    avoid = instance.path_edge_set()
    pre = instance.path_prefix_weights()
    total = pre[-1]

    # dist_from[j][v]: weighted distance v_j -> v in G \ P, plus hop count
    # of one minimum-weight path.
    dist_rows: List[List[int]] = []
    hops_rows: List[List[int]] = []
    for j in range(h + 1):
        dist, hops = _dijkstra_with_hops(instance, path[j], avoid)
        dist_rows.append(dist)
        hops_rows.append(hops)

    short = [INF] * h
    long_ = [INF] * h
    for j in range(h + 1):
        for pos in range(j + 1, h + 1):
            d = dist_rows[j][path[pos]]
            if d >= INF:
                continue
            hop = hops_rows[j][path[pos]]
            length = pre[j] + d + (total - pre[pos])
            bucket = short if hop <= zeta else long_
            for i in range(j, pos):
                if length < bucket[i]:
                    bucket[i] = length
    return short, long_


def _dijkstra_with_hops(
    instance: RPathsInstance,
    source: int,
    avoid_edges,
) -> Tuple[List[int], List[int]]:
    """Dijkstra in G \\ avoid returning (weighted dist, hops of a
    min-weight min-hop path)."""
    import heapq

    adj = instance.adjacency()
    dist = [INF] * instance.n
    hops = [INF] * instance.n
    dist[source] = 0
    hops[source] = 0
    heap = [(0, 0, source)]
    while heap:
        d, k, u = heapq.heappop(heap)
        if (d, k) > (dist[u], hops[u]):
            continue
        for v, w in adj[u]:
            if (u, v) in avoid_edges:
                continue
            nd, nk = d + w, k + 1
            if (nd, nk) < (dist[v], hops[v]):
                dist[v] = nd
                hops[v] = nk
                heapq.heappush(heap, (nd, nk, v))
    return dist, hops
