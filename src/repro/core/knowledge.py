"""Lemma 2.5 — acquiring indices and path distances in Õ(√n + D) rounds.

The solvers' minimal initial knowledge (Section 2) is: both endpoints of
every P-edge know the edge is on P (hence every P-vertex knows its P
predecessor/successor), s knows it is the source, t the target.  The
algorithms of Theorems 1 and 3 additionally need every v_i to know its
index i, its distance from s, and its distance to t.  Lemma 2.5 supplies
these in Õ(√n + D) rounds:

1. sample each P-vertex with probability 1/√n (s and t force-included so
   the chain is anchored);
2. flood rightward along P from every sampled vertex, carrying
   (origin, hops, weighted distance) and stopping at the next sampled
   vertex — O(max gap) = O(√n log n) rounds w.h.p.;
3. every sampled vertex broadcasts the (predecessor, gap hops, gap
   weight) record it learned — O(#sampled + D) = O(√n + D) rounds by
   Lemma 2.4;
4. every vertex chains the broadcast records from s, then adds its local
   offset, obtaining i, dist(s, v_i) and dist(v_i, t).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..congest.broadcast import broadcast_messages
from ..congest.dispatch import dispatch
from ..congest.network import CongestNetwork
from ..congest.spanning_tree import SpanningTree, build_spanning_tree
from ..graphs.instance import RPathsInstance


@dataclass
class PathKnowledge:
    """What each P-vertex knows after the Lemma 2.5 preprocessing.

    All arrays are indexed by *path position* i ∈ [0, h_st]; entry i is
    the knowledge held by v_i.  ``position_of`` inverts path vertex id to
    its index.
    """

    path: List[int]
    dist_from_s: List[int]
    dist_to_t: List[int]
    position_of: Dict[int, int]
    #: Rounds the acquisition used (also charged to the shared ledger).
    rounds_used: int = 0

    @property
    def hop_count(self) -> int:
        return len(self.path) - 1

    @property
    def total_length(self) -> int:
        return self.dist_from_s[-1]


def oracle_knowledge(instance: RPathsInstance) -> PathKnowledge:
    """The Lemma 2.5 output computed centrally, free of rounds.

    Unit tests of downstream stages use this to isolate failures; the
    end-to-end solvers run :func:`acquire_path_knowledge` instead.
    """
    pre = instance.path_prefix_weights()
    total = pre[-1]
    return PathKnowledge(
        path=list(instance.path),
        dist_from_s=pre,
        dist_to_t=[total - x for x in pre],
        position_of={v: i for i, v in enumerate(instance.path)},
    )


def _chain_flood_message(
    net: CongestNetwork,
    path: Sequence[int],
    sampled: Sequence[int],
    prefix: Sequence[int],
) -> Dict[int, tuple]:
    """The per-token Lemma 2.5 flood (the registry's fallback lane).

    Charges within the caller's open phase, like the vector kernel.
    Edge weights are recovered as consecutive prefix-weight
    differences — exactly how ``prefix`` was built.
    """
    h = len(path) - 1
    sampled_set = set(sampled)
    from_left: Dict[int, tuple] = {}
    tokens = [(i, path[i], 0, 0) for i in sampled if i < h]
    while tokens:
        outbox: Dict[int, list] = {}
        moves = []
        for pos, origin, hops, dist in tokens:
            nxt = pos + 1
            w = prefix[nxt] - prefix[pos]
            outbox.setdefault(path[pos], []).append(
                (path[nxt],
                 ("chain", origin, hops + 1, dist + w)))
            moves.append((nxt, origin, hops + 1, dist + w))
        net.exchange(outbox)
        tokens = []
        for pos, origin, hops, dist in moves:
            from_left[pos] = (origin, hops, dist)
            if pos not in sampled_set and pos < h:
                tokens.append((pos, origin, hops, dist))
            # tokens stop at sampled vertices (record only).
    return from_left


def acquire_path_knowledge(
    instance: RPathsInstance,
    net: CongestNetwork,
    tree: Optional[SpanningTree] = None,
    seed: int = 0,
    sample_rate: Optional[float] = None,
) -> PathKnowledge:
    """Run the Lemma 2.5 algorithm on the network and return the result.

    The returned object is the *union* of per-vertex knowledge, which the
    simulator can hand back to later phases; each entry was genuinely
    derived from messages the owning vertex received.
    """
    rng = random.Random(seed)
    path = list(instance.path)
    h = len(path) - 1
    start_rounds = net.rounds

    with net.ledger.phase("knowledge(L2.5)"):
        if sample_rate is None:
            sample_rate = 1.0 / max(1.0, instance.n ** 0.5)
        sampled = [i for i in range(h + 1)
                   if i in (0, h) or rng.random() < sample_rate]
        sampled_set = set(sampled)

        # -- step 2: rightward flood along P from each sampled vertex.
        # token at position p carries (origin position's vertex id, hops,
        # weighted dist from the origin).  Each vertex learns the record
        # of its nearest sampled predecessor.  Prefix weights come from
        # the instance directly — the edges of P are the path's own
        # consecutive pairs, so materializing the full O(m) edge-weight
        # map here was pure overhead at large n.
        prefix = instance.path_prefix_weights()
        # Both lanes charge within this open phase: the vector kernel
        # bulk-charges the gap schedule (tokens advance in lockstep and
        # the records are prefix-weight differences), the message lane
        # below runs the per-token exchanges.
        from_left = dispatch("chain_flood", net, path=path,
                             sampled=sampled, prefix=prefix)

        # -- step 3: sampled vertices broadcast their chain records.
        if tree is None:
            tree = build_spanning_tree(net)
        messages = {}
        for i in sampled:
            if i == 0:
                messages[path[i]] = [("anchor", path[i])]
            else:
                origin, hops, dist = from_left[i]
                messages[path[i]] = [("link", path[i], origin, hops, dist)]
        records = broadcast_messages(net, tree, messages,
                                     phase="knowledge-broadcast")

        # -- step 4: local chain reconstruction (free local computation,
        # identical at every vertex since all received the same records).
        next_of: Dict[int, tuple] = {}
        anchor = None
        for _, payload in records:
            if payload[0] == "anchor":
                anchor = payload[1]
            else:
                _, vertex, origin, hops, dist = payload
                next_of[origin] = (vertex, hops, dist)
        assert anchor == path[0]
        index_of_sampled: Dict[int, tuple] = {anchor: (0, 0)}
        cursor, idx, acc = anchor, 0, 0
        while cursor in next_of:
            vertex, hops, dist = next_of[cursor]
            idx += hops
            acc += dist
            index_of_sampled[vertex] = (idx, acc)
            cursor = vertex

        dist_from_s = [0] * (h + 1)
        for i in range(h + 1):
            if path[i] in index_of_sampled and i in sampled_set:
                idx, acc = index_of_sampled[path[i]]
                dist_from_s[i] = acc
            else:
                origin, hops, dist = from_left[i]
                idx0, acc0 = index_of_sampled[origin]
                dist_from_s[i] = acc0 + dist
        total = dist_from_s[h]
        knowledge = PathKnowledge(
            path=path,
            dist_from_s=dist_from_s,
            dist_to_t=[total - x for x in dist_from_s],
            position_of={v: i for i, v in enumerate(path)},
        )
    knowledge.rounds_used = net.rounds - start_rounds
    return knowledge
